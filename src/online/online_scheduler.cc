#include "online/online_scheduler.hh"

#include <algorithm>
#include <optional>
#include <utility>

#include "eval/experiment.hh"
#include "support/cancel.hh"
#include "support/fault_injection.hh"
#include "support/logging.hh"
#include "workloads/workloads.hh"

namespace csched {

void
Timeline::commit(OnlineCommit commit)
{
    CSCHED_ASSERT(commit.start >= freeAt(),
                  "online commit overlaps the timeline: start ",
                  commit.start, " < freeAt ", freeAt());
    CSCHED_ASSERT(commit.makespan >= 0, "negative commit makespan");
    commits_.push_back(std::move(commit));
}

std::vector<OnlineCommit>
Timeline::rollbackAfter(int time)
{
    std::vector<OnlineCommit> rolled;
    while (!commits_.empty() && commits_.back().start > time) {
        rolled.push_back(std::move(commits_.back()));
        commits_.pop_back();
    }
    std::reverse(rolled.begin(), rolled.end());
    return rolled;
}

namespace {

/** A released region whose placement has been planned but not
 *  committed (or whose commit was rolled back). */
struct PendingRegion
{
    RegionArrival arrival;
    int criticalPathLength = 0;
    int instructions = 0;
    int makespan = 0;
    bool fallback = false;
    std::optional<Schedule> schedule;
};

/** Strict weak order implementing the policy's pending-window rule;
 *  every rule breaks ties by (release, id) for determinism. */
bool
orderedBefore(const PendingRegion &a, const PendingRegion &b,
              OnlineOrder order)
{
    switch (order) {
    case OnlineOrder::Fifo:
        break;
    case OnlineOrder::Wspt: {
        // a before b iff a.weight / a.makespan > b.weight / b.makespan,
        // cross-multiplied to stay in exact integer arithmetic.
        const int64_t lhs = static_cast<int64_t>(a.arrival.weight) *
                            std::max(1, b.makespan);
        const int64_t rhs = static_cast<int64_t>(b.arrival.weight) *
                            std::max(1, a.makespan);
        if (lhs != rhs)
            return lhs > rhs;
        break;
    }
    case OnlineOrder::LongestCpl:
        if (a.criticalPathLength != b.criticalPathLength)
            return a.criticalPathLength > b.criticalPathLength;
        break;
    }
    if (a.arrival.release != b.arrival.release)
        return a.arrival.release < b.arrival.release;
    return a.arrival.id < b.arrival.id;
}

OnlineCommit
makeCommit(PendingRegion &&region, int start)
{
    return OnlineCommit{region.arrival.id,
                        std::move(region.arrival.workload),
                        region.arrival.release,
                        region.arrival.weight,
                        region.arrival.deadline,
                        start,
                        region.makespan,
                        region.instructions,
                        region.criticalPathLength,
                        region.fallback,
                        std::move(*region.schedule)};
}

PendingRegion
reopenCommit(OnlineCommit &&commit)
{
    PendingRegion region;
    region.arrival = RegionArrival{commit.regionId,
                                   std::move(commit.workload),
                                   commit.release, commit.weight,
                                   commit.deadline};
    region.criticalPathLength = commit.criticalPathLength;
    region.instructions = commit.instructions;
    region.makespan = commit.makespan;
    region.fallback = commit.fallback;
    region.schedule = std::move(commit.schedule);
    return region;
}

/** Shared state of one runOnline invocation. */
class OnlineDriver
{
  public:
    OnlineDriver(const MachineModel &machine,
                 const OnlinePolicySpec &policy,
                 const std::vector<RegionArrival> &arrivals,
                 const MachineModel *degraded)
        : machine_(machine), policy_(policy), arrivals_(arrivals),
          degraded_(degraded), active_(&machine)
    {
    }

    StatusOr<OnlineRunResult>
    run()
    {
        if (policy_.degradeAt >= 0 && degraded_ == nullptr)
            return Status::invalidSpec(
                "policy '" + policy_.text +
                "' arms degrade-at but no degraded machine was "
                "provided");
        Status valid = validateArrivals();
        if (!valid.ok())
            return valid;
        Status loop = policy_.planAhead ? runPlanAhead() : runLazy();
        if (!loop.ok())
            return loop;
        OnlineRunResult result;
        result.commits = timeline_.takeCommits();
        result.preemptions = preemptions_;
        result.fallbackDecisions = fallbacks_;
        result.degradeFired = degradeFired_;
        result.degradeReplans = degradeReplans_;
        return result;
    }

  private:
    Status
    validateArrivals()
    {
        for (size_t i = 0; i < arrivals_.size(); ++i) {
            if (arrivals_[i].id != static_cast<int>(i))
                return Status::invalidSpec(
                    "arrival ids must be dense and ordered");
            if (arrivals_[i].release < 0 || arrivals_[i].weight < 1)
                return Status::invalidSpec(
                    "arrival with negative release or weight < 1");
            if (i > 0 &&
                arrivals_[i].release < arrivals_[i - 1].release)
                return Status::invalidSpec(
                    "arrival releases must be nondecreasing");
        }
        return Status();
    }

    /** Plan one region with @p name under the per-decision budget. */
    StatusOr<RunResult>
    planWith(const std::string &name, const DependenceGraph &graph)
    {
        AlgorithmSpec spec;
        spec.name = name;
        auto algorithm = tryMakeAlgorithm(spec, *active_);
        if (!algorithm.ok())
            return algorithm.status();
        if (policy_.decisionBudgetMs <= 0)
            return tryRunAndCheck(**algorithm, graph, *active_);
        CancelToken budget;
        budget.armDeadline(policy_.decisionBudgetMs);
        ScopedCancelToken scope(&budget);
        try {
            return tryRunAndCheck(**algorithm, graph, *active_);
        } catch (const StatusError &e) {
            // A drain request must keep unwinding to the job
            // boundary; only this decision's own deadline is ours.
            if (e.status.code() != ErrorCode::Timeout)
                throw;
            return e.status;
        }
    }

    /**
     * (Re)plan @p region's placement on the active machine: rebuild
     * its workload graph, re-home preplacements onto the alive
     * clusters, and run the policy's underlying algorithm (with the
     * budgeted UAS fallback).
     */
    Status
    planRegion(PendingRegion &region)
    {
        const WorkloadSpec *workload =
            tryFindWorkload(region.arrival.workload);
        if (workload == nullptr)
            return Status::invalidSpec("stream names unknown workload '" +
                                       region.arrival.workload + "'");
        DependenceGraph graph = workload->build(
            active_->numClusters(), active_->numClusters());
        remapPreplacedForMachine(graph, *active_);
        region.criticalPathLength = graph.criticalPathLength();
        auto planned = planWith(policy_.underlying, graph);
        if (!planned.ok() &&
            planned.status().code() == ErrorCode::Timeout &&
            policy_.decisionBudgetMs > 0 && policy_.underlying != "uas") {
            region.fallback = true;
            ++fallbacks_;
            planned = planWith("uas", graph);
        }
        if (!planned.ok())
            return planned.status().withContext(
                "online planning of region " +
                std::to_string(region.arrival.id) + " (" +
                region.arrival.workload + ")");
        region.instructions = planned->instructions;
        region.makespan = planned->makespan;
        region.schedule = std::move(planned->result.schedule);
        return Status();
    }

    StatusOr<PendingRegion>
    admit(const RegionArrival &arrival)
    {
        checkpoint("online.admit");
        PendingRegion region;
        region.arrival = arrival;
        Status planned = planRegion(region);
        if (!planned.ok())
            return planned;
        return region;
    }

    /** True when the degradation event is armed and has not fired. */
    bool
    degradeArmed() const
    {
        return degraded_ != nullptr && policy_.degradeAt >= 0 &&
               !degradeFired_;
    }

    /**
     * Fire the mid-run degradation: the configured tiles die at
     * degradeAt, every commit that has not started by then is rolled
     * back off the timeline, and every rolled or still-pending
     * region is re-planned on the surviving machine (their old plans
     * were made for the pre-degrade machine and may occupy dead
     * resources).  Started commits are never aborted.  The caller
     * recommits the refilled pending window.
     */
    Status
    degrade()
    {
        degradeFired_ = true;
        checkpoint("machine.degrade");
        std::vector<OnlineCommit> rolled =
            timeline_.rollbackAfter(policy_.degradeAt);
        active_ = degraded_;
        // Rolled commits re-enter the window ahead of regions that
        // were never committed, keeping each group's order stable.
        std::vector<PendingRegion> window;
        window.reserve(rolled.size() + pending_.size());
        for (OnlineCommit &commit : rolled)
            window.push_back(reopenCommit(std::move(commit)));
        for (PendingRegion &region : pending_)
            window.push_back(std::move(region));
        pending_ = std::move(window);
        for (PendingRegion &region : pending_) {
            Status planned = planRegion(region);
            if (!planned.ok())
                return planned.withContext(
                    "re-planning after the degradation event at t=" +
                    std::to_string(policy_.degradeAt));
            ++degradeReplans_;
        }
        return Status();
    }

    /** Admit every arrival with release <= @p time into pending_. */
    Status
    admitUpTo(int time)
    {
        while (next_ < arrivals_.size() &&
               arrivals_[next_].release <= time) {
            auto region = admit(arrivals_[next_]);
            if (!region.ok())
                return region.status();
            pending_.push_back(std::move(*region));
            ++next_;
        }
        return Status();
    }

    /** Smallest release among the pending regions (must be some). */
    int
    earliestRelease() const
    {
        int earliest = pending_.front().arrival.release;
        for (const PendingRegion &region : pending_)
            earliest = std::min(earliest, region.arrival.release);
        return earliest;
    }

    /** Commit the policy-order pick among the pending regions
     *  released by @p now (the caller guarantees at least one). */
    void
    commitPickAt(int now)
    {
        auto pick = pending_.end();
        for (auto it = pending_.begin(); it != pending_.end(); ++it) {
            if (it->arrival.release > now)
                continue;
            if (pick == pending_.end() ||
                orderedBefore(*it, *pick, policy_.order))
                pick = it;
        }
        CSCHED_ASSERT(pick != pending_.end(),
                      "lazy decision at ", now, " with nothing released");
        timeline_.commit(makeCommit(std::move(*pick), now));
        pending_.erase(pick);
    }

    /**
     * Lazy policies: one irrevocable commit per machine-idle point,
     * chosen by the policy order among everything released by then.
     */
    Status
    runLazy()
    {
        while (next_ < arrivals_.size() || !pending_.empty()) {
            if (pending_.empty()) {
                // Idle machine: jump time to the next arrival.
                Status admitted = admitUpTo(arrivals_[next_].release);
                if (!admitted.ok())
                    return admitted;
            }
            int now = std::max(timeline_.freeAt(), earliestRelease());
            if (degradeArmed() && now >= policy_.degradeAt) {
                Status event = degrade();
                if (!event.ok())
                    return event;
                // The rollback may have freed the machine earlier;
                // the event itself pins the decision at degradeAt.
                now = std::max({timeline_.freeAt(), earliestRelease(),
                                policy_.degradeAt});
            }
            // Arrivals during the busy window compete at this decision.
            Status admitted = admitUpTo(now);
            if (!admitted.ok())
                return admitted;
            commitPickAt(now);
        }
        // The event can land inside the committed tail, after the
        // last decision point: fire it and recommit what it rolled.
        if (degradeArmed() && timeline_.freeAt() > policy_.degradeAt) {
            Status event = degrade();
            if (!event.ok())
                return event;
            while (!pending_.empty())
                commitPickAt(std::max({timeline_.freeAt(),
                                       earliestRelease(),
                                       policy_.degradeAt}));
        }
        return Status();
    }

    /** Reorder the pending window by the policy rule and commit it
     *  back-to-back, no commit before @p now or its own release. */
    void
    commitWindow(int now)
    {
        std::stable_sort(pending_.begin(), pending_.end(),
                         [&](const PendingRegion &a,
                             const PendingRegion &b) {
                             return orderedBefore(a, b, policy_.order);
                         });
        for (PendingRegion &region : pending_) {
            const int start = std::max(
                {timeline_.freeAt(), now, region.arrival.release});
            timeline_.commit(makeCommit(std::move(region), start));
        }
        pending_.clear();
    }

    /**
     * Plan-ahead policies: on every release-time batch, optionally
     * preempt unstarted commits, then reorder and commit the whole
     * pending window back-to-back.
     */
    Status
    runPlanAhead()
    {
        while (next_ < arrivals_.size()) {
            const int now = arrivals_[next_].release;
            if (degradeArmed() && now >= policy_.degradeAt) {
                Status event = degrade();
                if (!event.ok())
                    return event;
            }
            const size_t firstNew = pending_.size();
            Status admitted = admitUpTo(now);
            if (!admitted.ok())
                return admitted;
            maybePreempt(firstNew, now);
            commitWindow(now);
        }
        // The event can land inside the committed tail, after the
        // last batch: fire it and recommit what it rolled back.
        if (degradeArmed() && timeline_.freeAt() > policy_.degradeAt) {
            Status event = degrade();
            if (!event.ok())
                return event;
            commitWindow(policy_.degradeAt);
        }
        return Status();
    }

    /** Roll unstarted commits back into pending_ when the batch
     *  starting at @p firstNew brings a sufficiently heavy region. */
    void
    maybePreempt(size_t firstNew, int now)
    {
        int heaviestNew = 0;
        for (size_t i = firstNew; i < pending_.size(); ++i)
            heaviestNew =
                std::max(heaviestNew, pending_[i].arrival.weight);
        int lightestUnstarted = -1;
        for (const OnlineCommit &commit : timeline_.commits())
            if (commit.start > now)
                lightestUnstarted =
                    lightestUnstarted < 0
                        ? commit.weight
                        : std::min(lightestUnstarted, commit.weight);
        if (lightestUnstarted < 0 ||
            static_cast<double>(heaviestNew) <
                policy_.preemptFactor *
                    static_cast<double>(lightestUnstarted))
            return;
        std::vector<OnlineCommit> rolled = timeline_.rollbackAfter(now);
        preemptions_ += static_cast<int>(rolled.size());
        for (OnlineCommit &commit : rolled)
            pending_.push_back(reopenCommit(std::move(commit)));
    }

    const MachineModel &machine_;
    const OnlinePolicySpec &policy_;
    const std::vector<RegionArrival> &arrivals_;
    /** Post-degrade machine; null when no event is armed. */
    const MachineModel *degraded_;
    /** The machine regions are planned on; flips to degraded_ when
     *  the degradation event fires. */
    const MachineModel *active_;
    Timeline timeline_;
    std::vector<PendingRegion> pending_;
    size_t next_ = 0;
    int preemptions_ = 0;
    int fallbacks_ = 0;
    bool degradeFired_ = false;
    int degradeReplans_ = 0;
};

} // namespace

StatusOr<OnlineRunResult>
runOnline(const MachineModel &machine, const OnlinePolicySpec &policy,
          const std::vector<RegionArrival> &arrivals,
          const MachineModel *degraded)
{
    OnlineDriver driver(machine, policy, arrivals, degraded);
    return driver.run();
}

} // namespace csched
