#include "online/online_scheduler.hh"

#include <algorithm>
#include <optional>
#include <utility>

#include "eval/experiment.hh"
#include "support/cancel.hh"
#include "support/fault_injection.hh"
#include "support/logging.hh"
#include "workloads/workloads.hh"

namespace csched {

void
Timeline::commit(OnlineCommit commit)
{
    CSCHED_ASSERT(commit.start >= freeAt(),
                  "online commit overlaps the timeline: start ",
                  commit.start, " < freeAt ", freeAt());
    CSCHED_ASSERT(commit.makespan >= 0, "negative commit makespan");
    commits_.push_back(std::move(commit));
}

std::vector<OnlineCommit>
Timeline::rollbackAfter(int time)
{
    std::vector<OnlineCommit> rolled;
    while (!commits_.empty() && commits_.back().start > time) {
        rolled.push_back(std::move(commits_.back()));
        commits_.pop_back();
    }
    std::reverse(rolled.begin(), rolled.end());
    return rolled;
}

namespace {

/** A released region whose placement has been planned but not
 *  committed (or whose commit was rolled back). */
struct PendingRegion
{
    RegionArrival arrival;
    int criticalPathLength = 0;
    int instructions = 0;
    int makespan = 0;
    bool fallback = false;
    std::optional<Schedule> schedule;
};

/** Strict weak order implementing the policy's pending-window rule;
 *  every rule breaks ties by (release, id) for determinism. */
bool
orderedBefore(const PendingRegion &a, const PendingRegion &b,
              OnlineOrder order)
{
    switch (order) {
    case OnlineOrder::Fifo:
        break;
    case OnlineOrder::Wspt: {
        // a before b iff a.weight / a.makespan > b.weight / b.makespan,
        // cross-multiplied to stay in exact integer arithmetic.
        const int64_t lhs = static_cast<int64_t>(a.arrival.weight) *
                            std::max(1, b.makespan);
        const int64_t rhs = static_cast<int64_t>(b.arrival.weight) *
                            std::max(1, a.makespan);
        if (lhs != rhs)
            return lhs > rhs;
        break;
    }
    case OnlineOrder::LongestCpl:
        if (a.criticalPathLength != b.criticalPathLength)
            return a.criticalPathLength > b.criticalPathLength;
        break;
    }
    if (a.arrival.release != b.arrival.release)
        return a.arrival.release < b.arrival.release;
    return a.arrival.id < b.arrival.id;
}

OnlineCommit
makeCommit(PendingRegion &&region, int start)
{
    return OnlineCommit{region.arrival.id,
                        std::move(region.arrival.workload),
                        region.arrival.release,
                        region.arrival.weight,
                        region.arrival.deadline,
                        start,
                        region.makespan,
                        region.instructions,
                        region.criticalPathLength,
                        region.fallback,
                        std::move(*region.schedule)};
}

PendingRegion
reopenCommit(OnlineCommit &&commit)
{
    PendingRegion region;
    region.arrival = RegionArrival{commit.regionId,
                                   std::move(commit.workload),
                                   commit.release, commit.weight,
                                   commit.deadline};
    region.criticalPathLength = commit.criticalPathLength;
    region.instructions = commit.instructions;
    region.makespan = commit.makespan;
    region.fallback = commit.fallback;
    region.schedule = std::move(commit.schedule);
    return region;
}

/** Shared state of one runOnline invocation. */
class OnlineDriver
{
  public:
    OnlineDriver(const MachineModel &machine,
                 const OnlinePolicySpec &policy,
                 const std::vector<RegionArrival> &arrivals)
        : machine_(machine), policy_(policy), arrivals_(arrivals)
    {
    }

    StatusOr<OnlineRunResult>
    run()
    {
        Status valid = validateArrivals();
        if (!valid.ok())
            return valid;
        Status loop = policy_.planAhead ? runPlanAhead() : runLazy();
        if (!loop.ok())
            return loop;
        OnlineRunResult result;
        result.commits = timeline_.takeCommits();
        result.preemptions = preemptions_;
        result.fallbackDecisions = fallbacks_;
        return result;
    }

  private:
    Status
    validateArrivals()
    {
        for (size_t i = 0; i < arrivals_.size(); ++i) {
            if (arrivals_[i].id != static_cast<int>(i))
                return Status::invalidSpec(
                    "arrival ids must be dense and ordered");
            if (arrivals_[i].release < 0 || arrivals_[i].weight < 1)
                return Status::invalidSpec(
                    "arrival with negative release or weight < 1");
            if (i > 0 &&
                arrivals_[i].release < arrivals_[i - 1].release)
                return Status::invalidSpec(
                    "arrival releases must be nondecreasing");
        }
        return Status();
    }

    /** Plan one region with @p name under the per-decision budget. */
    StatusOr<RunResult>
    planWith(const std::string &name, const DependenceGraph &graph)
    {
        AlgorithmSpec spec;
        spec.name = name;
        auto algorithm = tryMakeAlgorithm(spec, machine_);
        if (!algorithm.ok())
            return algorithm.status();
        if (policy_.decisionBudgetMs <= 0)
            return tryRunAndCheck(**algorithm, graph, machine_);
        CancelToken budget;
        budget.armDeadline(policy_.decisionBudgetMs);
        ScopedCancelToken scope(&budget);
        try {
            return tryRunAndCheck(**algorithm, graph, machine_);
        } catch (const StatusError &e) {
            // A drain request must keep unwinding to the job
            // boundary; only this decision's own deadline is ours.
            if (e.status.code() != ErrorCode::Timeout)
                throw;
            return e.status;
        }
    }

    StatusOr<PendingRegion>
    admit(const RegionArrival &arrival)
    {
        const WorkloadSpec *workload = tryFindWorkload(arrival.workload);
        if (workload == nullptr)
            return Status::invalidSpec("stream names unknown workload '" +
                                       arrival.workload + "'");
        checkpoint("online.admit");
        const DependenceGraph graph = workload->build(
            machine_.numClusters(), machine_.numClusters());
        PendingRegion region;
        region.arrival = arrival;
        region.criticalPathLength = graph.criticalPathLength();
        auto planned = planWith(policy_.underlying, graph);
        if (!planned.ok() &&
            planned.status().code() == ErrorCode::Timeout &&
            policy_.decisionBudgetMs > 0 && policy_.underlying != "uas") {
            region.fallback = true;
            ++fallbacks_;
            planned = planWith("uas", graph);
        }
        if (!planned.ok())
            return planned.status().withContext(
                "online admit of region " +
                std::to_string(arrival.id) + " (" + arrival.workload +
                ")");
        region.instructions = planned->instructions;
        region.makespan = planned->makespan;
        region.schedule = std::move(planned->result.schedule);
        return region;
    }

    /** Admit every arrival with release <= @p time into pending_. */
    Status
    admitUpTo(int time)
    {
        while (next_ < arrivals_.size() &&
               arrivals_[next_].release <= time) {
            auto region = admit(arrivals_[next_]);
            if (!region.ok())
                return region.status();
            pending_.push_back(std::move(*region));
            ++next_;
        }
        return Status();
    }

    /**
     * Lazy policies: one irrevocable commit per machine-idle point,
     * chosen by the policy order among everything released by then.
     */
    Status
    runLazy()
    {
        while (next_ < arrivals_.size() || !pending_.empty()) {
            if (pending_.empty()) {
                // Idle machine: jump time to the next arrival.
                Status admitted = admitUpTo(arrivals_[next_].release);
                if (!admitted.ok())
                    return admitted;
            }
            int earliest = pending_.front().arrival.release;
            for (const PendingRegion &region : pending_)
                earliest = std::min(earliest, region.arrival.release);
            const int now = std::max(timeline_.freeAt(), earliest);
            // Arrivals during the busy window compete at this decision.
            Status admitted = admitUpTo(now);
            if (!admitted.ok())
                return admitted;
            auto pick = pending_.begin();
            for (auto it = pending_.begin(); it != pending_.end(); ++it)
                if (orderedBefore(*it, *pick, policy_.order))
                    pick = it;
            timeline_.commit(makeCommit(std::move(*pick), now));
            pending_.erase(pick);
        }
        return Status();
    }

    /**
     * Plan-ahead policies: on every release-time batch, optionally
     * preempt unstarted commits, then reorder and commit the whole
     * pending window back-to-back.
     */
    Status
    runPlanAhead()
    {
        while (next_ < arrivals_.size()) {
            const int now = arrivals_[next_].release;
            const size_t firstNew = pending_.size();
            Status admitted = admitUpTo(now);
            if (!admitted.ok())
                return admitted;
            maybePreempt(firstNew, now);
            std::stable_sort(pending_.begin(), pending_.end(),
                             [&](const PendingRegion &a,
                                 const PendingRegion &b) {
                                 return orderedBefore(a, b, policy_.order);
                             });
            for (PendingRegion &region : pending_) {
                const int start = std::max(timeline_.freeAt(), now);
                timeline_.commit(makeCommit(std::move(region), start));
            }
            pending_.clear();
        }
        return Status();
    }

    /** Roll unstarted commits back into pending_ when the batch
     *  starting at @p firstNew brings a sufficiently heavy region. */
    void
    maybePreempt(size_t firstNew, int now)
    {
        int heaviestNew = 0;
        for (size_t i = firstNew; i < pending_.size(); ++i)
            heaviestNew =
                std::max(heaviestNew, pending_[i].arrival.weight);
        int lightestUnstarted = -1;
        for (const OnlineCommit &commit : timeline_.commits())
            if (commit.start > now)
                lightestUnstarted =
                    lightestUnstarted < 0
                        ? commit.weight
                        : std::min(lightestUnstarted, commit.weight);
        if (lightestUnstarted < 0 ||
            static_cast<double>(heaviestNew) <
                policy_.preemptFactor *
                    static_cast<double>(lightestUnstarted))
            return;
        std::vector<OnlineCommit> rolled = timeline_.rollbackAfter(now);
        preemptions_ += static_cast<int>(rolled.size());
        for (OnlineCommit &commit : rolled)
            pending_.push_back(reopenCommit(std::move(commit)));
    }

    const MachineModel &machine_;
    const OnlinePolicySpec &policy_;
    const std::vector<RegionArrival> &arrivals_;
    Timeline timeline_;
    std::vector<PendingRegion> pending_;
    size_t next_ = 0;
    int preemptions_ = 0;
    int fallbacks_ = 0;
};

} // namespace

StatusOr<OnlineRunResult>
runOnline(const MachineModel &machine, const OnlinePolicySpec &policy,
          const std::vector<RegionArrival> &arrivals)
{
    OnlineDriver driver(machine, policy, arrivals);
    return driver.run();
}

} // namespace csched
