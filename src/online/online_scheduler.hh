/**
 * @file
 * The online commit loop: virtual time, a pending set, irrevocable
 * commits, and bounded preempt-and-recommit.
 *
 * Execution model.  The machine runs committed regions exclusively
 * and back-to-back: a commit occupies the whole machine for
 * [start, start + makespan) cycles, where the region's internal
 * space-time schedule (planned by the policy's underlying offline
 * algorithm and verified by the checker) plays out at cycle offsets
 * from `start`.  The driver advances virtual time, admits arrivals
 * whose release has passed into the pending set, and asks the policy
 * to pick commits:
 *
 *  - Lazy policies (online-uas/pcc/list/sp) decide one region per
 *    machine-idle point: whenever the machine frees (or the first
 *    region arrives), every arrival released by then competes, the
 *    policy order picks one, and that commit is irrevocable.
 *  - Plan-ahead policies (online-convergent) reorder the *whole*
 *    pending window on every release-time batch and commit it
 *    back-to-back in policy order.  Committed regions that have not
 *    started yet may be preempted: when a new arrival's weight is at
 *    least preemptFactor x the lightest unstarted committed weight,
 *    unstarted commits are rolled back into the pending set and
 *    recommitted together with the newcomers (started regions are
 *    never aborted).  Rollback counts are reported as `preemptions`.
 *
 * Mid-run degradation.  A policy may arm a degradation event
 * (degrade-at=T:degrade-tiles=a+b): at virtual time T the listed
 * tiles die.  The driver then switches its planning machine to the
 * degraded model, rolls every unstarted commit back off the timeline
 * (rollbackAfter(T); started commits are never aborted), and
 * re-plans every rolled or still-pending region on the surviving
 * machine before recommitting -- the online analogue of graceful
 * degradation.  The event fires at the first decision point at or
 * after T (or once the committed tail crosses T), hits the
 * "machine.degrade" fault point, and is pure virtual time, so
 * byte-identity is preserved.
 *
 * Determinism.  Planning happens once per admitted region (offline
 * algorithms are deterministic, so replanning a pinned prefix cannot
 * change it); ordering rules break ties by (release, id).  Given the
 * same stream, machine, and policy the commit sequence is
 * bit-identical -- the property the grid substrate's byte-identity
 * contracts extend to online sweeps.
 *
 * Failure modes.  Planning failures (checker rejections, unknown
 * workloads) surface as the job's Status.  A per-decision budget
 * (policy budget-ms) arms a CancelToken around each planning run;
 * on expiry the decision falls back to the UAS planner and is
 * counted in `fallbackDecisions` -- the job fails only if the
 * fallback fails too.  With a budget armed the commit sequence
 * depends on wall-clock time, so byte-identity holds only for
 * budget-free policies.
 */

#ifndef CSCHED_ONLINE_ONLINE_SCHEDULER_HH
#define CSCHED_ONLINE_ONLINE_SCHEDULER_HH

#include <vector>

#include "machine/machine.hh"
#include "online/arrival.hh"
#include "online/policy.hh"
#include "sched/schedule.hh"
#include "support/status.hh"

namespace csched {

/** One irrevocable region placement on the shared timeline. */
struct OnlineCommit
{
    /** The arrival this commit places. */
    int regionId = 0;
    std::string workload;
    int release = 0;
    int weight = 1;
    int deadline = -1;
    /** First cycle the region occupies the machine. */
    int start = 0;
    /** Cycles occupied: the region's verified schedule makespan. */
    int makespan = 0;
    int instructions = 0;
    int criticalPathLength = 0;
    /** True when the per-decision budget forced the UAS fallback. */
    bool fallback = false;
    /** The region-internal schedule (cycle offsets from `start`). */
    Schedule schedule;

    /** First cycle after the region: start + makespan. */
    int end() const { return start + makespan; }
};

/**
 * The machine's committed timeline: an ordered sequence of exclusive
 * occupations plus the snapshot/rollback support preemption needs.
 * Commits must arrive in nondecreasing start order with
 * start >= freeAt() (the driver enforces back-to-back packing).
 */
class Timeline
{
  public:
    /** First cycle the machine is idle after every commit. */
    int freeAt() const
    {
        return commits_.empty() ? 0 : commits_.back().end();
    }

    /** Append an irrevocable commit; start must be >= freeAt(). */
    void commit(OnlineCommit commit);

    const std::vector<OnlineCommit> &commits() const { return commits_; }

    /** Consume the timeline (driver teardown). */
    std::vector<OnlineCommit> takeCommits() { return std::move(commits_); }

    /**
     * Preemption: pop every commit that has not started by @p time
     * (start > time), newest first, and return them oldest-first so
     * the caller can recommit.  Started commits are untouchable.
     */
    std::vector<OnlineCommit> rollbackAfter(int time);

  private:
    std::vector<OnlineCommit> commits_;
};

/** The full outcome of one online run. */
struct OnlineRunResult
{
    /** Commits in start order (the timeline's final state). */
    std::vector<OnlineCommit> commits;
    /** Commits rolled back by preempt-and-recommit. */
    int preemptions = 0;
    /** Decisions that fell back to UAS on a budget expiry. */
    int fallbackDecisions = 0;
    /** True when the armed degradation event fired. */
    bool degradeFired = false;
    /** Regions re-planned on the surviving machine at the event. */
    int degradeReplans = 0;
};

/**
 * Run @p policy over @p arrivals (sorted by release, dense ids) on
 * @p machine.  Every region's plan is checker-verified before commit.
 * Errors (invalid streams, planning failures, cancellation) surface
 * as the Status; cancellation honors the grid's per-job CancelToken
 * through the usual pollCancellation checkpoints.
 *
 * When the policy arms a degradation event, @p degraded must be the
 * post-event machine (the same spec with the degrade-tiles also
 * dead; see tryParseMachineSpec's extra_dead_clusters hook) and must
 * outlive the call; InvalidSpec otherwise.
 */
StatusOr<OnlineRunResult>
runOnline(const MachineModel &machine, const OnlinePolicySpec &policy,
          const std::vector<RegionArrival> &arrivals,
          const MachineModel *degraded = nullptr);

} // namespace csched

#endif // CSCHED_ONLINE_ONLINE_SCHEDULER_HH
