/**
 * @file
 * Online sweeps on the offline grid substrate.
 *
 * An online experiment cell is (stream x machine x policy).  Instead
 * of a parallel runner, streams ride the grid's *workload* axis
 * (stream specs are workload-shaped strings, see arrival.hh) and
 * policies ride its *algorithm* axis (policy specs parse through
 * parseAlgorithmSpec) -- so runOnlineGrid is runGrid with the axes
 * filled in, and every grid contract carries over unchanged: journal
 * + resume, --isolate worker containment (specs cross the worker
 * pipe in text form), fault injection, retries/deadlines, and
 * byte-identical csched-grid-report-v2 output at any --jobs value.
 *
 * The split of responsibilities: grid_runner routes any job whose
 * workload is a stream (or whose algorithm is an online policy) to
 * runOnlineJobAttempt below, which parses both sides, generates the
 * arrivals, runs the commit loop, and scores the timeline into the
 * JobResult's online fields.  A stream workload with an offline
 * algorithm (or vice versa) is an InvalidSpec job outcome, not a
 * grid error.
 */

#ifndef CSCHED_ONLINE_ONLINE_GRID_HH
#define CSCHED_ONLINE_ONLINE_GRID_HH

#include <string>
#include <vector>

#include "runner/grid_runner.hh"

namespace csched {

/** True when @p spec is an online cell (stream and/or policy side). */
bool isOnlineJobSpec(const JobSpec &spec);

/**
 * One attempt of one online job: parse stream + policy, generate the
 * arrivals, run the commit loop, verify every region plan, score the
 * timeline.  Measurement fields of @p out are written only on the
 * success path (mirrors the offline runJobAttempt contract; called
 * from inside its try block so StatusError unwinds identically).
 */
Status runOnlineJobAttempt(const JobSpec &spec, JobResult &out);

/**
 * Declarative description of an online sweep; the string axes are
 * stream specs and online policy specs.  Execution knobs mirror
 * GridSpec (same defaults, same journal/isolate semantics).
 */
struct OnlineGridSpec
{
    std::vector<std::string> streams;
    std::vector<std::string> machines;
    std::vector<std::string> policies;
    int jobs = 1;
    int deadlineMs = 0;
    int retries = 0;
    const FaultPlan *faults = nullptr;
    std::string journalPath;
    bool resume = false;
    bool isolate = false;
    int memLimitMb = 0;
};

/**
 * Translate @p spec into the equivalent GridSpec (speedup off --
 * the one-cluster normalisation is an offline concept).  InvalidSpec
 * with a diagnosis on a malformed stream or policy.
 */
StatusOr<GridSpec> makeOnlineGrid(const OnlineGridSpec &spec);

/**
 * Run the sweep: makeOnlineGrid + runGrid.  Fatal on an invalid
 * spec (validate via makeOnlineGrid first when input is untrusted).
 */
GridReport runOnlineGrid(const OnlineGridSpec &spec);

} // namespace csched

#endif // CSCHED_ONLINE_ONLINE_GRID_HH
