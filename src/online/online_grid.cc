#include "online/online_grid.hh"

#include <chrono>

#include "eval/online_metrics.hh"
#include "machine/machine_spec.hh"
#include "online/online_scheduler.hh"
#include "support/logging.hh"

namespace csched {

bool
isOnlineJobSpec(const JobSpec &spec)
{
    return isStreamWorkload(spec.workload) ||
           isOnlinePolicyName(spec.algorithm.name);
}

Status
runOnlineJobAttempt(const JobSpec &spec, JobResult &out)
{
    // Both sides must be online: a stream needs a policy that commits
    // over time, and a policy needs arrivals to react to.
    if (!isStreamWorkload(spec.workload))
        return Status::invalidSpec(
            "online policy '" + spec.algorithm.text() +
            "' requires a stream workload (stream:...), got '" +
            spec.workload + "'");
    if (!isOnlinePolicyName(spec.algorithm.name))
        return Status::invalidSpec(
            "stream workload '" + spec.workload +
            "' requires an online policy (" +
            "online-convergent|online-sp|online-list|online-uas|"
            "online-pcc), got '" + spec.algorithm.text() + "'");

    std::string error;
    const auto machine = parseMachineSpec(spec.machine, &error);
    if (machine == nullptr)
        return Status::invalidSpec(error);

    const auto stream = parseStreamSpec(spec.workload, &error);
    if (!stream.has_value())
        return Status::invalidSpec(error);

    const auto policy = parseOnlinePolicy(spec.algorithm.text(), &error);
    if (!policy.has_value())
        return Status::invalidSpec(error);

    auto arrivals = generateArrivals(*stream);
    if (!arrivals.ok())
        return arrivals.status();

    // An armed degradation event needs the post-event machine: the
    // same spec with the degrade-tiles also dead.  Building it here
    // (from the job's own spec text) keeps the event byte-identical
    // across workers and hosts.
    std::unique_ptr<MachineModel> degraded;
    if (policy->degradeAt >= 0) {
        auto built =
            tryParseMachineSpec(spec.machine, policy->degradeTiles);
        if (!built.ok())
            return built.status().withContext(
                "building the post-degrade machine for '" +
                spec.machine + "'");
        degraded = std::move(*built);
    }

    const auto begin = std::chrono::steady_clock::now();
    auto run = runOnline(*machine, *policy, *arrivals, degraded.get());
    const auto end = std::chrono::steady_clock::now();
    if (!run.ok())
        return run.status();

    const OnlineMetrics metrics = computeOnlineMetrics(run->commits);
    out.algorithmName = policy->name;
    out.instructions = metrics.instructions;
    out.makespan = metrics.makespan;
    out.criticalPathLength = metrics.maxCriticalPathLength;
    out.assignment.clear();
    out.assignment.reserve(run->commits.size());
    for (const OnlineCommit &commit : run->commits)
        out.assignment.push_back(commit.regionId);
    out.regions = metrics.regions;
    out.weightedCompletion = metrics.weightedCompletion;
    out.maxFlowTime = metrics.maxFlowTime;
    out.meanFlowTime = metrics.meanFlowTime;
    out.deadlineMisses = metrics.deadlineMisses;
    out.preemptions = run->preemptions;
    out.fallbackDecisions = run->fallbackDecisions;
    out.seconds =
        std::chrono::duration<double>(end - begin).count();
    return Status();
}

StatusOr<GridSpec>
makeOnlineGrid(const OnlineGridSpec &spec)
{
    GridSpec grid;
    std::string error;
    for (const std::string &stream : spec.streams) {
        if (!parseStreamSpec(stream, &error))
            return Status::invalidSpec(error);
        grid.workloads.push_back(stream);
    }
    for (const std::string &machine : spec.machines) {
        if (parseMachineSpec(machine, &error) == nullptr)
            return Status::invalidSpec(error);
        grid.machines.push_back(machine);
    }
    for (const std::string &policy : spec.policies) {
        if (!parseOnlinePolicy(policy, &error))
            return Status::invalidSpec(error);
        const auto parsed = parseAlgorithmSpec(policy, &error);
        if (!parsed.has_value())
            return Status::invalidSpec(error);
        grid.algorithms.push_back(*parsed);
    }
    if (grid.workloads.empty() || grid.machines.empty() ||
        grid.algorithms.empty())
        return Status::invalidSpec(
            "empty online grid: need at least one stream, machine, "
            "and policy");
    grid.jobs = spec.jobs;
    grid.computeSpeedup = false;
    grid.deadlineMs = spec.deadlineMs;
    grid.retries = spec.retries;
    grid.faults = spec.faults;
    grid.journalPath = spec.journalPath;
    grid.resume = spec.resume;
    grid.isolate = spec.isolate;
    grid.memLimitMb = spec.memLimitMb;
    return grid;
}

GridReport
runOnlineGrid(const OnlineGridSpec &spec)
{
    auto grid = makeOnlineGrid(spec);
    if (!grid.ok())
        CSCHED_FATAL("invalid online grid: ", grid.status().message());
    return runGrid(*grid);
}

} // namespace csched
