#include "online/arrival.hh"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "support/json.hh"
#include "support/rng.hh"
#include "support/str.hh"
#include "workloads/workloads.hh"

namespace csched {

namespace {

constexpr const char *kStreamPrefix = "stream:";

bool
parseNonNegativeInt(const std::string &text, int *out)
{
    if (text.empty())
        return false;
    long value = 0;
    for (char c : text) {
        if (c < '0' || c > '9')
            return false;
        value = value * 10 + (c - '0');
        if (value > 1000000000L)
            return false;
    }
    *out = static_cast<int>(value);
    return true;
}

bool
parseSeed(const std::string &text, uint64_t *out)
{
    if (text.empty())
        return false;
    uint64_t value = 0;
    for (char c : text) {
        if (c < '0' || c > '9')
            return false;
        value = value * 10 + static_cast<uint64_t>(c - '0');
    }
    *out = value;
    return true;
}

bool
fail(std::string *error, const std::string &message)
{
    if (error != nullptr)
        *error = message;
    return false;
}

/** Parse the `k=v` fields shared by the generator kinds. */
bool
parseStreamFields(const std::vector<std::string> &fields, StreamSpec &spec,
                  std::string *error)
{
    for (size_t i = 2; i < fields.size(); ++i) {
        const std::string &field = fields[i];
        const size_t eq = field.find('=');
        if (eq == std::string::npos || eq == 0)
            return fail(error, "stream option must be key=value, got '" +
                                   field + "'");
        const std::string key = field.substr(0, eq);
        const std::string value = field.substr(eq + 1);
        if (key == "seed") {
            if (!parseSeed(value, &spec.seed))
                return fail(error, "bad stream seed '" + value + "'");
        } else if (key == "n") {
            if (!parseNonNegativeInt(value, &spec.count) ||
                spec.count < 1 || spec.count > 100000)
                return fail(error, "stream n must be in [1, 100000], got '" +
                                       value + "'");
        } else if (key == "mean-gap") {
            if (!parseNonNegativeInt(value, &spec.meanGap) ||
                spec.meanGap < 1)
                return fail(error, "stream mean-gap must be >= 1, got '" +
                                       value + "'");
        } else if (key == "gap") {
            if (!parseNonNegativeInt(value, &spec.gap) || spec.gap < 1)
                return fail(error,
                            "stream gap must be >= 1, got '" + value + "'");
        } else if (key == "burst") {
            if (!parseNonNegativeInt(value, &spec.burst) || spec.burst < 1)
                return fail(error,
                            "stream burst must be >= 1, got '" + value + "'");
        } else if (key == "max-weight") {
            if (!parseNonNegativeInt(value, &spec.maxWeight) ||
                spec.maxWeight < 1)
                return fail(error, "stream max-weight must be >= 1, got '" +
                                       value + "'");
        } else if (key == "deadline-gap") {
            if (!parseNonNegativeInt(value, &spec.deadlineGap))
                return fail(error, "stream deadline-gap must be >= 0, got '" +
                                       value + "'");
        } else if (key == "workloads") {
            spec.workloads.clear();
            for (const std::string &name : split(value, '+')) {
                if (name.empty())
                    return fail(error, "empty workload in stream list '" +
                                           value + "'");
                spec.workloads.push_back(name);
            }
        } else if (key == "file") {
            spec.file = value;
        } else {
            return fail(error, "unknown stream option '" + key + "'");
        }
    }
    return true;
}

int
intField(const JsonValue &record, const char *name, int fallback)
{
    const JsonValue *value = record.find(name);
    return value != nullptr ? value->asInt() : fallback;
}

} // namespace

bool
isStreamWorkload(const std::string &name)
{
    return name.rfind(kStreamPrefix, 0) == 0;
}

std::optional<StreamSpec>
parseStreamSpec(const std::string &text, std::string *error)
{
    if (!isStreamWorkload(text)) {
        fail(error, "not a stream spec (want 'stream:...'): '" + text + "'");
        return std::nullopt;
    }
    StreamSpec spec;
    spec.text = text;
    spec.workloads = {"fir", "vvmul", "jacobi"};
    const std::vector<std::string> fields = split(text, ':');
    if (fields.size() < 2 || fields[1].empty()) {
        fail(error, "stream spec missing a kind: '" + text + "'");
        return std::nullopt;
    }
    spec.kind = fields[1];
    if (spec.kind != "poisson" && spec.kind != "bursty" &&
        spec.kind != "trace") {
        fail(error, "unknown stream kind '" + spec.kind +
                        "' (want poisson|bursty|trace)");
        return std::nullopt;
    }
    if (!parseStreamFields(fields, spec, error))
        return std::nullopt;
    if (spec.kind == "trace") {
        if (spec.file.empty()) {
            fail(error, "stream:trace requires file=PATH");
            return std::nullopt;
        }
        return spec;
    }
    if (!spec.file.empty()) {
        fail(error, "file= is only valid for stream:trace");
        return std::nullopt;
    }
    for (const std::string &name : spec.workloads) {
        if (tryFindWorkload(name) == nullptr) {
            fail(error, "unknown workload '" + name + "' in stream spec");
            return std::nullopt;
        }
    }
    return spec;
}

StatusOr<std::vector<RegionArrival>>
generateArrivals(const StreamSpec &spec)
{
    if (spec.kind == "trace") {
        std::ifstream in(spec.file, std::ios::binary);
        if (!in)
            return Status::invalidSpec("cannot open stream trace '" +
                                       spec.file + "'");
        std::ostringstream text;
        text << in.rdbuf();
        return parseStreamTrace(text.str());
    }

    std::vector<RegionArrival> arrivals;
    arrivals.reserve(static_cast<size_t>(spec.count));
    Rng rng(spec.seed);
    int release = 0;
    for (int i = 0; i < spec.count; ++i) {
        if (spec.kind == "poisson") {
            // Exponential inter-arrival gaps; uniform() < 1 keeps the
            // log argument strictly positive.
            const double u = rng.uniform();
            release += static_cast<int>(
                std::floor(-std::log(1.0 - u) *
                           static_cast<double>(spec.meanGap)));
        } else if (i > 0 && i % spec.burst == 0) {
            // bursty: `burst` simultaneous releases, then a quiet gap.
            release += spec.gap;
        }
        RegionArrival arrival;
        arrival.id = i;
        arrival.workload =
            spec.workloads[static_cast<size_t>(rng.range(
                static_cast<int>(spec.workloads.size())))];
        arrival.release = release;
        arrival.weight = rng.between(1, spec.maxWeight);
        arrival.deadline =
            spec.deadlineGap > 0 ? release + spec.deadlineGap : -1;
        arrivals.push_back(std::move(arrival));
    }
    return arrivals;
}

std::string
streamTraceText(const StreamSpec &spec,
                const std::vector<RegionArrival> &arrivals)
{
    std::ostringstream out;
    {
        std::ostringstream header;
        JsonWriter w(header);
        w.beginObject();
        w.key("schema").value(kStreamTraceSchema);
        w.key("spec").value(spec.text);
        w.key("count").value(static_cast<int>(arrivals.size()));
        w.endObject();
        out << compactJson(header.str()) << '\n';
    }
    for (const RegionArrival &arrival : arrivals) {
        std::ostringstream line;
        JsonWriter w(line);
        w.beginObject();
        w.key("id").value(arrival.id);
        w.key("workload").value(arrival.workload);
        w.key("release").value(arrival.release);
        w.key("weight").value(arrival.weight);
        w.key("deadline").value(arrival.deadline);
        w.endObject();
        out << compactJson(line.str()) << '\n';
    }
    return out.str();
}

StatusOr<std::vector<RegionArrival>>
parseStreamTrace(const std::string &text)
{
    std::istringstream in(text);
    std::string line;
    bool sawHeader = false;
    std::vector<RegionArrival> arrivals;
    int lineNo = 0;
    while (std::getline(in, line)) {
        ++lineNo;
        if (trim(line).empty())
            continue;
        std::string parseError;
        std::optional<JsonValue> record = parseJson(line, &parseError);
        if (!record || record->kind != JsonValue::Kind::Object)
            return Status::invalidSpec(
                "stream trace line " + std::to_string(lineNo) +
                " is not a JSON object: " + parseError);
        if (!sawHeader) {
            const JsonValue *schema = record->find("schema");
            if (schema == nullptr ||
                schema->kind != JsonValue::Kind::String ||
                schema->string != kStreamTraceSchema)
                return Status::invalidSpec(
                    "stream trace header is not " +
                    std::string(kStreamTraceSchema));
            sawHeader = true;
            continue;
        }
        const JsonValue *workload = record->find("workload");
        if (workload == nullptr ||
            workload->kind != JsonValue::Kind::String)
            return Status::invalidSpec(
                "stream trace line " + std::to_string(lineNo) +
                " has no workload");
        RegionArrival arrival;
        arrival.id = intField(*record, "id",
                              static_cast<int>(arrivals.size()));
        arrival.workload = workload->string;
        arrival.release = intField(*record, "release", 0);
        arrival.weight = intField(*record, "weight", 1);
        arrival.deadline = intField(*record, "deadline", -1);
        if (tryFindWorkload(arrival.workload) == nullptr)
            return Status::invalidSpec("stream trace names unknown workload '" +
                                       arrival.workload + "'");
        if (arrival.release < 0 || arrival.weight < 1)
            return Status::invalidSpec(
                "stream trace line " + std::to_string(lineNo) +
                " has a negative release or non-positive weight");
        arrivals.push_back(std::move(arrival));
    }
    if (!sawHeader)
        return Status::invalidSpec("stream trace has no header line");
    for (size_t i = 0; i < arrivals.size(); ++i) {
        if (arrivals[i].id != static_cast<int>(i))
            return Status::invalidSpec(
                "stream trace ids must be dense and ordered (0..n-1)");
        if (i > 0 && arrivals[i].release < arrivals[i - 1].release)
            return Status::invalidSpec(
                "stream trace releases must be nondecreasing");
    }
    return arrivals;
}

} // namespace csched
