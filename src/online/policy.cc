#include "online/policy.hh"

#include <algorithm>
#include <cstdlib>

#include "support/str.hh"

namespace csched {

namespace {

bool
fail(std::string *error, const std::string &message)
{
    if (error != nullptr)
        *error = message;
    return false;
}

bool
parsePolicyOptions(const std::vector<std::string> &fields,
                   OnlinePolicySpec &spec, std::string *error)
{
    for (size_t i = 1; i < fields.size(); ++i) {
        const std::string &field = fields[i];
        const size_t eq = field.find('=');
        if (eq == std::string::npos || eq == 0)
            return fail(error, "online policy option must be key=value, "
                               "got '" + field + "'");
        const std::string key = field.substr(0, eq);
        const std::string value = field.substr(eq + 1);
        if (key == "budget-ms") {
            char *end = nullptr;
            const long ms = std::strtol(value.c_str(), &end, 10);
            if (end == nullptr || *end != '\0' || ms < 0 || ms > 3600000)
                return fail(error, "bad budget-ms '" + value + "'");
            spec.decisionBudgetMs = static_cast<int>(ms);
        } else if (key == "preempt-factor") {
            char *end = nullptr;
            const double factor = std::strtod(value.c_str(), &end);
            if (end == nullptr || *end != '\0' || !(factor >= 1.0))
                return fail(error,
                            "preempt-factor must be >= 1, got '" + value +
                                "'");
            spec.preemptFactor = factor;
        } else if (key == "degrade-at") {
            char *end = nullptr;
            const long at = std::strtol(value.c_str(), &end, 10);
            if (value.empty() || end == nullptr || *end != '\0' ||
                at < 0 || at > 1000000000)
                return fail(error, "bad degrade-at '" + value + "'");
            spec.degradeAt = static_cast<int>(at);
        } else if (key == "degrade-tiles") {
            spec.degradeTiles.clear();
            for (const std::string &part : split(value, '+')) {
                const std::string tile = trim(part);
                char *end = nullptr;
                const long id = std::strtol(tile.c_str(), &end, 10);
                if (tile.empty() || end == nullptr || *end != '\0' ||
                    id < 0 || id > 100000)
                    return fail(error, "bad degrade-tiles entry '" +
                                           part + "'");
                spec.degradeTiles.push_back(static_cast<int>(id));
            }
            if (spec.degradeTiles.empty())
                return fail(error,
                            "degrade-tiles needs at least one tile");
        } else {
            return fail(error, "unknown online policy option '" + key + "'");
        }
    }
    return true;
}

} // namespace

const std::vector<std::string> &
knownOnlinePolicyNames()
{
    static const std::vector<std::string> names{
        "online-convergent", "online-sp", "online-list", "online-uas",
        "online-pcc"};
    return names;
}

bool
isOnlinePolicyName(const std::string &name)
{
    const std::string head = trim(name.substr(0, name.find(':')));
    const auto &names = knownOnlinePolicyNames();
    return std::find(names.begin(), names.end(), head) != names.end();
}

std::optional<OnlinePolicySpec>
parseOnlinePolicy(const std::string &text, std::string *error)
{
    const std::vector<std::string> fields = split(text, ':');
    OnlinePolicySpec spec;
    spec.name = trim(fields[0]);
    spec.text = text;
    if (spec.name == "online-convergent") {
        spec.order = OnlineOrder::Wspt;
        spec.underlying = "convergent";
        spec.planAhead = true;
    } else if (spec.name == "online-sp") {
        spec.order = OnlineOrder::Wspt;
        spec.underlying = "convergent";
    } else if (spec.name == "online-list") {
        spec.order = OnlineOrder::LongestCpl;
        spec.underlying = "convergent";
    } else if (spec.name == "online-uas") {
        spec.order = OnlineOrder::Fifo;
        spec.underlying = "uas";
    } else if (spec.name == "online-pcc") {
        spec.order = OnlineOrder::Fifo;
        spec.underlying = "pcc";
    } else {
        fail(error, "unknown online policy '" + spec.name + "' (expected " +
                        join(knownOnlinePolicyNames(), "|") + ")");
        return std::nullopt;
    }
    if (!parsePolicyOptions(fields, spec, error))
        return std::nullopt;
    if ((spec.degradeAt >= 0) != !spec.degradeTiles.empty()) {
        fail(error, "degrade-at and degrade-tiles must be given "
                    "together");
        return std::nullopt;
    }
    return spec;
}

} // namespace csched
