/**
 * @file
 * Online scheduling policies: how the commit loop orders its pending
 * window and which offline algorithm plans each region.
 *
 * A policy is a declarative spec, spelled like an algorithm so it
 * rides the grid's algorithm axis (see online_grid.hh):
 *
 *   online-convergent[:budget-ms=N][:preempt-factor=F]
 *   online-uas | online-pcc | online-list | online-sp
 *
 *  - online-convergent: plan-ahead.  On every release-time batch the
 *    whole pending window is reordered by WSPT (weighted shortest
 *    processing time, the Select-and-Permute ordering) and committed;
 *    already-committed-but-unstarted regions are preempted and
 *    recommitted when a sufficiently heavy region arrives (see
 *    online_scheduler.hh for the contract).  Regions are planned by
 *    the offline convergent scheduler.
 *  - online-sp: Select-and-Permute ordering (WSPT) but lazy -- one
 *    irrevocable commit per machine-idle decision point, never
 *    preempts.  Convergent-planned.
 *  - online-list: lazy, longest-critical-path-first (classic list
 *    scheduling priority applied across regions).  Convergent-planned.
 *  - online-uas / online-pcc: lazy FIFO, greedy per-region planning by
 *    the UAS / PCC baselines.
 *
 * Options: `budget-ms=N` arms a per-decision CancelToken deadline
 * around each region's planning run; on expiry the decision falls
 * back to the cheap UAS planner instead of failing the job
 * (fallbacks are counted in the result).  `preempt-factor=F` tunes
 * the preemption threshold of plan-ahead policies (default 2).
 *
 * `degrade-at=T:degrade-tiles=a+b` arms a mid-run degradation event:
 * at virtual time T the listed tiles/clusters die (on top of any
 * faults= map in the machine spec).  Unstarted commits are rolled
 * back and re-planned on the surviving machine; started commits are
 * never aborted.  Both options must be given together.  The event is
 * pure virtual time, so byte-identity is preserved.
 */

#ifndef CSCHED_ONLINE_POLICY_HH
#define CSCHED_ONLINE_POLICY_HH

#include <optional>
#include <string>
#include <vector>

namespace csched {

/** Pending-window ordering rule. */
enum class OnlineOrder {
    Fifo,        ///< (release, id): arrival order
    Wspt,        ///< weight/makespan descending (Select-and-Permute)
    LongestCpl,  ///< critical-path length descending (list scheduling)
};

/** Parsed description of one online policy. */
struct OnlinePolicySpec
{
    /** Canonical policy name, e.g. "online-convergent". */
    std::string name;
    /** The spec in its parseable text form (the identity in reports). */
    std::string text;
    OnlineOrder order = OnlineOrder::Fifo;
    /** Offline algorithm that plans each region's placement. */
    std::string underlying = "convergent";
    /** Plan-ahead: reorder + recommit the whole window per batch. */
    bool planAhead = false;
    /** Per-decision planning deadline in ms; 0 = unbounded. */
    int decisionBudgetMs = 0;
    /** Preempt unstarted commits when a new region's weight is >=
     *  preemptFactor x the lightest unstarted committed weight. */
    double preemptFactor = 2.0;
    /** Virtual time of the mid-run degradation event; -1 = none. */
    int degradeAt = -1;
    /** Tiles/clusters that die at degradeAt, on top of any faults=
     *  map in the machine spec. */
    std::vector<int> degradeTiles;
};

/** Policy names accepted by parseOnlinePolicy, in display order. */
const std::vector<std::string> &knownOnlinePolicyNames();

/** True when @p name (the part before any ':') is an online policy. */
bool isOnlinePolicyName(const std::string &name);

/**
 * Parse "name[:key=value:...]" into a policy spec.  The only place
 * online-policy spellings are interpreted.  Returns std::nullopt on
 * malformed input and, when @p error is non-null, stores a reason.
 */
std::optional<OnlinePolicySpec>
parseOnlinePolicy(const std::string &text, std::string *error = nullptr);

} // namespace csched

#endif // CSCHED_ONLINE_POLICY_HH
