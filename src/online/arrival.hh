/**
 * @file
 * Arrival streams: regions that arrive over time.
 *
 * The paper's convergent scheduling is purely offline -- every region
 * is known before the first pass runs.  This module models the online
 * scenario: a stream of RegionArrival events, each naming a region
 * (by workload-registry name), a release cycle, a weight, and an
 * optional completion deadline.  Streams are *deterministic*: a
 * generator spec plus a seed reproduces the identical arrival
 * sequence bit-for-bit, and every stream serializes to a JSONL trace
 * (csched-stream-v1) so runs are replayable and diffable.
 *
 * A stream spec is a workload-shaped string (it rides the grid
 * runner's workload axis, see online_grid.hh):
 *
 *   stream:poisson:n=16:seed=1:mean-gap=500:workloads=fir+vvmul
 *   stream:bursty:n=16:seed=1:gap=2000:burst=4:workloads=fir+vvmul
 *   stream:trace:file=PATH
 *
 * Common options (poisson/bursty): `max-weight=W` draws integer
 * weights uniformly from [1, W] (default 8); `deadline-gap=G` attaches
 * a deadline of release + G cycles to every region (default 0 = no
 * deadlines).  Workload lists use `+` as the separator so stream
 * specs stay comma-free and survive the drivers' CSV flags.
 *
 * Trace format (one JSON document per line):
 *
 *   {"schema": "csched-stream-v1", "spec": "<spec text>", "count": N}
 *   {"id": 0, "workload": "fir", "release": 0, "weight": 3,
 *    "deadline": -1}
 *   ...
 *
 * Arrivals are sorted by (release, id) with dense unique ids; loaders
 * reject traces that violate either invariant.
 */

#ifndef CSCHED_ONLINE_ARRIVAL_HH
#define CSCHED_ONLINE_ARRIVAL_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "support/status.hh"

namespace csched {

/** Stream trace schema identifier (JSONL header line). */
inline const char *kStreamTraceSchema = "csched-stream-v1";

/** One region arriving at a point in virtual time. */
struct RegionArrival
{
    /** Dense id, unique within the stream (the commit identity). */
    int id = 0;
    /** Workload-registry name of the region's dependence graph. */
    std::string workload;
    /** Cycle the region becomes known to the scheduler. */
    int release = 0;
    /** Completion-time weight (>= 1); heavier finishes earlier. */
    int weight = 1;
    /** Completion deadline in cycles; -1 = none. */
    int deadline = -1;
};

/** Parsed description of a deterministic arrival stream. */
struct StreamSpec
{
    /** The spec in its canonical text form (the stream's identity). */
    std::string text;
    /** Generator kind: "poisson", "bursty", or "trace". */
    std::string kind;
    uint64_t seed = 1;
    /** Number of arrivals (poisson/bursty). */
    int count = 16;
    /** Mean exponential inter-arrival gap in cycles (poisson). */
    int meanGap = 500;
    /** Gap between bursts in cycles (bursty). */
    int gap = 2000;
    /** Arrivals per burst, all sharing one release (bursty). */
    int burst = 4;
    /** Weights are drawn uniformly from [1, maxWeight]. */
    int maxWeight = 8;
    /** Deadline = release + deadlineGap cycles; 0 = no deadlines. */
    int deadlineGap = 0;
    /** Workload mix the generator draws from. */
    std::vector<std::string> workloads;
    /** Trace file path (trace kind only). */
    std::string file;
};

/** True when @p name is a stream spec ("stream:..."), not a workload. */
bool isStreamWorkload(const std::string &name);

/**
 * Parse a stream spec.  The only place stream spellings are
 * interpreted.  Returns std::nullopt on malformed input and, when
 * @p error is non-null, stores a human-readable reason.  Generator
 * workload names are validated against the workload registry.
 */
std::optional<StreamSpec> parseStreamSpec(const std::string &text,
                                          std::string *error = nullptr);

/**
 * Produce the stream's arrival sequence: a pure function of the spec
 * (generators draw from a seeded Rng; the trace kind loads its file).
 * InvalidSpec when a trace file is missing/malformed or names an
 * unknown workload.
 */
StatusOr<std::vector<RegionArrival>>
generateArrivals(const StreamSpec &spec);

/** Serialize a stream as a csched-stream-v1 JSONL trace. */
std::string streamTraceText(const StreamSpec &spec,
                            const std::vector<RegionArrival> &arrivals);

/**
 * Parse a csched-stream-v1 JSONL trace back into arrivals.
 * InvalidSpec on a bad header, malformed record, unsorted releases,
 * or non-dense ids.
 */
StatusOr<std::vector<RegionArrival>>
parseStreamTrace(const std::string &text);

} // namespace csched

#endif // CSCHED_ONLINE_ARRIVAL_HH
