#include "ir/graph_algorithms.hh"

#include <deque>

#include "support/logging.hh"

namespace csched {

void
preplaceMemoryByBank(DependenceGraph &graph, int num_clusters)
{
    CSCHED_ASSERT(num_clusters > 0, "need at least one cluster");
    CSCHED_ASSERT(!graph.finalized(),
                  "preplacement must be applied before finalize()");
    for (int id = 0; id < graph.numInstructions(); ++id) {
        auto &instr = graph.instr(id);
        if (isMemory(instr.op) && instr.memBank != kNoCluster)
            instr.homeCluster = instr.memBank % num_clusters;
    }
}

int
totalWork(const DependenceGraph &graph)
{
    int total = 0;
    for (int id = 0; id < graph.numInstructions(); ++id)
        total += graph.latency(id);
    return total;
}

int
undirectedDistance(const DependenceGraph &graph, InstrId from, InstrId to,
                   int cap)
{
    std::vector<bool> targets(graph.numInstructions(), false);
    targets[to] = true;
    return distanceToSet(graph, from, targets, cap);
}

int
distanceToSet(const DependenceGraph &graph, InstrId from,
              const std::vector<bool> &targets, int cap)
{
    CSCHED_ASSERT(static_cast<int>(targets.size()) ==
                      graph.numInstructions(),
                  "target bitmap size mismatch");
    if (targets[from])
        return 0;
    std::vector<int> dist(graph.numInstructions(), -1);
    dist[from] = 0;
    std::deque<InstrId> frontier{from};
    while (!frontier.empty()) {
        const InstrId id = frontier.front();
        frontier.pop_front();
        if (dist[id] >= cap)
            continue;
        auto visit = [&](InstrId other) -> bool {
            if (dist[other] != -1)
                return false;
            dist[other] = dist[id] + 1;
            if (targets[other])
                return true;
            frontier.push_back(other);
            return false;
        };
        for (InstrId pred : graph.preds(id))
            if (visit(pred))
                return dist[pred];
        for (InstrId succ : graph.succs(id))
            if (visit(succ))
                return dist[succ];
    }
    return -1;
}

GraphShape
analyzeShape(const DependenceGraph &graph)
{
    GraphShape shape;
    shape.instructions = graph.numInstructions();
    shape.edges = static_cast<int>(graph.edges().size());
    shape.criticalPathLength = graph.criticalPathLength();
    shape.maxLevel = graph.maxLevel();
    shape.avgWidth = static_cast<double>(shape.instructions) /
                     static_cast<double>(shape.maxLevel + 1);
    shape.parallelism = static_cast<double>(totalWork(graph)) /
                        static_cast<double>(shape.criticalPathLength);
    shape.preplaced = graph.numPreplaced();
    return shape;
}

} // namespace csched
