/**
 * @file
 * Debug-printing helper for instructions.
 */

#ifndef CSCHED_IR_DESCRIBE_HH
#define CSCHED_IR_DESCRIBE_HH

#include <string>

#include "ir/instruction.hh"

namespace csched {

/** One-line human-readable description, e.g. "i7:load(b[i]) bank=2". */
std::string describe(const Instruction &instr);

} // namespace csched

#endif // CSCHED_IR_DESCRIBE_HH
