/**
 * @file
 * Instruction opcodes and functional-unit kinds.
 *
 * The opcode set is a scheduling-level abstraction of the MIPS R4000
 * integer/float ISA that both evaluation machines in the paper (the Raw
 * tile processor and the Chorus clustered VLIW) are based on.  The
 * scheduler only needs the opcode's resource class and latency, so
 * addressing modes and immediates are not modelled.
 */

#ifndef CSCHED_IR_OPCODE_HH
#define CSCHED_IR_OPCODE_HH

#include <string>

namespace csched {

/** Scheduling-level opcodes. */
enum class Opcode {
    Nop,
    // Integer ALU.
    IAdd,
    ISub,
    IMul,
    IDiv,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Rot,
    Cmp,
    Select,
    Const,  ///< materialise a constant / address
    Move,   ///< register copy inside one cluster
    // Floating point.
    FAdd,
    FSub,
    FMul,
    FDiv,
    FSqrt,
    FCmp,
    FMove,
    // Memory.
    Load,
    Store,
    // Control (ends a scheduling unit; modelled but rarely generated).
    Branch,
    Jump,
    // Inter-cluster communication, inserted by the schedulers.
    Copy,   ///< VLIW transfer-unit register copy between clusters
    Send,   ///< Raw static-network inject
    Recv,   ///< Raw static-network receive
};

/** Number of distinct opcodes (for tables indexed by opcode). */
constexpr int kNumOpcodes = static_cast<int>(Opcode::Recv) + 1;

/**
 * Functional-unit classes.
 *
 * The Chorus VLIW cluster of the paper has exactly one FU of each of the
 * first four kinds; a Raw tile has a single Universal unit (its scalar
 * pipeline executes every opcode).
 */
enum class FuKind {
    IntAlu,     ///< integer ALU, no memory access
    IntAluMem,  ///< integer ALU that can also issue loads/stores
    Fpu,        ///< floating-point unit
    Transfer,   ///< inter-cluster register-copy unit
    Universal,  ///< a Raw tile's pipeline: runs everything
};

/** Human-readable mnemonic, e.g. "fmul". */
const char *opcodeName(Opcode op);

/** Parse a mnemonic back to an opcode; fatal on unknown names. */
Opcode opcodeFromName(const std::string &name);

/** True for Load/Store (the opcodes subject to bank preplacement). */
bool isMemory(Opcode op);

/** True for the floating-point opcodes. */
bool isFloat(Opcode op);

/** True for the communication opcodes inserted by schedulers. */
bool isComm(Opcode op);

/** True for control-flow opcodes that terminate a scheduling unit. */
bool isControl(Opcode op);

/** Whether a functional unit of kind @p fu can issue opcode @p op. */
bool fuCanExecute(FuKind fu, Opcode op);

/** Human-readable FU-kind name, e.g. "ialu.mem". */
const char *fuKindName(FuKind fu);

} // namespace csched

#endif // CSCHED_IR_OPCODE_HH
