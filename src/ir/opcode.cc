#include "ir/opcode.hh"

#include "support/logging.hh"

namespace csched {

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::Nop: return "nop";
      case Opcode::IAdd: return "iadd";
      case Opcode::ISub: return "isub";
      case Opcode::IMul: return "imul";
      case Opcode::IDiv: return "idiv";
      case Opcode::And: return "and";
      case Opcode::Or: return "or";
      case Opcode::Xor: return "xor";
      case Opcode::Shl: return "shl";
      case Opcode::Shr: return "shr";
      case Opcode::Rot: return "rot";
      case Opcode::Cmp: return "cmp";
      case Opcode::Select: return "select";
      case Opcode::Const: return "const";
      case Opcode::Move: return "move";
      case Opcode::FAdd: return "fadd";
      case Opcode::FSub: return "fsub";
      case Opcode::FMul: return "fmul";
      case Opcode::FDiv: return "fdiv";
      case Opcode::FSqrt: return "fsqrt";
      case Opcode::FCmp: return "fcmp";
      case Opcode::FMove: return "fmove";
      case Opcode::Load: return "load";
      case Opcode::Store: return "store";
      case Opcode::Branch: return "branch";
      case Opcode::Jump: return "jump";
      case Opcode::Copy: return "copy";
      case Opcode::Send: return "send";
      case Opcode::Recv: return "recv";
    }
    CSCHED_PANIC("unknown opcode ", static_cast<int>(op));
}

Opcode
opcodeFromName(const std::string &name)
{
    for (int i = 0; i < kNumOpcodes; ++i) {
        const auto op = static_cast<Opcode>(i);
        if (name == opcodeName(op))
            return op;
    }
    CSCHED_FATAL("unknown opcode mnemonic '", name, "'");
}

bool
isMemory(Opcode op)
{
    return op == Opcode::Load || op == Opcode::Store;
}

bool
isFloat(Opcode op)
{
    switch (op) {
      case Opcode::FAdd:
      case Opcode::FSub:
      case Opcode::FMul:
      case Opcode::FDiv:
      case Opcode::FSqrt:
      case Opcode::FCmp:
      case Opcode::FMove:
        return true;
      default:
        return false;
    }
}

bool
isComm(Opcode op)
{
    return op == Opcode::Copy || op == Opcode::Send || op == Opcode::Recv;
}

bool
isControl(Opcode op)
{
    return op == Opcode::Branch || op == Opcode::Jump;
}

bool
fuCanExecute(FuKind fu, Opcode op)
{
    switch (fu) {
      case FuKind::Universal:
        return op != Opcode::Copy;
      case FuKind::IntAlu:
        return !isMemory(op) && !isFloat(op) && !isComm(op);
      case FuKind::IntAluMem:
        return !isFloat(op) && !isComm(op);
      case FuKind::Fpu:
        return isFloat(op);
      case FuKind::Transfer:
        return op == Opcode::Copy;
    }
    CSCHED_PANIC("unknown FU kind ", static_cast<int>(fu));
}

const char *
fuKindName(FuKind fu)
{
    switch (fu) {
      case FuKind::IntAlu: return "ialu";
      case FuKind::IntAluMem: return "ialu.mem";
      case FuKind::Fpu: return "fpu";
      case FuKind::Transfer: return "xfer";
      case FuKind::Universal: return "tile";
    }
    CSCHED_PANIC("unknown FU kind ", static_cast<int>(fu));
}

} // namespace csched
