#include "ir/graph_builder.hh"

#include "support/logging.hh"

namespace csched {

GraphBuilder::GraphBuilder() : GraphBuilder(LatencyModel())
{
}

GraphBuilder::GraphBuilder(LatencyModel latencies)
    : graph_(std::move(latencies))
{
}

InstrId
GraphBuilder::op(Opcode opcode, const std::vector<InstrId> &deps,
                 std::string name)
{
    CSCHED_ASSERT(!built_, "builder reused after build()");
    Instruction instr;
    instr.op = opcode;
    instr.name = std::move(name);
    const InstrId id = graph_.addInstruction(std::move(instr));
    for (InstrId dep : deps)
        graph_.addEdge(dep, id, DepKind::Data);
    return id;
}

InstrId
GraphBuilder::load(int bank, const std::vector<InstrId> &deps,
                   std::string name)
{
    const InstrId id = op(Opcode::Load, deps, std::move(name));
    graph_.instr(id).memBank = bank;
    return id;
}

InstrId
GraphBuilder::store(int bank, InstrId value,
                    const std::vector<InstrId> &deps, std::string name)
{
    std::vector<InstrId> all = deps;
    all.push_back(value);
    const InstrId id = op(Opcode::Store, all, std::move(name));
    graph_.instr(id).memBank = bank;
    return id;
}

void
GraphBuilder::edge(InstrId src, InstrId dst, DepKind kind)
{
    CSCHED_ASSERT(!built_, "builder reused after build()");
    graph_.addEdge(src, dst, kind);
}

void
GraphBuilder::preplace(InstrId id, int cluster)
{
    CSCHED_ASSERT(cluster >= 0, "preplacement cluster must be >= 0");
    graph_.instr(id).homeCluster = cluster;
}

DependenceGraph
GraphBuilder::build()
{
    CSCHED_ASSERT(!built_, "build() called twice");
    built_ = true;
    graph_.finalize();
    return std::move(graph_);
}

} // namespace csched
