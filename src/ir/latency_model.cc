#include "ir/latency_model.hh"

#include "support/logging.hh"

namespace csched {

LatencyModel::LatencyModel()
{
    table_.fill(1);
    auto set = [this](Opcode op, int cycles) {
        table_[static_cast<size_t>(op)] = cycles;
    };
    set(Opcode::IMul, 2);
    set(Opcode::IDiv, 12);
    set(Opcode::FAdd, 4);
    set(Opcode::FSub, 4);
    set(Opcode::FMul, 4);
    set(Opcode::FDiv, 12);
    set(Opcode::FSqrt, 14);
    set(Opcode::FCmp, 2);
    set(Opcode::Load, 2);
    set(Opcode::Store, 1);
}

void
LatencyModel::setLatency(Opcode op, int cycles)
{
    CSCHED_ASSERT(cycles >= 1, "latency must be >= 1, got ", cycles);
    table_[static_cast<size_t>(op)] = cycles;
}

} // namespace csched
