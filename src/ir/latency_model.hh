/**
 * @file
 * Per-opcode latency table.
 *
 * The paper states "instruction latencies are based on the MIPS R4000"
 * for both evaluation machines.  The defaults below are the
 * scheduling-relevant R4000 numbers used by the Rawcc line of work:
 * single-cycle integer ALU, pipelined 2-cycle integer multiply
 * (low-order result forwarding), long unpipelined divides, 4-cycle FP
 * add/multiply, and multi-cycle divide/sqrt.  Loads have a 2-cycle
 * use-delay.  All values are overridable so experiments can model other
 * machines.
 */

#ifndef CSCHED_IR_LATENCY_MODEL_HH
#define CSCHED_IR_LATENCY_MODEL_HH

#include <array>

#include "ir/opcode.hh"

namespace csched {

/** Maps opcodes to result latencies (cycles from issue to first use). */
class LatencyModel
{
  public:
    /** Construct with the R4000-inspired defaults described above. */
    LatencyModel();

    /** Latency in cycles of @p op; always >= 1. */
    int latency(Opcode op) const
    {
        return table_[static_cast<size_t>(op)];
    }

    /** Override the latency of one opcode (must be >= 1). */
    void setLatency(Opcode op, int cycles);

  private:
    std::array<int, kNumOpcodes> table_;
};

} // namespace csched

#endif // CSCHED_IR_LATENCY_MODEL_HH
