/**
 * @file
 * Graphviz (DOT) export of dependence graphs, optionally coloured by
 * a cluster assignment -- handy for inspecting what the scheduler did
 * (the paper's Figure 4 visualises the same information).
 */

#ifndef CSCHED_IR_DOT_EXPORT_HH
#define CSCHED_IR_DOT_EXPORT_HH

#include <ostream>
#include <vector>

#include "ir/graph.hh"

namespace csched {

/**
 * Write @p graph in DOT format.  When @p assignment is non-empty
 * (one cluster per instruction), nodes are coloured by cluster;
 * preplaced instructions render as triangles, as in the paper's
 * figures.
 */
void exportDot(std::ostream &os, const DependenceGraph &graph,
               const std::vector<int> &assignment = {});

} // namespace csched

#endif // CSCHED_IR_DOT_EXPORT_HH
