#include "ir/graph.hh"

#include <algorithm>
#include <deque>

#include "support/logging.hh"

namespace csched {

DependenceGraph::DependenceGraph() : DependenceGraph(LatencyModel())
{
}

DependenceGraph::DependenceGraph(LatencyModel latencies)
    : latencies_(std::move(latencies))
{
}

InstrId
DependenceGraph::addInstruction(Instruction instr)
{
    CSCHED_ASSERT(!finalized_, "cannot add instructions after finalize()");
    const InstrId id = static_cast<InstrId>(instrs_.size());
    instr.id = id;
    instrs_.push_back(std::move(instr));
    preds_.emplace_back();
    succs_.emplace_back();
    return id;
}

void
DependenceGraph::addEdge(InstrId src, InstrId dst, DepKind kind)
{
    CSCHED_ASSERT(!finalized_, "cannot add edges after finalize()");
    checkId(src);
    checkId(dst);
    CSCHED_ASSERT(src != dst, "self edge on instruction ", src);
    // Coalesce duplicates: a Data edge subsumes Anti/Output ordering.
    for (auto &edge : edges_) {
        if (edge.src == src && edge.dst == dst) {
            if (kind == DepKind::Data)
                edge.kind = DepKind::Data;
            return;
        }
    }
    edges_.push_back({src, dst, kind});
    succs_[src].push_back(dst);
    preds_[dst].push_back(src);
}

const Instruction &
DependenceGraph::instr(InstrId id) const
{
    checkId(id);
    return instrs_[id];
}

Instruction &
DependenceGraph::instr(InstrId id)
{
    checkId(id);
    return instrs_[id];
}

const std::vector<InstrId> &
DependenceGraph::preds(InstrId id) const
{
    checkId(id);
    return preds_[id];
}

const std::vector<InstrId> &
DependenceGraph::succs(InstrId id) const
{
    checkId(id);
    return succs_[id];
}

int
DependenceGraph::latency(InstrId id) const
{
    checkId(id);
    return latencies_.latency(instrs_[id].op);
}

void
DependenceGraph::finalize()
{
    CSCHED_ASSERT(!finalized_, "finalize() called twice");
    CSCHED_ASSERT(numInstructions() > 0, "cannot finalize an empty graph");
    computeTopoOrder();
    computeLevels();
    computeCriticalPath();
    computePreplacedDistances();
    finalized_ = true;
}

void
DependenceGraph::remapPreplacedHomes(const std::vector<int> &remap)
{
    CSCHED_ASSERT(finalized_, "remapPreplacedHomes() before finalize()");
    bool changed = false;
    for (auto &instr : instrs_) {
        if (instr.homeCluster == kNoCluster)
            continue;
        CSCHED_ASSERT(instr.homeCluster >= 0 &&
                          instr.homeCluster <
                              static_cast<int>(remap.size()),
                      "home cluster ", instr.homeCluster,
                      " outside the remap table");
        const int target = remap[instr.homeCluster];
        if (target != instr.homeCluster) {
            instr.homeCluster = target;
            changed = true;
        }
    }
    if (changed)
        computePreplacedDistances();
}

void
DependenceGraph::checkId(InstrId id) const
{
    CSCHED_ASSERT(id >= 0 && id < numInstructions(),
                  "instruction id ", id, " out of range [0, ",
                  numInstructions(), ")");
}

void
DependenceGraph::computeTopoOrder()
{
    const int n = numInstructions();
    std::vector<int> in_degree(n, 0);
    for (InstrId id = 0; id < n; ++id)
        in_degree[id] = static_cast<int>(preds_[id].size());

    std::deque<InstrId> worklist;
    for (InstrId id = 0; id < n; ++id)
        if (in_degree[id] == 0)
            worklist.push_back(id);

    topo_.clear();
    topo_.reserve(n);
    while (!worklist.empty()) {
        const InstrId id = worklist.front();
        worklist.pop_front();
        topo_.push_back(id);
        for (InstrId succ : succs_[id])
            if (--in_degree[succ] == 0)
                worklist.push_back(succ);
    }
    CSCHED_ASSERT(static_cast<int>(topo_.size()) == n,
                  "dependence graph has a cycle: only ", topo_.size(),
                  " of ", n, " instructions are orderable");
}

void
DependenceGraph::computeLevels()
{
    const int n = numInstructions();
    earliest_.assign(n, 0);
    slack_.assign(n, 0);
    level_.assign(n, 0);
    maxLevel_ = 0;
    cpl_ = 0;

    for (InstrId id : topo_) {
        int start = 0;
        int lvl = 0;
        for (InstrId pred : preds_[id]) {
            start = std::max(start, earliest_[pred] + latency(pred));
            lvl = std::max(lvl, level_[pred] + 1);
        }
        earliest_[id] = start;
        level_[id] = lvl;
        maxLevel_ = std::max(maxLevel_, lvl);
        cpl_ = std::max(cpl_, start + latency(id));
    }

    for (auto it = topo_.rbegin(); it != topo_.rend(); ++it) {
        const InstrId id = *it;
        int through = 0;
        for (InstrId succ : succs_[id])
            through = std::max(through, slack_[succ]);
        slack_[id] = latency(id) + through;
    }
}

void
DependenceGraph::computeCriticalPath()
{
    // Walk from the root with the longest downstream chain, always
    // following a successor that stays on a longest path.
    const int n = numInstructions();
    onCp_.assign(n, false);
    criticalPath_.clear();

    InstrId current = kNoInstr;
    for (InstrId id = 0; id < n; ++id) {
        if (!preds_[id].empty())
            continue;
        if (current == kNoInstr || slack_[id] > slack_[current])
            current = id;
    }
    CSCHED_ASSERT(current != kNoInstr, "graph has no roots");

    while (current != kNoInstr) {
        criticalPath_.push_back(current);
        onCp_[current] = true;
        InstrId next = kNoInstr;
        for (InstrId succ : succs_[current]) {
            // Stay on a longest path: the successor must account for
            // the remaining slack below this node.
            if (slack_[succ] == slack_[current] - latency(current) &&
                slack_[succ] > 0) {
                if (next == kNoInstr || slack_[succ] > slack_[next])
                    next = succ;
            }
        }
        current = next;
    }
}

void
DependenceGraph::computePreplacedDistances()
{
    maxHomeCluster_ = -1;
    for (const auto &instr : instrs_)
        maxHomeCluster_ = std::max(maxHomeCluster_, instr.homeCluster);
    distToPreplaced_.assign(maxHomeCluster_ + 1, {});

    const int n = numInstructions();
    for (int cluster = 0; cluster <= maxHomeCluster_; ++cluster) {
        auto &dist = distToPreplaced_[cluster];
        dist.assign(n, -1);
        // Multi-source BFS over the undirected dependence graph from
        // every preplaced instruction homed on this cluster.
        std::deque<InstrId> frontier;
        for (const auto &instr : instrs_) {
            if (instr.homeCluster == cluster) {
                dist[instr.id] = 0;
                frontier.push_back(instr.id);
            }
        }
        while (!frontier.empty()) {
            const InstrId id = frontier.front();
            frontier.pop_front();
            auto visit = [&](InstrId other) {
                if (dist[other] == -1) {
                    dist[other] = dist[id] + 1;
                    frontier.push_back(other);
                }
            };
            for (InstrId pred : preds_[id])
                visit(pred);
            for (InstrId succ : succs_[id])
                visit(succ);
        }
    }
}

int
DependenceGraph::earliestStart(InstrId id) const
{
    CSCHED_ASSERT(finalized_, "analysis query before finalize()");
    checkId(id);
    return earliest_[id];
}

int
DependenceGraph::latestFinishSlack(InstrId id) const
{
    CSCHED_ASSERT(finalized_, "analysis query before finalize()");
    checkId(id);
    return slack_[id];
}

int
DependenceGraph::criticalPathLength() const
{
    CSCHED_ASSERT(finalized_, "analysis query before finalize()");
    return cpl_;
}

int
DependenceGraph::level(InstrId id) const
{
    CSCHED_ASSERT(finalized_, "analysis query before finalize()");
    checkId(id);
    return level_[id];
}

int
DependenceGraph::maxLevel() const
{
    CSCHED_ASSERT(finalized_, "analysis query before finalize()");
    return maxLevel_;
}

const std::vector<InstrId> &
DependenceGraph::topoOrder() const
{
    CSCHED_ASSERT(finalized_, "analysis query before finalize()");
    return topo_;
}

const std::vector<InstrId> &
DependenceGraph::criticalPath() const
{
    CSCHED_ASSERT(finalized_, "analysis query before finalize()");
    return criticalPath_;
}

bool
DependenceGraph::onCriticalPath(InstrId id) const
{
    CSCHED_ASSERT(finalized_, "analysis query before finalize()");
    checkId(id);
    return onCp_[id];
}

std::vector<InstrId>
DependenceGraph::roots() const
{
    std::vector<InstrId> out;
    for (InstrId id = 0; id < numInstructions(); ++id)
        if (preds_[id].empty())
            out.push_back(id);
    return out;
}

std::vector<InstrId>
DependenceGraph::leaves() const
{
    std::vector<InstrId> out;
    for (InstrId id = 0; id < numInstructions(); ++id)
        if (succs_[id].empty())
            out.push_back(id);
    return out;
}

int
DependenceGraph::numPreplaced() const
{
    int count = 0;
    for (const auto &instr : instrs_)
        if (instr.preplaced())
            ++count;
    return count;
}

int
DependenceGraph::distanceToPreplaced(InstrId id, int cluster) const
{
    CSCHED_ASSERT(finalized_, "analysis query before finalize()");
    checkId(id);
    if (cluster < 0 || cluster > maxHomeCluster_)
        return -1;
    return distToPreplaced_[cluster][id];
}

} // namespace csched
