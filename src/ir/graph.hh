/**
 * @file
 * Data dependence graph of one scheduling unit.
 *
 * A scheduling unit is the region the convergent scheduler operates on
 * (a basic block, trace, superblock, ... -- Section 3).  Nodes are
 * instructions; edges are dependences.  The graph owns the derived
 * analyses every pass consumes: latency-weighted levels (lp), reverse
 * levels (ls), the critical-path length (CPL), topological order, and a
 * materialised critical path.
 */

#ifndef CSCHED_IR_GRAPH_HH
#define CSCHED_IR_GRAPH_HH

#include <string>
#include <vector>

#include "ir/instruction.hh"
#include "ir/latency_model.hh"

namespace csched {

/** Kind of a dependence edge. */
enum class DepKind {
    Data,    ///< true (flow) dependence: dst consumes src's value
    Anti,    ///< write-after-read ordering (no value transfer)
    Output,  ///< write-after-write ordering (no value transfer)
};

/** One dependence edge. */
struct DepEdge
{
    InstrId src = kNoInstr;
    InstrId dst = kNoInstr;
    DepKind kind = DepKind::Data;
};

/**
 * Immutable-after-finalize dependence graph.
 *
 * Build with addInstruction()/addEdge(), then call finalize() once; the
 * analyses are computed there and the graph rejects further mutation.
 * finalize() validates that the graph is acyclic and the ids are sound.
 */
class DependenceGraph
{
  public:
    /** Create an empty graph using the default R4000 latency model. */
    DependenceGraph();

    /** Create an empty graph with a custom latency model. */
    explicit DependenceGraph(LatencyModel latencies);

    /** Append an instruction; returns its dense id. */
    InstrId addInstruction(Instruction instr);

    /** Add a dependence edge; duplicate edges are coalesced. */
    void addEdge(InstrId src, InstrId dst, DepKind kind = DepKind::Data);

    /** Compute all analyses; must be called exactly once after building. */
    void finalize();

    bool finalized() const { return finalized_; }

    /**
     * Rewrite every preplaced home h to @p remap[h] and recompute the
     * preplacement analyses.  The one permitted post-finalize
     * mutation: it re-homes a graph built for a pristine machine onto
     * the alive clusters of a degraded one (the latency-weighted
     * analyses do not depend on homes, so only the preplacement index
     * is recomputed).
     */
    void remapPreplacedHomes(const std::vector<int> &remap);

    // ---- Structure queries (valid any time) -------------------------

    int numInstructions() const
    {
        return static_cast<int>(instrs_.size());
    }

    const Instruction &instr(InstrId id) const;
    Instruction &instr(InstrId id);

    const std::vector<Instruction> &instructions() const { return instrs_; }

    /** Ids of instructions this one depends on. */
    const std::vector<InstrId> &preds(InstrId id) const;

    /** Ids of instructions depending on this one. */
    const std::vector<InstrId> &succs(InstrId id) const;

    /** All edges, in insertion order. */
    const std::vector<DepEdge> &edges() const { return edges_; }

    const LatencyModel &latencies() const { return latencies_; }

    /** Result latency of instruction @p id. */
    int latency(InstrId id) const;

    // ---- Analyses (valid after finalize()) --------------------------

    /**
     * Latency-weighted longest path from any root to @p id, i.e. the
     * earliest cycle the instruction could issue on an unbounded
     * machine ("lp" in the paper's INITTIME description).
     */
    int earliestStart(InstrId id) const;

    /**
     * Latency-weighted longest path from @p id through any leaf,
     * including the instruction's own latency ("ls"): a lower bound on
     * the cycles remaining once @p id issues.
     */
    int latestFinishSlack(InstrId id) const;

    /**
     * Critical-path length in cycles: the makespan lower bound on an
     * unbounded machine with free communication.
     */
    int criticalPathLength() const;

    /**
     * Depth of @p id counted in nodes from the furthest root
     * (the paper's level(i), used by LEVEL and EMPHCP).
     */
    int level(InstrId id) const;

    /** Largest level in the graph. */
    int maxLevel() const;

    /** A topological order of all instruction ids. */
    const std::vector<InstrId> &topoOrder() const;

    /**
     * Instructions on one latency-weighted critical path, in
     * dependence order (used by the PATH pass).
     */
    const std::vector<InstrId> &criticalPath() const;

    /** True iff @p id lies on the materialised critical path. */
    bool onCriticalPath(InstrId id) const;

    /** Ids of instructions with no predecessors. */
    std::vector<InstrId> roots() const;

    /** Ids of instructions with no successors. */
    std::vector<InstrId> leaves() const;

    /** Number of preplaced instructions. */
    int numPreplaced() const;

    /**
     * Undirected graph distance (in edges) from @p id to the nearest
     * preplaced instruction homed on @p cluster; returns -1 when no
     * such instruction exists.  Used by PLACEPROP.  Computed lazily at
     * finalize() time for all clusters that appear as homes.
     */
    int distanceToPreplaced(InstrId id, int cluster) const;

  private:
    void checkId(InstrId id) const;
    void computeTopoOrder();
    void computeLevels();
    void computeCriticalPath();
    void computePreplacedDistances();

    LatencyModel latencies_;
    std::vector<Instruction> instrs_;
    std::vector<DepEdge> edges_;
    std::vector<std::vector<InstrId>> preds_;
    std::vector<std::vector<InstrId>> succs_;
    bool finalized_ = false;

    std::vector<InstrId> topo_;
    std::vector<int> earliest_;
    std::vector<int> slack_;
    std::vector<int> level_;
    int maxLevel_ = 0;
    int cpl_ = 0;
    std::vector<InstrId> criticalPath_;
    std::vector<bool> onCp_;

    /** distToPreplaced_[cluster][instr]; -1 where unreachable. */
    std::vector<std::vector<int>> distToPreplaced_;
    int maxHomeCluster_ = -1;
};

} // namespace csched

#endif // CSCHED_IR_GRAPH_HH
