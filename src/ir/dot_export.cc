#include "ir/dot_export.hh"

#include <iterator>

#include "support/logging.hh"

namespace csched {

namespace {

/** A small colour wheel; clusters beyond its size wrap around. */
const char *kColors[] = {
    "#a6cee3", "#b2df8a", "#fb9a99", "#fdbf6f", "#cab2d6", "#ffff99",
    "#1f78b4", "#33a02c", "#e31a1c", "#ff7f00", "#6a3d9a", "#b15928",
    "#8dd3c7", "#bebada", "#fccde5", "#d9d9d9",
};

constexpr int kNumColors = static_cast<int>(std::size(kColors));

} // namespace

void
exportDot(std::ostream &os, const DependenceGraph &graph,
          const std::vector<int> &assignment)
{
    const bool colored = !assignment.empty();
    CSCHED_ASSERT(!colored || static_cast<int>(assignment.size()) ==
                                  graph.numInstructions(),
                  "assignment size mismatch");

    os << "digraph schedule {\n"
       << "  rankdir=TB;\n"
       << "  node [style=filled, fontname=\"monospace\"];\n";
    for (InstrId id = 0; id < graph.numInstructions(); ++id) {
        const auto &instr = graph.instr(id);
        os << "  n" << id << " [label=\"" << id << ":"
           << opcodeName(instr.op);
        if (instr.memBank != kNoCluster)
            os << "\\nbank " << instr.memBank;
        os << "\"";
        if (instr.preplaced())
            os << ", shape=triangle";
        if (colored) {
            os << ", fillcolor=\""
               << kColors[assignment[id] % kNumColors] << "\"";
        } else {
            os << ", fillcolor=\"#eeeeee\"";
        }
        os << "];\n";
    }
    for (const auto &edge : graph.edges()) {
        os << "  n" << edge.src << " -> n" << edge.dst;
        if (edge.kind != DepKind::Data)
            os << " [style=dashed]";
        os << ";\n";
    }
    os << "}\n";
}

} // namespace csched
