/**
 * @file
 * A single instruction in a scheduling unit.
 *
 * Instructions carry the annotations the paper's heuristics consume:
 * the opcode (for FU class and latency), the preplacement home cluster
 * (for the PLACE/PLACEPROP passes and for correctness constraints), and
 * for memory operations the bank they touch (from which preplacement is
 * derived, mirroring the Maps/congruence analysis of Rawcc and Chorus).
 */

#ifndef CSCHED_IR_INSTRUCTION_HH
#define CSCHED_IR_INSTRUCTION_HH

#include <string>

#include "ir/opcode.hh"

namespace csched {

/** Index of an instruction inside its DependenceGraph. */
using InstrId = int;

/** Sentinel for "no instruction". */
constexpr InstrId kNoInstr = -1;

/** Sentinel for "no cluster / no bank". */
constexpr int kNoCluster = -1;

/** One operation in a scheduling unit. */
struct Instruction
{
    /** Dense id, equal to this instruction's index in the graph. */
    InstrId id = kNoInstr;

    /** Scheduling-level opcode. */
    Opcode op = Opcode::Nop;

    /** Optional human-readable name for debugging and examples. */
    std::string name;

    /**
     * Memory bank touched by a Load/Store, or kNoCluster for
     * non-memory instructions and unanalysable accesses.
     */
    int memBank = kNoCluster;

    /**
     * Home cluster of a preplaced instruction, or kNoCluster.  A
     * preplaced instruction MUST be assigned to this cluster for
     * correctness (Section 1 of the paper).
     */
    int homeCluster = kNoCluster;

    /** True iff this instruction is preplaced. */
    bool preplaced() const { return homeCluster != kNoCluster; }
};

} // namespace csched

#endif // CSCHED_IR_INSTRUCTION_HH
