#include "ir/instruction.hh"

#include <sstream>

#include "ir/describe.hh"

namespace csched {

std::string
describe(const Instruction &instr)
{
    std::ostringstream os;
    os << 'i' << instr.id << ':' << opcodeName(instr.op);
    if (!instr.name.empty())
        os << '(' << instr.name << ')';
    if (instr.memBank != kNoCluster)
        os << " bank=" << instr.memBank;
    if (instr.preplaced())
        os << " home=" << instr.homeCluster;
    return os.str();
}

} // namespace csched
