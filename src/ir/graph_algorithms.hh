/**
 * @file
 * Free-standing graph utilities shared by the schedulers and passes.
 */

#ifndef CSCHED_IR_GRAPH_ALGORITHMS_HH
#define CSCHED_IR_GRAPH_ALGORITHMS_HH

#include <vector>

#include "ir/graph.hh"

namespace csched {

/**
 * Derive preplacement from memory banks: every Load/Store with bank b
 * becomes preplaced on cluster b % numClusters.  This mirrors the
 * congruence/Maps analysis in Rawcc and Chorus, where memory is
 * interleaved across the clusters' local banks.  Must be called before
 * finalize().
 */
void preplaceMemoryByBank(DependenceGraph &graph, int num_clusters);

/** Sum of all instruction latencies: the serial-schedule upper bound. */
int totalWork(const DependenceGraph &graph);

/**
 * Undirected BFS distance in edges between two instructions; -1 when
 * disconnected.  @p cap bounds the search depth (pass a large value
 * for exact distances).
 */
int undirectedDistance(const DependenceGraph &graph, InstrId from,
                       InstrId to, int cap = 1 << 20);

/**
 * Undirected BFS distance from @p from to the nearest member of
 * @p targets (given as a bitmap); -1 when unreachable.
 */
int distanceToSet(const DependenceGraph &graph, InstrId from,
                  const std::vector<bool> &targets, int cap = 1 << 20);

/** Shape statistics for a graph, used by the Figure-2 bench. */
struct GraphShape
{
    int instructions = 0;
    int edges = 0;
    int criticalPathLength = 0;
    int maxLevel = 0;
    double avgWidth = 0.0;  ///< instructions / (maxLevel + 1)
    double parallelism = 0.0;  ///< totalWork / criticalPathLength
    int preplaced = 0;
};

/** Compute shape statistics of a finalized graph. */
GraphShape analyzeShape(const DependenceGraph &graph);

} // namespace csched

#endif // CSCHED_IR_GRAPH_ALGORITHMS_HH
