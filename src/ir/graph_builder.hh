/**
 * @file
 * Fluent construction helper for dependence graphs.
 *
 * The workload generators and the tests build graphs through this
 * class: each emitted operation names the operations it consumes, and
 * the builder inserts the corresponding Data edges.  Memory operations
 * take the bank they touch so that preplacement can later be derived
 * from the machine's bank interleaving.
 */

#ifndef CSCHED_IR_GRAPH_BUILDER_HH
#define CSCHED_IR_GRAPH_BUILDER_HH

#include <initializer_list>
#include <string>
#include <vector>

#include "ir/graph.hh"

namespace csched {

/** Builds a DependenceGraph one instruction at a time. */
class GraphBuilder
{
  public:
    /** Start an empty graph with the default latency model. */
    GraphBuilder();

    /** Start an empty graph with a custom latency model. */
    explicit GraphBuilder(LatencyModel latencies);

    /** Emit an operation consuming the values of @p deps. */
    InstrId op(Opcode opcode, const std::vector<InstrId> &deps = {},
               std::string name = "");

    /** Emit a load from @p bank, consuming @p deps (address inputs). */
    InstrId load(int bank, const std::vector<InstrId> &deps = {},
                 std::string name = "");

    /**
     * Emit a store to @p bank consuming @p value plus extra @p deps
     * (address inputs, ordering edges).
     */
    InstrId store(int bank, InstrId value,
                  const std::vector<InstrId> &deps = {},
                  std::string name = "");

    /** Add an extra dependence edge between already-emitted ops. */
    void edge(InstrId src, InstrId dst, DepKind kind = DepKind::Data);

    /**
     * Force an instruction to be preplaced on @p cluster (used for
     * live-range constraints; bank-derived preplacement is normally
     * applied by preplaceMemoryByBank()).
     */
    void preplace(InstrId id, int cluster);

    /** Number of instructions emitted so far. */
    int size() const { return graph_.numInstructions(); }

    /** Access the graph under construction (pre-finalize). */
    DependenceGraph &graph() { return graph_; }

    /**
     * Finalize and surrender the graph.  The builder is left empty and
     * must not be reused.
     */
    DependenceGraph build();

  private:
    DependenceGraph graph_;
    bool built_ = false;
};

} // namespace csched

#endif // CSCHED_IR_GRAPH_BUILDER_HH
