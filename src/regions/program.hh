/**
 * @file
 * Multi-unit programs: scheduling regions connected by live values.
 *
 * The convergent scheduler operates on one scheduling unit at a time
 * (a basic block, trace, superblock...).  Real programs are sequences
 * of such units, and values live across unit boundaries.  Section 5 of
 * the paper: "when a value is live across multiple scheduling regions,
 * its definitions and uses must be mapped to a consistent cluster" --
 * on Rawcc that cluster is the one of the first definition/use
 * encountered; on Chorus every cross-region value is mapped to the
 * first cluster.  This module models the program structure; the
 * policies live in region_scheduler.hh.
 *
 * A unit imports live values (each import materialises as a Const
 * instruction standing for the incoming register) and exports defined
 * values by name.  Imports of a value must be preceded by an export in
 * an earlier unit.
 */

#ifndef CSCHED_REGIONS_PROGRAM_HH
#define CSCHED_REGIONS_PROGRAM_HH

#include <map>
#include <string>
#include <vector>

#include "ir/graph.hh"

namespace csched {

/** One scheduling region plus its boundary values. */
struct ProgramUnit
{
    std::string name;
    /** The region's dependence graph (unfinalized until scheduling:
     *  live-value pinning must precede finalize()). */
    DependenceGraph graph;
    /** value name -> the Const instruction materialising the import. */
    std::map<std::string, InstrId> liveIns;
    /** value name -> defining instruction exported to later units. */
    std::map<std::string, InstrId> liveOuts;
};

/** An ordered sequence of scheduling units. */
class Program
{
  public:
    /** Append a unit; returns its index. */
    int addUnit(ProgramUnit unit);

    int numUnits() const { return static_cast<int>(units_.size()); }
    ProgramUnit &unit(int index);
    const ProgramUnit &unit(int index) const;

    /**
     * Check the boundary structure: every live-in has an earlier
     * exporter, and the referenced instructions exist.  Fatal on
     * malformed programs.
     */
    void validate() const;

  private:
    std::vector<ProgramUnit> units_;
};

/** Incremental builder for multi-unit programs. */
class ProgramBuilder
{
  public:
    /** Start a new unit; instructions go to it until the next begin. */
    void beginUnit(std::string name);

    /** Append an instruction to the current unit. */
    InstrId op(Opcode opcode, const std::vector<InstrId> &deps = {},
               std::string name = "");

    /** Load/store with a memory bank, as in GraphBuilder. */
    InstrId load(int bank, const std::vector<InstrId> &deps = {});
    InstrId store(int bank, InstrId value);

    /**
     * Import value @p value_name from an earlier unit; returns the
     * Const instruction standing for it (usable as an operand).
     * Repeated imports of the same value in one unit are shared.
     */
    InstrId importValue(const std::string &value_name);

    /** Export instruction @p id under @p value_name. */
    void exportValue(const std::string &value_name, InstrId id);

    /** Finish and validate the program. */
    Program build();

  private:
    ProgramUnit &current();

    Program program_;
    bool open_ = false;
};

} // namespace csched

#endif // CSCHED_REGIONS_PROGRAM_HH
