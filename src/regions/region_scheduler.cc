#include "regions/region_scheduler.hh"

#include "ir/graph_algorithms.hh"
#include "sched/schedule_checker.hh"
#include "support/logging.hh"

namespace csched {

ProgramResult
scheduleProgram(Program &program, const MachineModel &machine,
                const AlgorithmFactory &factory, LiveValuePolicy policy)
{
    program.validate();
    ProgramResult result;

    for (int k = 0; k < program.numUnits(); ++k) {
        auto &unit = program.unit(k);
        CSCHED_ASSERT(!unit.graph.finalized(),
                      "program scheduled twice");

        // Pin boundary values according to the policy.
        for (const auto &[name, id] : unit.liveIns) {
            const auto it = result.valueCluster.find(name);
            CSCHED_ASSERT(it != result.valueCluster.end() &&
                              it->second != kNoCluster,
                          "live-in '", name, "' has no binding yet");
            unit.graph.instr(id).homeCluster = it->second;
        }
        for (const auto &[name, id] : unit.liveOuts) {
            int &binding =
                result.valueCluster
                    .emplace(name, kNoCluster)
                    .first->second;
            if (policy == LiveValuePolicy::FirstCluster) {
                binding = 0;
            }
            // FirstUse: leave unbound definitions free; an already-
            // bound name (re-export of an imported value) pins the
            // definition to the existing binding.
            if (binding != kNoCluster)
                unit.graph.instr(id).homeCluster = binding;
        }

        // Memory banks pin as usual.
        preplaceMemoryByBank(unit.graph, machine.numClusters());
        unit.graph.finalize();

        const auto algorithm = factory(machine);
        Schedule schedule = algorithm->schedule(unit.graph);
        const auto check =
            checkSchedule(unit.graph, machine, schedule);
        CSCHED_ASSERT(check.ok(), "unit '", unit.name,
                      "' schedule invalid: ", check.message());

        // FirstUse: record where unbound definitions landed.
        for (const auto &[name, id] : unit.liveOuts) {
            int &binding = result.valueCluster.at(name);
            if (binding == kNoCluster)
                binding = schedule.clusterOf(id);
        }

        result.totalCycles += schedule.makespan();
        result.schedules.push_back(std::move(schedule));
    }
    return result;
}

} // namespace csched
