/**
 * @file
 * Scheduling multi-unit programs with consistent live-value placement.
 *
 * Implements the two policies of the paper's Section 5:
 *
 *  - FirstCluster (Chorus): every value live across scheduling regions
 *    is mapped to the first cluster -- its defining instruction and
 *    every import are preplaced on cluster 0.
 *  - FirstUse (Rawcc): a live value is bound to the cluster of the
 *    first definition/use the compiler encounters; the definition's
 *    unit is scheduled with the value unconstrained, the chosen
 *    cluster is recorded, and all later units' imports (and re-exports)
 *    become preplaced instructions on that cluster.
 *
 * Units execute back-to-back, so the program makespan is the sum of
 * unit makespans.  Every unit's schedule is produced by the supplied
 * algorithm factory and re-verified by the checker.
 */

#ifndef CSCHED_REGIONS_REGION_SCHEDULER_HH
#define CSCHED_REGIONS_REGION_SCHEDULER_HH

#include <functional>
#include <map>
#include <memory>

#include "machine/machine.hh"
#include "regions/program.hh"
#include "sched/algorithm.hh"

namespace csched {

/** How cross-region live values choose their consistent cluster. */
enum class LiveValuePolicy {
    FirstCluster,  ///< Chorus: everything on cluster 0
    FirstUse,      ///< Rawcc: the cluster of the first definition
};

/** Result of scheduling one program. */
struct ProgramResult
{
    /** One schedule per unit, in program order. */
    std::vector<Schedule> schedules;
    /** Sum of unit makespans. */
    int totalCycles = 0;
    /** Final cluster binding of every cross-region value. */
    std::map<std::string, int> valueCluster;
};

/** Creates the per-unit scheduling algorithm (units are independent). */
using AlgorithmFactory =
    std::function<std::unique_ptr<SchedulingAlgorithm>(
        const MachineModel &)>;

/**
 * Schedule @p program on @p machine.  Mutates the program: live-value
 * pinning is applied to the unit graphs, which are finalized in the
 * process (a program can therefore be scheduled once).
 */
ProgramResult scheduleProgram(Program &program,
                              const MachineModel &machine,
                              const AlgorithmFactory &factory,
                              LiveValuePolicy policy);

} // namespace csched

#endif // CSCHED_REGIONS_REGION_SCHEDULER_HH
