#include "regions/program.hh"

#include <set>

#include "support/logging.hh"

namespace csched {

int
Program::addUnit(ProgramUnit unit)
{
    units_.push_back(std::move(unit));
    return static_cast<int>(units_.size()) - 1;
}

ProgramUnit &
Program::unit(int index)
{
    CSCHED_ASSERT(index >= 0 && index < numUnits(), "unit ", index,
                  " out of range");
    return units_[index];
}

const ProgramUnit &
Program::unit(int index) const
{
    CSCHED_ASSERT(index >= 0 && index < numUnits(), "unit ", index,
                  " out of range");
    return units_[index];
}

void
Program::validate() const
{
    std::set<std::string> exported;
    for (int k = 0; k < numUnits(); ++k) {
        const auto &unit = units_[k];
        for (const auto &[name, id] : unit.liveIns) {
            CSCHED_ASSERT(exported.count(name),
                          "unit '", unit.name, "' imports '", name,
                          "' before any export");
            CSCHED_ASSERT(id >= 0 && id < unit.graph.numInstructions(),
                          "live-in id out of range");
        }
        for (const auto &[name, id] : unit.liveOuts) {
            CSCHED_ASSERT(id >= 0 && id < unit.graph.numInstructions(),
                          "live-out id out of range");
            exported.insert(name);
        }
    }
}

void
ProgramBuilder::beginUnit(std::string name)
{
    program_.addUnit(ProgramUnit{std::move(name), DependenceGraph(),
                                 {}, {}});
    open_ = true;
}

ProgramUnit &
ProgramBuilder::current()
{
    CSCHED_ASSERT(open_, "no open unit: call beginUnit() first");
    return program_.unit(program_.numUnits() - 1);
}

InstrId
ProgramBuilder::op(Opcode opcode, const std::vector<InstrId> &deps,
                   std::string name)
{
    auto &unit = current();
    Instruction instr;
    instr.op = opcode;
    instr.name = std::move(name);
    const InstrId id = unit.graph.addInstruction(std::move(instr));
    for (InstrId dep : deps)
        unit.graph.addEdge(dep, id, DepKind::Data);
    return id;
}

InstrId
ProgramBuilder::load(int bank, const std::vector<InstrId> &deps)
{
    const InstrId id = op(Opcode::Load, deps);
    current().graph.instr(id).memBank = bank;
    return id;
}

InstrId
ProgramBuilder::store(int bank, InstrId value)
{
    const InstrId id = op(Opcode::Store, {value});
    current().graph.instr(id).memBank = bank;
    return id;
}

InstrId
ProgramBuilder::importValue(const std::string &value_name)
{
    auto &unit = current();
    const auto it = unit.liveIns.find(value_name);
    if (it != unit.liveIns.end())
        return it->second;
    const InstrId id = op(Opcode::Const, {}, value_name + ".in");
    unit.liveIns.emplace(value_name, id);
    return id;
}

void
ProgramBuilder::exportValue(const std::string &value_name, InstrId id)
{
    auto &unit = current();
    CSCHED_ASSERT(id >= 0 && id < unit.graph.numInstructions(),
                  "export of unknown instruction ", id);
    CSCHED_ASSERT(!unit.liveOuts.count(value_name),
                  "value '", value_name, "' exported twice");
    unit.liveOuts.emplace(value_name, id);
}

Program
ProgramBuilder::build()
{
    CSCHED_ASSERT(program_.numUnits() > 0, "empty program");
    program_.validate();
    open_ = false;
    return std::move(program_);
}

} // namespace csched
