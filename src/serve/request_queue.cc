#include "serve/request_queue.hh"

namespace csched {

RequestQueue::RequestQueue(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity)
{
}

Status
RequestQueue::push(QueuedRequest item)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (closed_)
            return Status::interrupted(
                "the daemon is draining; request not admitted");
        if (items_.size() >= capacity_)
            return Status::overloaded(
                "request queue is full (" +
                std::to_string(capacity_) +
                " queued); retry later");
        items_.push_back(std::move(item));
    }
    ready_.notify_one();
    return Status();
}

bool
RequestQueue::pop(QueuedRequest *out, int timeout_ms)
{
    std::unique_lock<std::mutex> lock(mutex_);
    ready_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                    [this] { return closed_ || !items_.empty(); });
    if (items_.empty())
        return false;  // timed out, or closed with an empty backlog
    *out = std::move(items_.front());
    items_.pop_front();
    return true;
}

void
RequestQueue::close()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        closed_ = true;
    }
    ready_.notify_all();
}

bool
RequestQueue::closed() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
}

std::size_t
RequestQueue::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
}

} // namespace csched
