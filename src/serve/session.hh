/**
 * @file
 * One accepted client connection of the serve daemon.
 *
 * A session is shared between its reader thread (which decodes
 * requests and replies to admission rejections inline) and any number
 * of dispatcher threads (which reply with results later), so replies
 * are serialized by a per-session write mutex and the session itself
 * lives in a shared_ptr: a queued request keeps its session alive, and
 * the reply still flushes even after the reader exited on client EOF.
 *
 * The "serve.reply" fault point fires inside send(), under the write
 * mutex, in the session's own fault scope (key "serve/conn-<id>").  A
 * Fail rule does NOT drop the reply -- dropping would break the
 * exactly-one-reply contract the load harness proves -- it *replaces*
 * the payload with a structured injected-error response carrying the
 * same request id, modelling a server that answered "something went
 * wrong here" rather than one that went silent.  Slow rules simply
 * delay the write, exercising the slow-reply path (and the peer's
 * patience) without changing the payload.
 */

#ifndef CSCHED_SERVE_SESSION_HH
#define CSCHED_SERVE_SESSION_HH

#include <cstdint>
#include <mutex>

#include "serve/protocol.hh"
#include "support/fault_injection.hh"
#include "support/status.hh"

namespace csched {

class Session
{
  public:
    /**
     * Take ownership of connected @p fd.  @p send_timeout_ms bounds
     * each reply write (SO_SNDTIMEO) so a client that stopped reading
     * cannot park a dispatcher forever.  @p faults (borrowed, may be
     * null) arms the serve.admit / serve.reply points for this
     * connection.
     */
    Session(int fd, uint64_t id, int send_timeout_ms,
            const FaultPlan *faults);
    ~Session();

    Session(const Session &) = delete;
    Session &operator=(const Session &) = delete;

    int fd() const { return fd_; }
    uint64_t id() const { return id_; }

    /**
     * Send exactly one reply frame for @p response (possibly rewritten
     * by a serve.reply Fail rule -- see the file comment).  Thread-safe.
     * A failed write (dead or stuck peer) is returned, not retried:
     * the reply was produced and the transport refused it, which the
     * server records but cannot fix.
     */
    Status send(const ServeResponse &response, bool timings = true);

    /**
     * The reader thread's fault scope for the "serve.admit" point.
     * Only the reader may touch it (FaultScope is not thread-safe).
     */
    FaultScope &admitScope() { return admitScope_; }

    /** Replies successfully written on this session. */
    uint64_t repliesSent() const;

    /** Half-close the read side: wakes the reader out of readFrame. */
    void shutdownRead();

  private:
    const int fd_;
    const uint64_t id_;
    mutable std::mutex writeMutex_;
    FaultScope admitScope_;
    FaultScope replyScope_;  ///< guarded by writeMutex_
    uint64_t repliesSent_ = 0;  ///< guarded by writeMutex_
};

} // namespace csched

#endif // CSCHED_SERVE_SESSION_HH
