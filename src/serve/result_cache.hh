/**
 * @file
 * Memoized schedule results for the serve daemon: an LRU cache keyed
 * by the request's deterministic identity plus single-flight
 * deduplication of identical concurrent requests.
 *
 * Scheduling is deterministic -- the same (workload, machine,
 * algorithm, computeSpeedup) always produces the same result -- so a
 * served result can be replayed to later identical requests without
 * spending a worker.  The deadline is deliberately *not* part of the
 * key: it shapes how long we are willing to wait, not what the answer
 * is.
 *
 * Single-flight closes the thundering-herd window the cache alone
 * leaves open: when N identical requests arrive before the first one
 * finishes, exactly one dispatcher (the flight's *leader*) runs the
 * job while the other N-1 (the *followers*) block on the flight and
 * replay the leader's result -- whatever it is, success or failure, so
 * every follower still gets exactly one structured reply.  Only Ok
 * results enter the LRU; failures are presumed transient (a crashed
 * worker, a deadline) and the next request retries for real.
 */

#ifndef CSCHED_SERVE_RESULT_CACHE_HH
#define CSCHED_SERVE_RESULT_CACHE_HH

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "runner/job.hh"
#include "serve/protocol.hh"

namespace csched {

/** The deterministic cache identity of @p request (no deadline). */
std::string cacheKey(const ServeRequest &request);

/** One in-flight computation that followers can wait on. */
struct Flight
{
    std::mutex mutex;
    std::condition_variable done;
    bool finished = false;
    JobResult result;
};

class ResultCache
{
  public:
    /** @p capacity 0 disables caching (every begin() is a leader). */
    explicit ResultCache(std::size_t capacity);

    /** How a begin() call resolved. */
    struct Ticket
    {
        /** Served from the LRU; @c result is valid, no job to run. */
        bool cached = false;
        /**
         * An identical request is already running; wait on @c flight
         * (waitFollower) instead of running the job again.
         */
        bool coalesced = false;
        JobResult result;  ///< valid only when cached
        /** The flight to wait on (follower) or to finish (leader). */
        std::shared_ptr<Flight> flight;

        bool leader() const { return !cached && !coalesced; }
    };

    /**
     * Resolve @p key: a cache hit, a follower ticket onto an existing
     * flight, or a leader ticket (a fresh flight was registered and
     * the caller must run the job and call finish() -- on *every*
     * path, or followers hang).
     */
    Ticket begin(const std::string &key);

    /**
     * Leader hand-off: record @p result, publish Ok results to the
     * LRU, wake every follower of @p flight, and retire the flight.
     */
    void finish(const std::string &key,
                const std::shared_ptr<Flight> &flight,
                const JobResult &result);

    /**
     * Follower wait: block until the leader finishes or @p deadline
     * passes.  Returns false on deadline expiry (the follower sheds
     * itself with a timeout reply; the leader is still running).
     */
    static bool
    waitFollower(const std::shared_ptr<Flight> &flight,
                 std::chrono::steady_clock::time_point deadline,
                 JobResult *out);

    std::size_t size() const;
    std::size_t hits() const;
    std::size_t evictions() const;

  private:
    void touch(const std::string &key);  // mutex_ held

    const std::size_t capacity_;
    mutable std::mutex mutex_;
    /** Most-recently-used first. */
    std::list<std::string> order_;
    std::map<std::string,
             std::pair<JobResult, std::list<std::string>::iterator>>
        entries_;
    std::map<std::string, std::shared_ptr<Flight>> flights_;
    std::size_t hits_ = 0;
    std::size_t evictions_ = 0;
};

} // namespace csched

#endif // CSCHED_SERVE_RESULT_CACHE_HH
