#include "serve/protocol.hh"

#include <sstream>

#include "runner/json_report.hh"
#include "support/json.hh"

namespace csched {

namespace {

/**
 * Read a non-negative integral id out of a JSON number.  Ids are
 * client correlation handles, not arithmetic values; anything
 * negative or fractional is shape abuse from an untrusted peer.
 */
bool
parseId(const JsonValue &value, uint64_t *out)
{
    if (value.kind != JsonValue::Kind::Number)
        return false;
    if (value.number < 0 ||
        value.number != static_cast<double>(
                            static_cast<uint64_t>(value.number)))
        return false;
    *out = static_cast<uint64_t>(value.number);
    return true;
}

} // namespace

std::string
encodeServeRequest(const ServeRequest &request)
{
    std::ostringstream out;
    {
        JsonWriter w(out);
        w.beginObject();
        w.key("schema").value(kServeRequestSchema);
        w.key("id").value(request.id);
        w.key("workload").value(request.workload);
        w.key("machine").value(request.machine);
        w.key("algorithm").value(request.algorithm);
        w.key("deadlineMs").value(request.deadlineMs);
        w.key("computeSpeedup").value(request.computeSpeedup);
        w.endObject();
    }
    return compactJson(out.str());
}

StatusOr<ServeRequest>
decodeServeRequest(const std::string &payload, uint64_t *id_out)
{
    std::string error;
    const auto parsed = parseJson(payload, &error);
    if (!parsed.has_value())
        return Status::invalidSpec("request frame is not JSON: " +
                                   error);
    if (parsed->kind != JsonValue::Kind::Object)
        return Status::invalidSpec(
            "request frame is not a JSON object");

    // Salvage the id first so even a rejected request can be answered
    // under the exactly-one-reply contract.
    uint64_t id = 0;
    if (const JsonValue *found = parsed->find("id"))
        if (parseId(*found, &id) && id_out != nullptr)
            *id_out = id;

    const JsonValue *schema = parsed->find("schema");
    if (schema == nullptr ||
        schema->kind != JsonValue::Kind::String ||
        schema->string != kServeRequestSchema)
        return Status::invalidSpec(
            std::string("request schema is not ") +
            kServeRequestSchema);

    for (const char *field : {"id", "workload", "machine",
                              "algorithm"}) {
        if (parsed->find(field) == nullptr)
            return Status::invalidSpec(
                std::string("request is missing '") + field + "'");
    }
    const JsonValue &id_value = parsed->at("id");
    if (!parseId(id_value, &id))
        return Status::invalidSpec(
            "request id must be a non-negative integer");
    for (const char *field : {"workload", "machine", "algorithm"}) {
        if (parsed->at(field).kind != JsonValue::Kind::String)
            return Status::invalidSpec(std::string("request '") +
                                       field + "' must be a string");
    }

    ServeRequest request;
    request.id = id;
    request.workload = parsed->at("workload").string;
    request.machine = parsed->at("machine").string;
    request.algorithm = parsed->at("algorithm").string;
    if (const JsonValue *deadline = parsed->find("deadlineMs")) {
        if (deadline->kind != JsonValue::Kind::Number ||
            deadline->asInt() < 0)
            return Status::invalidSpec(
                "request deadlineMs must be a non-negative integer");
        request.deadlineMs = deadline->asInt();
    }
    if (const JsonValue *speedup = parsed->find("computeSpeedup")) {
        if (speedup->kind != JsonValue::Kind::Bool)
            return Status::invalidSpec(
                "request computeSpeedup must be a boolean");
        request.computeSpeedup = speedup->boolean;
    }
    return request;
}

std::string
encodeServeResponse(const ServeResponse &response, bool timings)
{
    std::ostringstream out;
    {
        JsonWriter w(out);
        w.beginObject();
        w.key("schema").value(kServeResponseSchema);
        w.key("id").value(response.id);
        w.key("status").value(response.status);
        w.key("cached").value(response.cached);
        w.key("coalesced").value(response.coalesced);
        if (timings)
            w.key("queueMs").value(response.queueMs);
        w.key("serverDiagnostic").value(response.serverDiagnostic);
        w.key("result").beginObject();
        writeJobResultFields(w, response.result);
        w.endObject();
        w.endObject();
    }
    return compactJson(out.str());
}

StatusOr<ServeResponse>
decodeServeResponse(const std::string &payload)
{
    std::string error;
    const auto parsed = parseJson(payload, &error);
    if (!parsed.has_value())
        return Status::invalidSpec("response frame is not JSON: " +
                                   error);
    if (parsed->kind != JsonValue::Kind::Object)
        return Status::invalidSpec(
            "response frame is not a JSON object");
    const JsonValue *schema = parsed->find("schema");
    if (schema == nullptr ||
        schema->kind != JsonValue::Kind::String ||
        schema->string != kServeResponseSchema)
        return Status::invalidSpec(
            std::string("response schema is not ") +
            kServeResponseSchema);
    for (const char *field :
         {"id", "status", "cached", "coalesced", "result"}) {
        if (parsed->find(field) == nullptr)
            return Status::invalidSpec(
                std::string("response is missing '") + field + "'");
    }

    ServeResponse response;
    if (!parseId(parsed->at("id"), &response.id))
        return Status::invalidSpec(
            "response id must be a non-negative integer");
    response.status = parsed->at("status").string;
    response.cached = parsed->at("cached").boolean;
    response.coalesced = parsed->at("coalesced").boolean;
    if (const JsonValue *queue = parsed->find("queueMs"))
        response.queueMs = queue->asDouble();
    if (const JsonValue *note = parsed->find("serverDiagnostic"))
        response.serverDiagnostic = note->string;
    auto result = parseJobResultFields(parsed->at("result"));
    if (!result.has_value())
        return Status::invalidSpec(
            "response result is missing job fields");
    response.result = std::move(*result);
    return response;
}

std::string
serveStatusOf(const JobResult &result)
{
    if (result.outcome == JobOutcome::Ok)
        return "ok";
    return errorCodeName(result.error);
}

ServeResponse
makeRejection(const ServeRequest &request, const Status &status)
{
    ServeResponse response;
    response.id = request.id;
    response.status = errorCodeName(status.code());
    response.result.workload = request.workload;
    response.result.machine = request.machine;
    response.result.algorithm = request.algorithm;
    response.result.outcome =
        status.code() == ErrorCode::Interrupted
            ? JobOutcome::Interrupted
            : (status.code() == ErrorCode::Timeout
                   ? JobOutcome::Timeout
                   : JobOutcome::Failed);
    response.result.error = status.code();
    response.result.diagnostic = status.message();
    response.result.attempts = 0;  // no attempt consumed a worker
    return response;
}

} // namespace csched
