/**
 * @file
 * Wire protocol of the scheduler-as-a-service daemon: one JSON
 * request frame in, exactly one JSON response frame out, carried over
 * the 4-byte LE length-prefixed codec from support/subprocess.hh on a
 * UNIX-domain stream socket.
 *
 * The exactly-one-reply contract is the protocol's whole point: every
 * request the server ever reads produces one structured response --
 * a result, `overloaded` backpressure, a deadline expiry, or
 * `interrupted` during a drain -- so a load generator can prove zero
 * lost and zero duplicated replies under fault injection (see
 * tools/csched_load.cc).
 *
 * Responses embed the job's result in the same field layout as a
 * csched-grid-report-v2 job object (runner/json_report.hh
 * writeJobResultFields), so everything downstream that reads grid
 * cells can read serve replies.  The envelope adds serve-only fields:
 * the echoed request id, a summary status, cache/coalescing marks,
 * queue latency, and a server-side diagnostic (e.g. the deterministic
 * retry-backoff delays behind a healed worker crash).
 */

#ifndef CSCHED_SERVE_PROTOCOL_HH
#define CSCHED_SERVE_PROTOCOL_HH

#include <cstdint>
#include <string>

#include "runner/job.hh"
#include "support/status.hh"

namespace csched {

/** Schema identifiers stamped into every frame. */
inline const char *kServeRequestSchema = "csched-serve-request-v1";
inline const char *kServeResponseSchema = "csched-serve-response-v1";

/**
 * Socket peers are far less trusted than our own forked workers, so
 * the serve-side frame cap is deliberately small: a request is a few
 * hundred bytes of spec text, a response tops out at an assignment
 * vector.  Configurable per server (ServeOptions::maxFrameBytes).
 */
inline constexpr uint32_t kServeMaxFrameBytes = 1u << 20;

/** One schedule request from a client. */
struct ServeRequest
{
    /** Client-chosen correlation id, echoed verbatim in the reply. */
    uint64_t id = 0;
    std::string workload;
    std::string machine;    ///< validated machine spec, e.g. "vliw4"
    std::string algorithm;  ///< AlgorithmSpec::text() form
    /**
     * End-to-end deadline in milliseconds, attached at admission:
     * covers the queue wait *and* the schedule run.  0 = use the
     * server's default.
     */
    int deadlineMs = 0;
    /** Also run the one-cluster normalisation to compute speedup. */
    bool computeSpeedup = false;
};

/** The server's one structured reply to a request. */
struct ServeResponse
{
    uint64_t id = 0;
    /**
     * Summary verdict: "ok" or an errorCodeName -- "overloaded"
     * (queue full or crash-looping pool), "timeout" (aged out in
     * queue, or the run exceeded the deadline), "interrupted"
     * (drain), "invalid-spec", "worker-crashed", ...  Always equal to
     * result.outcome/result.error collapsed to one string.
     */
    std::string status = "ok";
    /** Served from the memoized result cache (no job ran). */
    bool cached = false;
    /** Coalesced onto an identical in-flight request (single-flight). */
    bool coalesced = false;
    /** Wall-clock spent queued before dispatch, in milliseconds. */
    double queueMs = 0.0;
    /**
     * Serve-layer diagnostic: shed reasons, crash-loop notes, and the
     * deterministic retry-backoff delays behind a healed worker death
     * (pure recomputation via retryBackoffMs, so it is reproducible).
     */
    std::string serverDiagnostic;
    /** The csched-grid-report-v2-compatible per-request result. */
    JobResult result;
};

/** Serialize @p request as one compact frame payload. */
std::string encodeServeRequest(const ServeRequest &request);

/**
 * Decode a request frame from an untrusted peer.  Never throws; any
 * shape problem (not JSON, wrong schema, missing fields, wrong types)
 * comes back as an InvalidSpec status whose message names the defect.
 * When the frame is parseable enough to carry an id, @p id_out (if
 * non-null) receives it even on failure, so the server can still
 * address its error reply.
 */
StatusOr<ServeRequest> decodeServeRequest(const std::string &payload,
                                          uint64_t *id_out = nullptr);

/**
 * Serialize @p response as one compact frame payload.  @p timings
 * false drops the envelope's wall-clock queueMs field for
 * byte-comparable output (the embedded result keeps the grid-report
 * layout either way).
 */
std::string encodeServeResponse(const ServeResponse &response,
                                bool timings = true);

/** Decode a response frame; InvalidSpec on any shape problem. */
StatusOr<ServeResponse> decodeServeResponse(const std::string &payload);

/**
 * Collapse a JobResult to the envelope status string: "ok" for an ok
 * outcome, else the errorCodeName of its error.
 */
std::string serveStatusOf(const JobResult &result);

/**
 * Build the failure half of a response when no job ran (admission
 * rejection, queue shed, drain): a synthesized JobResult carrying
 * @p status as outcome/error/diagnostic, identified by @p request.
 */
ServeResponse makeRejection(const ServeRequest &request,
                            const Status &status);

} // namespace csched

#endif // CSCHED_SERVE_PROTOCOL_HH
