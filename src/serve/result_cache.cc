#include "serve/result_cache.hh"

namespace csched {

std::string
cacheKey(const ServeRequest &request)
{
    // '|' cannot appear in workload/machine names or algorithm text,
    // so the join is unambiguous.
    return request.workload + "|" + request.machine + "|" +
           request.algorithm + "|" +
           (request.computeSpeedup ? "speedup" : "plain");
}

ResultCache::ResultCache(std::size_t capacity) : capacity_(capacity) {}

ResultCache::Ticket
ResultCache::begin(const std::string &key)
{
    Ticket ticket;
    std::lock_guard<std::mutex> lock(mutex_);
    const auto entry = entries_.find(key);
    if (entry != entries_.end()) {
        ticket.cached = true;
        ticket.result = entry->second.first;
        touch(key);
        ++hits_;
        return ticket;
    }
    const auto flight = flights_.find(key);
    if (flight != flights_.end()) {
        ticket.coalesced = true;
        ticket.flight = flight->second;
        return ticket;
    }
    ticket.flight = std::make_shared<Flight>();
    flights_.emplace(key, ticket.flight);
    return ticket;
}

void
ResultCache::finish(const std::string &key,
                    const std::shared_ptr<Flight> &flight,
                    const JobResult &result)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        flights_.erase(key);
        if (capacity_ > 0 && result.ok() &&
            entries_.find(key) == entries_.end()) {
            order_.push_front(key);
            entries_.emplace(key,
                             std::make_pair(result, order_.begin()));
            while (entries_.size() > capacity_) {
                entries_.erase(order_.back());
                order_.pop_back();
                ++evictions_;
            }
        }
    }
    {
        std::lock_guard<std::mutex> lock(flight->mutex);
        flight->result = result;
        flight->finished = true;
    }
    flight->done.notify_all();
}

bool
ResultCache::waitFollower(
    const std::shared_ptr<Flight> &flight,
    std::chrono::steady_clock::time_point deadline, JobResult *out)
{
    std::unique_lock<std::mutex> lock(flight->mutex);
    if (!flight->done.wait_until(lock, deadline,
                                 [&] { return flight->finished; }))
        return false;
    *out = flight->result;
    return true;
}

std::size_t
ResultCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

std::size_t
ResultCache::hits() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return hits_;
}

std::size_t
ResultCache::evictions() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return evictions_;
}

void
ResultCache::touch(const std::string &key)
{
    const auto entry = entries_.find(key);
    order_.erase(entry->second.second);
    order_.push_front(key);
    entry->second.second = order_.begin();
}

} // namespace csched
