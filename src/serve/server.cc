#include "serve/server.hh"

#include <chrono>
#include <cstdio>

#include <unistd.h>

#include "eval/experiment.hh"
#include "runner/shutdown.hh"
#include "support/rng.hh"
#include "support/socket.hh"
#include "support/str.hh"
#include "support/subprocess.hh"

namespace csched {

namespace {

using Clock = std::chrono::steady_clock;

int64_t
steadyMs(Clock::time_point when = Clock::now())
{
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               when.time_since_epoch())
        .count();
}

double
elapsedMs(Clock::time_point since, Clock::time_point now)
{
    return std::chrono::duration<double, std::milli>(now - since)
        .count();
}

} // namespace

/** All the ServeStats fields in atomic form. */
struct Server::Counters
{
    std::atomic<uint64_t> connections{0};
    std::atomic<uint64_t> acceptRejected{0};
    std::atomic<uint64_t> requestsRead{0};
    std::atomic<uint64_t> malformedFrames{0};
    std::atomic<uint64_t> oversizedFrames{0};
    std::atomic<uint64_t> invalidRequests{0};
    std::atomic<uint64_t> admitted{0};
    std::atomic<uint64_t> rejectedOverloaded{0};
    std::atomic<uint64_t> shedDeadline{0};
    std::atomic<uint64_t> interruptedReplies{0};
    std::atomic<uint64_t> cacheHits{0};
    std::atomic<uint64_t> coalesced{0};
    std::atomic<uint64_t> jobsRun{0};
    std::atomic<uint64_t> workerDeaths{0};
    std::atomic<uint64_t> healedRetries{0};
    std::atomic<uint64_t> repliesSent{0};
    std::atomic<uint64_t> replyWriteFailures{0};
};

Server::Server(ServeOptions options)
    : options_(std::move(options)), queue_(options_.queueCapacity),
      cache_(options_.cacheCapacity),
      counters_(std::make_unique<Counters>())
{
}

Server::~Server()
{
    if (started_ && !finished_) {
        stop_.store(true);
        (void)drainAndExit();
    }
}

Status
Server::start()
{
    // Fork the pool first: workers must not inherit the listen fd,
    // and WorkerPool wants a single-threaded process.
    pool_ = std::make_unique<WorkerPool>(options_.workers,
                                         options_.memLimitMb);

    auto listening = listenUnix(options_.socketPath);
    if (!listening.ok()) {
        pool_.reset();
        return listening.status().withContext("csched_serve");
    }
    listenFd_ = *listening;

    activeDispatchers_.store(options_.dispatchers);
    for (int i = 0; i < options_.dispatchers; ++i)
        dispatcherThreads_.emplace_back(&Server::dispatcherMain, this);

    started_ = true;
    if (options_.verbose)
        std::fprintf(stderr,
                     "[csched_serve] listening on %s (%d workers, %d "
                     "dispatchers, queue %zu)\n",
                     options_.socketPath.c_str(), options_.workers,
                     options_.dispatchers, options_.queueCapacity);
    return Status();
}

int
Server::run()
{
    CSCHED_ASSERT(started_, "Server::run() before start()");
    FaultScope acceptScope(options_.faults, "serve/accept");
    while (!drainingNow()) {
        auto client = acceptClient(listenFd_, 50);
        if (!client.ok()) {
            if (client.status().code() == ErrorCode::Timeout)
                continue;  // idle tick; re-check the drain flags
            CSCHED_WARN("accept failed: ",
                        client.status().toString());
            continue;
        }
        counters_->connections.fetch_add(1);
        try {
            acceptScope.hit("serve.accept");
        } catch (const StatusError &) {
            // Simulated accept pressure: close before reading a single
            // byte, so no request is ever half-owned by the server.
            ::close(*client);
            counters_->acceptRejected.fetch_add(1);
            continue;
        }
        auto session = std::make_shared<Session>(
            *client, ++nextSessionId_, options_.sendTimeoutMs,
            options_.faults);
        std::lock_guard<std::mutex> lock(sessionsMutex_);
        sessions_.push_back(session);
        activeReaders_.fetch_add(1);
        readerThreads_.emplace_back(&Server::readerMain, this,
                                    session);
    }
    return drainAndExit();
}

void
Server::stop()
{
    stop_.store(true);
}

bool
Server::drainingNow() const
{
    return stop_.load() || drainRequested();
}

void
Server::readerMain(std::shared_ptr<Session> session)
{
    for (;;) {
        FrameResult frame =
            readFrame(session->fd(), 200, options_.maxFrameBytes);
        if (frame.kind == FrameResult::Kind::Eof)
            break;
        if (frame.kind == FrameResult::Kind::Timeout) {
            // Idle tick.  During a drain the reader keeps serving --
            // every late request gets an `interrupted` reply and a
            // well-behaved client closes on seeing one, which is what
            // ends this loop (EOF).  readersShouldExit_ is the forced
            // fallback for clients that never close, set only after
            // the drain deadline.
            if (readersShouldExit_.load())
                break;
            continue;
        }
        if (frame.kind == FrameResult::Kind::Oversized) {
            // Distinct, structured refusal -- then drop the
            // connection, because the stream is no longer framed (we
            // did not consume the oversized payload).
            counters_->oversizedFrames.fetch_add(1);
            ServeRequest anonymous;
            sendReply(session,
                      makeRejection(anonymous,
                                    Status::invalidSpec(
                                        "refused request frame: " +
                                        frame.error)));
            break;
        }
        if (frame.kind == FrameResult::Kind::Malformed) {
            // Truncation or an I/O error: the peer is gone or
            // garbling; nothing addressable to reply to.
            counters_->malformedFrames.fetch_add(1);
            break;
        }

        uint64_t salvaged_id = 0;
        auto decoded = decodeServeRequest(frame.payload, &salvaged_id);
        if (!decoded.ok()) {
            counters_->invalidRequests.fetch_add(1);
            ServeRequest anonymous;
            anonymous.id = salvaged_id;
            sendReply(session,
                      makeRejection(anonymous, decoded.status()));
            continue;  // framing is intact; keep serving the peer
        }
        counters_->requestsRead.fetch_add(1);
        const ServeRequest &request = *decoded;

        // --- Admission control ------------------------------------
        Status verdict;
        try {
            session->admitScope().hit("serve.admit");
        } catch (const StatusError &err) {
            verdict = err.status;
        }
        if (verdict.ok() && drainingNow())
            verdict = Status::interrupted(
                "the daemon is draining; request not admitted");
        std::string why;
        if (verdict.ok() && degraded(&why))
            verdict = Status::overloaded(why);
        if (verdict.ok()) {
            QueuedRequest item;
            item.session = session;
            item.request = request;
            item.admitted = Clock::now();
            const int deadline_ms = request.deadlineMs > 0
                                        ? request.deadlineMs
                                        : options_.defaultDeadlineMs;
            item.deadline =
                deadline_ms > 0
                    ? item.admitted +
                          std::chrono::milliseconds(deadline_ms)
                    : Clock::time_point::max();
            verdict = queue_.push(std::move(item));
            if (verdict.ok())
                counters_->admitted.fetch_add(1);
        }
        if (!verdict.ok()) {
            if (verdict.code() == ErrorCode::Overloaded)
                counters_->rejectedOverloaded.fetch_add(1);
            else if (verdict.code() == ErrorCode::Interrupted)
                counters_->interruptedReplies.fetch_add(1);
            sendReply(session, makeRejection(request, verdict));
        }
    }
    // The session object stays alive through any queued shared_ptrs;
    // dropping it from the registry only ends *our* bookkeeping.
    {
        std::lock_guard<std::mutex> lock(sessionsMutex_);
        for (auto it = sessions_.begin(); it != sessions_.end();
             ++it) {
            if (it->get() == session.get()) {
                sessions_.erase(it);
                break;
            }
        }
    }
    {
        std::lock_guard<std::mutex> lock(readerDoneMutex_);
        activeReaders_.fetch_sub(1);
    }
    readerDone_.notify_all();
}

void
Server::dispatcherMain()
{
    QueuedRequest item;
    for (;;) {
        if (queue_.pop(&item, 200)) {
            handle(std::move(item));
            item = QueuedRequest();
        } else if (queue_.closed()) {
            break;
        }
    }
    {
        std::lock_guard<std::mutex> lock(dispatcherDoneMutex_);
        activeDispatchers_.fetch_sub(1);
    }
    dispatcherDone_.notify_all();
}

void
Server::handle(QueuedRequest item)
{
    const Clock::time_point now = Clock::now();
    const double queue_ms = elapsedMs(item.admitted, now);

    // Still queued when the drain started: answer, don't run.
    if (drainingNow() && queue_.closed()) {
        counters_->interruptedReplies.fetch_add(1);
        ServeResponse reply = makeRejection(
            item.request, Status::interrupted(
                              "the daemon drained before this request "
                              "was dispatched"));
        reply.queueMs = queue_ms;
        sendReply(item.session, reply);
        return;
    }

    // Aged out while queued: shed without spending a worker.
    if (now >= item.deadline) {
        counters_->shedDeadline.fetch_add(1);
        ServeResponse reply = makeRejection(
            item.request,
            Status::timedOut("deadline expired after " +
                             std::to_string(
                                 static_cast<long>(queue_ms)) +
                             " ms in the admission queue"));
        reply.queueMs = queue_ms;
        sendReply(item.session, reply);
        return;
    }

    const std::string key = cacheKey(item.request);
    ServeResponse reply;
    reply.id = item.request.id;
    reply.queueMs = queue_ms;

    ResultCache::Ticket ticket = cache_.begin(key);
    if (ticket.cached) {
        counters_->cacheHits.fetch_add(1);
        reply.cached = true;
        reply.result = ticket.result;
    } else if (ticket.coalesced) {
        counters_->coalesced.fetch_add(1);
        JobResult result;
        if (!ResultCache::waitFollower(ticket.flight, item.deadline,
                                       &result)) {
            counters_->shedDeadline.fetch_add(1);
            ServeResponse shed = makeRejection(
                item.request,
                Status::timedOut("deadline expired while coalesced "
                                 "onto an identical in-flight "
                                 "request"));
            shed.queueMs = queue_ms;
            sendReply(item.session, shed);
            return;
        }
        reply.coalesced = true;
        reply.result = result;
    } else {
        std::string server_note;
        JobResult result =
            runLeader(item.request, item.deadline, &server_note);
        cache_.finish(key, ticket.flight, result);
        reply.result = result;
        reply.serverDiagnostic = server_note;
    }

    // The identity fields come from the spec echo; make sure a
    // synthesized failure still carries them.
    if (reply.result.workload.empty())
        reply.result.workload = item.request.workload;
    if (reply.result.machine.empty())
        reply.result.machine = item.request.machine;
    if (reply.result.algorithm.empty())
        reply.result.algorithm = item.request.algorithm;
    reply.status = serveStatusOf(reply.result);
    if (reply.result.outcome == JobOutcome::Interrupted)
        counters_->interruptedReplies.fetch_add(1);
    sendReply(item.session, reply);
}

JobResult
Server::runLeader(const ServeRequest &request,
                  Clock::time_point deadline, std::string *server_note)
{
    JobResult result;
    result.workload = request.workload;
    result.machine = request.machine;
    result.algorithm = request.algorithm;

    std::string parse_error;
    auto algorithm =
        parseAlgorithmSpec(request.algorithm, &parse_error);
    if (!algorithm.has_value()) {
        result.outcome = JobOutcome::Failed;
        result.error = ErrorCode::InvalidSpec;
        result.diagnostic = "algorithm: " + parse_error;
        return result;
    }

    JobSpec spec;
    spec.workload = request.workload;
    spec.machine = request.machine;
    spec.algorithm = *algorithm;
    spec.computeSpeedup = request.computeSpeedup;

    JobPolicy policy;
    policy.retries = options_.retries;
    policy.faults = options_.faults;
    if (deadline != Clock::time_point::max()) {
        const auto remaining =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                deadline - Clock::now())
                .count();
        policy.deadlineMs =
            static_cast<int>(remaining > 0 ? remaining : 1);
    }

    counters_->jobsRun.fetch_add(1);
    result = runJobIsolated(spec, policy, *pool_);
    noteWorkerHealth(result);

    if (result.retriedThenOk()) {
        // The grid's deterministic backoff is a pure function of
        // (job key, attempt), so the delays the supervisor actually
        // slept can be recomputed here for the reply diagnostic
        // without perturbing the result itself.
        counters_->healedRetries.fetch_add(1);
        std::string backoffs;
        for (int attempt = 2; attempt <= result.attempts; ++attempt) {
            if (!backoffs.empty())
                backoffs += ", ";
            backoffs += std::to_string(
                retryBackoffMs(jobKey(spec), attempt));
        }
        *server_note = "healed after " +
                       std::to_string(result.attempts) +
                       " attempts; retry backoff ms: [" + backoffs +
                       "]";
    }
    return result;
}

bool
Server::degraded(std::string *why) const
{
    const int64_t until = degradedUntilMs_.load();
    if (until == 0 || steadyMs() >= until)
        return false;
    *why = "worker pool is crash-looping; admissions refused for a "
           "cooldown window";
    return true;
}

void
Server::noteWorkerHealth(const JobResult &result)
{
    const bool worker_death =
        !result.ok() && (result.error == ErrorCode::WorkerCrashed ||
                         result.error == ErrorCode::WorkerKilled);
    if (!worker_death) {
        if (result.ok())
            consecutiveWorkerDeaths_.store(0);
        return;
    }
    counters_->workerDeaths.fetch_add(1);
    const int run = consecutiveWorkerDeaths_.fetch_add(1) + 1;
    if (run < options_.crashLoopThreshold)
        return;
    // Trip the breaker: refuse admissions for a jittered cooldown.
    // The jitter is deterministic in the trip ordinal, same recipe as
    // the retry backoff, so degraded windows are reproducible.
    const uint64_t trip = degradeTrips_.fetch_add(1) + 1;
    Rng rng(fnv1aHash("serve.degrade") ^ trip);
    const double factor = 0.5 + rng.uniform();
    const int64_t cooldown = static_cast<int64_t>(
        static_cast<double>(options_.degradeCooldownMs) * factor);
    degradedUntilMs_.store(steadyMs() + cooldown);
    consecutiveWorkerDeaths_.store(0);
    if (options_.verbose)
        std::fprintf(stderr,
                     "[csched_serve] crash loop detected (%d "
                     "consecutive worker deaths); degraded for %lld "
                     "ms\n",
                     run, static_cast<long long>(cooldown));
}

void
Server::sendReply(const std::shared_ptr<Session> &session,
                  const ServeResponse &response)
{
    const Status sent = session->send(response, options_.timings);
    if (sent.ok())
        counters_->repliesSent.fetch_add(1);
    else
        counters_->replyWriteFailures.fetch_add(1);
}

int
Server::drainAndExit()
{
    const int signum = interruptSignal();
    if (options_.verbose)
        std::fprintf(stderr,
                     "[csched_serve] draining (%s); %zu queued, "
                     "deadline %d ms\n",
                     signum != 0 ? "signal" : "stop", queue_.size(),
                     options_.drainDeadlineMs);

    // 1. No new connections, no new admissions.
    stop_.store(true);
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        ::unlink(options_.socketPath.c_str());
        listenFd_ = -1;
    }
    queue_.close();

    // 2. In-flight grace: dispatchers finish their current job and
    //    answer the queued backlog with `interrupted`.
    {
        std::unique_lock<std::mutex> lock(dispatcherDoneMutex_);
        dispatcherDone_.wait_until(
            lock,
            Clock::now() +
                std::chrono::milliseconds(options_.drainDeadlineMs),
            [this] { return activeDispatchers_.load() == 0; });
    }
    if (activeDispatchers_.load() != 0) {
        // 3. Past the drain deadline: escalate to cooperative
        //    cancellation -- running jobs unwind at their next
        //    checkpoint, hung workers are killed by the watchdog.
        if (options_.verbose)
            std::fprintf(stderr, "[csched_serve] drain deadline "
                                 "passed; escalating\n");
        escalateInterrupt();
    }
    for (std::thread &thread : dispatcherThreads_)
        thread.join();
    dispatcherThreads_.clear();

    // 4. Every request read so far has its reply written.  Let the
    //    clients finish the handshake: each gets `interrupted` for
    //    anything it still sends, sees the drain, and closes -- the
    //    reader exits on that EOF with nothing lost.  Only clients
    //    that outstay the drain deadline are force-closed.
    {
        std::unique_lock<std::mutex> lock(readerDoneMutex_);
        readerDone_.wait_until(
            lock,
            Clock::now() +
                std::chrono::milliseconds(options_.drainDeadlineMs),
            [this] { return activeReaders_.load() == 0; });
    }
    if (activeReaders_.load() != 0) {
        readersShouldExit_.store(true);
        std::lock_guard<std::mutex> lock(sessionsMutex_);
        for (const auto &session : sessions_)
            session->shutdownRead();
    }
    for (std::thread &thread : readerThreads_)
        thread.join();
    readerThreads_.clear();
    {
        std::lock_guard<std::mutex> lock(sessionsMutex_);
        sessions_.clear();
    }

    // 5. Reap the worker processes.
    pool_.reset();
    finished_ = true;
    if (options_.verbose)
        std::fprintf(stderr, "[csched_serve] drained; exit %d\n",
                     signum != 0 ? interruptExitCode(signum) : 0);
    return signum != 0 ? interruptExitCode(signum) : 0;
}

ServeStats
Server::stats() const
{
    ServeStats out;
    out.connections = counters_->connections.load();
    out.acceptRejected = counters_->acceptRejected.load();
    out.requestsRead = counters_->requestsRead.load();
    out.malformedFrames = counters_->malformedFrames.load();
    out.oversizedFrames = counters_->oversizedFrames.load();
    out.invalidRequests = counters_->invalidRequests.load();
    out.admitted = counters_->admitted.load();
    out.rejectedOverloaded = counters_->rejectedOverloaded.load();
    out.shedDeadline = counters_->shedDeadline.load();
    out.interruptedReplies = counters_->interruptedReplies.load();
    out.cacheHits = counters_->cacheHits.load();
    out.coalesced = counters_->coalesced.load();
    out.jobsRun = counters_->jobsRun.load();
    out.workerDeaths = counters_->workerDeaths.load();
    out.healedRetries = counters_->healedRetries.load();
    out.degradeTrips = degradeTrips_.load();
    out.repliesSent = counters_->repliesSent.load();
    out.replyWriteFailures = counters_->replyWriteFailures.load();
    return out;
}

} // namespace csched
