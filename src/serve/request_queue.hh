/**
 * @file
 * The serve daemon's admission queue: a bounded MPMC queue between the
 * per-connection reader threads (producers) and the dispatcher pool
 * (consumers).
 *
 * Boundedness *is* the backpressure mechanism: push() never blocks and
 * never grows the queue past its capacity -- a full queue refuses with
 * ErrorCode::Overloaded, which the reader turns into a structured
 * rejection reply instead of buffering unbounded work the daemon
 * cannot keep up with.  Each queued item carries the wall-clock
 * deadline attached at admission, so a dispatcher can shed requests
 * that aged out while waiting without spending a worker on them.
 *
 * close() flips the queue into drain mode: pushes fail with
 * Interrupted (readers answer late arrivals themselves), pops keep
 * succeeding until the backlog is empty so the drain logic can reply
 * Interrupted to every queued request, and then pop() returns false
 * forever -- the dispatcher exit condition.
 */

#ifndef CSCHED_SERVE_REQUEST_QUEUE_HH
#define CSCHED_SERVE_REQUEST_QUEUE_HH

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <memory>
#include <mutex>

#include "serve/protocol.hh"
#include "support/status.hh"

namespace csched {

class Session;

/** One admitted request waiting for a dispatcher. */
struct QueuedRequest
{
    /**
     * The connection to answer on.  Shared ownership: the session must
     * outlive the reply even if the reader thread (and its client)
     * already went away.
     */
    std::shared_ptr<Session> session;
    ServeRequest request;
    /** When admission happened (queue-latency measurement). */
    std::chrono::steady_clock::time_point admitted;
    /**
     * End-to-end deadline fixed at admission; queue wait counts
     * against it.  time_point::max() when the request has none.
     */
    std::chrono::steady_clock::time_point deadline;
};

/** Bounded MPMC queue; see the file comment for the drain contract. */
class RequestQueue
{
  public:
    explicit RequestQueue(std::size_t capacity);

    /**
     * Admit @p item.  Fails with Overloaded when the queue is at
     * capacity and with Interrupted after close(); never blocks.
     */
    Status push(QueuedRequest item);

    /**
     * Take the oldest item, waiting up to @p timeout_ms.  Returns
     * false on timeout or when the queue is closed *and* empty (the
     * consumer's signal to exit -- a closed queue still hands out its
     * backlog first).
     */
    bool pop(QueuedRequest *out, int timeout_ms);

    /** Refuse further pushes and wake every waiting consumer. */
    void close();

    bool closed() const;
    std::size_t size() const;
    std::size_t capacity() const { return capacity_; }

  private:
    const std::size_t capacity_;
    mutable std::mutex mutex_;
    std::condition_variable ready_;
    std::deque<QueuedRequest> items_;
    bool closed_ = false;
};

} // namespace csched

#endif // CSCHED_SERVE_REQUEST_QUEUE_HH
