/**
 * @file
 * The scheduler-as-a-service daemon: accepts schedule requests over a
 * UNIX-domain socket, dispatches them onto the pre-forked worker pool
 * (runner/worker.hh), and returns one structured response per request
 * -- under overload, under worker crashes, and through a drain.
 *
 * Architecture (one process, four kinds of threads):
 *
 *   accept loop (run(), caller's thread)
 *     -> reader thread per connection: decode frames, apply admission
 *        control, reply to rejections inline
 *       -> bounded RequestQueue (the backpressure boundary)
 *         -> dispatcher threads: shed aged-out requests, consult the
 *            result cache / single-flight table, run jobs in isolated
 *            workers, reply
 *
 * Robustness properties, each with a dedicated mechanism:
 *
 *  - Admission control / backpressure: the queue is bounded; a full
 *    queue or a crash-looping pool refuses with a structured
 *    `overloaded` reply instead of buffering unbounded work.  Each
 *    request's deadline is fixed at admission, so time spent queued
 *    counts against it and dispatchers shed aged-out requests without
 *    spending a worker.
 *  - Worker supervision: dead workers are respawned with the runner's
 *    deterministic jittered backoff; per-request retries are bounded
 *    by the policy's retry budget; a *crash-looping* pool (threshold
 *    consecutive worker deaths) trips the server into a degraded
 *    window during which admissions are refused, bounding the blast
 *    radius of a poisoned request stream.
 *  - Graceful drain: SIGINT/SIGTERM/SIGHUP (serve-style handlers,
 *    runner/shutdown.hh) stop admissions, let in-flight jobs finish up
 *    to the drain deadline, answer everything still queued with
 *    `interrupted`, then escalate to cooperative cancellation for
 *    stragglers.  Exit code is 128+signum for a signal-driven drain,
 *    0 for a programmatic stop().
 *  - Slow clients: replies are written under SO_SNDTIMEO, so a peer
 *    that stopped reading costs one bounded write, not a parked
 *    dispatcher.
 *
 * Fault points (deterministic, support/fault_injection.hh):
 * "serve.accept" in scope "serve/accept" (Fail closes the fresh
 * connection before reading -- simulated accept pressure; safe for the
 * exactly-one-reply proof because nothing was read), "serve.admit" and
 * "serve.reply" in per-connection scopes "serve/conn-<n>" (both always
 * produce a structured reply; see session.hh for the reply rewrite
 * rule).
 */

#ifndef CSCHED_SERVE_SERVER_HH
#define CSCHED_SERVE_SERVER_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "runner/worker.hh"
#include "serve/protocol.hh"
#include "serve/request_queue.hh"
#include "serve/result_cache.hh"
#include "serve/session.hh"
#include "support/fault_injection.hh"
#include "support/status.hh"

namespace csched {

/** Tunables of one daemon instance. */
struct ServeOptions
{
    std::string socketPath;
    int workers = 2;            ///< pre-forked worker processes
    int dispatchers = 2;        ///< dispatcher threads
    std::size_t queueCapacity = 64;
    std::size_t cacheCapacity = 128;  ///< 0 disables the result cache
    /** Deadline for requests that do not bring their own; 0 = none. */
    int defaultDeadlineMs = 10000;
    int retries = 1;            ///< per-request retry budget
    int memLimitMb = 0;         ///< worker RLIMIT_AS cap; 0 = none
    uint32_t maxFrameBytes = kServeMaxFrameBytes;
    int sendTimeoutMs = 2000;   ///< SO_SNDTIMEO per reply write
    int drainDeadlineMs = 2000; ///< in-flight grace before escalation
    /** Consecutive worker deaths that trip the degraded window. */
    int crashLoopThreshold = 3;
    int degradeCooldownMs = 1000;
    bool timings = true;        ///< include queueMs in replies
    bool verbose = false;       ///< lifecycle lines on stderr
    /** Armed fault plan; nullptr = none.  Borrowed, not owned. */
    const FaultPlan *faults = nullptr;
};

/** Monotonic counters; a consistent-enough snapshot via stats(). */
struct ServeStats
{
    uint64_t connections = 0;
    uint64_t acceptRejected = 0;  ///< serve.accept fault closures
    uint64_t requestsRead = 0;    ///< frames that decoded to requests
    uint64_t malformedFrames = 0;
    uint64_t oversizedFrames = 0;
    uint64_t invalidRequests = 0;
    uint64_t admitted = 0;
    uint64_t rejectedOverloaded = 0;
    uint64_t shedDeadline = 0;    ///< aged out in queue / follower wait
    uint64_t interruptedReplies = 0;
    uint64_t cacheHits = 0;
    uint64_t coalesced = 0;
    uint64_t jobsRun = 0;
    uint64_t workerDeaths = 0;    ///< terminal worker-death results
    uint64_t healedRetries = 0;   ///< ok after >= 1 dead worker
    uint64_t degradeTrips = 0;
    uint64_t repliesSent = 0;
    uint64_t replyWriteFailures = 0;
};

class Server
{
  public:
    explicit Server(ServeOptions options);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Fork the worker pool, bind the socket, start the dispatchers.
     * Call while the process is still single-threaded (the pool forks
     * here).  The listen socket is bound *after* the fork so workers
     * never inherit it.
     */
    Status start();

    /**
     * Serve until a drain is requested (signal with serve-style
     * handlers installed, or stop()), then drain and return the exit
     * code: 128+signum for a signal, 0 for stop().  Runs the accept
     * loop on the calling thread.
     */
    int run();

    /** Programmatic drain trigger (tests, --max-lifetime drivers). */
    void stop();

    ServeStats stats() const;
    const std::string &socketPath() const
    {
        return options_.socketPath;
    }

  private:
    void readerMain(std::shared_ptr<Session> session);
    void dispatcherMain();
    void handle(QueuedRequest item);
    JobResult runLeader(const ServeRequest &request,
                        std::chrono::steady_clock::time_point deadline,
                        std::string *server_note);
    /** Admission gate; fills @p why when refusing. */
    bool degraded(std::string *why) const;
    void noteWorkerHealth(const JobResult &result);
    bool drainingNow() const;
    void sendReply(const std::shared_ptr<Session> &session,
                   const ServeResponse &response);
    int drainAndExit();

    ServeOptions options_;
    std::unique_ptr<WorkerPool> pool_;
    RequestQueue queue_;
    ResultCache cache_;
    int listenFd_ = -1;
    bool started_ = false;
    bool finished_ = false;

    std::atomic<bool> stop_{false};
    std::atomic<bool> readersShouldExit_{false};

    std::vector<std::thread> dispatcherThreads_;
    std::atomic<int> activeDispatchers_{0};
    std::mutex dispatcherDoneMutex_;
    std::condition_variable dispatcherDone_;

    std::mutex sessionsMutex_;
    std::vector<std::shared_ptr<Session>> sessions_;
    std::vector<std::thread> readerThreads_;
    std::atomic<int> activeReaders_{0};
    std::mutex readerDoneMutex_;
    std::condition_variable readerDone_;
    uint64_t nextSessionId_ = 0;

    /** Crash-loop supervision state. */
    std::atomic<int> consecutiveWorkerDeaths_{0};
    std::atomic<int64_t> degradedUntilMs_{0};  ///< steady-clock ms
    std::atomic<uint64_t> degradeTrips_{0};

    struct Counters;
    std::unique_ptr<Counters> counters_;
};

} // namespace csched

#endif // CSCHED_SERVE_SERVER_HH
