#include "serve/session.hh"

#include <sys/socket.h>
#include <unistd.h>

#include "support/socket.hh"
#include "support/subprocess.hh"

namespace csched {

namespace {

std::string
connectionScopeKey(uint64_t id)
{
    return "serve/conn-" + std::to_string(id);
}

} // namespace

Session::Session(int fd, uint64_t id, int send_timeout_ms,
                 const FaultPlan *faults)
    : fd_(fd), id_(id), admitScope_(faults, connectionScopeKey(id)),
      replyScope_(faults, connectionScopeKey(id))
{
    setSendTimeout(fd_, send_timeout_ms);
}

Session::~Session()
{
    ::close(fd_);
}

Status
Session::send(const ServeResponse &response, bool timings)
{
    std::lock_guard<std::mutex> lock(writeMutex_);
    ServeResponse outgoing = response;
    try {
        replyScope_.hit("serve.reply");
    } catch (const StatusError &err) {
        // Rewrite, never drop: the client still gets exactly one
        // structured reply for this id, now carrying the injected
        // failure.
        outgoing.status = errorCodeName(err.status.code());
        outgoing.result.outcome = JobOutcome::Failed;
        outgoing.result.error = err.status.code();
        outgoing.result.diagnostic =
            "reply fault injected: " + err.status.message();
    }
    const Status written =
        writeFrame(fd_, encodeServeResponse(outgoing, timings));
    if (written.ok())
        ++repliesSent_;
    return written;
}

uint64_t
Session::repliesSent() const
{
    std::lock_guard<std::mutex> lock(writeMutex_);
    return repliesSent_;
}

void
Session::shutdownRead()
{
    (void)::shutdown(fd_, SHUT_RD);
}

} // namespace csched
