/**
 * @file
 * The convergent scheduler driver (Sections 2 and 5).
 *
 * Runs a configured pass pipeline over a fresh uniform preference
 * matrix, records the convergence of spatial preferences after every
 * pass (the data behind Figures 7 and 9), then extracts the cluster
 * assignment (each instruction's preferred cluster, with preplaced
 * instructions clamped to their homes) and uses the preferred times as
 * priorities for the cycle-driven list scheduler.
 */

#ifndef CSCHED_CONVERGENT_CONVERGENT_SCHEDULER_HH
#define CSCHED_CONVERGENT_CONVERGENT_SCHEDULER_HH

#include <memory>
#include <string>
#include <vector>

#include "convergent/pass.hh"
#include "sched/algorithm.hh"
#include "sched/schedule.hh"
#include "support/status.hh"

namespace csched {

class PreferenceMatrix;

/**
 * Verify the paper's Section-3 matrix invariants after a pass: every
 * weight finite and in [0, 1], every instruction row summing to 1.
 * Returns a CheckFailed Status naming @p pass on the first violation.
 * The scheduler calls this after every pass; on violation it
 * renormalizes once (the legitimate fix for a pass that scaled without
 * normalizing) and fails the job only if the invariants still do not
 * hold (non-finite weights, which normalization cannot heal).
 */
Status checkWeightInvariants(const PreferenceMatrix &weights,
                             const std::string &pass);

/** Everything a convergent-scheduling run produces. */
struct ConvergentResult
{
    std::vector<int> assignment;
    std::vector<int> preferredTime;
    Schedule schedule;
    std::vector<PassStep> trace;
};

/** A configured convergent scheduler bound to one machine. */
class ConvergentScheduler
{
  public:
    /**
     * Create a scheduler from a comma-separated pass sequence (see
     * pass_registry.hh and sequences.hh).
     */
    ConvergentScheduler(const MachineModel &machine,
                        const std::string &sequence,
                        PassParams params = PassParams());

    /**
     * Convenience: the Table-1 sequence and tuned heuristic weights
     * matching the machine's family (see sequences.hh).
     */
    static ConvergentScheduler forMachine(const MachineModel &machine);

    /** Run the pipeline and produce the final space-time schedule. */
    ConvergentResult schedule(const DependenceGraph &graph) const;

    /** Pass names in pipeline order. */
    std::vector<std::string> passNames() const;

    const PassParams &params() const { return params_; }

  private:
    const MachineModel &machine_;
    std::vector<std::unique_ptr<Pass>> passes_;
    PassParams params_;
};

} // namespace csched

#endif // CSCHED_CONVERGENT_CONVERGENT_SCHEDULER_HH
