#include "convergent/convergent_scheduler.hh"

#include <chrono>

#include "convergent/pass_registry.hh"
#include "convergent/sequences.hh"
#include "sched/list_scheduler.hh"
#include "sched/priorities.hh"
#include "support/fault_injection.hh"
#include "support/logging.hh"

namespace csched {

ConvergentScheduler::ConvergentScheduler(const MachineModel &machine,
                                         const std::string &sequence,
                                         PassParams params)
    : machine_(machine),
      passes_(parsePassSequence(sequence)),
      params_(params)
{
}

ConvergentScheduler
ConvergentScheduler::forMachine(const MachineModel &machine)
{
    const bool is_raw = machine.commStyle() == CommStyle::Network;
    return ConvergentScheduler(
        machine, is_raw ? rawPassSequence() : vliwPassSequence(),
        is_raw ? rawPassParams() : vliwPassParams());
}

std::vector<std::string>
ConvergentScheduler::passNames() const
{
    std::vector<std::string> names;
    for (const auto &pass : passes_)
        names.push_back(pass->name());
    return names;
}

ConvergentResult
ConvergentScheduler::schedule(const DependenceGraph &graph) const
{
    CSCHED_ASSERT(graph.finalized(), "graph must be finalized");
    const int n = graph.numInstructions();

    PreferenceMatrix weights(n, graph.criticalPathLength(),
                             machine_.numClusters());
    Rng rng(params_.noiseSeed);
    PassContext ctx{graph, machine_, weights, params_, rng};

    ConvergentResult result{std::vector<int>(n), std::vector<int>(n),
                            Schedule(n, machine_.numClusters()),
                            {}};

    std::vector<int> before = weights.preferredClusters();
    for (const auto &pass : passes_) {
        checkpoint("pass.apply");
        const auto begin = std::chrono::steady_clock::now();
        pass->run(ctx);
        const auto end = std::chrono::steady_clock::now();
        const std::vector<int> after = weights.preferredClusters();
        int changed = 0;
        for (InstrId i = 0; i < n; ++i)
            if (after[i] != before[i])
                ++changed;
        result.trace.push_back(
            {pass->name(), static_cast<double>(changed) / n,
             pass->temporalOnly(),
             std::chrono::duration<double>(end - begin).count()});
        before = after;
    }

    // Extract the assignment: preferred cluster, with preplaced
    // instructions clamped to their homes (correctness requirement).
    for (InstrId i = 0; i < n; ++i) {
        const auto &instr = graph.instr(i);
        int cluster = weights.preferredCluster(i);
        if (instr.preplaced())
            cluster = instr.homeCluster;
        if (!machine_.canExecute(cluster, instr.op)) {
            // Fall back to the best capable cluster.
            int best = -1;
            for (int c = 0; c < machine_.numClusters(); ++c) {
                if (!machine_.canExecute(c, instr.op))
                    continue;
                if (best == -1 || weights.spaceMarginal(i, c) >
                                      weights.spaceMarginal(i, best)) {
                    best = c;
                }
            }
            CSCHED_ASSERT(best != -1, "no cluster can execute ",
                          opcodeName(instr.op));
            cluster = best;
        }
        result.assignment[i] = cluster;
        result.preferredTime[i] = weights.preferredTime(i);
    }

    // Integration with the host scheduler follows the paper's Section
    // 5: Chorus (the clustered VLIW) uses the temporal assignments as
    // list-scheduling priorities, while on Raw "the temporal
    // assignments are computed independently by its own instruction
    // scheduler" -- i.e. classic critical-path list scheduling over
    // the convergent spatial assignment.
    const ListScheduler scheduler(machine_);
    const auto priority =
        machine_.commStyle() == CommStyle::Network
            ? criticalPathPriority(graph)
            : preferredTimePriority(graph, result.preferredTime);
    result.schedule = scheduler.run(graph, result.assignment, priority);
    return result;
}

} // namespace csched
