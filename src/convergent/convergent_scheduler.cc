#include "convergent/convergent_scheduler.hh"

#include <chrono>
#include <cmath>

#include "convergent/pass_registry.hh"
#include "convergent/preference_matrix.hh"
#include "convergent/sequences.hh"
#include "sched/list_scheduler.hh"
#include "sched/priorities.hh"
#include "support/fault_injection.hh"
#include "support/logging.hh"

namespace csched {

Status
checkWeightInvariants(const PreferenceMatrix &weights,
                      const std::string &pass)
{
    // Per-weight slack for accumulated rounding; the row-sum check
    // gets a little more because it sums num_times * num_clusters
    // rounded terms.
    constexpr double kSlack = 1e-9;
    constexpr double kSumSlack = 1e-6;

    const auto fail = [&pass](InstrId i, const std::string &what) {
        return Status::checkFailed(
            "pass '" + pass + "' broke the weight invariants: " +
            what + " (instruction " + std::to_string(i) + ")");
    };

    for (InstrId i = 0; i < weights.numInstructions(); ++i) {
        // Slots outside the row's feasible window are exactly zero by
        // construction, so checking the window checks the whole row.
        const auto row = weights.row(i);
        double sum = 0.0;
        for (int c = 0; c < weights.numClusters(); ++c) {
            for (const double w : row.windowSpan(c)) {
                if (!std::isfinite(w))
                    return fail(i, "non-finite weight");
                if (w < -kSlack || w > 1.0 + kSlack)
                    return fail(i, "weight " + std::to_string(w) +
                                       " outside [0, 1]");
                sum += w;
            }
        }
        if (std::abs(sum - 1.0) > kSumSlack)
            return fail(i, "row sums to " + std::to_string(sum) +
                               ", not 1");
    }
    return Status();
}

ConvergentScheduler::ConvergentScheduler(const MachineModel &machine,
                                         const std::string &sequence,
                                         PassParams params)
    : machine_(machine),
      passes_(parsePassSequence(sequence)),
      params_(params)
{
}

ConvergentScheduler
ConvergentScheduler::forMachine(const MachineModel &machine)
{
    const bool is_raw = machine.commStyle() == CommStyle::Network;
    return ConvergentScheduler(
        machine, is_raw ? rawPassSequence() : vliwPassSequence(),
        is_raw ? rawPassParams() : vliwPassParams());
}

std::vector<std::string>
ConvergentScheduler::passNames() const
{
    std::vector<std::string> names;
    for (const auto &pass : passes_)
        names.push_back(pass->name());
    return names;
}

ConvergentResult
ConvergentScheduler::schedule(const DependenceGraph &graph) const
{
    CSCHED_ASSERT(graph.finalized(), "graph must be finalized");
    const int n = graph.numInstructions();

    PreferenceMatrix weights(n, graph.criticalPathLength(),
                             machine_.numClusters());
    // On a degraded machine, mask dead clusters out of every row up
    // front (zero + renormalize): passes then redistribute preference
    // mass among alive clusters only, and INITTIME's capability
    // masking keeps the columns zero for the rest of the pipeline.
    if (machine_.degraded()) {
        for (InstrId i = 0; i < n; ++i) {
            auto row = weights.row(i);
            for (int c = 0; c < machine_.numClusters(); ++c)
                if (!machine_.clusterAlive(c))
                    row.zeroCluster(c);
            row.normalize();
        }
    }
    Rng rng(params_.noiseSeed);
    PassContext ctx{graph, machine_, weights, params_, rng};

    ConvergentResult result{std::vector<int>(n), std::vector<int>(n),
                            Schedule(n, machine_.numClusters()),
                            {}};

    std::vector<int> before = weights.preferredClusters();
    // The rollback snapshot lives outside the pass loop so that each
    // iteration copy-assigns into the same allocation; on large units
    // the matrix arena runs to hundreds of megabytes, and re-mallocing
    // (and re-faulting) it per pass would dominate the pipeline.
    PreferenceMatrix snapshot = weights;
    for (const auto &pass : passes_) {
        checkpoint("pass.apply");
        // Pass-level graceful degradation (the paper's Section-4
        // claim that the composition tolerates individual passes
        // misbehaving): snapshot the matrix, and if the pass throws
        // or leaves invariants that one renormalization cannot heal,
        // roll the matrix back and continue without the pass -- the
        // step is marked "skipped" in the trace.  Cooperative
        // cancellation (deadline, shutdown) must still unwind: a
        // skipped pass is a degraded schedule, a missed deadline is
        // not.
        snapshot = weights;
        const auto begin = std::chrono::steady_clock::now();
        std::string skip_reason;
        try {
            pass->run(ctx);
            // Deterministic stand-in for a throwing pass (tests).
            faultPoint("pass.body");
            // Guard the Section-3 invariants after every pass.  A
            // pass that scaled without normalizing is healed by one
            // renormalization; anything normalization cannot restore
            // (non-finite weights) gets the pass rolled back.
            if (!checkWeightInvariants(weights, pass->name()).ok()) {
                weights.normalizeAll();
                const Status recheck =
                    checkWeightInvariants(weights, pass->name());
                if (!recheck.ok())
                    throw StatusError(recheck);
            }
        } catch (const StatusError &error) {
            if (error.status.code() == ErrorCode::Timeout ||
                error.status.code() == ErrorCode::Interrupted)
                throw;
            skip_reason = error.status.toString();
        } catch (const std::exception &error) {
            skip_reason = error.what();
        }
        if (!skip_reason.empty()) {
            weights = snapshot;
            CSCHED_WARN("pass '", pass->name(),
                        "' skipped (matrix rolled back): ",
                        skip_reason);
        }
        const auto end = std::chrono::steady_clock::now();
        const std::vector<int> after = weights.preferredClusters();
        int changed = 0;
        for (InstrId i = 0; i < n; ++i)
            if (after[i] != before[i])
                ++changed;
        result.trace.push_back(
            {pass->name(), static_cast<double>(changed) / n,
             pass->temporalOnly(),
             std::chrono::duration<double>(end - begin).count(),
             !skip_reason.empty()});
        before = after;
    }

    // Extract the assignment: preferred cluster, with preplaced
    // instructions clamped to their homes (correctness requirement).
    for (InstrId i = 0; i < n; ++i) {
        const auto &instr = graph.instr(i);
        int cluster = weights.preferredCluster(i);
        if (instr.preplaced())
            cluster = instr.homeCluster;
        if (!machine_.canExecute(cluster, instr.op)) {
            // Fall back to the best capable cluster.
            int best = -1;
            for (int c = 0; c < machine_.numClusters(); ++c) {
                if (!machine_.canExecute(c, instr.op))
                    continue;
                if (best == -1 || weights.spaceMarginal(i, c) >
                                      weights.spaceMarginal(i, best)) {
                    best = c;
                }
            }
            CSCHED_ASSERT(best != -1, "no cluster can execute ",
                          opcodeName(instr.op));
            cluster = best;
        }
        result.assignment[i] = cluster;
        result.preferredTime[i] = weights.preferredTime(i);
    }

    // Integration with the host scheduler follows the paper's Section
    // 5: Chorus (the clustered VLIW) uses the temporal assignments as
    // list-scheduling priorities, while on Raw "the temporal
    // assignments are computed independently by its own instruction
    // scheduler" -- i.e. classic critical-path list scheduling over
    // the convergent spatial assignment.
    const ListScheduler scheduler(machine_);
    const auto priority =
        machine_.commStyle() == CommStyle::Network
            ? criticalPathPriority(graph)
            : preferredTimePriority(graph, result.preferredTime);
    result.schedule = scheduler.run(graph, result.assignment, priority);
    return result;
}

} // namespace csched
