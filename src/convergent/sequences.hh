/**
 * @file
 * The pass sequences of the paper's Table 1.
 */

#ifndef CSCHED_CONVERGENT_SEQUENCES_HH
#define CSCHED_CONVERGENT_SEQUENCES_HH

#include <string>

#include "convergent/pass.hh"

namespace csched {

/**
 * Table 1(a): the sequence used for the Raw machine --
 * INITTIME, PLACEPROP, LOAD, PLACE, PATH, PATHPROP, LEVEL, PATHPROP,
 * COMM, PATHPROP, EMPHCP.
 */
std::string rawPassSequence();

/**
 * Table 1(b): the sequence used for the clustered VLIW --
 * INITTIME, NOISE, FIRST, PATH, COMM, PLACE, PLACEPROP, COMM, EMPHCP.
 */
std::string vliwPassSequence();

/**
 * Heuristic weights tuned for the Raw sequence.  The paper selects
 * these constants "by trial-and-error" per system (Section 4); the
 * values here were tuned the same way against this repository's
 * workloads and machine models.
 */
PassParams rawPassParams();

/** Heuristic weights tuned for the clustered-VLIW sequence. */
PassParams vliwPassParams();

} // namespace csched

#endif // CSCHED_CONVERGENT_SEQUENCES_HH
