/**
 * @file
 * The convergent-scheduling preference matrix (Section 3 of the paper).
 *
 * Preferences are stored as a three-dimensional weight matrix
 * W[i][t][c] over instructions, time slots, and clusters, with as many
 * time slots as the critical-path length.  The class maintains the
 * paper's invariants
 *
 *     0 <= W[i][t][c] <= 1      and      sum_{t,c} W[i][t][c] = 1
 *
 * (restored by normalize()), exposes the derived quantities every pass
 * consumes -- space/time marginals, preferred cluster and time,
 * runner-up cluster, and confidence (the ratio of the top two cluster
 * marginals) -- and provides the basic operations of Section 3:
 * scaling individual weights, rows, and columns, linear combination of
 * two instructions' matrices, and normalization.  Marginals are cached
 * and recomputed lazily after mutations, mirroring the paper's
 * incrementally-maintained sums.
 */

#ifndef CSCHED_CONVERGENT_PREFERENCE_MATRIX_HH
#define CSCHED_CONVERGENT_PREFERENCE_MATRIX_HH

#include <vector>

#include "ir/instruction.hh"

namespace csched {

/** Dense per-instruction (time x cluster) weight matrix. */
class PreferenceMatrix
{
  public:
    /**
     * Create a matrix with uniform weights: every (t, c) slot of every
     * instruction gets 1 / (num_times * num_clusters).
     */
    PreferenceMatrix(int num_instrs, int num_times, int num_clusters);

    int numInstructions() const { return numInstrs_; }
    int numTimes() const { return numTimes_; }
    int numClusters() const { return numClusters_; }

    /** Weight of instruction @p i at time @p t on cluster @p c. */
    double at(InstrId i, int t, int c) const;

    /** Overwrite one weight (must be >= 0). */
    void set(InstrId i, int t, int c, double value);

    /** Multiply one weight by @p factor (>= 0). */
    void scale(InstrId i, int t, int c, double factor);

    /** Multiply the whole cluster column (all t) by @p factor. */
    void scaleCluster(InstrId i, int c, double factor);

    /** Multiply the whole time row (all c) by @p factor. */
    void scaleTime(InstrId i, int t, double factor);

    /**
     * Linear combination of Section 3 with n = 2 and i1 = j:
     * W[i] <- w * W[i] + (1 - w) * W[other], elementwise.
     */
    void blend(InstrId i, InstrId other, double w);

    /**
     * Restore the sum-to-one invariant for instruction @p i.  If every
     * weight was squashed to zero the row is reset to uniform (no pass
     * is allowed to make an instruction unschedulable).
     */
    void normalize(InstrId i);

    /** normalize() every instruction. */
    void normalizeAll();

    /** Sum over time of W[i][.][c]. */
    double spaceMarginal(InstrId i, int c) const;

    /** Sum over clusters of W[i][t][.]. */
    double timeMarginal(InstrId i, int t) const;

    /** argmax_c of the space marginal (lowest index wins ties). */
    int preferredCluster(InstrId i) const;

    /** argmax_t of the time marginal (lowest index wins ties). */
    int preferredTime(InstrId i) const;

    /**
     * Expectation of the time marginal, rounded to a slot.  A more
     * noise-robust summary of the temporal preference than the argmax
     * when several slots carry similar weight.
     */
    int expectedTime(InstrId i) const;

    /**
     * Second-best cluster by space marginal; for single-cluster
     * machines this equals the preferred cluster.
     */
    int runnerUpCluster(InstrId i) const;

    /**
     * Confidence of the current spatial assignment: the ratio of the
     * preferred cluster's marginal to the runner-up's (Section 3).
     * Returns a large finite value when the runner-up marginal is 0.
     */
    double confidence(InstrId i) const;

    /** Preferred cluster of every instruction. */
    std::vector<int> preferredClusters() const;

    /** Preferred time of every instruction. */
    std::vector<int> preferredTimes() const;

  private:
    void checkIndex(InstrId i, int t, int c) const;
    void touch(InstrId i);
    void refresh(InstrId i) const;

    double *row(InstrId i) { return &data_[static_cast<size_t>(i) * rowSize_]; }
    const double *
    row(InstrId i) const
    {
        return &data_[static_cast<size_t>(i) * rowSize_];
    }

    int numInstrs_;
    int numTimes_;
    int numClusters_;
    size_t rowSize_;
    std::vector<double> data_;

    // Lazily-maintained marginal caches.
    mutable std::vector<double> spaceSum_;   // [i * C + c]
    mutable std::vector<double> timeSum_;    // [i * T + t]
    mutable std::vector<bool> dirty_;
};

} // namespace csched

#endif // CSCHED_CONVERGENT_PREFERENCE_MATRIX_HH
