/**
 * @file
 * The convergent-scheduling preference matrix (Section 3 of the paper).
 *
 * Preferences are stored as a three-dimensional weight matrix
 * W[i][t][c] over instructions, time slots, and clusters, with as many
 * time slots as the critical-path length.  The class maintains the
 * paper's invariants
 *
 *     0 <= W[i][t][c] <= 1      and      sum_{t,c} W[i][t][c] = 1
 *
 * (restored by normalize()), and exposes the derived quantities every
 * pass consumes -- space/time marginals, preferred cluster and time,
 * runner-up cluster, and confidence (the ratio of the top two cluster
 * marginals).
 *
 * Engine layout (see DESIGN.md section 10).  One arena allocation
 * backs the whole engine; per instruction the (time x cluster) row is
 * stored cluster-blocked,
 *
 *     data[i * C*T + c * T + t]
 *
 * so the inner dimension of the hottest batched operation
 * (scaleCluster, the per-cluster multiply behind almost every pass)
 * is a contiguous T-long block instead of a stride-C walk.  Marginal
 * caches live in the same arena and are maintained incrementally:
 * scaleCluster refreshes exactly the one touched cluster sum while it
 * multiplies, scaleTime refreshes exactly the one touched time sum,
 * and only genuinely row-wide mutations invalidate a side wholesale.
 *
 * Rows additionally carry a feasible time window [lo, hi): every slot
 * outside the window is exactly +0.0, and every batched kernel
 * iterates the window only.  INITTIME establishes the windows from
 * the earliest-start/latest-finish slack, after which long narrow
 * graphs (fpppp, sha shapes) touch a small fraction of each row.
 * Skipping exact zeros is bit-transparent: weights are non-negative,
 * x + (+0.0) == x and (+0.0) * f == +0.0 bitwise, so windowed sums
 * and scales produce bit-identical results to full-row walks (the
 * differential test in tests/matrix_differential_test.cc holds the
 * engine to that).
 *
 * Mutation goes through RowView, a cursor that validates the row
 * index once and then applies fused batched kernels with no
 * per-element dispatch or bounds rechecks.  (The per-element
 * matrix-level mutators that bridged the rewrite are gone; their
 * one-release deprecation window has closed, and ci.sh builds with
 * -Werror=deprecated-declarations to keep such shims out.)  The
 * per-element read path at() is the supported compatibility surface
 * for traces and JSON emitters.
 *
 * Every summation a kernel performs accumulates in the exact order
 * the pre-rewrite engine used (space marginals ascend t per cluster,
 * time marginals ascend c per slot, normalize ascends t-major), so
 * the rewrite is bit-identical by construction, not just
 * approximately equal.
 */

#ifndef CSCHED_CONVERGENT_PREFERENCE_MATRIX_HH
#define CSCHED_CONVERGENT_PREFERENCE_MATRIX_HH

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "ir/instruction.hh"

namespace csched {

class Rng;

/** Dense per-instruction (time x cluster) weight matrix. */
class PreferenceMatrix
{
  public:
    class RowView;
    class ConstRowView;
    class MatrixView;

    /**
     * Create a matrix with uniform weights: every (t, c) slot of every
     * instruction gets 1 / (num_times * num_clusters).
     */
    PreferenceMatrix(int num_instrs, int num_times, int num_clusters);

    int numInstructions() const { return numInstrs_; }
    int numTimes() const { return numTimes_; }
    int numClusters() const { return numClusters_; }

    /** Batched mutation cursor for instruction @p i. */
    RowView row(InstrId i);

    /** Batched read cursor for instruction @p i. */
    ConstRowView row(InstrId i) const;

    /** Whole-matrix cursor (bulk helpers over row()). */
    MatrixView view();

    /**
     * Weight of instruction @p i at time @p t on cluster @p c.  The
     * per-element compatibility read path (traces, JSON, tests);
     * batched readers go through row().
     */
    double at(InstrId i, int t, int c) const;

    /** normalize() every instruction. */
    void normalizeAll();

    /** Sum over time of W[i][.][c]. */
    double spaceMarginal(InstrId i, int c) const;

    /** Sum over clusters of W[i][t][.]. */
    double timeMarginal(InstrId i, int t) const;

    /** argmax_c of the space marginal (lowest index wins ties). */
    int preferredCluster(InstrId i) const;

    /** argmax_t of the time marginal (lowest index wins ties). */
    int preferredTime(InstrId i) const;

    /**
     * Expectation of the time marginal, rounded to a slot.  A more
     * noise-robust summary of the temporal preference than the argmax
     * when several slots carry similar weight.
     */
    int expectedTime(InstrId i) const;

    /**
     * Second-best cluster by space marginal; for single-cluster
     * machines this equals the preferred cluster.
     */
    int runnerUpCluster(InstrId i) const;

    /**
     * Confidence of the current spatial assignment: the ratio of the
     * preferred cluster's marginal to the runner-up's (Section 3).
     * Returns a large finite value when the runner-up marginal is 0.
     */
    double confidence(InstrId i) const;

    /** Preferred cluster of every instruction. */
    std::vector<int> preferredClusters() const;

    /** Preferred time of every instruction. */
    std::vector<int> preferredTimes() const;

  private:
    friend class RowView;
    friend class ConstRowView;

    void checkInstr(InstrId i) const;
    void checkIndex(InstrId i, int t, int c) const;

    double *rowData(InstrId i) { return arena_.data() + dataOff(i); }
    const double *
    rowData(InstrId i) const
    {
        return arena_.data() + dataOff(i);
    }
    /** The contiguous T-long block of cluster @p c in row @p i. */
    double *
    block(InstrId i, int c)
    {
        return rowData(i) + static_cast<size_t>(c) * numTimes_;
    }
    const double *
    block(InstrId i, int c) const
    {
        return rowData(i) + static_cast<size_t>(c) * numTimes_;
    }
    double *spaceSums(InstrId i) const;
    double *timeSums(InstrId i) const;

    size_t
    dataOff(InstrId i) const
    {
        return static_cast<size_t>(i) * rowStride_;
    }

    /** A mutation touched row @p i: caches stale, row not normalized. */
    void markMutated(InstrId i);

    void refreshSpace(InstrId i) const;
    void refreshTime(InstrId i) const;

    // The batched kernels behind RowView (documented there).
    void rowSet(InstrId i, int t, int c, double value);
    void rowScaleSlot(InstrId i, int t, int c, double factor);
    void rowScaleCluster(InstrId i, int c, double factor);
    void rowScaleClusters(InstrId i, const double *factors);
    void rowScaleTime(InstrId i, int t, double factor);
    void rowZeroCluster(InstrId i, int c);
    void rowRestrictTimeWindow(InstrId i, int lo, int hi);
    void rowAddPositiveNoise(InstrId i, Rng &rng, double amplitude);
    void rowBlendFrom(InstrId i, InstrId other, double w);
    void rowNormalize(InstrId i);

    int numInstrs_;
    int numTimes_;
    int numClusters_;
    size_t rowStride_; ///< C * T doubles per row

    /**
     * The weight arena: one flat N*C*T allocation, cluster-blocked
     * per row.  The marginal caches share a second flat allocation
     * (mutable, so const readers can refresh lazily): N*C space sums
     * followed by N*T time sums.  Offsets (not pointers) keep the
     * class default-copyable, which the scheduler's
     * snapshot/rollback protocol relies on.
     */
    std::vector<double> arena_;
    mutable std::vector<double> cache_;
    size_t timeOff_; ///< offset of the time sums inside cache_

    /** Feasible half-open time windows; slots outside are +0.0. */
    std::vector<int> winLo_;
    std::vector<int> winHi_;

    // Cache validity, per row and per side (1 = valid), plus the
    // normalize clean flag: set by normalize(), cleared by every
    // mutation, and normalize() returns immediately when it is still
    // set -- the cached row sum is exactly the post-normalize sum, no
    // epsilon test needed.
    mutable std::vector<uint8_t> spaceValid_;
    mutable std::vector<uint8_t> timeValid_;
    std::vector<uint8_t> clean_;
};

/**
 * Read-only batched cursor over one instruction's (time x cluster)
 * row.  Validates the row index at construction; the accessors do no
 * further per-element dispatch.
 */
class PreferenceMatrix::ConstRowView
{
  public:
    int numTimes() const { return m_->numTimes_; }
    int numClusters() const { return m_->numClusters_; }

    /** Feasible window: slots outside [windowLo, windowHi) are 0. */
    int windowLo() const { return m_->winLo_[i_]; }
    int windowHi() const { return m_->winHi_[i_]; }

    double
    at(int t, int c) const
    {
        return m_->block(i_, c)[t];
    }

    /** Cluster @p c's weights over the feasible window, contiguous. */
    std::span<const double>
    windowSpan(int c) const
    {
        return {m_->block(i_, c) + windowLo(),
                static_cast<size_t>(windowHi() - windowLo())};
    }

    double spaceMarginal(int c) const;
    double timeMarginal(int t) const;
    int preferredCluster() const;
    int preferredTime() const;
    double confidence() const;

  private:
    friend class PreferenceMatrix;
    ConstRowView(const PreferenceMatrix *m, InstrId i) : m_(m), i_(i) {}

    const PreferenceMatrix *m_;
    InstrId i_;
};

/**
 * Mutating batched cursor over one instruction's row.  Every method
 * is a fused kernel: it applies the mutation over contiguous spans
 * (restricted to the feasible window) and maintains the marginal
 * caches incrementally where the summation order allows, with no
 * per-element bounds rechecks.
 */
class PreferenceMatrix::RowView
{
  public:
    int numTimes() const { return m_->numTimes_; }
    int numClusters() const { return m_->numClusters_; }
    int windowLo() const { return m_->winLo_[i_]; }
    int windowHi() const { return m_->winHi_[i_]; }

    double
    at(int t, int c) const
    {
        return m_->block(i_, c)[t];
    }

    /** A RowView also reads: converts to the read-only cursor. */
    operator ConstRowView() const { return ConstRowView(m_, i_); }

    /** Overwrite one weight (>= 0); widens the window if needed. */
    void set(int t, int c, double value) { m_->rowSet(i_, t, c, value); }

    /** Multiply one weight by @p factor (>= 0). */
    void
    scaleSlot(int t, int c, double factor)
    {
        m_->rowScaleSlot(i_, t, c, factor);
    }

    /**
     * Multiply cluster @p c's whole block by @p factor and refresh
     * its space marginal in the same sweep.
     */
    void
    scaleCluster(int c, double factor)
    {
        m_->rowScaleCluster(i_, c, factor);
    }

    /**
     * Multiply every cluster block by its own factor (an array of
     * numClusters() values), one fused sweep over the row.
     */
    void
    scaleClusters(const double *factors)
    {
        m_->rowScaleClusters(i_, factors);
    }

    /**
     * Multiply time slot @p t across clusters by @p factor and
     * refresh that slot's time marginal in the same sweep.
     */
    void
    scaleTime(int t, double factor)
    {
        m_->rowScaleTime(i_, t, factor);
    }

    /** Set cluster @p c's whole block to zero. */
    void zeroCluster(int c) { m_->rowZeroCluster(i_, c); }

    /**
     * Squash every slot outside [lo, hi) to zero and shrink the
     * feasible window to the intersection; subsequent batched
     * operations on this row iterate the window only.
     */
    void
    restrictTimeWindow(int lo, int hi)
    {
        m_->rowRestrictTimeWindow(i_, lo, hi);
    }

    /**
     * Add rng.uniform() * amplitude to every positive weight, drawing
     * in ascending (t, c) order (zero weights draw nothing, so
     * infeasible slots stay zero and the draw sequence matches the
     * per-element formulation exactly).
     */
    void
    addPositiveNoise(Rng &rng, double amplitude)
    {
        m_->rowAddPositiveNoise(i_, rng, amplitude);
    }

    /**
     * Linear combination of Section 3 with n = 2:
     * W[this] <- keep * W[this] + (1 - keep) * W[src], elementwise.
     * The window widens to the union of the two rows' windows.
     */
    void
    blendFrom(const ConstRowView &src, double keep)
    {
        m_->rowBlendFrom(i_, src.i_, keep);
    }

    /**
     * Restore the sum-to-one invariant.  If every weight was squashed
     * to zero the row resets to uniform (no pass may make an
     * instruction unschedulable).  A row that is still clean from a
     * previous normalize -- no mutation since -- returns without
     * rescanning.
     */
    void normalize() { m_->rowNormalize(i_); }

    // Readers mirroring ConstRowView, so a pass can interleave reads
    // with mutations through one cursor.
    double
    spaceMarginal(int c) const
    {
        return ConstRowView(m_, i_).spaceMarginal(c);
    }
    double
    timeMarginal(int t) const
    {
        return ConstRowView(m_, i_).timeMarginal(t);
    }
    int
    preferredCluster() const
    {
        return ConstRowView(m_, i_).preferredCluster();
    }

  private:
    friend class PreferenceMatrix;
    RowView(PreferenceMatrix *m, InstrId i) : m_(m), i_(i) {}

    PreferenceMatrix *m_;
    InstrId i_;
};

/** Whole-matrix cursor: bulk helpers expressed over row(). */
class PreferenceMatrix::MatrixView
{
  public:
    int numInstructions() const { return m_->numInstructions(); }
    int numTimes() const { return m_->numTimes(); }
    int numClusters() const { return m_->numClusters(); }

    RowView row(InstrId i) { return m_->row(i); }
    ConstRowView constRow(InstrId i) const
    {
        return static_cast<const PreferenceMatrix *>(m_)->row(i);
    }

    /** normalize() every row. */
    void normalizeAll() { m_->normalizeAll(); }

  private:
    friend class PreferenceMatrix;
    explicit MatrixView(PreferenceMatrix *m) : m_(m) {}

    PreferenceMatrix *m_;
};

inline PreferenceMatrix::RowView
PreferenceMatrix::row(InstrId i)
{
    checkInstr(i);
    return RowView(this, i);
}

inline PreferenceMatrix::ConstRowView
PreferenceMatrix::row(InstrId i) const
{
    checkInstr(i);
    return ConstRowView(this, i);
}

inline PreferenceMatrix::MatrixView
PreferenceMatrix::view()
{
    return MatrixView(this);
}

} // namespace csched

#endif // CSCHED_CONVERGENT_PREFERENCE_MATRIX_HH
