/**
 * @file
 * PATH -- critical path strengthening (Section 4).
 *
 * Keeps the instructions of a critical path together on one cluster.
 * The path is first split into segments at points where its preplaced
 * members change home cluster (a path touching two different memory
 * banks cannot live on a single cluster).  Each segment then chooses a
 * cluster: the home of its preplaced members if it has any; otherwise
 * the cluster the segment is already biased towards, when that bias is
 * decisive; otherwise the least-loaded cluster.  The chosen cluster's
 * weights are boosted (x3).
 */

#include "convergent/pass.hh"

namespace csched {

namespace {

class PathPass : public Pass
{
  public:
    std::string name() const override { return "PATH"; }

    void
    run(PassContext &ctx) override
    {
        const auto &path = ctx.graph.criticalPath();
        if (path.empty())
            return;
        const int num_clusters = ctx.weights.numClusters();

        // Expected load per cluster, for the least-loaded fallback.
        std::vector<double> load(num_clusters, 0.0);
        for (InstrId i = 0; i < ctx.graph.numInstructions(); ++i)
            for (int c = 0; c < num_clusters; ++c)
                load[c] += ctx.weights.spaceMarginal(i, c);

        // Split the path where the preplaced home changes.
        size_t begin = 0;
        while (begin < path.size()) {
            size_t end = begin;
            int segment_home = kNoCluster;
            while (end < path.size()) {
                const int home = ctx.graph.instr(path[end]).homeCluster;
                if (home != kNoCluster) {
                    if (segment_home == kNoCluster)
                        segment_home = home;
                    else if (home != segment_home)
                        break;
                }
                ++end;
            }
            strengthenSegment(ctx, path, begin, end, segment_home, load);
            begin = end;
        }
    }

  private:
    void
    strengthenSegment(PassContext &ctx, const std::vector<InstrId> &path,
                      size_t begin, size_t end, int segment_home,
                      std::vector<double> &load)
    {
        const int num_clusters = ctx.weights.numClusters();
        int chosen = segment_home;

        if (chosen == kNoCluster) {
            // Bias: the cluster with the largest summed marginal over
            // the segment, if decisively ahead of the runner-up.
            std::vector<double> bias(num_clusters, 0.0);
            for (size_t k = begin; k < end; ++k)
                for (int c = 0; c < num_clusters; ++c)
                    bias[c] += ctx.weights.spaceMarginal(path[k], c);
            int best = 0;
            int second = num_clusters > 1 ? 1 : 0;
            for (int c = 1; c < num_clusters; ++c) {
                if (bias[c] > bias[best]) {
                    second = best;
                    best = c;
                } else if (c != best && bias[c] > bias[second]) {
                    second = c;
                }
            }
            if (num_clusters == 1 ||
                bias[best] >
                    ctx.params.pathBiasThreshold * bias[second]) {
                chosen = best;
            } else {
                // No decisive bias: take the least-loaded cluster.
                chosen = 0;
                for (int c = 1; c < num_clusters; ++c)
                    if (load[c] < load[chosen])
                        chosen = c;
            }
        }

        for (size_t k = begin; k < end; ++k) {
            const InstrId i = path[k];
            auto row = ctx.weights.row(i);
            // Account for the load shift before normalising away the
            // old marginals.
            for (int c = 0; c < num_clusters; ++c)
                load[c] -= row.spaceMarginal(c);
            row.scaleCluster(chosen, ctx.params.pathFactor);
            row.normalize();
            for (int c = 0; c < num_clusters; ++c)
                load[c] += row.spaceMarginal(c);
        }
    }
};

} // namespace

std::unique_ptr<Pass>
makePathPass()
{
    return std::make_unique<PathPass>();
}

} // namespace csched
