/**
 * @file
 * NOISE -- noise introduction (Section 4).
 *
 * Adds a small random value to every weight to break symmetry and
 * spread instructions across clusters, which helps later passes
 * schedule for parallelism.  The paper's formula adds rand()/RAND_MAX,
 * i.e. a uniform draw in [0, 1), to each entry; the amplitude is a
 * parameter here.  Weights that INITTIME squashed to zero stay zero so
 * noise never makes an infeasible slot preferred.
 */

#include "convergent/pass.hh"

namespace csched {

namespace {

class NoisePass : public Pass
{
  public:
    std::string name() const override { return "NOISE"; }

    void
    run(PassContext &ctx) override
    {
        auto &weights = ctx.weights;
        for (InstrId i = 0; i < weights.numInstructions(); ++i) {
            auto row = weights.row(i);
            row.addPositiveNoise(ctx.rng, ctx.params.noiseAmplitude);
            row.normalize();
        }
    }
};

} // namespace

std::unique_ptr<Pass>
makeNoisePass()
{
    return std::make_unique<NoisePass>();
}

} // namespace csched
