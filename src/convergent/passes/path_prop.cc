/**
 * @file
 * PATHPROP -- path propagation (Section 4).
 *
 * Selects high-confidence instructions (confidence above the threshold
 * parameter t) and propagates their preference matrices along
 * dependence paths, downward through successors and upward through
 * predecessors.  A propagation step visits the next neighbour that is
 * still *undecided* -- confidence below the threshold -- and blends
 * the propagator's matrix into it (50/50 by default), then continues
 * from the visited instruction.  This lets a strongly-decided
 * instruction (for example a preplaced load that PLACE boosted) pull
 * the undecided chain it feeds towards its cluster, while leaving
 * already-decided regions alone; late in the pipeline, when most
 * instructions are confident, the pass naturally quiesces (the
 * convergence behaviour of the paper's Figures 7 and 9).
 */

#include <algorithm>

#include "convergent/pass.hh"

namespace csched {

namespace {

class PathPropPass : public Pass
{
  public:
    std::string name() const override { return "PATHPROP"; }

    void
    run(PassContext &ctx) override
    {
        const auto &graph = ctx.graph;
        auto &weights = ctx.weights;
        const int n = graph.numInstructions();

        // Select propagators: confident instructions, most confident
        // first so the strongest signals win the blends they touch.
        std::vector<InstrId> selected;
        for (InstrId i = 0; i < n; ++i)
            if (weights.confidence(i) >= ctx.params.pathPropConfidence)
                selected.push_back(i);
        std::stable_sort(selected.begin(), selected.end(),
                         [&](InstrId a, InstrId b) {
                             return weights.confidence(a) >
                                    weights.confidence(b);
                         });

        for (InstrId source : selected) {
            propagate(ctx, source, /*downward=*/true);
            propagate(ctx, source, /*downward=*/false);
        }
    }

  private:
    void
    propagate(PassContext &ctx, InstrId source, bool downward)
    {
        const auto &graph = ctx.graph;
        auto &weights = ctx.weights;
        const double threshold = ctx.params.pathPropConfidence;
        const double keep = ctx.params.pathPropBlend;

        InstrId current = source;
        while (true) {
            // Next undecided neighbour along the path; the least
            // confident one gains the most from the blend.
            const auto &next_set = downward ? graph.succs(current)
                                            : graph.preds(current);
            InstrId next = kNoInstr;
            double next_confidence = threshold;
            for (InstrId cand : next_set) {
                const double c = weights.confidence(cand);
                if (c < next_confidence) {
                    next = cand;
                    next_confidence = c;
                }
            }
            if (next == kNoInstr)
                break;
            auto row = weights.row(next);
            row.blendFrom(weights.row(source), keep);
            row.normalize();
            current = next;
        }
    }
};

} // namespace

std::unique_ptr<Pass>
makePathPropPass()
{
    return std::make_unique<PathPropPass>();
}

} // namespace csched
