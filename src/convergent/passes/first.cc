/**
 * @file
 * FIRST -- push to first cluster (Section 4).
 *
 * On the Chorus clustered VLIW all live-in data are available in the
 * first cluster at the start of every scheduling unit, so schedules
 * that favour cluster 0 avoid copies for live-ins.  The pass gives
 * every instruction a mild (x1.2) bias towards cluster 0.
 */

#include "convergent/pass.hh"

namespace csched {

namespace {

class FirstPass : public Pass
{
  public:
    std::string name() const override { return "FIRST"; }

    void
    run(PassContext &ctx) override
    {
        for (InstrId i = 0; i < ctx.graph.numInstructions(); ++i) {
            auto row = ctx.weights.row(i);
            row.scaleCluster(0, ctx.params.firstFactor);
            row.normalize();
        }
    }
};

} // namespace

std::unique_ptr<Pass>
makeFirstPass()
{
    return std::make_unique<FirstPass>();
}

} // namespace csched
