/**
 * @file
 * COMM -- communication minimisation (Section 4).
 *
 * Skews each instruction's cluster weights towards the clusters its
 * dependence-graph neighbours prefer, by multiplying each cluster
 * column with the summed neighbour affinity for that cluster.
 *
 * Note on fidelity: the paper's formula multiplies W[i][t][c] by the
 * sum of the neighbours' weights at the *same* (t, c); since dependent
 * neighbours can never share a time slot, a literal reading would
 * anti-correlate with feasible schedules.  We follow the stated intent
 * ("increase the weight for an instruction to be in the same clusters
 * where most of its neighbours are") and use the neighbours' space
 * marginals, which are time-independent.  The paper's second-order
 * variant (grandparents/grandchildren, applied together with COMM) and
 * the x2 boost of the preferred slot are implemented as described.
 *
 * All marginals are snapshotted before any weight changes so the
 * result does not depend on instruction iteration order.
 *
 * A neighbour's pull is scaled by the inverse of its degree: keeping
 * one consumer next to a value that fans out to a hundred consumers
 * saves almost no communication (the value is broadcast regardless),
 * and without this normalisation high-fanout values -- live-in array
 * bases, shared constants -- act as gravity wells that collapse the
 * whole unit onto one cluster.
 */

#include "convergent/pass.hh"

namespace csched {

namespace {

class CommPass : public Pass
{
  public:
    std::string name() const override { return "COMM"; }

    void
    run(PassContext &ctx) override
    {
        const auto &graph = ctx.graph;
        auto &weights = ctx.weights;
        const int n = graph.numInstructions();
        const int num_clusters = weights.numClusters();

        // Snapshot all space marginals.
        std::vector<double> marginal(
            static_cast<size_t>(n) * num_clusters);
        for (InstrId i = 0; i < n; ++i)
            for (int c = 0; c < num_clusters; ++c)
                marginal[static_cast<size_t>(i) * num_clusters + c] =
                    weights.spaceMarginal(i, c);

        // Snapshot preferred slots for the final boost.
        const auto preferred_cluster = weights.preferredClusters();
        const auto preferred_time = weights.preferredTimes();

        auto degree = [&](InstrId other) {
            return static_cast<double>(graph.preds(other).size() +
                                       graph.succs(other).size());
        };

        for (InstrId i = 0; i < n; ++i) {
            std::vector<double> attraction(num_clusters, 0.0);
            auto accumulate = [&](InstrId other, double scale) {
                const double pull = scale / degree(other);
                for (int c = 0; c < num_clusters; ++c)
                    attraction[c] +=
                        pull * marginal[static_cast<size_t>(other) *
                                            num_clusters +
                                        c];
            };
            for (InstrId pred : graph.preds(i)) {
                accumulate(pred, 1.0);
                if (ctx.params.commSecondOrder)
                    for (InstrId grand : graph.preds(pred))
                        accumulate(grand, 0.5);
            }
            for (InstrId succ : graph.succs(i)) {
                accumulate(succ, 1.0);
                if (ctx.params.commSecondOrder)
                    for (InstrId grand : graph.succs(succ))
                        accumulate(grand, 0.5);
            }

            double total = 0.0;
            for (int c = 0; c < num_clusters; ++c)
                total += attraction[c];
            if (total <= 0.0)
                continue;  // isolated instruction: keep weights as-is

            // A small floor keeps a cluster recoverable even when no
            // neighbour currently prefers it.
            const double floor = 0.01 * total / num_clusters;
            for (int c = 0; c < num_clusters; ++c)
                attraction[c] += floor;
            auto row = weights.row(i);
            row.scaleClusters(attraction.data());
            row.normalize();
        }

        // "for each (i): W[i][ti][ci] *= 2" -- reinforce the slot that
        // was preferred coming into this pass.
        for (InstrId i = 0; i < n; ++i) {
            auto row = weights.row(i);
            row.scaleSlot(preferred_time[i], preferred_cluster[i],
                          ctx.params.commPreferredBoost);
            row.normalize();
        }
    }
};

} // namespace

std::unique_ptr<Pass>
makeCommPass()
{
    return std::make_unique<CommPass>();
}

} // namespace csched
