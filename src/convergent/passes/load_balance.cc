/**
 * @file
 * LOAD -- load balance (Section 4).
 *
 * Divides each weight by the total expected load of its cluster, where
 * a cluster's load is the sum of all instructions' space marginals for
 * it.  Overloaded clusters become less attractive; underloaded ones
 * more so.  Loads are snapshotted before any mutation so the result is
 * independent of iteration order.
 */

#include <algorithm>

#include "convergent/pass.hh"

namespace csched {

namespace {

class LoadBalancePass : public Pass
{
  public:
    std::string name() const override { return "LOAD"; }

    void
    run(PassContext &ctx) override
    {
        auto &weights = ctx.weights;
        const int n = weights.numInstructions();
        const int num_clusters = weights.numClusters();

        std::vector<double> load(num_clusters, 0.0);
        for (InstrId i = 0; i < n; ++i)
            for (int c = 0; c < num_clusters; ++c)
                load[c] += weights.spaceMarginal(i, c);

        // Guard against empty clusters; a tiny load would otherwise
        // explode the division.
        const double floor = 1e-3;
        std::vector<double> factors(num_clusters);
        for (int c = 0; c < num_clusters; ++c)
            factors[c] = 1.0 / std::max(load[c], floor);
        for (InstrId i = 0; i < n; ++i) {
            auto row = weights.row(i);
            row.scaleClusters(factors.data());
            row.normalize();
        }
    }
};

} // namespace

std::unique_ptr<Pass>
makeLoadBalancePass()
{
    return std::make_unique<LoadBalancePass>();
}

} // namespace csched
