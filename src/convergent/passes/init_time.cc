/**
 * @file
 * INITTIME -- initial time assignment (Section 4).
 *
 * An instruction cannot issue before its predecessor chain completes
 * (lp) nor so late that its successor chain would overflow the
 * critical-path length (CPL - ls, with ls including the instruction's
 * own latency).  This pass squashes to zero all weights outside the
 * feasible window, and, as the paper suggests, also squashes clusters
 * that cannot execute the instruction's opcode.
 */

#include "convergent/pass.hh"

namespace csched {

namespace {

class InitTimePass : public Pass
{
  public:
    std::string name() const override { return "INITTIME"; }
    bool temporalOnly() const override { return true; }

    void
    run(PassContext &ctx) override
    {
        const auto &graph = ctx.graph;
        auto &weights = ctx.weights;
        const int num_clusters = weights.numClusters();
        const int cpl = graph.criticalPathLength();

        for (InstrId i = 0; i < graph.numInstructions(); ++i) {
            const int lp = graph.earliestStart(i);
            const int latest = cpl - graph.latestFinishSlack(i);
            auto row = weights.row(i);
            // Squash everything outside [lp, latest]; later batched
            // operations on this row then iterate the window only.
            row.restrictTimeWindow(lp, latest + 1);
            for (int c = 0; c < num_clusters; ++c) {
                if (!ctx.machine.canExecute(c, graph.instr(i).op))
                    row.zeroCluster(c);
            }
            row.normalize();
        }
    }
};

} // namespace

std::unique_ptr<Pass>
makeInitTimePass()
{
    return std::make_unique<InitTimePass>();
}

} // namespace csched
