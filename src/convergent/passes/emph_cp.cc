/**
 * @file
 * EMPHCP -- emphasise critical-path distance (Section 4).
 *
 * Helps the temporal preferences converge by boosting, for every
 * instruction, the time slot at which the instruction could issue on a
 * machine with infinite resources.  The paper calls this the
 * instruction's "level"; the exact infinite-resource issue time is the
 * latency-weighted earliest start, which is what we boost (node-depth
 * levels underestimate issue times once multi-cycle latencies exist).
 */

#include "convergent/pass.hh"

namespace csched {

namespace {

class EmphCpPass : public Pass
{
  public:
    std::string name() const override { return "EMPHCP"; }
    bool temporalOnly() const override { return true; }

    void
    run(PassContext &ctx) override
    {
        for (InstrId i = 0; i < ctx.graph.numInstructions(); ++i) {
            const int slot = ctx.graph.earliestStart(i);
            if (slot >= ctx.weights.numTimes())
                continue;
            auto row = ctx.weights.row(i);
            row.scaleTime(slot, ctx.params.emphCpFactor);
            row.normalize();
        }
    }
};

} // namespace

std::unique_ptr<Pass>
makeEmphCpPass()
{
    return std::make_unique<EmphCpPass>();
}

} // namespace csched
