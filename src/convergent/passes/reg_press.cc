/**
 * @file
 * REGPRESS -- register-pressure balancing (extension).
 *
 * Not one of the paper's eleven passes: Section 6 notes the framework
 * "can perform all three tasks together (by adding preference maps
 * for registers as well)" and leaves register pressure to future
 * work.  This pass is the natural first step in that direction, and a
 * demonstration that new constraints really do slot into the
 * preference-map interface.
 *
 * For every value we estimate its live length on an ideal machine
 * (from its definition's completion to its last consumer's issue);
 * the expected register pressure of a cluster is the live-length-
 * weighted sum of the space marginals of all values.  Clusters whose
 * expected pressure exceeds the architected register count get their
 * weights divided proportionally, steering long-lived values apart
 * before the allocator would have to spill.
 */

#include <algorithm>
#include <vector>

#include "convergent/pass.hh"

namespace csched {

namespace {

class RegPressPass : public Pass
{
  public:
    std::string name() const override { return "REGPRESS"; }

    void
    run(PassContext &ctx) override
    {
        const auto &graph = ctx.graph;
        auto &weights = ctx.weights;
        const int n = graph.numInstructions();
        const int num_clusters = weights.numClusters();
        const int cpl = graph.criticalPathLength();

        // Live length of each value on an unbounded machine.
        std::vector<double> live(n, 0.0);
        for (InstrId i = 0; i < n; ++i) {
            if (graph.instr(i).op == Opcode::Store)
                continue;  // no register result
            const int ready = graph.earliestStart(i) + graph.latency(i);
            int last_use = ready;
            for (InstrId succ : graph.succs(i))
                last_use = std::max(last_use,
                                    graph.earliestStart(succ));
            live[i] = last_use - ready + 1;
        }

        // Expected simultaneous pressure: live mass spread over the
        // schedule length.
        std::vector<double> pressure(num_clusters, 0.0);
        for (InstrId i = 0; i < n; ++i)
            for (int c = 0; c < num_clusters; ++c)
                pressure[c] +=
                    live[i] * weights.spaceMarginal(i, c) / cpl;

        const double budget = ctx.machine.registersPerCluster();
        bool any_over = false;
        std::vector<double> penalty(num_clusters, 1.0);
        for (int c = 0; c < num_clusters; ++c) {
            if (pressure[c] > budget) {
                penalty[c] = pressure[c] / budget;
                any_over = true;
            }
        }
        if (!any_over)
            return;

        std::vector<double> factors(num_clusters);
        for (int c = 0; c < num_clusters; ++c)
            factors[c] = penalty[c] > 1.0 ? 1.0 / penalty[c] : 1.0;
        for (InstrId i = 0; i < n; ++i) {
            auto row = weights.row(i);
            row.scaleClusters(factors.data());
            row.normalize();
        }
    }
};

} // namespace

std::unique_ptr<Pass>
makeRegPressPass()
{
    return std::make_unique<RegPressPass>();
}

} // namespace csched
