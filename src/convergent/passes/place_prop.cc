/**
 * @file
 * PLACEPROP -- preplacement propagation (Section 4).
 *
 * Propagates preplacement information to the rest of the graph: for
 * each non-preplaced instruction, the weight of each cluster is
 * divided by the instruction's (undirected dependence-graph) distance
 * to the closest preplaced instruction homed on that cluster.  Nearby
 * banks therefore attract their dependence neighbourhoods, which is
 * the mechanism behind the paper's "natural assignments" on dense
 * matrix code.  Clusters with no preplaced instruction at all are
 * treated as maximally distant; when the unit has no preplaced
 * instructions the pass is a no-op.
 *
 * High-fanout preplaced values (live-in array bases, shared
 * constants) are excluded both as attractors and as BFS waypoints:
 * such values are broadcast to all their consumers regardless of
 * placement, so adjacency to them carries no locality information,
 * and letting them transmit proximity would make their home cluster a
 * gravity well for the entire unit.
 */

#include <deque>

#include "convergent/pass.hh"

namespace csched {

namespace {

class PlacePropPass : public Pass
{
  public:
    std::string name() const override { return "PLACEPROP"; }

    void
    run(PassContext &ctx) override
    {
        const auto &graph = ctx.graph;
        if (graph.numPreplaced() == 0)
            return;
        auto &weights = ctx.weights;
        const int n = graph.numInstructions();
        const int num_clusters = weights.numClusters();
        const int far = ctx.params.placePropMaxDistance;
        const int hub = ctx.params.placePropHubDegree;

        auto is_hub = [&](InstrId id) {
            return static_cast<int>(graph.preds(id).size() +
                                    graph.succs(id).size()) > hub;
        };

        // Multi-source BFS per cluster over the undirected dependence
        // graph, skipping hub nodes entirely.
        std::vector<std::vector<int>> dist(
            num_clusters, std::vector<int>(n, -1));
        for (int c = 0; c < num_clusters; ++c) {
            std::deque<InstrId> frontier;
            for (InstrId id = 0; id < n; ++id) {
                if (graph.instr(id).homeCluster == c && !is_hub(id)) {
                    dist[c][id] = 0;
                    frontier.push_back(id);
                }
            }
            auto &d = dist[c];
            while (!frontier.empty()) {
                const InstrId id = frontier.front();
                frontier.pop_front();
                if (d[id] >= far)
                    continue;
                auto visit = [&](InstrId other) {
                    if (d[other] == -1 && !is_hub(other)) {
                        d[other] = d[id] + 1;
                        frontier.push_back(other);
                    }
                };
                for (InstrId pred : graph.preds(id))
                    visit(pred);
                for (InstrId succ : graph.succs(id))
                    visit(succ);
            }
        }

        std::vector<double> factors(num_clusters);
        for (InstrId i = 0; i < n; ++i) {
            if (graph.instr(i).preplaced())
                continue;
            for (int c = 0; c < num_clusters; ++c) {
                int distance = dist[c][i];
                if (distance < 0 || distance > far)
                    distance = far;  // unreachable or absent: very far
                if (distance < 1)
                    distance = 1;
                factors[c] = 1.0 / distance;
            }
            auto row = weights.row(i);
            row.scaleClusters(factors.data());
            row.normalize();
        }
    }
};

} // namespace

std::unique_ptr<Pass>
makePlacePropPass()
{
    return std::make_unique<PlacePropPass>();
}

} // namespace csched
