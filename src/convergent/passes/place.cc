/**
 * @file
 * PLACE -- preplacement (Section 4).
 *
 * Boosts every preplaced instruction's weight on its home cluster by a
 * large factor (x100): assignment to the home cluster is required for
 * correctness, so the boost must dominate everything other passes do.
 * (The convergent scheduler additionally clamps preplaced instructions
 * to their homes when it extracts the final assignment.)
 */

#include "convergent/pass.hh"

namespace csched {

namespace {

class PlacePass : public Pass
{
  public:
    std::string name() const override { return "PLACE"; }

    void
    run(PassContext &ctx) override
    {
        for (InstrId i = 0; i < ctx.graph.numInstructions(); ++i) {
            const auto &instr = ctx.graph.instr(i);
            if (!instr.preplaced())
                continue;
            auto row = ctx.weights.row(i);
            row.scaleCluster(instr.homeCluster, ctx.params.placeFactor);
            row.normalize();
        }
    }
};

} // namespace

std::unique_ptr<Pass>
makePlacePass()
{
    return std::make_unique<PlacePass>();
}

} // namespace csched
