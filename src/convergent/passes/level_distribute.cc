/**
 * @file
 * LEVEL -- level distribute (Section 4).
 *
 * Distributes the instructions of a band of graph levels across
 * clusters, pursuing two goals: spread parallelism, but avoid
 * needless communication.  Following the paper's pseudocode, each
 * cluster's bin is seeded with the band's instructions that already
 * prefer it with confidence above a threshold (2.0).  The remaining
 * instructions are then placed: an instruction within the granularity
 * distance g of some bin joins that (closest) bin -- keeping
 * neighbours together -- while instructions far from every bin are
 * dealt round-robin to bins, farthest-first, distributing independent
 * work.  Chosen bins are reinforced in the weight matrix.
 *
 * The pass is applied to every band of `levelStride` consecutive
 * levels (four on Raw: roughly the minimum granularity of parallelism
 * Raw exploits profitably given its communication cost).
 *
 * Implementation note: instruction-to-bin distances are maintained
 * incrementally.  Joining a bin triggers one depth-capped BFS from the
 * new member that relaxes the bin's distance field, so each placement
 * costs one small BFS instead of one BFS per (instruction, bin) query.
 */

#include <algorithm>
#include <deque>

#include "convergent/pass.hh"

namespace csched {

namespace {

class LevelDistributePass : public Pass
{
  public:
    std::string name() const override { return "LEVEL"; }

    void
    run(PassContext &ctx) override
    {
        const int stride = std::max(1, ctx.params.levelStride);
        for (int base = 0; base <= ctx.graph.maxLevel(); base += stride)
            distributeBand(ctx, base, base + stride - 1);
    }

  private:
    /**
     * Relax @p dist with capped-BFS distances from @p source over the
     * undirected dependence graph.
     */
    static void
    relaxFrom(const DependenceGraph &graph, InstrId source, int cap,
              std::vector<int> &dist)
    {
        if (dist[source] == 0)
            return;
        dist[source] = 0;
        std::deque<InstrId> frontier{source};
        while (!frontier.empty()) {
            const InstrId id = frontier.front();
            frontier.pop_front();
            if (dist[id] >= cap)
                continue;
            auto visit = [&](InstrId other) {
                if (dist[id] + 1 < dist[other]) {
                    dist[other] = dist[id] + 1;
                    frontier.push_back(other);
                }
            };
            for (InstrId pred : graph.preds(id))
                visit(pred);
            for (InstrId succ : graph.succs(id))
                visit(succ);
        }
    }

    void
    distributeBand(PassContext &ctx, int lo, int hi)
    {
        const auto &graph = ctx.graph;
        auto &weights = ctx.weights;
        const int num_clusters = weights.numClusters();
        const int n = graph.numInstructions();

        std::vector<InstrId> band;
        for (InstrId i = 0; i < n; ++i) {
            const int lvl = graph.level(i);
            if (lvl >= lo && lvl <= hi)
                band.push_back(i);
        }
        if (band.empty())
            return;

        const int g = std::max(1, ctx.params.levelGranularity);
        const int cap = 4 * g + 8;  // beyond this depth is "far"
        const int far = cap + 1;

        // Per-bin assignment and distance field ("far" everywhere).
        std::vector<std::vector<InstrId>> bins(num_clusters);
        std::vector<std::vector<int>> dist(
            num_clusters, std::vector<int>(n, far));

        auto join = [&](InstrId i, int c) {
            bins[c].push_back(i);
            relaxFrom(graph, i, cap, dist[c]);
        };

        std::vector<InstrId> rest;
        for (InstrId i : band) {
            if (weights.confidence(i) >
                ctx.params.levelConfidenceThreshold) {
                join(i, weights.preferredCluster(i));
            } else {
                rest.push_back(i);
            }
        }

        int round_robin = 0;
        while (!rest.empty()) {
            // Near instructions join their closest bin first; among
            // equally close bins the least-loaded wins (the pass's
            // primary goal is to distribute parallelism).
            int pick = -1;
            int pick_bin = -1;
            int pick_dist = far;
            for (size_t k = 0; k < rest.size(); ++k) {
                for (int c = 0; c < num_clusters; ++c) {
                    if (bins[c].empty())
                        continue;
                    const int d = dist[c][rest[k]];
                    if (d > g)
                        continue;
                    if (d < pick_dist ||
                        (d == pick_dist &&
                         bins[c].size() < bins[pick_bin].size())) {
                        pick = static_cast<int>(k);
                        pick_bin = c;
                        pick_dist = d;
                    }
                }
            }

            if (pick == -1) {
                // Everyone is far from every bin: deal to the least
                // loaded bin (round-robin from a rotating start),
                // farthest member first (paper's distribution of
                // independent work).
                pick_bin = round_robin;
                for (int off = 0; off < num_clusters; ++off) {
                    const int c = (round_robin + off) % num_clusters;
                    if (bins[c].size() < bins[pick_bin].size())
                        pick_bin = c;
                }
                round_robin = (round_robin + 1) % num_clusters;
                int best_d = -1;
                for (size_t k = 0; k < rest.size(); ++k) {
                    const int d = bins[pick_bin].empty()
                                      ? far
                                      : dist[pick_bin][rest[k]];
                    if (d > best_d) {
                        best_d = d;
                        pick = static_cast<int>(k);
                    }
                }
            }

            const InstrId chosen = rest[pick];
            join(chosen, pick_bin);
            rest.erase(rest.begin() + pick);
        }

        for (int c = 0; c < num_clusters; ++c) {
            for (InstrId i : bins[c]) {
                auto row = weights.row(i);
                row.scaleCluster(c, ctx.params.levelBoost);
                row.normalize();
            }
        }
    }
};

} // namespace

std::unique_ptr<Pass>
makeLevelDistributePass()
{
    return std::make_unique<LevelDistributePass>();
}

} // namespace csched
