#include "convergent/dense_reference_matrix.hh"

#include <algorithm>

#include "support/logging.hh"
#include "support/rng.hh"

namespace csched {

DenseReferenceMatrix::DenseReferenceMatrix(int num_instrs, int num_times,
                                           int num_clusters)
    : numInstrs_(num_instrs),
      numTimes_(num_times),
      numClusters_(num_clusters),
      rowSize_(static_cast<size_t>(num_times) * num_clusters)
{
    CSCHED_ASSERT(num_instrs > 0, "matrix needs instructions");
    CSCHED_ASSERT(num_times > 0, "matrix needs time slots");
    CSCHED_ASSERT(num_clusters > 0, "matrix needs clusters");
    const double uniform = 1.0 / static_cast<double>(rowSize_);
    data_.assign(static_cast<size_t>(num_instrs) * rowSize_, uniform);
    spaceSum_.assign(static_cast<size_t>(num_instrs) * num_clusters, 0.0);
    timeSum_.assign(static_cast<size_t>(num_instrs) * num_times, 0.0);
    dirty_.assign(num_instrs, true);
    clean_.assign(num_instrs, 0);
}

void
DenseReferenceMatrix::checkIndex(InstrId i, int t, int c) const
{
    CSCHED_ASSERT(i >= 0 && i < numInstrs_, "instruction ", i,
                  " out of range");
    CSCHED_ASSERT(t >= 0 && t < numTimes_, "time ", t, " out of range");
    CSCHED_ASSERT(c >= 0 && c < numClusters_, "cluster ", c,
                  " out of range");
}

double
DenseReferenceMatrix::at(InstrId i, int t, int c) const
{
    checkIndex(i, t, c);
    return row(i)[static_cast<size_t>(t) * numClusters_ + c];
}

void
DenseReferenceMatrix::set(InstrId i, int t, int c, double value)
{
    checkIndex(i, t, c);
    CSCHED_ASSERT(value >= 0.0, "negative weight ", value);
    row(i)[static_cast<size_t>(t) * numClusters_ + c] = value;
    touch(i);
}

void
DenseReferenceMatrix::scale(InstrId i, int t, int c, double factor)
{
    checkIndex(i, t, c);
    CSCHED_ASSERT(factor >= 0.0, "negative factor ", factor);
    row(i)[static_cast<size_t>(t) * numClusters_ + c] *= factor;
    touch(i);
}

void
DenseReferenceMatrix::scaleCluster(InstrId i, int c, double factor)
{
    checkIndex(i, 0, c);
    CSCHED_ASSERT(factor >= 0.0, "negative factor ", factor);
    double *r = row(i);
    for (int t = 0; t < numTimes_; ++t)
        r[static_cast<size_t>(t) * numClusters_ + c] *= factor;
    touch(i);
}

void
DenseReferenceMatrix::scaleTime(InstrId i, int t, double factor)
{
    checkIndex(i, t, 0);
    CSCHED_ASSERT(factor >= 0.0, "negative factor ", factor);
    double *r = row(i) + static_cast<size_t>(t) * numClusters_;
    for (int c = 0; c < numClusters_; ++c)
        r[c] *= factor;
    touch(i);
}

void
DenseReferenceMatrix::blend(InstrId i, InstrId other, double w)
{
    checkIndex(i, 0, 0);
    checkIndex(other, 0, 0);
    CSCHED_ASSERT(w >= 0.0 && w <= 1.0, "blend weight ", w,
                  " outside [0, 1]");
    double *dst = row(i);
    const double *src = row(other);
    for (size_t k = 0; k < rowSize_; ++k)
        dst[k] = w * dst[k] + (1.0 - w) * src[k];
    touch(i);
}

void
DenseReferenceMatrix::normalize(InstrId i)
{
    checkIndex(i, 0, 0);
    if (clean_[i])
        return;
    double *r = row(i);
    double sum = 0.0;
    for (size_t k = 0; k < rowSize_; ++k)
        sum += r[k];
    if (sum <= 1e-300) {
        const double uniform = 1.0 / static_cast<double>(rowSize_);
        for (size_t k = 0; k < rowSize_; ++k)
            r[k] = uniform;
    } else {
        const double inv = 1.0 / sum;
        for (size_t k = 0; k < rowSize_; ++k)
            r[k] *= inv;
    }
    touch(i);
    clean_[i] = 1;
}

void
DenseReferenceMatrix::normalizeAll()
{
    for (InstrId i = 0; i < numInstrs_; ++i)
        normalize(i);
}

void
DenseReferenceMatrix::restrictTimeWindow(InstrId i, int lo, int hi)
{
    checkIndex(i, 0, 0);
    for (int t = 0; t < numTimes_; ++t) {
        if (t >= lo && t < hi)
            continue;
        for (int c = 0; c < numClusters_; ++c)
            row(i)[static_cast<size_t>(t) * numClusters_ + c] = 0.0;
    }
    touch(i);
}

void
DenseReferenceMatrix::addPositiveNoise(InstrId i, Rng &rng,
                                       double amplitude)
{
    checkIndex(i, 0, 0);
    for (int t = 0; t < numTimes_; ++t) {
        for (int c = 0; c < numClusters_; ++c) {
            double &slot = row(i)[static_cast<size_t>(t) * numClusters_ + c];
            if (slot <= 0.0)
                continue;
            slot = slot + rng.uniform() * amplitude;
        }
    }
    touch(i);
}

void
DenseReferenceMatrix::touch(InstrId i)
{
    dirty_[i] = true;
    clean_[i] = 0;
}

void
DenseReferenceMatrix::refresh(InstrId i) const
{
    if (!dirty_[i])
        return;
    const double *r = row(i);
    double *space = &spaceSum_[static_cast<size_t>(i) * numClusters_];
    double *time = &timeSum_[static_cast<size_t>(i) * numTimes_];
    std::fill(space, space + numClusters_, 0.0);
    std::fill(time, time + numTimes_, 0.0);
    for (int t = 0; t < numTimes_; ++t) {
        const double *slot = r + static_cast<size_t>(t) * numClusters_;
        for (int c = 0; c < numClusters_; ++c) {
            space[c] += slot[c];
            time[t] += slot[c];
        }
    }
    dirty_[i] = false;
}

double
DenseReferenceMatrix::spaceMarginal(InstrId i, int c) const
{
    checkIndex(i, 0, c);
    refresh(i);
    return spaceSum_[static_cast<size_t>(i) * numClusters_ + c];
}

double
DenseReferenceMatrix::timeMarginal(InstrId i, int t) const
{
    checkIndex(i, t, 0);
    refresh(i);
    return timeSum_[static_cast<size_t>(i) * numTimes_ + t];
}

int
DenseReferenceMatrix::preferredCluster(InstrId i) const
{
    checkIndex(i, 0, 0);
    refresh(i);
    const double *space = &spaceSum_[static_cast<size_t>(i) * numClusters_];
    int best = 0;
    for (int c = 1; c < numClusters_; ++c)
        if (space[c] > space[best])
            best = c;
    return best;
}

int
DenseReferenceMatrix::preferredTime(InstrId i) const
{
    checkIndex(i, 0, 0);
    refresh(i);
    const double *time = &timeSum_[static_cast<size_t>(i) * numTimes_];
    int best = 0;
    for (int t = 1; t < numTimes_; ++t)
        if (time[t] > time[best])
            best = t;
    return best;
}

int
DenseReferenceMatrix::expectedTime(InstrId i) const
{
    checkIndex(i, 0, 0);
    refresh(i);
    const double *time = &timeSum_[static_cast<size_t>(i) * numTimes_];
    double total = 0.0;
    double weighted = 0.0;
    for (int t = 0; t < numTimes_; ++t) {
        total += time[t];
        weighted += time[t] * t;
    }
    if (total <= 1e-300)
        return 0;
    return static_cast<int>(weighted / total + 0.5);
}

int
DenseReferenceMatrix::runnerUpCluster(InstrId i) const
{
    if (numClusters_ == 1)
        return 0;
    refresh(i);
    const double *space = &spaceSum_[static_cast<size_t>(i) * numClusters_];
    const int preferred = preferredCluster(i);
    int best = preferred == 0 ? 1 : 0;
    for (int c = 0; c < numClusters_; ++c)
        if (c != preferred && space[c] > space[best])
            best = c;
    return best;
}

double
DenseReferenceMatrix::confidence(InstrId i) const
{
    if (numClusters_ == 1)
        return 1.0;
    const double top = spaceMarginal(i, preferredCluster(i));
    const double second = spaceMarginal(i, runnerUpCluster(i));
    if (second <= 1e-300)
        return 1e9;
    return top / second;
}

} // namespace csched
