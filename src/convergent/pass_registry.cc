#include "convergent/pass_registry.hh"

#include "support/logging.hh"
#include "support/str.hh"

namespace csched {

namespace {

struct Entry
{
    const char *name;
    std::unique_ptr<Pass> (*factory)();
};

const Entry kEntries[] = {
    {"INITTIME", makeInitTimePass},
    {"NOISE", makeNoisePass},
    {"PLACE", makePlacePass},
    {"FIRST", makeFirstPass},
    {"PATH", makePathPass},
    {"COMM", makeCommPass},
    {"PLACEPROP", makePlacePropPass},
    {"LOAD", makeLoadBalancePass},
    {"LEVEL", makeLevelDistributePass},
    {"PATHPROP", makePathPropPass},
    {"EMPHCP", makeEmphCpPass},
    // Extension beyond the paper's Table 1 (see reg_press.cc).
    {"REGPRESS", makeRegPressPass},
};

} // namespace

std::unique_ptr<Pass>
makePassByName(const std::string &name)
{
    const std::string upper = toUpper(trim(name));
    for (const auto &entry : kEntries)
        if (upper == entry.name)
            return entry.factory();
    CSCHED_FATAL("unknown convergent pass '", name, "'");
}

std::vector<std::string>
knownPassNames()
{
    std::vector<std::string> names;
    for (const auto &entry : kEntries)
        names.emplace_back(entry.name);
    return names;
}

std::vector<std::unique_ptr<Pass>>
parsePassSequence(const std::string &sequence)
{
    std::vector<std::unique_ptr<Pass>> passes;
    for (const auto &part : split(sequence, ',')) {
        const std::string token = trim(part);
        if (token.empty())
            continue;
        passes.push_back(makePassByName(token));
    }
    CSCHED_ASSERT(!passes.empty(), "empty pass sequence '", sequence, "'");
    return passes;
}

} // namespace csched
