/**
 * @file
 * The pre-rewrite preference-matrix engine, kept verbatim as a
 * reference implementation: a flat time-major row per instruction
 * (data[i][t * C + c]), full-row rescans after every mutation, and no
 * feasible-window bookkeeping.  The blocked engine in
 * preference_matrix.hh must agree with this class bit-for-bit on
 * every operation sequence -- tests/matrix_differential_test.cc
 * replays seeded random mutation scripts against both and compares
 * weights, marginals, preferred slots, and confidence with exact
 * double equality.
 *
 * The one deliberate departure from the historical code is shared
 * with the new engine: normalize() returns immediately when the row
 * is still clean from a previous normalize (same predicate, so the
 * two implementations stay in lockstep by construction).
 *
 * This class is test-only surface: nothing in the library links
 * against it except the differential test.
 */

#ifndef CSCHED_CONVERGENT_DENSE_REFERENCE_MATRIX_HH
#define CSCHED_CONVERGENT_DENSE_REFERENCE_MATRIX_HH

#include <cstdint>
#include <vector>

#include "ir/instruction.hh"

namespace csched {

class Rng;

/** Time-major rescan-everything engine; see file comment. */
class DenseReferenceMatrix
{
  public:
    DenseReferenceMatrix(int num_instrs, int num_times, int num_clusters);

    int numInstructions() const { return numInstrs_; }
    int numTimes() const { return numTimes_; }
    int numClusters() const { return numClusters_; }

    double at(InstrId i, int t, int c) const;
    void set(InstrId i, int t, int c, double value);
    void scale(InstrId i, int t, int c, double factor);
    void scaleCluster(InstrId i, int c, double factor);
    void scaleTime(InstrId i, int t, double factor);
    void blend(InstrId i, InstrId other, double w);
    void normalize(InstrId i);
    void normalizeAll();

    /** The per-element spelling of RowView::restrictTimeWindow. */
    void restrictTimeWindow(InstrId i, int lo, int hi);

    /** The per-element spelling of RowView::addPositiveNoise. */
    void addPositiveNoise(InstrId i, Rng &rng, double amplitude);

    double spaceMarginal(InstrId i, int c) const;
    double timeMarginal(InstrId i, int t) const;
    int preferredCluster(InstrId i) const;
    int preferredTime(InstrId i) const;
    int expectedTime(InstrId i) const;
    int runnerUpCluster(InstrId i) const;
    double confidence(InstrId i) const;

  private:
    void checkIndex(InstrId i, int t, int c) const;
    void touch(InstrId i);
    void refresh(InstrId i) const;

    double *row(InstrId i) { return &data_[static_cast<size_t>(i) * rowSize_]; }
    const double *
    row(InstrId i) const
    {
        return &data_[static_cast<size_t>(i) * rowSize_];
    }

    int numInstrs_;
    int numTimes_;
    int numClusters_;
    size_t rowSize_;
    std::vector<double> data_;

    mutable std::vector<double> spaceSum_; // [i * C + c]
    mutable std::vector<double> timeSum_;  // [i * T + t]
    mutable std::vector<bool> dirty_;
    std::vector<uint8_t> clean_; ///< shared normalize-skip predicate
};

} // namespace csched

#endif // CSCHED_CONVERGENT_DENSE_REFERENCE_MATRIX_HH
