/**
 * @file
 * The convergent-scheduling pass interface (Section 2/3 of the paper).
 *
 * A pass implements one heuristic.  Passes are independent: the only
 * way they communicate is by reading and scaling the shared preference
 * matrix.  A pass may be applied any number of times, in any order.
 */

#ifndef CSCHED_CONVERGENT_PASS_HH
#define CSCHED_CONVERGENT_PASS_HH

#include <cstdint>
#include <memory>
#include <string>

#include "convergent/preference_matrix.hh"
#include "ir/graph.hh"
#include "machine/machine.hh"
#include "support/rng.hh"

namespace csched {

/**
 * Tunable constants of the heuristics.  Defaults follow the paper
 * where it gives numbers (PLACE x100, FIRST x1.2, PATH x3, EMPHCP
 * x1.2, LEVEL confidence 2.0, LEVEL every 4 levels on Raw); the rest
 * were chosen by the same trial-and-error procedure the paper
 * describes and are documented at each pass.
 */
struct PassParams
{
    /** NOISE: amplitude of the additive uniform noise. */
    double noiseAmplitude = 1.0;

    /** PLACE: multiplicative boost for a preplaced home cluster. */
    double placeFactor = 100.0;

    /** FIRST: boost for the VLIW's first cluster. */
    double firstFactor = 1.2;

    /** PATH: boost for the chosen cluster of a critical-path segment. */
    double pathFactor = 3.0;

    /**
     * PATH: bias ratio above which a path segment follows its own
     * cluster preference instead of the least-loaded cluster.
     */
    double pathBiasThreshold = 1.1;

    /** COMM: boost applied to the preferred (time, cluster) slot. */
    double commPreferredBoost = 2.0;

    /** COMM: include grandparents/grandchildren at half weight. */
    bool commSecondOrder = true;

    /** PLACEPROP: cap on the BFS distance used as a divisor. */
    int placePropMaxDistance = 64;

    /**
     * PLACEPROP: nodes with more than this many dependence neighbours
     * are treated as broadcast values: they neither act as preplaced
     * attractors nor transmit proximity, since co-location with a
     * value that fans out everywhere saves almost no communication.
     */
    int placePropHubDegree = 10;

    /** LEVEL: confidence above which an instruction seeds its bin. */
    double levelConfidenceThreshold = 2.0;

    /** LEVEL: number of graph levels grouped per application. */
    int levelStride = 4;

    /** LEVEL: minimum distance granularity g of the paper. */
    int levelGranularity = 2;

    /** LEVEL: boost for the chosen bin cluster. */
    double levelBoost = 2.0;

    /** PATHPROP: confidence threshold for selecting propagators. */
    double pathPropConfidence = 1.5;

    /** PATHPROP: blend weight kept by the visited instruction. */
    double pathPropBlend = 0.5;

    /** EMPHCP: boost for the infinite-resource issue slot. */
    double emphCpFactor = 1.2;

    /** Seed for the NOISE pass. */
    uint64_t noiseSeed = 0x5eedULL;
};

/** Everything a pass may look at or mutate. */
struct PassContext
{
    const DependenceGraph &graph;
    const MachineModel &machine;
    PreferenceMatrix &weights;
    const PassParams &params;
    Rng &rng;
};

/** One independent scheduling heuristic. */
class Pass
{
  public:
    virtual ~Pass() = default;

    /** Upper-case pass name as used in Table 1, e.g. "PLACEPROP". */
    virtual std::string name() const = 0;

    /** Apply the heuristic by mutating ctx.weights. */
    virtual void run(PassContext &ctx) = 0;

    /**
     * True when the pass only modifies temporal preferences; such
     * passes are excluded from the spatial-convergence plots
     * (Figures 7 and 9).
     */
    virtual bool temporalOnly() const { return false; }
};

/** Factory functions for every pass in Section 4. */
std::unique_ptr<Pass> makeInitTimePass();
std::unique_ptr<Pass> makeRegPressPass();  ///< extension, see its file
std::unique_ptr<Pass> makeNoisePass();
std::unique_ptr<Pass> makePlacePass();
std::unique_ptr<Pass> makeFirstPass();
std::unique_ptr<Pass> makePathPass();
std::unique_ptr<Pass> makeCommPass();
std::unique_ptr<Pass> makePlacePropPass();
std::unique_ptr<Pass> makeLoadBalancePass();
std::unique_ptr<Pass> makeLevelDistributePass();
std::unique_ptr<Pass> makePathPropPass();
std::unique_ptr<Pass> makeEmphCpPass();

} // namespace csched

#endif // CSCHED_CONVERGENT_PASS_HH
