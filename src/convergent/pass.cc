#include "convergent/pass.hh"

// The pass interface is header-only; the individual heuristics live in
// convergent/passes/.  This translation unit exists so the interface
// has a home object file and stays self-contained.

namespace csched {

} // namespace csched
