/**
 * @file
 * Name-based pass construction, used by the sequence parser so
 * experiments can specify pass pipelines as strings such as
 * "INITTIME,NOISE,FIRST,PATH,COMM".
 */

#ifndef CSCHED_CONVERGENT_PASS_REGISTRY_HH
#define CSCHED_CONVERGENT_PASS_REGISTRY_HH

#include <memory>
#include <string>
#include <vector>

#include "convergent/pass.hh"

namespace csched {

/** Construct the pass with the given Table-1 name; fatal if unknown. */
std::unique_ptr<Pass> makePassByName(const std::string &name);

/** All known pass names, in Section-4 order. */
std::vector<std::string> knownPassNames();

/**
 * Parse a comma-separated pass list ("INITTIME, NOISE, PATH") into a
 * pipeline; whitespace is ignored and names are case-insensitive.
 */
std::vector<std::unique_ptr<Pass>>
parsePassSequence(const std::string &sequence);

} // namespace csched

#endif // CSCHED_CONVERGENT_PASS_REGISTRY_HH
