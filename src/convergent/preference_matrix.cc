#include "convergent/preference_matrix.hh"

#include <algorithm>

#include "support/logging.hh"
#include "support/rng.hh"

// Bit-identity note.  Every loop below that folds weights into a sum
// accumulates in the exact order the pre-rewrite (time-major,
// full-row) engine used: space marginals ascend t within one cluster,
// time marginals ascend c within one slot, and normalize's row total
// ascends t-major across the whole row.  Slots outside a row's
// feasible window hold exactly +0.0, and for non-negative weights
// x + (+0.0) == x and (+0.0) * f == +0.0 bitwise, so restricting a
// sum or a scale to the window drops only terms that cannot change
// any partial sum.  Fused multiply+accumulate kernels keep the store
// and the accumulation in separate statements so the addend is the
// rounded, stored value.  tests/matrix_differential_test.cc holds the
// engine to bit-identical agreement with the dense reference.

namespace csched {

PreferenceMatrix::PreferenceMatrix(int num_instrs, int num_times,
                                   int num_clusters)
    : numInstrs_(num_instrs),
      numTimes_(num_times),
      numClusters_(num_clusters),
      rowStride_(static_cast<size_t>(num_times) * num_clusters)
{
    CSCHED_ASSERT(num_instrs > 0, "matrix needs instructions");
    CSCHED_ASSERT(num_times > 0, "matrix needs time slots");
    CSCHED_ASSERT(num_clusters > 0, "matrix needs clusters");
    const double uniform = 1.0 / static_cast<double>(rowStride_);
    arena_.assign(static_cast<size_t>(num_instrs) * rowStride_, uniform);
    timeOff_ = static_cast<size_t>(num_instrs) * num_clusters;
    cache_.assign(timeOff_ + static_cast<size_t>(num_instrs) * num_times,
                  0.0);
    winLo_.assign(num_instrs, 0);
    winHi_.assign(num_instrs, num_times);
    spaceValid_.assign(num_instrs, 0);
    timeValid_.assign(num_instrs, 0);
    clean_.assign(num_instrs, 0);
}

void
PreferenceMatrix::checkInstr(InstrId i) const
{
    CSCHED_ASSERT(i >= 0 && i < numInstrs_, "instruction ", i,
                  " out of range");
}

void
PreferenceMatrix::checkIndex(InstrId i, int t, int c) const
{
    checkInstr(i);
    CSCHED_ASSERT(t >= 0 && t < numTimes_, "time ", t, " out of range");
    CSCHED_ASSERT(c >= 0 && c < numClusters_, "cluster ", c,
                  " out of range");
}

double *
PreferenceMatrix::spaceSums(InstrId i) const
{
    return cache_.data() + static_cast<size_t>(i) * numClusters_;
}

double *
PreferenceMatrix::timeSums(InstrId i) const
{
    return cache_.data() + timeOff_ + static_cast<size_t>(i) * numTimes_;
}

void
PreferenceMatrix::markMutated(InstrId i)
{
    spaceValid_[i] = 0;
    timeValid_[i] = 0;
    clean_[i] = 0;
}

void
PreferenceMatrix::refreshSpace(InstrId i) const
{
    if (spaceValid_[i])
        return;
    const int lo = winLo_[i];
    const int hi = winHi_[i];
    double *space = spaceSums(i);
    for (int c = 0; c < numClusters_; ++c) {
        const double *b = block(i, c);
        double sum = 0.0;
        for (int t = lo; t < hi; ++t)
            sum += b[t];
        space[c] = sum;
    }
    spaceValid_[i] = 1;
}

void
PreferenceMatrix::refreshTime(InstrId i) const
{
    if (timeValid_[i])
        return;
    const int lo = winLo_[i];
    const int hi = winHi_[i];
    const double *r = rowData(i);
    double *time = timeSums(i);
    std::fill(time, time + numTimes_, 0.0);
    for (int t = lo; t < hi; ++t) {
        double sum = 0.0;
        for (int c = 0; c < numClusters_; ++c)
            sum += r[static_cast<size_t>(c) * numTimes_ + t];
        time[t] = sum;
    }
    timeValid_[i] = 1;
}

double
PreferenceMatrix::at(InstrId i, int t, int c) const
{
    checkIndex(i, t, c);
    return block(i, c)[t];
}

// ---- batched row kernels -------------------------------------------

void
PreferenceMatrix::rowSet(InstrId i, int t, int c, double value)
{
    checkIndex(i, t, c);
    CSCHED_ASSERT(value >= 0.0, "negative weight ", value);
    block(i, c)[t] = value;
    if (value != 0.0) {
        // Widen the feasible window; the gap slots are already zero.
        winLo_[i] = std::min(winLo_[i], t);
        winHi_[i] = std::max(winHi_[i], t + 1);
    }
    markMutated(i);
}

void
PreferenceMatrix::rowScaleSlot(InstrId i, int t, int c, double factor)
{
    checkIndex(i, t, c);
    CSCHED_ASSERT(factor >= 0.0, "negative factor ", factor);
    block(i, c)[t] *= factor;
    markMutated(i);
}

void
PreferenceMatrix::rowScaleCluster(InstrId i, int c, double factor)
{
    checkIndex(i, 0, c);
    CSCHED_ASSERT(factor >= 0.0, "negative factor ", factor);
    const int lo = winLo_[i];
    const int hi = winHi_[i];
    double *b = block(i, c);
    if (spaceValid_[i]) {
        // Fused: refresh this cluster's space marginal in the same
        // sweep (the other clusters' blocks are untouched, so their
        // cached sums stay exact).
        double sum = 0.0;
        for (int t = lo; t < hi; ++t) {
            b[t] *= factor;
            sum += b[t];
        }
        spaceSums(i)[c] = sum;
    } else {
        for (int t = lo; t < hi; ++t)
            b[t] *= factor;
    }
    timeValid_[i] = 0;
    clean_[i] = 0;
}

void
PreferenceMatrix::rowScaleClusters(InstrId i, const double *factors)
{
    checkInstr(i);
    const int lo = winLo_[i];
    const int hi = winHi_[i];
    const bool keep_space = spaceValid_[i] != 0;
    double *space = spaceSums(i);
    for (int c = 0; c < numClusters_; ++c) {
        const double factor = factors[c];
        CSCHED_ASSERT(factor >= 0.0, "negative factor ", factor);
        double *b = block(i, c);
        if (keep_space) {
            double sum = 0.0;
            for (int t = lo; t < hi; ++t) {
                b[t] *= factor;
                sum += b[t];
            }
            space[c] = sum;
        } else {
            for (int t = lo; t < hi; ++t)
                b[t] *= factor;
        }
    }
    timeValid_[i] = 0;
    clean_[i] = 0;
}

void
PreferenceMatrix::rowScaleTime(InstrId i, int t, double factor)
{
    checkIndex(i, t, 0);
    CSCHED_ASSERT(factor >= 0.0, "negative factor ", factor);
    double *r = rowData(i);
    for (int c = 0; c < numClusters_; ++c)
        r[static_cast<size_t>(c) * numTimes_ + t] *= factor;
    if (timeValid_[i]) {
        double sum = 0.0;
        for (int c = 0; c < numClusters_; ++c)
            sum += r[static_cast<size_t>(c) * numTimes_ + t];
        timeSums(i)[t] = sum;
    }
    spaceValid_[i] = 0;
    clean_[i] = 0;
}

void
PreferenceMatrix::rowZeroCluster(InstrId i, int c)
{
    checkIndex(i, 0, c);
    double *b = block(i, c);
    std::fill(b + winLo_[i], b + winHi_[i], 0.0);
    if (spaceValid_[i])
        spaceSums(i)[c] = 0.0;
    timeValid_[i] = 0;
    clean_[i] = 0;
}

void
PreferenceMatrix::rowRestrictTimeWindow(InstrId i, int lo, int hi)
{
    checkInstr(i);
    lo = std::max(lo, 0);
    hi = std::min(hi, numTimes_);
    const int new_lo = std::max(winLo_[i], lo);
    const int new_hi = std::min(winHi_[i], hi);
    if (new_lo >= new_hi) {
        // Empty feasible window: the whole row becomes zero (a
        // following normalize() resets it to uniform).
        for (int c = 0; c < numClusters_; ++c) {
            double *b = block(i, c);
            std::fill(b + winLo_[i], b + winHi_[i], 0.0);
        }
        winLo_[i] = 0;
        winHi_[i] = 0;
    } else {
        for (int c = 0; c < numClusters_; ++c) {
            double *b = block(i, c);
            std::fill(b + winLo_[i], b + new_lo, 0.0);
            std::fill(b + new_hi, b + winHi_[i], 0.0);
        }
        winLo_[i] = new_lo;
        winHi_[i] = new_hi;
    }
    markMutated(i);
}

void
PreferenceMatrix::rowAddPositiveNoise(InstrId i, Rng &rng,
                                      double amplitude)
{
    checkInstr(i);
    CSCHED_ASSERT(amplitude >= 0.0, "negative amplitude ", amplitude);
    const int lo = winLo_[i];
    const int hi = winHi_[i];
    double *r = rowData(i);
    // Ascending (t, c) so the draw sequence matches the per-element
    // formulation; zero slots (infeasible or squashed) draw nothing.
    for (int t = lo; t < hi; ++t) {
        for (int c = 0; c < numClusters_; ++c) {
            double &slot = r[static_cast<size_t>(c) * numTimes_ + t];
            if (slot <= 0.0)
                continue;
            slot = slot + rng.uniform() * amplitude;
        }
    }
    markMutated(i);
}

void
PreferenceMatrix::rowBlendFrom(InstrId i, InstrId other, double w)
{
    checkInstr(i);
    checkInstr(other);
    CSCHED_ASSERT(w >= 0.0 && w <= 1.0, "blend weight ", w,
                  " outside [0, 1]");
    // The blended row can pick up mass anywhere the source has some:
    // widen to the union of the two windows.
    const int lo = std::min(winLo_[i], winLo_[other]);
    const int hi = std::max(winHi_[i], winHi_[other]);
    for (int c = 0; c < numClusters_; ++c) {
        double *dst = block(i, c);
        const double *src = block(other, c);
        for (int t = lo; t < hi; ++t)
            dst[t] = w * dst[t] + (1.0 - w) * src[t];
    }
    winLo_[i] = lo;
    winHi_[i] = hi;
    markMutated(i);
}

void
PreferenceMatrix::rowNormalize(InstrId i)
{
    checkInstr(i);
    if (clean_[i]) {
        // Unchanged since the last normalize: the row sum is exactly
        // the post-normalize sum, so rescanning cannot improve it.
        return;
    }
    const int lo = winLo_[i];
    const int hi = winHi_[i];
    double *r = rowData(i);
    // t-major accumulation, matching the flat full-row sum of the
    // per-element engine.
    double sum = 0.0;
    for (int t = lo; t < hi; ++t)
        for (int c = 0; c < numClusters_; ++c)
            sum += r[static_cast<size_t>(c) * numTimes_ + t];
    if (sum <= 1e-300) {
        // Every slot was squashed; reset to uniform rather than leave
        // the instruction unschedulable.
        const double uniform = 1.0 / static_cast<double>(rowStride_);
        std::fill(r, r + rowStride_, uniform);
        winLo_[i] = 0;
        winHi_[i] = numTimes_;
    } else {
        const double inv = 1.0 / sum;
        for (int c = 0; c < numClusters_; ++c) {
            double *b = block(i, c);
            for (int t = lo; t < hi; ++t)
                b[t] *= inv;
        }
    }
    spaceValid_[i] = 0;
    timeValid_[i] = 0;
    clean_[i] = 1;
}

void
PreferenceMatrix::normalizeAll()
{
    for (InstrId i = 0; i < numInstrs_; ++i)
        rowNormalize(i);
}

// ---- derived quantities --------------------------------------------

double
PreferenceMatrix::spaceMarginal(InstrId i, int c) const
{
    checkIndex(i, 0, c);
    refreshSpace(i);
    return spaceSums(i)[c];
}

double
PreferenceMatrix::timeMarginal(InstrId i, int t) const
{
    checkIndex(i, t, 0);
    refreshTime(i);
    return timeSums(i)[t];
}

int
PreferenceMatrix::preferredCluster(InstrId i) const
{
    checkInstr(i);
    refreshSpace(i);
    const double *space = spaceSums(i);
    int best = 0;
    for (int c = 1; c < numClusters_; ++c)
        if (space[c] > space[best])
            best = c;
    return best;
}

int
PreferenceMatrix::preferredTime(InstrId i) const
{
    checkInstr(i);
    refreshTime(i);
    const double *time = timeSums(i);
    int best = 0;
    for (int t = 1; t < numTimes_; ++t)
        if (time[t] > time[best])
            best = t;
    return best;
}

int
PreferenceMatrix::expectedTime(InstrId i) const
{
    checkInstr(i);
    refreshTime(i);
    const double *time = timeSums(i);
    double total = 0.0;
    double weighted = 0.0;
    for (int t = winLo_[i]; t < winHi_[i]; ++t) {
        total += time[t];
        weighted += time[t] * t;
    }
    if (total <= 1e-300)
        return 0;
    return static_cast<int>(weighted / total + 0.5);
}

int
PreferenceMatrix::runnerUpCluster(InstrId i) const
{
    if (numClusters_ == 1)
        return 0;
    refreshSpace(i);
    const double *space = spaceSums(i);
    const int preferred = preferredCluster(i);
    int best = preferred == 0 ? 1 : 0;
    for (int c = 0; c < numClusters_; ++c)
        if (c != preferred && space[c] > space[best])
            best = c;
    return best;
}

double
PreferenceMatrix::confidence(InstrId i) const
{
    if (numClusters_ == 1)
        return 1.0;
    const double top = spaceMarginal(i, preferredCluster(i));
    const double second = spaceMarginal(i, runnerUpCluster(i));
    if (second <= 1e-300)
        return 1e9;
    return top / second;
}

std::vector<int>
PreferenceMatrix::preferredClusters() const
{
    std::vector<int> out(numInstrs_);
    for (InstrId i = 0; i < numInstrs_; ++i)
        out[i] = preferredCluster(i);
    return out;
}

std::vector<int>
PreferenceMatrix::preferredTimes() const
{
    std::vector<int> out(numInstrs_);
    for (InstrId i = 0; i < numInstrs_; ++i)
        out[i] = preferredTime(i);
    return out;
}

// ---- row-view readers ----------------------------------------------

double
PreferenceMatrix::ConstRowView::spaceMarginal(int c) const
{
    return m_->spaceMarginal(i_, c);
}

double
PreferenceMatrix::ConstRowView::timeMarginal(int t) const
{
    return m_->timeMarginal(i_, t);
}

int
PreferenceMatrix::ConstRowView::preferredCluster() const
{
    return m_->preferredCluster(i_);
}

int
PreferenceMatrix::ConstRowView::preferredTime() const
{
    return m_->preferredTime(i_);
}

double
PreferenceMatrix::ConstRowView::confidence() const
{
    return m_->confidence(i_);
}

} // namespace csched
