#include "convergent/sequences.hh"

namespace csched {

std::string
rawPassSequence()
{
    return "INITTIME,PLACEPROP,LOAD,PLACE,PATH,PATHPROP,LEVEL,"
           "PATHPROP,COMM,PATHPROP,EMPHCP";
}

std::string
vliwPassSequence()
{
    return "INITTIME,NOISE,FIRST,PATH,COMM,PLACE,PLACEPROP,COMM,EMPHCP";
}

PassParams
rawPassParams()
{
    PassParams params;
    params.commPreferredBoost = 2.0;
    params.placePropHubDegree = 6;
    params.pathPropConfidence = 1.2;
    params.pathFactor = 3.0;
    params.pathPropBlend = 0.5;
    // LEVEL: slightly finer banding than the paper's four levels and a
    // strong bin boost worked best against our Raw model.
    params.levelStride = 3;
    params.levelGranularity = 1;
    params.levelBoost = 8.0;
    return params;
}

PassParams
vliwPassParams()
{
    PassParams params;
    // A mild first-cluster pull: our scheduling units carry only a few
    // live-ins, so the paper's 1.2 over-serialises cluster 0.
    params.firstFactor = 1.05;
    params.noiseAmplitude = 0.3;
    params.commPreferredBoost = 1.0;
    params.placePropHubDegree = 6;
    params.pathFactor = 1.5;
    return params;
}

} // namespace csched
