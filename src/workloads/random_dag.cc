#include "workloads/random_dag.hh"

#include <algorithm>

#include "support/logging.hh"
#include "support/rng.hh"
#include "workloads/loop_kernel.hh"

namespace csched {

DependenceGraph
makeRandomDag(const RandomDagOptions &options)
{
    CSCHED_ASSERT(options.numInstructions >= 1, "empty DAG requested");
    CSCHED_ASSERT(options.width >= 1, "width must be positive");
    CSCHED_ASSERT(options.banks >= 1, "need at least one bank");

    GraphBuilder builder;
    Rng rng(options.seed);

    std::vector<InstrId> previous;  // last two layers, flattened
    std::vector<InstrId> current;
    int emitted = 0;
    while (emitted < options.numInstructions) {
        const int layer_size = std::min(
            options.numInstructions - emitted,
            std::max(1, options.width / 2 +
                            rng.range(std::max(1, options.width))));
        current.clear();
        for (int k = 0; k < layer_size; ++k) {
            // Choose up to two operands from the previous layers.
            std::vector<InstrId> deps;
            if (!previous.empty()) {
                const int fanin = 1 + rng.range(2);
                for (int d = 0; d < fanin; ++d) {
                    const InstrId pick = previous[rng.range(
                        static_cast<int>(previous.size()))];
                    if (std::find(deps.begin(), deps.end(), pick) ==
                        deps.end()) {
                        deps.push_back(pick);
                    }
                }
            }

            InstrId id;
            if (rng.uniform() < options.memFraction) {
                const int bank = rng.range(options.banks);
                if (!deps.empty() && rng.chance(0.4)) {
                    id = builder.store(bank, deps.front(), {});
                } else {
                    id = builder.load(bank, deps);
                }
            } else if (rng.uniform() < options.floatFraction) {
                static const Opcode kFloatOps[] = {
                    Opcode::FAdd, Opcode::FMul, Opcode::FSub,
                    Opcode::FDiv};
                id = builder.op(kFloatOps[rng.range(3 + (rng.chance(0.1)
                                                             ? 1
                                                             : 0))],
                                deps);
            } else {
                static const Opcode kIntOps[] = {
                    Opcode::IAdd, Opcode::ISub, Opcode::IMul,
                    Opcode::And, Opcode::Xor, Opcode::Shl};
                id = builder.op(kIntOps[rng.range(6)], deps);
            }
            current.push_back(id);
            ++emitted;
        }
        // Keep a two-layer window as dependence candidates.
        std::vector<InstrId> window = current;
        const size_t keep = std::min<size_t>(previous.size(),
                                             options.width);
        window.insert(window.end(), previous.begin(),
                      previous.begin() + keep);
        previous = std::move(window);
    }

    return finishKernel(builder, options.preplaceClusters);
}

} // namespace csched
