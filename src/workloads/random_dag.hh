/**
 * @file
 * Parameterised random layered DAGs, used by the compile-time
 * scalability bench (Figure 10) and by the property-based tests.
 */

#ifndef CSCHED_WORKLOADS_RANDOM_DAG_HH
#define CSCHED_WORKLOADS_RANDOM_DAG_HH

#include <cstdint>

#include "ir/graph.hh"

namespace csched {

/** Knobs of the random generator. */
struct RandomDagOptions
{
    int numInstructions = 200;
    /** Target instructions per level. */
    int width = 8;
    /** Fraction of memory operations (bank-preplaced loads/stores). */
    double memFraction = 0.25;
    /** Number of memory banks for the memory operations. */
    int banks = 4;
    /** Cluster count used to derive preplacement homes. */
    int preplaceClusters = 4;
    /** Fraction of floating-point compute ops. */
    double floatFraction = 0.5;
    uint64_t seed = 1;
};

/** Build a random layered DAG. */
DependenceGraph makeRandomDag(const RandomDagOptions &options);

} // namespace csched

#endif // CSCHED_WORKLOADS_RANDOM_DAG_HH
