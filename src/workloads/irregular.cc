/**
 * @file
 * Irregular benchmark generators: fpppp-kernel, sha, fir, yuv.
 *
 * fpppp-kernel and sha are the paper's two "long, narrow" graphs
 * (Figure 2a): deep dependence chains, little coarse parallelism, and
 * preplacement that suggests no useful assignment.  These are the
 * benchmarks on which the paper reports convergent scheduling LOSING
 * to the Rawcc baseline, so their shapes matter as much as the dense
 * kernels'.  fir and yuv belong to the VLIW suite.
 */

#include "workloads/loop_kernel.hh"
#include "workloads/workloads.hh"

#include "support/logging.hh"
#include "support/rng.hh"

namespace csched {

DependenceGraph
makeFppppKernel(int banks, int preplace_clusters)
{
    (void)banks;  // fpppp is a huge scalar block; it does not unroll
    GraphBuilder builder;
    Rng rng(0xf9999ULL);  // fixed: the kernel's shape is a constant

    // A few dozen scalar loads feed the expression web.  Their
    // addresses are unanalysable (spilled locals), so they carry no
    // bank and are never preplaced.
    std::vector<InstrId> window;
    for (int k = 0; k < 24; ++k)
        window.push_back(builder.load(kNoCluster, {}, "scalar"));

    // The real fpppp-kernel is a ~600-operation basic block with
    // substantial fine-grained ILP (the paper reports a baseline
    // speedup of 6.8x on 16 tiles) but no preplacement structure:
    // many medium-length chains criss-crossing shared temporaries.
    const int body = 560;
    for (int k = 0; k < body; ++k) {
        // Pick operands from a moderately wide recent window: wide
        // enough for fine-grained parallelism, narrow enough that
        // chains stay long.
        auto pick = [&]() -> InstrId {
            const int w = static_cast<int>(window.size());
            const int back = std::min(w, 36);
            return window[w - 1 - rng.range(back)];
        };
        const InstrId a = pick();
        InstrId b = pick();
        Opcode op;
        const int dice = rng.range(100);
        if (dice < 42) {
            op = Opcode::FMul;
        } else if (dice < 74) {
            op = Opcode::FAdd;
        } else if (dice < 96) {
            op = Opcode::FSub;
        } else if (dice < 98) {
            op = Opcode::FDiv;
        } else {
            op = Opcode::FSqrt;
        }
        InstrId value;
        if (op == Opcode::FSqrt) {
            value = builder.op(op, {a});
        } else {
            if (a == b)
                b = pick();
            value = builder.op(op, {a, b});
        }
        window.push_back(value);
    }

    // Sink the last few values to unanalysable stores.
    for (int k = 0; k < 8; ++k)
        builder.store(kNoCluster, window[window.size() - 1 - k], {},
                      "result");
    return finishKernel(builder, preplace_clusters);
}

DependenceGraph
makeSha(int banks, int preplace_clusters)
{
    CSCHED_ASSERT(banks >= 1, "need at least one bank");
    GraphBuilder builder;
    const int rounds = 48;

    // Chaining variables: live-ins, pinned to the first cluster.
    InstrId a = builder.op(Opcode::Const, {}, "h0");
    InstrId b = builder.op(Opcode::Const, {}, "h1");
    InstrId c = builder.op(Opcode::Const, {}, "h2");
    InstrId d = builder.op(Opcode::Const, {}, "h3");
    InstrId e = builder.op(Opcode::Const, {}, "h4");
    for (InstrId live : {a, b, c, d, e})
        builder.preplace(live, 0);
    const InstrId k_const = builder.op(Opcode::Const, {}, "K");
    ArrayRef w_arr(builder, "w");

    // The first 16 message words come from memory, banked by word
    // index -- preplaced but scattered; the paper notes sha's
    // preplacement suggests no good assignment.
    std::vector<InstrId> w_sched;
    for (int t = 0; t < 16; ++t)
        w_sched.push_back(w_arr.load(t % banks));

    for (int t = 0; t < rounds; ++t) {
        // Message-schedule expansion: w[t] = rotl1(w[t-3] ^ w[t-8] ^
        // w[t-14] ^ w[t-16]).  This side network is where sha's
        // modest fine-grained parallelism lives.
        InstrId w;
        if (t < 16) {
            w = w_sched[t];
        } else {
            const InstrId x1 = builder.op(
                Opcode::Xor, {w_sched[t - 3], w_sched[t - 8]});
            const InstrId x2 = builder.op(
                Opcode::Xor, {w_sched[t - 14], w_sched[t - 16]});
            const InstrId x3 = builder.op(Opcode::Xor, {x1, x2});
            w = builder.op(Opcode::Rot, {x3});
            w_sched.push_back(w);
        }
        // f = (b & c) | (b ^ d), a round-function stand-in.
        const InstrId bc = builder.op(Opcode::And, {b, c});
        const InstrId bd = builder.op(Opcode::Xor, {b, d});
        const InstrId f = builder.op(Opcode::Or, {bc, bd});
        // temp = rotl5(a) + f + e + K + w[t]
        const InstrId rot = builder.op(Opcode::Rot, {a});
        const InstrId s1 = builder.op(Opcode::IAdd, {rot, f});
        const InstrId s2 = builder.op(Opcode::IAdd, {s1, e});
        const InstrId s3 = builder.op(Opcode::IAdd, {s2, k_const});
        const InstrId temp = builder.op(Opcode::IAdd, {s3, w});
        // Rotate the state.
        e = d;
        d = c;
        c = builder.op(Opcode::Rot, {b});
        b = a;
        a = temp;
    }
    ArrayRef digest(builder, "digest");
    digest.store(0, a);
    digest.store(1 % banks, b);
    digest.store(2 % banks, c);
    digest.store(3 % banks, d);
    digest.store(4 % banks, e);
    return finishKernel(builder, preplace_clusters);
}

DependenceGraph
makeFir(int banks, int preplace_clusters)
{
    CSCHED_ASSERT(banks >= 1, "need at least one bank");
    GraphBuilder builder;
    const int outputs = 2 * banks;
    const int taps = 6;
    ArrayRef x(builder, "x");
    ArrayRef h(builder, "h");
    ArrayRef y(builder, "y");
    for (int i = 0; i < outputs; ++i) {
        std::vector<InstrId> products;
        for (int k = 0; k < taps; ++k) {
            const InstrId xv = x.load((i + k) % banks);
            const InstrId hv = h.load(k % banks);
            products.push_back(builder.op(Opcode::FMul, {xv, hv}));
        }
        // FP sums are not reassociable: keep the serial chain.
        const InstrId sum =
            reduceChain(builder, Opcode::FAdd, products);
        y.store(i % banks, sum);
    }
    return finishKernel(builder, preplace_clusters);
}

DependenceGraph
makeYuv(int banks, int preplace_clusters)
{
    CSCHED_ASSERT(banks >= 1, "need at least one bank");
    GraphBuilder builder;
    ArrayRef rArr(builder, "r");
    ArrayRef gArr(builder, "g");
    ArrayRef bArr(builder, "b");
    ArrayRef outArr(builder, "yuv");
    const int pixels = 2 * banks;

    // The nine conversion coefficients are shared constants.
    std::vector<InstrId> coef;
    for (int k = 0; k < 9; ++k)
        coef.push_back(builder.op(Opcode::Const, {}, "c"));

    for (int p = 0; p < pixels; ++p) {
        const int bank = p % banks;
        const InstrId r = rArr.load(bank);
        const InstrId g = gArr.load(bank);
        const InstrId b = bArr.load(bank);
        const InstrId rgb[3] = {r, g, b};
        for (int ch = 0; ch < 3; ++ch) {
            std::vector<InstrId> terms;
            for (int k = 0; k < 3; ++k)
                terms.push_back(builder.op(
                    Opcode::IMul, {rgb[k], coef[ch * 3 + k]}));
            const InstrId sum =
                reduceBalanced(builder, Opcode::IAdd, terms);
            const InstrId scaled = builder.op(Opcode::Shr, {sum});
            outArr.store(bank, scaled);
        }
    }
    return finishKernel(builder, preplace_clusters);
}

} // namespace csched
