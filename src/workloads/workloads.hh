/**
 * @file
 * Synthetic benchmark registry.
 *
 * Each generator mirrors one benchmark of the paper's Section 5.  A
 * generator takes:
 *
 *  - @p banks: the number of memory banks to spread arrays over, equal
 *    to the number of clusters/tiles of the target machine.  As in the
 *    paper, the congruence pass "unrolls the loops by the number of
 *    clusters or tiles", so graph size grows with this parameter.
 *  - @p preplace_clusters: the cluster count used to derive
 *    preplacement homes from banks (bank % preplace_clusters).  Pass
 *    the target machine's cluster count normally, or 1 to prepare the
 *    same kernel for the one-cluster normalisation run.
 */

#ifndef CSCHED_WORKLOADS_WORKLOADS_HH
#define CSCHED_WORKLOADS_WORKLOADS_HH

#include <string>
#include <vector>

#include "ir/graph.hh"

namespace csched {

// ---- Dense-matrix kernels (dense_matrix.cc) ------------------------

/** Element-wise vector multiply: wide, flat, fully bank-preplaced. */
DependenceGraph makeVvmul(int banks, int preplace_clusters);

/** Matrix multiply: load pairs, multiply, reduction trees, stores. */
DependenceGraph makeMxm(int banks, int preplace_clusters);

/** Cholesky factorisation: sqrt/divide backbone with rank-1 updates. */
DependenceGraph makeCholesky(int banks, int preplace_clusters);

/** Pentadiagonal inversion: many parallel serial recurrences. */
DependenceGraph makeVpenta(int banks, int preplace_clusters);

// ---- Stencil kernels (stencils.cc) ---------------------------------

/** 4-point Jacobi relaxation. */
DependenceGraph makeJacobi(int banks, int preplace_clusters);

/** Conway's game of life: 8-point integer stencil. */
DependenceGraph makeLife(int banks, int preplace_clusters);

/** Shallow-water model: multi-array 6-point stencil. */
DependenceGraph makeSwim(int banks, int preplace_clusters);

/** Mesh-generation stencil with deep floating-point expressions. */
DependenceGraph makeTomcatv(int banks, int preplace_clusters);

/** Red-black successive over-relaxation. */
DependenceGraph makeRbsorf(int banks, int preplace_clusters);

// ---- Irregular kernels (irregular.cc) ------------------------------

/**
 * The fpppp inner loop: a long, narrow floating-point expression DAG
 * with essentially no preplacement (Figure 2a's shape).  Size does not
 * scale with banks.
 */
DependenceGraph makeFppppKernel(int banks, int preplace_clusters);

/** Secure Hash Algorithm rounds: serial integer chains, no banks. */
DependenceGraph makeSha(int banks, int preplace_clusters);

/** FIR filter: per-output tap reductions. */
DependenceGraph makeFir(int banks, int preplace_clusters);

/** RGB-to-YUV conversion: wide, shallow, three stores per pixel. */
DependenceGraph makeYuv(int banks, int preplace_clusters);

// ---- Synthetic perf-suite DAGs (synthetic.cc) ----------------------
//
// Deterministic 2k-100k-instruction random layered DAGs used by
// `csched_bench perf` to stress the preference-matrix engine.  They
// live in a separate registry (perfWorkloads()) so interactive suites
// and tests keep their paper-sized default sets; lookups by name
// (tryFindWorkload) see both registries.

/** 10k instructions, wide and shallow (many rows, short time axis). */
DependenceGraph makeSynthWide10k(int banks, int preplace_clusters);

/** 2k instructions, long and narrow (fpppp/sha shape, deep CPL). */
DependenceGraph makeSynthNarrow2k(int banks, int preplace_clusters);

/** 50k instructions, wide. */
DependenceGraph makeSynthWide50k(int banks, int preplace_clusters);

/** 100k instructions, wide; the stress ceiling of the perf suite. */
DependenceGraph makeSynthHuge100k(int banks, int preplace_clusters);

// ---- Registry (registry.cc) ----------------------------------------

/** A named generator. */
struct WorkloadSpec
{
    std::string name;
    DependenceGraph (*build)(int banks, int preplace_clusters);
    std::string description;
};

/** Every benchmark generator, in a stable order. */
const std::vector<WorkloadSpec> &allWorkloads();

/**
 * The large synthetic DAGs of the perf suite, in a stable order.
 * Kept out of allWorkloads() so `--suite all` and the tests stay
 * paper-sized; findWorkload/tryFindWorkload resolve these names too.
 */
const std::vector<WorkloadSpec> &perfWorkloads();

/** Lookup by name; fatal when unknown. */
const WorkloadSpec &findWorkload(const std::string &name);

/** Lookup by name; nullptr when unknown (for the job boundary). */
const WorkloadSpec *tryFindWorkload(const std::string &name);

/** The Raw evaluation suite of Table 2 / Figures 6-7 (9 benchmarks). */
std::vector<std::string> rawSuiteNames();

/** The VLIW evaluation suite of Figures 8-9 (7 benchmarks). */
std::vector<std::string> vliwSuiteNames();

} // namespace csched

#endif // CSCHED_WORKLOADS_WORKLOADS_HH
