#include "workloads/workloads.hh"

#include "support/logging.hh"

namespace csched {

const std::vector<WorkloadSpec> &
allWorkloads()
{
    static const std::vector<WorkloadSpec> specs = {
        {"cholesky", makeCholesky,
         "Cholesky factorisation (Nasa7): sqrt/div backbone + updates"},
        {"tomcatv", makeTomcatv,
         "mesh-generation stencil (Spec95): deep FP expressions"},
        {"vpenta", makeVpenta,
         "pentadiagonal inversion (Nasa7): parallel recurrences"},
        {"mxm", makeMxm,
         "matrix multiply (Nasa7): load pairs + reduction trees"},
        {"fpppp-kernel", makeFppppKernel,
         "fpppp inner loop (Spec95): long, narrow, no preplacement"},
        {"sha", makeSha,
         "secure hash rounds: serial integer chains"},
        {"swim", makeSwim,
         "shallow-water stencil (Spec95)"},
        {"jacobi", makeJacobi,
         "4-point Jacobi relaxation (Raw suite)"},
        {"life", makeLife,
         "Conway's life, 8-point integer stencil (Raw suite)"},
        {"vvmul", makeVvmul,
         "element-wise vector multiply"},
        {"rbsorf", makeRbsorf,
         "red-black SOR relaxation"},
        {"yuv", makeYuv,
         "RGB to YUV conversion"},
        {"fir", makeFir,
         "FIR filter: per-output tap reductions"},
    };
    return specs;
}

const std::vector<WorkloadSpec> &
perfWorkloads()
{
    static const std::vector<WorkloadSpec> specs = {
        {"synth-wide-10k", makeSynthWide10k,
         "synthetic 10k-instr wide layered DAG (perf suite)"},
        {"synth-narrow-2k", makeSynthNarrow2k,
         "synthetic 2k-instr long narrow DAG, fpppp/sha shape"},
        {"synth-wide-50k", makeSynthWide50k,
         "synthetic 50k-instr wide layered DAG (perf stress)"},
        {"synth-huge-100k", makeSynthHuge100k,
         "synthetic 100k-instr wide layered DAG (perf ceiling)"},
    };
    return specs;
}

const WorkloadSpec &
findWorkload(const std::string &name)
{
    const WorkloadSpec *spec = tryFindWorkload(name);
    if (spec == nullptr)
        CSCHED_FATAL("unknown workload '", name, "'");
    return *spec;
}

const WorkloadSpec *
tryFindWorkload(const std::string &name)
{
    for (const auto &spec : allWorkloads())
        if (spec.name == name)
            return &spec;
    for (const auto &spec : perfWorkloads())
        if (spec.name == name)
            return &spec;
    return nullptr;
}

std::vector<std::string>
rawSuiteNames()
{
    return {"cholesky", "tomcatv", "vpenta",       "mxm", "fpppp-kernel",
            "sha",      "swim",    "jacobi",       "life"};
}

std::vector<std::string>
vliwSuiteNames()
{
    return {"vvmul", "rbsorf", "yuv", "tomcatv", "mxm", "fir",
            "cholesky"};
}

} // namespace csched
