/**
 * @file
 * Shared helpers for the synthetic benchmark generators.
 *
 * The generators in this directory reproduce the *dependence-graph
 * shapes* of the paper's benchmarks (see DESIGN.md): dense-matrix
 * loops unrolled by the number of clusters with bank-preplaced memory
 * operations (the effect of Rawcc/Chorus congruence analysis), and
 * irregular kernels (fpppp-kernel, sha) that are long, narrow, and
 * preplacement-free.  This header provides the small building blocks
 * they share.
 */

#ifndef CSCHED_WORKLOADS_LOOP_KERNEL_HH
#define CSCHED_WORKLOADS_LOOP_KERNEL_HH

#include <vector>

#include "ir/graph_builder.hh"

namespace csched {

/**
 * An array accessed by a kernel.
 *
 * Mirrors what compiled dense-loop code looks like: the array's base
 * address is a *live-in* value.  Live-ins are preplaced on cluster 0,
 * following the paper's Section 5: on Chorus "all values that are live
 * across multiple scheduling regions are mapped to the first cluster",
 * and on Raw live ranges pin to the cluster of their first
 * definition/use.  Unrolled accesses use immediate offsets from the
 * base, so every load/store consumes the live-in base value directly
 * (and therefore needs it broadcast to its cluster).
 */
class ArrayRef
{
  public:
    /** Declare an array: emits the live-in base value. */
    ArrayRef(GraphBuilder &builder, std::string name);

    /** Emit a load from @p bank at an immediate offset off the base. */
    InstrId load(int bank, const std::vector<InstrId> &deps = {});

    /** Emit a store of @p value to @p bank. */
    InstrId store(int bank, InstrId value,
                  const std::vector<InstrId> &deps = {});

    /** The live-in base value (preplaced on cluster 0). */
    InstrId base() const { return base_; }

  private:
    GraphBuilder &builder_;
    std::string name_;
    InstrId base_;
};

/**
 * Pairwise (balanced-tree) reduction of @p values with @p op;
 * returns the root of the tree.  A single value reduces to itself.
 */
InstrId reduceBalanced(GraphBuilder &builder, Opcode op,
                       std::vector<InstrId> values);

/**
 * Left-to-right (serial-chain) reduction, the shape a compiler keeps
 * for non-reassociable floating-point sums.
 */
InstrId reduceChain(GraphBuilder &builder, Opcode op,
                    const std::vector<InstrId> &values);

/**
 * Apply bank-derived preplacement for @p preplace_clusters clusters
 * and finalize.  Every generator funnels through this so that the
 * same kernel can be preplaced for its target machine (banks ==
 * clusters) or for the one-cluster normalisation run.
 */
DependenceGraph finishKernel(GraphBuilder &builder, int preplace_clusters);

} // namespace csched

#endif // CSCHED_WORKLOADS_LOOP_KERNEL_HH
