/**
 * @file
 * Stencil benchmark generators: jacobi, life, swim, tomcatv, rbsorf.
 *
 * Stencils read a small neighbourhood of each point, so their loads
 * touch adjacent banks; after bank preplacement this creates the
 * "natural assignments" the paper observes convergent scheduling
 * exploiting -- each point's computation is attracted between the
 * banks it touches.
 */

#include "workloads/loop_kernel.hh"
#include "workloads/workloads.hh"

#include "support/logging.hh"

namespace csched {

namespace {

/** Bank of column @p col under column interleaving, wrapping. */
int
columnBank(int col, int banks)
{
    return ((col % banks) + banks) % banks;
}

} // namespace

DependenceGraph
makeJacobi(int banks, int preplace_clusters)
{
    CSCHED_ASSERT(banks >= 1, "need at least one bank");
    GraphBuilder builder;
    ArrayRef a(builder, "a");
    ArrayRef out(builder, "b");
    const int rows = 4;
    const InstrId quarter = builder.op(Opcode::Const, {}, "0.25");
    for (int r = 0; r < rows; ++r) {
        for (int i = 0; i < banks; ++i) {
            const InstrId left = a.load(columnBank(i - 1, banks));
            const InstrId right = a.load(columnBank(i + 1, banks));
            const InstrId up = a.load(columnBank(i, banks));
            const InstrId down = a.load(columnBank(i, banks));
            const InstrId h = builder.op(Opcode::FAdd, {left, right});
            const InstrId v = builder.op(Opcode::FAdd, {up, down});
            const InstrId s = builder.op(Opcode::FAdd, {h, v});
            const InstrId avg = builder.op(Opcode::FMul, {s, quarter});
            out.store(columnBank(i, banks), avg);
        }
    }
    return finishKernel(builder, preplace_clusters);
}

DependenceGraph
makeLife(int banks, int preplace_clusters)
{
    CSCHED_ASSERT(banks >= 1, "need at least one bank");
    GraphBuilder builder;
    ArrayRef grid(builder, "grid");
    ArrayRef out(builder, "out");
    const int rows = 2;
    const InstrId two = builder.op(Opcode::Const, {}, "2");
    const InstrId three = builder.op(Opcode::Const, {}, "3");
    for (int r = 0; r < rows; ++r) {
        for (int i = 0; i < banks; ++i) {
            std::vector<InstrId> neighbours;
            for (int dc = -1; dc <= 1; ++dc) {
                for (int dr = -1; dr <= 1; ++dr) {
                    if (dc == 0 && dr == 0)
                        continue;
                    neighbours.push_back(
                        grid.load(columnBank(i + dc, banks)));
                }
            }
            const InstrId count =
                reduceBalanced(builder, Opcode::IAdd, neighbours);
            const InstrId self = grid.load(columnBank(i, banks));
            const InstrId is3 = builder.op(Opcode::Cmp, {count, three});
            const InstrId is2 = builder.op(Opcode::Cmp, {count, two});
            const InstrId survives =
                builder.op(Opcode::And, {is2, self});
            const InstrId alive =
                builder.op(Opcode::Or, {is3, survives});
            out.store(columnBank(i, banks), alive);
        }
    }
    return finishKernel(builder, preplace_clusters);
}

DependenceGraph
makeSwim(int banks, int preplace_clusters)
{
    CSCHED_ASSERT(banks >= 1, "need at least one bank");
    GraphBuilder builder;
    ArrayRef p(builder, "p");
    ArrayRef u(builder, "u");
    ArrayRef v(builder, "v");
    ArrayRef cuArr(builder, "cu");
    ArrayRef cvArr(builder, "cv");
    ArrayRef hArr(builder, "h");
    const int rows = 2;
    const InstrId half = builder.op(Opcode::Const, {}, "0.5");
    for (int r = 0; r < rows; ++r) {
        for (int i = 0; i < banks; ++i) {
            const int here = columnBank(i, banks);
            const int east = columnBank(i + 1, banks);
            const InstrId p0 = p.load(here);
            const InstrId p1 = p.load(east);
            const InstrId u0 = u.load(here);
            const InstrId u1 = u.load(east);
            const InstrId v0 = v.load(here);
            const InstrId v1 = v.load(east);
            const InstrId psum = builder.op(Opcode::FAdd, {p0, p1});
            const InstrId pavg = builder.op(Opcode::FMul, {psum, half});
            const InstrId cu = builder.op(Opcode::FMul, {pavg, u1});
            const InstrId cv = builder.op(Opcode::FMul, {pavg, v1});
            const InstrId uu = builder.op(Opcode::FMul, {u0, u1});
            const InstrId vv = builder.op(Opcode::FMul, {v0, v1});
            const InstrId ke = builder.op(Opcode::FAdd, {uu, vv});
            const InstrId h = builder.op(Opcode::FAdd, {p0, ke});
            cuArr.store(here, cu);
            cvArr.store(here, cv);
            hArr.store(here, h);
        }
    }
    return finishKernel(builder, preplace_clusters);
}

DependenceGraph
makeTomcatv(int banks, int preplace_clusters)
{
    CSCHED_ASSERT(banks >= 1, "need at least one bank");
    GraphBuilder builder;
    ArrayRef x(builder, "x");
    ArrayRef y(builder, "y");
    ArrayRef rxArr(builder, "rx");
    ArrayRef ryArr(builder, "ry");
    const int rows = 2;
    for (int r = 0; r < rows; ++r) {
        for (int i = 0; i < banks; ++i) {
            const int west = columnBank(i - 1, banks);
            const int east = columnBank(i + 1, banks);
            const int here = columnBank(i, banks);
            const InstrId xw = x.load(west);
            const InstrId xe = x.load(east);
            const InstrId xn = x.load(here);
            const InstrId xs = x.load(here);
            const InstrId yw = y.load(west);
            const InstrId ye = y.load(east);
            const InstrId yn = y.load(here);
            const InstrId ys = y.load(here);
            const InstrId xx = builder.op(Opcode::FSub, {xe, xw});
            const InstrId yx = builder.op(Opcode::FSub, {ye, yw});
            const InstrId xy = builder.op(Opcode::FSub, {xn, xs});
            const InstrId yy = builder.op(Opcode::FSub, {yn, ys});
            const InstrId xx2 = builder.op(Opcode::FMul, {xx, xx});
            const InstrId xy2 = builder.op(Opcode::FMul, {xy, xy});
            const InstrId yx2 = builder.op(Opcode::FMul, {yx, yx});
            const InstrId yy2 = builder.op(Opcode::FMul, {yy, yy});
            const InstrId a = builder.op(Opcode::FAdd, {xx2, xy2});
            const InstrId b = builder.op(Opcode::FAdd, {yx2, yy2});
            const InstrId ab = builder.op(Opcode::FMul, {a, b});
            const InstrId cross = builder.op(Opcode::FMul, {xx, yy});
            const InstrId rx = builder.op(Opcode::FSub, {ab, cross});
            const InstrId ry = builder.op(Opcode::FAdd, {ab, cross});
            rxArr.store(here, rx);
            ryArr.store(here, ry);
        }
    }
    return finishKernel(builder, preplace_clusters);
}

DependenceGraph
makeRbsorf(int banks, int preplace_clusters)
{
    CSCHED_ASSERT(banks >= 1, "need at least one bank");
    GraphBuilder builder;
    ArrayRef uArr(builder, "u");
    const int rows = 3;
    const InstrId omega = builder.op(Opcode::Const, {}, "omega");
    for (int r = 0; r < rows; ++r) {
        for (int i = 0; i < banks; ++i) {
            // Red points only: neighbours are black, same array.
            const InstrId west = uArr.load(columnBank(i - 1, banks));
            const InstrId east = uArr.load(columnBank(i + 1, banks));
            const InstrId north = uArr.load(columnBank(i, banks));
            const InstrId south = uArr.load(columnBank(i, banks));
            const InstrId centre = uArr.load(columnBank(i, banks));
            const InstrId h = builder.op(Opcode::FAdd, {west, east});
            const InstrId v = builder.op(Opcode::FAdd, {north, south});
            const InstrId s = builder.op(Opcode::FAdd, {h, v});
            const InstrId resid = builder.op(Opcode::FSub, {s, centre});
            const InstrId scaled =
                builder.op(Opcode::FMul, {resid, omega});
            const InstrId out =
                builder.op(Opcode::FAdd, {centre, scaled});
            uArr.store(columnBank(i, banks), out);
        }
    }
    return finishKernel(builder, preplace_clusters);
}

} // namespace csched
