#include "workloads/loop_kernel.hh"

#include "ir/graph_algorithms.hh"
#include "support/logging.hh"

namespace csched {

ArrayRef::ArrayRef(GraphBuilder &builder, std::string name)
    : builder_(builder), name_(std::move(name))
{
    base_ = builder_.op(Opcode::Const, {}, name_ + ".base");
    builder_.preplace(base_, 0);
}

InstrId
ArrayRef::load(int bank, const std::vector<InstrId> &deps)
{
    // Unrolled accesses use immediate offsets from the live-in base,
    // so the load consumes the base value directly.
    std::vector<InstrId> all = deps;
    all.push_back(base_);
    return builder_.load(bank, all, name_);
}

InstrId
ArrayRef::store(int bank, InstrId value,
                const std::vector<InstrId> &deps)
{
    std::vector<InstrId> all = deps;
    all.push_back(base_);
    return builder_.store(bank, value, all, name_);
}

InstrId
reduceBalanced(GraphBuilder &builder, Opcode op,
               std::vector<InstrId> values)
{
    CSCHED_ASSERT(!values.empty(), "reduction of zero values");
    while (values.size() > 1) {
        std::vector<InstrId> next;
        for (size_t k = 0; k + 1 < values.size(); k += 2)
            next.push_back(builder.op(op, {values[k], values[k + 1]}));
        if (values.size() % 2 == 1)
            next.push_back(values.back());
        values = std::move(next);
    }
    return values.front();
}

InstrId
reduceChain(GraphBuilder &builder, Opcode op,
            const std::vector<InstrId> &values)
{
    CSCHED_ASSERT(!values.empty(), "reduction of zero values");
    InstrId acc = values.front();
    for (size_t k = 1; k < values.size(); ++k)
        acc = builder.op(op, {acc, values[k]});
    return acc;
}

DependenceGraph
finishKernel(GraphBuilder &builder, int preplace_clusters)
{
    preplaceMemoryByBank(builder.graph(), preplace_clusters);
    return builder.build();
}

} // namespace csched
