/**
 * @file
 * Large synthetic DAG generators for the performance suite.
 *
 * The paper's kernels top out at a few hundred instructions, which is
 * far too small to exercise the preference-matrix engine: at that size
 * every row fits in L1 and every pass finishes in microseconds.  These
 * generators scale the random layered DAG of random_dag.cc to the
 * 10k-100k-instruction range in two characteristic shapes:
 *
 *  - "wide": many instructions per level, shallow critical path.  The
 *    matrix is tall (many rows) with short time axes; pass cost is
 *    dominated by per-row kernel throughput.
 *  - "narrow": few instructions per level, deep critical path (the
 *    fpppp/sha shape of Figure 2a).  The matrix has long time axes
 *    where most slots are infeasible, which is exactly what the
 *    time-window sparsification mode exists for.
 *
 * All generators are deterministic (fixed seeds) and parameterised by
 * (banks, preplace_clusters) like every other workload so they drop
 * into grids, speedup normalisation, and the perf suite unchanged.
 */

#include "workloads/random_dag.hh"
#include "workloads/workloads.hh"

namespace csched {

namespace {

DependenceGraph
makeSynthetic(int num_instrs, int width, double mem_fraction,
              double float_fraction, uint64_t seed, int banks,
              int preplace_clusters)
{
    RandomDagOptions options;
    options.numInstructions = num_instrs;
    options.width = width;
    options.memFraction = mem_fraction;
    options.floatFraction = float_fraction;
    options.banks = banks;
    options.preplaceClusters = preplace_clusters;
    options.seed = seed;
    return makeRandomDag(options);
}

} // namespace

DependenceGraph
makeSynthWide10k(int banks, int preplace_clusters)
{
    return makeSynthetic(10000, 64, 0.20, 0.6, 42, banks,
                         preplace_clusters);
}

DependenceGraph
makeSynthNarrow2k(int banks, int preplace_clusters)
{
    return makeSynthetic(2000, 4, 0.05, 0.9, 7, banks,
                         preplace_clusters);
}

DependenceGraph
makeSynthWide50k(int banks, int preplace_clusters)
{
    return makeSynthetic(50000, 320, 0.15, 0.6, 9, banks,
                         preplace_clusters);
}

DependenceGraph
makeSynthHuge100k(int banks, int preplace_clusters)
{
    return makeSynthetic(100000, 640, 0.15, 0.6, 11, banks,
                         preplace_clusters);
}

} // namespace csched
