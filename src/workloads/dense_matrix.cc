/**
 * @file
 * Dense-matrix benchmark generators: vvmul, mxm, cholesky, vpenta.
 *
 * All four are "fat" graphs in the paper's Figure-2 sense: coarse
 * parallelism across unrolled iterations, with memory operations
 * preplaced by bank and array bases entering as live-ins on cluster 0.
 * Loop bodies are unrolled by the bank count, as the Rawcc/Chorus
 * congruence pass does.
 */

#include "workloads/loop_kernel.hh"
#include "workloads/workloads.hh"

#include "support/logging.hh"

namespace csched {

DependenceGraph
makeVvmul(int banks, int preplace_clusters)
{
    CSCHED_ASSERT(banks >= 1, "need at least one bank");
    GraphBuilder builder;
    ArrayRef a(builder, "a");
    ArrayRef b(builder, "b");
    ArrayRef c(builder, "c");
    const int elems_per_bank = 4;
    for (int i = 0; i < elems_per_bank * banks; ++i) {
        const int bank = i % banks;
        const InstrId av = a.load(bank);
        const InstrId bv = b.load(bank);
        const InstrId m = builder.op(Opcode::FMul, {av, bv});
        c.store(bank, m);
    }
    return finishKernel(builder, preplace_clusters);
}

DependenceGraph
makeMxm(int banks, int preplace_clusters)
{
    CSCHED_ASSERT(banks >= 1, "need at least one bank");
    GraphBuilder builder;
    ArrayRef a(builder, "A");
    ArrayRef b(builder, "B");
    ArrayRef c(builder, "C");
    const int rows = 2;
    const int depth = 8;  // k-loop extent
    for (int i = 0; i < rows; ++i) {
        for (int j = 0; j < banks; ++j) {
            std::vector<InstrId> products;
            for (int k = 0; k < depth; ++k) {
                // A is distributed along k, B along j.
                const InstrId av = a.load(k % banks);
                const InstrId bv = b.load(j % banks);
                products.push_back(
                    builder.op(Opcode::FMul, {av, bv}));
            }
            const InstrId sum =
                reduceBalanced(builder, Opcode::FAdd, products);
            c.store(j % banks, sum);
        }
    }
    return finishKernel(builder, preplace_clusters);
}

DependenceGraph
makeCholesky(int banks, int preplace_clusters)
{
    CSCHED_ASSERT(banks >= 1, "need at least one bank");
    GraphBuilder builder;
    ArrayRef a(builder, "a");
    ArrayRef l(builder, "L");
    const InstrId one = builder.op(Opcode::Const, {}, "1.0");

    const int steps = 3;  // j-loop iterations with a serial backbone
    const int col = 2 * banks + 2;  // unrolled i-loop extent

    InstrId backbone = kNoInstr;  // value carrying the j -> j+1 chain
    for (int j = 0; j < steps; ++j) {
        std::vector<InstrId> diag_deps;
        if (backbone != kNoInstr)
            diag_deps.push_back(backbone);
        const InstrId diag = a.load(j % banks, diag_deps);
        const InstrId root = builder.op(Opcode::FSqrt, {diag});
        const InstrId inv = builder.op(Opcode::FDiv, {one, root});

        InstrId last_update = kNoInstr;
        for (int i = 1; i <= col; ++i) {
            const int bank = (j + i) % banks;
            const InstrId aij = a.load(bank);
            const InstrId lij = builder.op(Opcode::FMul, {aij, inv});
            l.store(bank, lij);
            // Rank-1 update of the next column entry.
            const InstrId next = a.load(bank);
            const InstrId sq = builder.op(Opcode::FMul, {lij, lij});
            const InstrId updated =
                builder.op(Opcode::FSub, {next, sq});
            a.store(bank, updated);
            last_update = updated;
        }
        backbone = last_update;
    }
    return finishKernel(builder, preplace_clusters);
}

DependenceGraph
makeVpenta(int banks, int preplace_clusters)
{
    CSCHED_ASSERT(banks >= 1, "need at least one bank");
    GraphBuilder builder;
    ArrayRef coef(builder, "c");
    ArrayRef rhs(builder, "r");
    ArrayRef x(builder, "x");
    const int lines = 2 * banks;  // independent recurrences
    const int chain = 4;          // serial steps per line
    for (int line = 0; line < lines; ++line) {
        const int bank = line % banks;
        InstrId value = x.load(bank);
        for (int step = 0; step < chain; ++step) {
            const InstrId cv = coef.load(bank);
            const InstrId rv = rhs.load(bank);
            const InstrId scaled =
                builder.op(Opcode::FMul, {value, cv});
            value = builder.op(Opcode::FSub, {rv, scaled});
        }
        x.store(bank, value);
    }
    return finishKernel(builder, preplace_clusters);
}

} // namespace csched
