/**
 * @file
 * Human-readable schedule rendering: a per-cluster text Gantt chart
 * (one row per FU, one column per cycle) and a placement listing.
 * Used by the CLI tool and the examples.
 */

#ifndef CSCHED_SCHED_SCHEDULE_PRINTER_HH
#define CSCHED_SCHED_SCHEDULE_PRINTER_HH

#include <ostream>

#include "ir/graph.hh"
#include "machine/machine.hh"
#include "sched/schedule.hh"

namespace csched {

/**
 * Render @p schedule as a text Gantt chart.  Each cluster prints one
 * row per FU; a cell shows the instruction id issued that cycle ('.'
 * when idle, '~' while a multi-cycle result is still in flight).
 * Communication events print below each cluster.  @p max_cycles caps
 * the chart width (0 = full makespan).
 */
void printGantt(std::ostream &os, const DependenceGraph &graph,
                const MachineModel &machine, const Schedule &schedule,
                int max_cycles = 0);

/** One line per instruction: id, opcode, cluster, cycle, finish. */
void printPlacements(std::ostream &os, const DependenceGraph &graph,
                     const Schedule &schedule);

} // namespace csched

#endif // CSCHED_SCHED_SCHEDULE_PRINTER_HH
