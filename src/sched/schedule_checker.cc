#include "sched/schedule_checker.hh"

#include <map>
#include <sstream>

#include "machine/raw_machine.hh"
#include "support/str.hh"

namespace csched {

std::string
CheckResult::message() const
{
    return join(violations, "; ");
}

namespace {

/** Collects violations with printf-free streaming. */
class Reporter
{
  public:
    explicit Reporter(CheckResult &result) : result_(result) {}

    template <typename... Args>
    void
    fail(Args &&...args)
    {
        std::ostringstream os;
        (os << ... << std::forward<Args>(args));
        result_.violations.push_back(os.str());
    }

  private:
    CheckResult &result_;
};

} // namespace

CheckResult
checkSchedule(const DependenceGraph &graph, const MachineModel &machine,
              const Schedule &schedule)
{
    CheckResult result;
    Reporter report(result);
    const int n = graph.numInstructions();

    if (schedule.numInstructions() != n) {
        report.fail("schedule covers ", schedule.numInstructions(),
                    " instructions, graph has ", n);
        return result;
    }

    // 1. Every instruction placed, on a capable cluster, at its home
    //    if preplaced, with a finish consistent with latency+penalty.
    for (InstrId id = 0; id < n; ++id) {
        if (!schedule.placed(id)) {
            report.fail("instruction ", id, " never placed");
            continue;
        }
        const auto &p = schedule.at(id);
        const auto &instr = graph.instr(id);
        if (p.cluster < 0 || p.cluster >= machine.numClusters()) {
            report.fail("instruction ", id, " on invalid cluster ",
                        p.cluster);
            continue;
        }
        if (!machine.clusterAlive(p.cluster)) {
            report.fail("instruction ", id, " placed on dead cluster ",
                        p.cluster);
            continue;
        }
        const auto &fus = machine.clusterFus(p.cluster);
        if (p.fu < 0 || p.fu >= static_cast<int>(fus.size())) {
            report.fail("instruction ", id, " on invalid FU ", p.fu);
            continue;
        }
        if (!fuCanExecute(fus[p.fu], instr.op)) {
            report.fail("instruction ", id, " (", opcodeName(instr.op),
                        ") on incapable FU ", fuKindName(fus[p.fu]));
        }
        if (instr.preplaced() && p.cluster != instr.homeCluster) {
            report.fail("preplaced instruction ", id, " on cluster ",
                        p.cluster, ", home is ", instr.homeCluster);
        }
        int expected_finish =
            p.cycle + machine.execLatency(p.cluster, graph.latency(id));
        if (isMemory(instr.op))
            expected_finish +=
                machine.memoryPenalty(instr.memBank, p.cluster);
        if (p.finish != expected_finish) {
            report.fail("instruction ", id, " finish ", p.finish,
                        " != issue+latency(+penalty) ", expected_finish);
        }
    }
    if (!result.ok())
        return result;

    // 2. FU exclusivity: instructions plus FU-consuming comm events.
    std::map<std::tuple<int, int, int>, std::string> fu_users;
    auto claim_fu = [&](int cluster, int fu, int cycle,
                        const std::string &who) {
        const auto key = std::make_tuple(cluster, fu, cycle);
        auto [it, inserted] = fu_users.emplace(key, who);
        if (!inserted) {
            report.fail("FU conflict on cluster ", cluster, " fu ", fu,
                        " cycle ", cycle, ": ", who, " vs ", it->second);
        }
    };
    for (InstrId id = 0; id < n; ++id) {
        const auto &p = schedule.at(id);
        claim_fu(p.cluster, p.fu, p.cycle, "i" + std::to_string(id));
    }

    // 3. Communication events: resources and latency.
    const auto *raw = machine.commStyle() == CommStyle::Network
                          ? dynamic_cast<const RawMachine *>(&machine)
                          : nullptr;
    std::map<std::pair<int, int>, std::string> link_users;
    for (size_t k = 0; k < schedule.comms().size(); ++k) {
        const auto &event = schedule.comms()[k];
        const std::string who = "comm" + std::to_string(k);
        const auto &p = schedule.at(event.producer);
        if (event.fromCluster != p.cluster) {
            report.fail(who, " leaves cluster ", event.fromCluster,
                        " but producer sits on ", p.cluster);
        }
        if (event.start < p.finish) {
            report.fail(who, " starts at ", event.start,
                        " before producer finish ", p.finish);
        }
        if (event.toCluster < 0 ||
            event.toCluster >= machine.numClusters()) {
            report.fail(who, " targets invalid cluster ",
                        event.toCluster);
            continue;
        }
        if (!machine.clusterAlive(event.fromCluster) ||
            !machine.clusterAlive(event.toCluster)) {
            report.fail(who, " touches a dead cluster (",
                        event.fromCluster, " -> ", event.toCluster, ")");
            continue;
        }
        const int latency =
            machine.commLatency(event.fromCluster, event.toCluster);
        if (event.arrive != event.start + latency) {
            report.fail(who, " arrives at ", event.arrive,
                        " != start+latency ", event.start + latency);
        }
        switch (machine.commStyle()) {
          case CommStyle::TransferUnit: {
            const auto &fus = machine.clusterFus(event.fromCluster);
            if (event.fu < 0 || event.fu >= static_cast<int>(fus.size()) ||
                !fuCanExecute(fus[event.fu], Opcode::Copy)) {
                report.fail(who, " uses non-transfer FU ", event.fu);
            } else {
                claim_fu(event.fromCluster, event.fu, event.start, who);
            }
            break;
          }
          case CommStyle::ReceiveOp: {
            const auto &fus = machine.clusterFus(event.toCluster);
            if (event.fu < 0 || event.fu >= static_cast<int>(fus.size()) ||
                !fuCanExecute(fus[event.fu], Opcode::Recv)) {
                report.fail(who, " uses invalid receive FU ", event.fu);
            } else {
                claim_fu(event.toCluster, event.fu, event.start, who);
            }
            break;
          }
          case CommStyle::Network: {
            const auto route =
                raw->route(event.fromCluster, event.toCluster);
            if (event.linkSlots.size() != route.size()) {
                report.fail(who, " reserves ", event.linkSlots.size(),
                            " link slots, route needs ", route.size());
                break;
            }
            for (size_t hop = 0; hop < route.size(); ++hop) {
                const auto &[link, cycle] = event.linkSlots[hop];
                if (link != route[hop]) {
                    report.fail(who, " hop ", hop, " on link ", link,
                                " instead of ", route[hop]);
                }
                if (link >= 0 && link < raw->numLinks() &&
                    !raw->linkAlive(link)) {
                    report.fail(who, " hop ", hop,
                                " routes across dead link ", link);
                }
                if (cycle != event.start + static_cast<int>(hop)) {
                    report.fail(who, " hop ", hop, " at cycle ", cycle,
                                " instead of ",
                                event.start + static_cast<int>(hop));
                }
                auto [it, inserted] = link_users.emplace(
                    std::make_pair(link, cycle), who);
                if (!inserted) {
                    report.fail("link conflict on link ", link,
                                " cycle ", cycle, ": ", who, " vs ",
                                it->second);
                }
            }
            break;
          }
        }
    }

    // 4. Dependence timing.
    for (const auto &edge : graph.edges()) {
        const auto &src = schedule.at(edge.src);
        const auto &dst = schedule.at(edge.dst);
        if (edge.kind != DepKind::Data) {
            if (dst.cycle <= src.cycle) {
                report.fail("ordering edge ", edge.src, "->", edge.dst,
                            " violated: ", dst.cycle, " <= ", src.cycle);
            }
            continue;
        }
        if (src.cluster == dst.cluster) {
            if (dst.cycle < src.finish) {
                report.fail("data edge ", edge.src, "->", edge.dst,
                            " violated locally: consumer at ", dst.cycle,
                            ", producer finishes ", src.finish);
            }
            continue;
        }
        // Cross-cluster: some comm event must deliver the value.
        bool delivered = false;
        for (const auto &event : schedule.comms()) {
            if (event.producer == edge.src &&
                event.toCluster == dst.cluster &&
                event.arrive <= dst.cycle) {
                delivered = true;
                break;
            }
        }
        if (!delivered) {
            report.fail("data edge ", edge.src, "->", edge.dst,
                        " has no communication arriving on cluster ",
                        dst.cluster, " by cycle ", dst.cycle);
        }
    }

    return result;
}

} // namespace csched
