/**
 * @file
 * Register-pressure accounting for schedules.
 *
 * The paper motivates convergent scheduling partly through the tension
 * between ILP and register pressure.  We do not run a full register
 * allocator (the paper's results are schedule-length based); instead
 * this analysis reports, for every cluster, the maximum number of
 * simultaneously-live values, so tests and benches can observe the
 * pressure effects of different assignments.
 *
 * A value produced by instruction i on cluster c is live on c from
 * i's finish until the last local use issues; a value consumed
 * remotely is additionally live on the consumer cluster from its
 * arrival until the last use there.
 */

#ifndef CSCHED_SCHED_REGISTER_PRESSURE_HH
#define CSCHED_SCHED_REGISTER_PRESSURE_HH

#include <vector>

#include "ir/graph.hh"
#include "sched/schedule.hh"

namespace csched {

/** Register-pressure summary of one schedule. */
struct PressureReport
{
    /** Maximum simultaneous live values, per cluster. */
    std::vector<int> maxLive;

    /** Largest entry of maxLive (0 for empty schedules). */
    int peak() const;

    /** Clusters whose peak exceeds @p register_count. */
    int clustersOverBudget(int register_count) const;
};

/** Compute the pressure report of @p schedule. */
PressureReport analyzePressure(const DependenceGraph &graph,
                               const Schedule &schedule);

} // namespace csched

#endif // CSCHED_SCHED_REGISTER_PRESSURE_HH
