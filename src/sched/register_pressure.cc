#include "sched/register_pressure.hh"

#include <algorithm>

#include "support/logging.hh"

namespace csched {

int
PressureReport::peak() const
{
    int best = 0;
    for (int live : maxLive)
        best = std::max(best, live);
    return best;
}

int
PressureReport::clustersOverBudget(int register_count) const
{
    int over = 0;
    for (int live : maxLive)
        if (live > register_count)
            ++over;
    return over;
}

PressureReport
analyzePressure(const DependenceGraph &graph, const Schedule &schedule)
{
    const int num_clusters = schedule.numClusters();
    const int horizon = schedule.makespan() + 1;

    // delta[c][t]: live-range starts minus ends at cycle t.
    std::vector<std::vector<int>> delta(
        num_clusters, std::vector<int>(horizon + 1, 0));

    auto add_range = [&](int cluster, int from, int to) {
        // Live in [from, to); empty or negative ranges are skipped.
        if (from >= to)
            return;
        delta[cluster][std::min(from, horizon)] += 1;
        delta[cluster][std::min(to, horizon)] -= 1;
    };

    for (InstrId id = 0; id < graph.numInstructions(); ++id) {
        if (graph.instr(id).op == Opcode::Store)
            continue;  // stores produce no register value
        const auto &p = schedule.at(id);

        // Last local use on the producer cluster.
        int last_local = p.finish;
        for (InstrId succ : graph.succs(id)) {
            const auto &sp = schedule.at(succ);
            if (sp.cluster == p.cluster)
                last_local = std::max(last_local, sp.cycle + 1);
        }
        // The value also stays live until any outgoing comm reads it.
        for (const auto &event : schedule.comms())
            if (event.producer == id)
                last_local = std::max(last_local, event.start + 1);
        add_range(p.cluster, p.finish, last_local);

        // Remote copies live from arrival to last remote use.
        for (const auto &event : schedule.comms()) {
            if (event.producer != id)
                continue;
            int last_remote = event.arrive;
            for (InstrId succ : graph.succs(id)) {
                const auto &sp = schedule.at(succ);
                if (sp.cluster == event.toCluster)
                    last_remote = std::max(last_remote, sp.cycle + 1);
            }
            add_range(event.toCluster, event.arrive, last_remote);
        }
    }

    PressureReport report;
    report.maxLive.assign(num_clusters, 0);
    for (int c = 0; c < num_clusters; ++c) {
        int live = 0;
        for (int t = 0; t <= horizon; ++t) {
            live += delta[c][t];
            report.maxLive[c] = std::max(report.maxLive[c], live);
        }
    }
    return report;
}

} // namespace csched
