#include "sched/reservation.hh"

#include "support/logging.hh"

namespace csched {

namespace {

bool
bitmapFree(const std::vector<bool> &bitmap, int cycle)
{
    return cycle >= static_cast<int>(bitmap.size()) || !bitmap[cycle];
}

void
bitmapTake(std::vector<bool> &bitmap, int cycle)
{
    if (cycle >= static_cast<int>(bitmap.size()))
        bitmap.resize(cycle + 1, false);
    CSCHED_ASSERT(!bitmap[cycle], "slot ", cycle, " already taken");
    bitmap[cycle] = true;
}

void
bitmapRelease(std::vector<bool> &bitmap, int cycle)
{
    CSCHED_ASSERT(cycle < static_cast<int>(bitmap.size()) && bitmap[cycle],
                  "releasing free slot ", cycle);
    bitmap[cycle] = false;
}

} // namespace

FuReservation::FuReservation(const MachineModel &machine)
    : machine_(machine)
{
    busy_.resize(machine.numClusters());
    for (int c = 0; c < machine.numClusters(); ++c)
        busy_[c].resize(machine.clusterFus(c).size());
}

bool
FuReservation::free(int cluster, int fu, int cycle) const
{
    return bitmapFree(busy_[cluster][fu], cycle);
}

void
FuReservation::take(int cluster, int fu, int cycle)
{
    bitmapTake(busy_[cluster][fu], cycle);
}

void
FuReservation::release(int cluster, int fu, int cycle)
{
    bitmapRelease(busy_[cluster][fu], cycle);
}

int
FuReservation::freeFuFor(int cluster, Opcode op, int cycle) const
{
    const auto &fus = machine_.clusterFus(cluster);
    for (int fu = 0; fu < static_cast<int>(fus.size()); ++fu)
        if (fuCanExecute(fus[fu], op) && free(cluster, fu, cycle))
            return fu;
    return -1;
}

std::pair<int, int>
FuReservation::earliestFor(int cluster, Opcode op, int from) const
{
    CSCHED_ASSERT(machine_.canExecute(cluster, op),
                  "cluster ", cluster, " cannot execute ", opcodeName(op));
    for (int cycle = from;; ++cycle) {
        const int fu = freeFuFor(cluster, op, cycle);
        if (fu != -1)
            return {cycle, fu};
    }
}

LinkReservation::LinkReservation(int num_links) : busy_(num_links)
{
}

bool
LinkReservation::free(int link, int cycle) const
{
    return bitmapFree(busy_[link], cycle);
}

void
LinkReservation::take(int link, int cycle)
{
    bitmapTake(busy_[link], cycle);
}

void
LinkReservation::release(int link, int cycle)
{
    bitmapRelease(busy_[link], cycle);
}

int
LinkReservation::earliestRouteSlot(const std::vector<int> &route,
                                   int from) const
{
    for (int send = from;; ++send) {
        bool ok = true;
        for (size_t hop = 0; hop < route.size(); ++hop) {
            if (!free(route[hop], send + static_cast<int>(hop))) {
                ok = false;
                break;
            }
        }
        if (ok)
            return send;
    }
}

void
LinkReservation::takeRoute(const std::vector<int> &route, int send)
{
    for (size_t hop = 0; hop < route.size(); ++hop)
        take(route[hop], send + static_cast<int>(hop));
}

} // namespace csched
