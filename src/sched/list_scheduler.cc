#include "sched/list_scheduler.hh"

#include <algorithm>
#include <limits>

#include "machine/raw_machine.hh"
#include "sched/reservation.hh"
#include "support/logging.hh"

namespace csched {

namespace {

constexpr int kInfinity = std::numeric_limits<int>::max() / 4;

/** Mutable state for one scheduling run. */
struct RunState
{
    RunState(const MachineModel &machine, const DependenceGraph &graph)
        : fus(machine),
          links(machine.commStyle() == CommStyle::Network
                    ? dynamic_cast<const RawMachine &>(machine).numLinks()
                    : 0),
          availAt(static_cast<size_t>(graph.numInstructions()) *
                      machine.numClusters(),
                  -1)
    {
    }

    FuReservation fus;
    LinkReservation links;
    /** availAt[i * K + c]: first cycle i's value is usable on c. */
    std::vector<int> availAt;
};

} // namespace

ListScheduler::ListScheduler(const MachineModel &machine)
    : machine_(machine)
{
}

Schedule
ListScheduler::run(const DependenceGraph &graph,
                   const std::vector<int> &assignment,
                   const std::vector<double> &priority) const
{
    const int n = graph.numInstructions();
    const int num_clusters = machine_.numClusters();
    CSCHED_ASSERT(static_cast<int>(assignment.size()) == n,
                  "assignment size mismatch");
    CSCHED_ASSERT(static_cast<int>(priority.size()) == n,
                  "priority size mismatch");

    for (InstrId id = 0; id < n; ++id) {
        const auto &instr = graph.instr(id);
        const int cluster = assignment[id];
        CSCHED_ASSERT(cluster >= 0 && cluster < num_clusters,
                      "instruction ", id, " assigned to invalid cluster ",
                      cluster);
        CSCHED_ASSERT(machine_.canExecute(cluster, instr.op),
                      "cluster ", cluster, " cannot execute ",
                      opcodeName(instr.op));
        CSCHED_ASSERT(!instr.preplaced() || cluster == instr.homeCluster,
                      "preplaced instruction ", id, " assigned to ",
                      cluster, " instead of home ", instr.homeCluster);
    }

    Schedule schedule(n, num_clusters);
    RunState state(machine_, graph);

    const auto *raw = machine_.commStyle() == CommStyle::Network
                          ? &dynamic_cast<const RawMachine &>(machine_)
                          : nullptr;

    std::vector<int> unplaced_preds(n, 0);
    std::vector<int> ready_at(n, 0);
    std::vector<InstrId> ready;
    for (InstrId id = 0; id < n; ++id) {
        unplaced_preds[id] = static_cast<int>(graph.preds(id).size());
        if (unplaced_preds[id] == 0)
            ready.push_back(id);
    }

    // Out-edges indexed by source so the hot loop below is O(degree).
    std::vector<std::vector<std::pair<InstrId, DepKind>>> out(n);
    for (const auto &edge : graph.edges())
        out[edge.src].emplace_back(edge.dst, edge.kind);

    // Reserve the communication resource that carries producer's value
    // to to_cluster; returns the arrival cycle.
    auto schedule_comm = [&](InstrId producer, int finish,
                             int to_cluster) -> int {
        const int from = assignment[producer];
        CommEvent event;
        event.producer = producer;
        event.fromCluster = from;
        event.toCluster = to_cluster;
        switch (machine_.commStyle()) {
          case CommStyle::TransferUnit: {
            const auto [cycle, fu] =
                state.fus.earliestFor(from, Opcode::Copy, finish);
            state.fus.take(from, fu, cycle);
            event.start = cycle;
            event.fu = fu;
            event.arrive = cycle + machine_.commLatency(from, to_cluster);
            break;
          }
          case CommStyle::ReceiveOp: {
            const auto [cycle, fu] =
                state.fus.earliestFor(to_cluster, Opcode::Recv, finish);
            state.fus.take(to_cluster, fu, cycle);
            event.start = cycle;
            event.fu = fu;
            event.arrive = cycle + machine_.commLatency(from, to_cluster);
            break;
          }
          case CommStyle::Network: {
            const auto route = raw->route(from, to_cluster);
            const int send =
                state.links.earliestRouteSlot(route, finish);
            state.links.takeRoute(route, send);
            event.start = send;
            event.arrive = send + machine_.commLatency(from, to_cluster);
            for (size_t hop = 0; hop < route.size(); ++hop)
                event.linkSlots.emplace_back(
                    route[hop], send + static_cast<int>(hop));
            break;
          }
        }
        schedule.addComm(event);
        return event.arrive;
    };

    int remaining = n;
    int cycle = 0;
    std::vector<InstrId> candidates;
    while (remaining > 0) {
        candidates.clear();
        for (InstrId id : ready)
            if (ready_at[id] <= cycle)
                candidates.push_back(id);

        std::stable_sort(candidates.begin(), candidates.end(),
                         [&](InstrId a, InstrId b) {
                             if (priority[a] != priority[b])
                                 return priority[a] > priority[b];
                             if (ready_at[a] != ready_at[b])
                                 return ready_at[a] < ready_at[b];
                             return a < b;
                         });

        for (InstrId id : candidates) {
            const auto &instr = graph.instr(id);
            const int cluster = assignment[id];
            const int fu = state.fus.freeFuFor(cluster, instr.op, cycle);
            if (fu == -1)
                continue;
            state.fus.take(cluster, fu, cycle);

            Placement placement;
            placement.cluster = cluster;
            placement.cycle = cycle;
            placement.fu = fu;
            placement.finish =
                cycle + machine_.execLatency(cluster, graph.latency(id)) +
                (isMemory(instr.op)
                     ? machine_.memoryPenalty(instr.memBank, cluster)
                     : 0);
            schedule.place(id, placement);
            --remaining;
            ready.erase(std::find(ready.begin(), ready.end(), id));

            state.availAt[static_cast<size_t>(id) * num_clusters +
                          cluster] = placement.finish;

            // Eagerly move the value to every consumer cluster.
            for (const auto &[dst, kind] : out[id]) {
                if (kind != DepKind::Data)
                    continue;
                const int dest = assignment[dst];
                auto &avail =
                    state.availAt[static_cast<size_t>(id) * num_clusters +
                                  dest];
                if (avail == -1)
                    avail = schedule_comm(id, placement.finish, dest);
            }

            // Release successors whose operands are now all known.
            for (const auto &[succ, kind] : out[id]) {
                int constraint;
                if (kind == DepKind::Data) {
                    constraint =
                        state.availAt[static_cast<size_t>(id) *
                                          num_clusters +
                                      assignment[succ]];
                } else {
                    // Anti/output dependences only order issue slots.
                    constraint = placement.cycle + 1;
                }
                ready_at[succ] = std::max(ready_at[succ], constraint);
                if (--unplaced_preds[succ] == 0)
                    ready.push_back(succ);
            }
        }

        // Advance time; skip dead cycles when nothing becomes ready.
        int next = cycle + 1;
        if (!ready.empty()) {
            int soonest = kInfinity;
            bool waiting_on_fu = false;
            for (InstrId id : ready) {
                if (ready_at[id] <= cycle)
                    waiting_on_fu = true;
                soonest = std::min(soonest, ready_at[id]);
            }
            if (!waiting_on_fu && soonest > next)
                next = soonest;
        }
        cycle = next;
    }

    return schedule;
}

} // namespace csched
