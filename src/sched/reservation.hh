/**
 * @file
 * Resource reservation tables used by the schedulers.
 *
 * FuReservation tracks per-(cluster, FU) issue slots; LinkReservation
 * tracks per-(link, cycle) occupancy of the Raw static network.  Both
 * grow on demand and support speculative queries so schedulers can
 * search for the earliest feasible slot before committing.
 */

#ifndef CSCHED_SCHED_RESERVATION_HH
#define CSCHED_SCHED_RESERVATION_HH

#include <vector>

#include "ir/opcode.hh"
#include "machine/machine.hh"

namespace csched {

/** Per-cluster, per-FU busy table. */
class FuReservation
{
  public:
    /** Build an empty table shaped like @p machine. */
    explicit FuReservation(const MachineModel &machine);

    /** True when FU @p fu of @p cluster is free at @p cycle. */
    bool free(int cluster, int fu, int cycle) const;

    /** Mark FU @p fu of @p cluster busy at @p cycle (must be free). */
    void take(int cluster, int fu, int cycle);

    /** Undo a take() (used by UAS's transactional cluster trials). */
    void release(int cluster, int fu, int cycle);

    /**
     * Index of a FU on @p cluster that can issue @p op and is free at
     * @p cycle, or -1 when none is.
     */
    int freeFuFor(int cluster, Opcode op, int cycle) const;

    /**
     * Earliest cycle >= @p from with a FU on @p cluster able to issue
     * @p op; also returns the FU index.  Always succeeds (tables grow).
     */
    std::pair<int, int> earliestFor(int cluster, Opcode op,
                                    int from) const;

  private:
    const MachineModel &machine_;
    /** busy_[cluster][fu] is a growable busy bitmap indexed by cycle. */
    std::vector<std::vector<std::vector<bool>>> busy_;
};

/** Per-link busy table for the Raw static network. */
class LinkReservation
{
  public:
    /** Build an empty table for @p num_links directed links. */
    explicit LinkReservation(int num_links);

    bool free(int link, int cycle) const;
    void take(int link, int cycle);

    /** Undo a take() (used by UAS's transactional cluster trials). */
    void release(int link, int cycle);

    /**
     * Earliest send cycle >= @p from at which link @p route[k] is free
     * at send + k for every hop k.
     */
    int earliestRouteSlot(const std::vector<int> &route, int from) const;

    /** Reserve every hop of @p route starting at @p send. */
    void takeRoute(const std::vector<int> &route, int send);

  private:
    std::vector<std::vector<bool>> busy_;
};

} // namespace csched

#endif // CSCHED_SCHED_RESERVATION_HH
