/**
 * @file
 * Independent validator for schedules.
 *
 * Scheduling legality is never entrusted to the heuristics: every
 * schedule produced in the tests and benches is re-verified here
 * against the dependence graph and the machine model.  The checker
 * validates placement completeness, preplacement correctness, FU
 * exclusivity and capability, communication-resource exclusivity, and
 * dependence timing (including comm latency and memory penalties).
 */

#ifndef CSCHED_SCHED_SCHEDULE_CHECKER_HH
#define CSCHED_SCHED_SCHEDULE_CHECKER_HH

#include <string>
#include <vector>

#include "ir/graph.hh"
#include "machine/machine.hh"
#include "sched/schedule.hh"

namespace csched {

/** Result of checking one schedule. */
struct CheckResult
{
    /** Human-readable violations; empty means the schedule is legal. */
    std::vector<std::string> violations;

    bool ok() const { return violations.empty(); }

    /** All violations joined for gtest failure messages. */
    std::string message() const;
};

/** Verify @p schedule of @p graph on @p machine. */
CheckResult checkSchedule(const DependenceGraph &graph,
                          const MachineModel &machine,
                          const Schedule &schedule);

} // namespace csched

#endif // CSCHED_SCHED_SCHEDULE_CHECKER_HH
