#include "sched/priorities.hh"

#include "support/logging.hh"

namespace csched {

std::vector<double>
criticalPathPriority(const DependenceGraph &graph)
{
    std::vector<double> out(graph.numInstructions());
    for (InstrId id = 0; id < graph.numInstructions(); ++id)
        out[id] = static_cast<double>(graph.latestFinishSlack(id));
    return out;
}

std::vector<double>
preferredTimePriority(const DependenceGraph &graph,
                      const std::vector<int> &preferred_time)
{
    CSCHED_ASSERT(static_cast<int>(preferred_time.size()) ==
                      graph.numInstructions(),
                  "preferred-time vector size mismatch");
    // Scale the slack tie-break below the time resolution so the
    // preferred times dominate, but strongly enough to order whole
    // groups of instructions sharing a preferred slot.
    const double cpl = graph.criticalPathLength();
    std::vector<double> out(graph.numInstructions());
    for (InstrId id = 0; id < graph.numInstructions(); ++id) {
        out[id] = -static_cast<double>(preferred_time[id]) +
                  graph.latestFinishSlack(id) / (cpl + 1.0);
    }
    return out;
}

} // namespace csched
