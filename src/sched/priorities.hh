/**
 * @file
 * Standard priority vectors for list scheduling.
 */

#ifndef CSCHED_SCHED_PRIORITIES_HH
#define CSCHED_SCHED_PRIORITIES_HH

#include <vector>

#include "ir/graph.hh"

namespace csched {

/**
 * Classic critical-path priority: an instruction's latency-weighted
 * longest path to a leaf.  Instructions with more work below them
 * issue first.
 */
std::vector<double> criticalPathPriority(const DependenceGraph &graph);

/**
 * Priority from preferred times (the convergent scheduler's output):
 * instructions the convergent matrix wants earlier issue first, with
 * the critical-path slack as a tie-break.
 */
std::vector<double>
preferredTimePriority(const DependenceGraph &graph,
                      const std::vector<int> &preferred_time);

} // namespace csched

#endif // CSCHED_SCHED_PRIORITIES_HH
