/**
 * @file
 * A concrete space-time schedule: for every instruction the cluster,
 * issue cycle, and functional unit it uses, plus every inter-cluster
 * communication event (transfer-unit copy, receive op, or network
 * route) the schedule relies on.  The ScheduleChecker re-validates all
 * of this against the dependence graph and machine model.
 */

#ifndef CSCHED_SCHED_SCHEDULE_HH
#define CSCHED_SCHED_SCHEDULE_HH

#include <utility>
#include <vector>

#include "ir/instruction.hh"

namespace csched {

/** Where and when one instruction executes. */
struct Placement
{
    int cluster = -1;
    int cycle = -1;    ///< issue cycle
    int fu = -1;       ///< FU index within the cluster
    int finish = -1;   ///< first cycle the result is usable locally
};

/** One inter-cluster value transfer. */
struct CommEvent
{
    InstrId producer = kNoInstr;
    int fromCluster = -1;
    int toCluster = -1;
    int start = -1;    ///< cycle the comm resource is first used
    int arrive = -1;   ///< first cycle a consumer on toCluster may issue
    /**
     * FU index consumed by the event: a Transfer unit on fromCluster
     * (TransferUnit style) or a regular FU on toCluster (ReceiveOp
     * style); -1 for Network style.
     */
    int fu = -1;
    /** (link id, cycle) pairs reserved on the mesh (Network style). */
    std::vector<std::pair<int, int>> linkSlots;
};

/** Full schedule of one scheduling unit on one machine. */
class Schedule
{
  public:
    /** Create an empty schedule for @p num_instrs instructions. */
    Schedule(int num_instrs, int num_clusters);

    /** Record the placement of one instruction (each exactly once). */
    void place(InstrId id, Placement placement);

    bool placed(InstrId id) const;
    const Placement &at(InstrId id) const;

    int clusterOf(InstrId id) const { return at(id).cluster; }
    int cycleOf(InstrId id) const { return at(id).cycle; }

    /** Record one communication event. */
    void addComm(CommEvent event);

    const std::vector<CommEvent> &comms() const { return comms_; }

    int numInstructions() const
    {
        return static_cast<int>(placements_.size());
    }

    int numClusters() const { return numClusters_; }

    /**
     * Makespan in cycles: the last instruction finish or communication
     * arrival.  An empty schedule has makespan 0.
     */
    int makespan() const;

    /** Cluster assignment vector (cluster per instruction). */
    std::vector<int> assignment() const;

    /** Number of instructions placed on @p cluster. */
    int clusterLoad(int cluster) const;

  private:
    int numClusters_;
    std::vector<Placement> placements_;
    std::vector<CommEvent> comms_;
};

} // namespace csched

#endif // CSCHED_SCHED_SCHEDULE_HH
