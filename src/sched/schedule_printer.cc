#include "sched/schedule_printer.hh"

#include <algorithm>
#include <iomanip>
#include <string>
#include <vector>

#include "ir/describe.hh"

namespace csched {

namespace {

/** Fixed-width cell for one instruction id. */
std::string
cell(const std::string &text, int width)
{
    std::string out = text;
    if (static_cast<int>(out.size()) > width)
        out.resize(width);
    while (static_cast<int>(out.size()) < width)
        out += ' ';
    return out;
}

} // namespace

void
printGantt(std::ostream &os, const DependenceGraph &graph,
           const MachineModel &machine, const Schedule &schedule,
           int max_cycles)
{
    const int makespan = schedule.makespan();
    const int horizon =
        max_cycles > 0 ? std::min(max_cycles, makespan) : makespan;
    const int width = makespan >= 100 ? 5 : 4;

    for (int c = 0; c < machine.numClusters(); ++c) {
        const auto &fus = machine.clusterFus(c);
        os << "cluster " << c << " (" << schedule.clusterLoad(c)
           << " instrs)\n";
        for (int fu = 0; fu < static_cast<int>(fus.size()); ++fu) {
            // grid[t]: what occupies this FU at cycle t.
            std::vector<std::string> grid(horizon, ".");
            for (InstrId id = 0; id < graph.numInstructions(); ++id) {
                const auto &p = schedule.at(id);
                if (p.cluster != c || p.fu != fu)
                    continue;
                if (p.cycle < horizon)
                    grid[p.cycle] = "i" + std::to_string(id);
                for (int t = p.cycle + 1;
                     t < std::min(p.finish, horizon); ++t) {
                    grid[t] = "~";
                }
            }
            // Comm events that consume this FU slot.
            for (const auto &event : schedule.comms()) {
                const bool here =
                    (event.fu == fu) &&
                    ((machine.commStyle() == CommStyle::TransferUnit &&
                      event.fromCluster == c) ||
                     (machine.commStyle() == CommStyle::ReceiveOp &&
                      event.toCluster == c));
                if (here && event.start < horizon) {
                    grid[event.start] =
                        "c" + std::to_string(event.producer);
                }
            }
            os << "  " << cell(fuKindName(fus[fu]), 9) << "|";
            for (const auto &slot : grid)
                os << cell(slot, width);
            os << "\n";
        }
    }

    if (machine.commStyle() == CommStyle::Network &&
        !schedule.comms().empty()) {
        os << "network: " << schedule.comms().size() << " messages\n";
    }
    os << "makespan: " << makespan << " cycles\n";
}

void
printPlacements(std::ostream &os, const DependenceGraph &graph,
                const Schedule &schedule)
{
    for (InstrId id = 0; id < graph.numInstructions(); ++id) {
        const auto &p = schedule.at(id);
        os << std::left << std::setw(28) << describe(graph.instr(id))
           << " cluster " << p.cluster << "  cycle " << std::setw(4)
           << p.cycle << " finish " << p.finish << "\n";
    }
}

} // namespace csched
