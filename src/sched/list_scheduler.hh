/**
 * @file
 * Cycle-driven list scheduler with communication insertion.
 *
 * Both the convergent scheduler and the offline baselines (PCC, the
 * Rawcc partitioner) separate *assignment* from *scheduling*: they fix
 * a cluster per instruction, then hand the assignment plus a priority
 * per instruction to this scheduler.  The scheduler walks cycles in
 * order; at each cycle it issues, in priority order, every ready
 * instruction whose cluster has a capable functional unit free.  When
 * a value is consumed on another cluster the scheduler eagerly
 * reserves the machine's communication resource:
 *
 *  - TransferUnit: a Copy on the producer cluster's transfer unit,
 *  - ReceiveOp: a Recv slot on the consumer cluster's FUs,
 *  - Network: per-hop link slots along the mesh route.
 *
 * Memory operations pay the machine's remote-bank penalty when placed
 * off their home bank.  Preplaced instructions must be assigned to
 * their home cluster; the scheduler treats anything else as a caller
 * bug.
 */

#ifndef CSCHED_SCHED_LIST_SCHEDULER_HH
#define CSCHED_SCHED_LIST_SCHEDULER_HH

#include <vector>

#include "ir/graph.hh"
#include "machine/machine.hh"
#include "sched/schedule.hh"

namespace csched {

/** Assignment-driven cycle-by-cycle scheduler. */
class ListScheduler
{
  public:
    /** Bind the scheduler to a machine model. */
    explicit ListScheduler(const MachineModel &machine);

    /**
     * Schedule @p graph under the given cluster @p assignment.
     * Higher @p priority values issue first among ready instructions.
     *
     * @pre assignment[i] is a valid cluster that can execute i's
     *      opcode, and equals the home cluster for preplaced i.
     */
    Schedule run(const DependenceGraph &graph,
                 const std::vector<int> &assignment,
                 const std::vector<double> &priority) const;

  private:
    const MachineModel &machine_;
};

} // namespace csched

#endif // CSCHED_SCHED_LIST_SCHEDULER_HH
