/**
 * @file
 * Common interface for complete scheduling algorithms (assignment plus
 * scheduling), implemented by the convergent scheduler adapter and by
 * every baseline (UAS, PCC, the Rawcc partitioner, single-cluster).
 * The evaluation harness iterates algorithms through this interface.
 *
 * run() returns a ScheduleResult: the schedule itself plus whatever
 * introspection the algorithm produces along the way (the convergent
 * scheduler's per-pass convergence trace and wall-clock timings; empty
 * for the one-shot baselines).  Callers that only want the schedule
 * use the schedule() convenience wrapper.
 */

#ifndef CSCHED_SCHED_ALGORITHM_HH
#define CSCHED_SCHED_ALGORITHM_HH

#include <string>
#include <utility>
#include <vector>

#include "ir/graph.hh"
#include "sched/schedule.hh"

namespace csched {

/**
 * Record of one pass application inside a pass-based algorithm: the
 * spatial-convergence measurement behind the paper's Figures 7 and 9,
 * plus the pass's wall-clock cost (the data behind Figure 10's
 * compile-time decomposition).
 */
struct PassStep
{
    std::string pass;
    /** Fraction of instructions whose preferred cluster changed. */
    double fractionChanged = 0.0;
    /** True when the pass only modifies temporal preferences. */
    bool temporalOnly = false;
    /** Wall-clock seconds spent inside the pass. */
    double seconds = 0.0;
    /**
     * True when the pass misbehaved (threw, or broke the weight
     * invariants beyond healing) and was rolled back: its effect on
     * the preference matrix was discarded and the pipeline continued
     * without it (see ConvergentScheduler::schedule).
     */
    bool skipped = false;
};

/** Everything one algorithm run produces. */
struct ScheduleResult
{
    Schedule schedule;
    /** Per-pass trace; empty for algorithms without a pass pipeline. */
    std::vector<PassStep> trace;
};

/** A complete space-time scheduler bound to one machine. */
class SchedulingAlgorithm
{
  public:
    virtual ~SchedulingAlgorithm() = default;

    /** Display name used in result tables, e.g. "UAS". */
    virtual std::string name() const = 0;

    /** Produce a legal schedule of @p graph plus its run trace. */
    virtual ScheduleResult run(const DependenceGraph &graph) const = 0;

    /** Convenience for callers that only want the schedule. */
    Schedule schedule(const DependenceGraph &graph) const
    {
        return std::move(run(graph).schedule);
    }
};

} // namespace csched

#endif // CSCHED_SCHED_ALGORITHM_HH
