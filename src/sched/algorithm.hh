/**
 * @file
 * Common interface for complete scheduling algorithms (assignment plus
 * scheduling), implemented by the convergent scheduler adapter and by
 * every baseline (UAS, PCC, the Rawcc partitioner, single-cluster).
 * The evaluation harness iterates algorithms through this interface.
 */

#ifndef CSCHED_SCHED_ALGORITHM_HH
#define CSCHED_SCHED_ALGORITHM_HH

#include <string>

#include "ir/graph.hh"
#include "sched/schedule.hh"

namespace csched {

/** A complete space-time scheduler bound to one machine. */
class SchedulingAlgorithm
{
  public:
    virtual ~SchedulingAlgorithm() = default;

    /** Display name used in result tables, e.g. "UAS". */
    virtual std::string name() const = 0;

    /** Produce a legal schedule of @p graph. */
    virtual Schedule run(const DependenceGraph &graph) const = 0;
};

} // namespace csched

#endif // CSCHED_SCHED_ALGORITHM_HH
