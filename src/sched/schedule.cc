#include "sched/schedule.hh"

#include <algorithm>

#include "support/logging.hh"

namespace csched {

Schedule::Schedule(int num_instrs, int num_clusters)
    : numClusters_(num_clusters), placements_(num_instrs)
{
    CSCHED_ASSERT(num_instrs >= 0, "negative instruction count");
    CSCHED_ASSERT(num_clusters >= 1, "need at least one cluster");
}

void
Schedule::place(InstrId id, Placement placement)
{
    CSCHED_ASSERT(id >= 0 && id < numInstructions(),
                  "instruction id ", id, " out of range");
    CSCHED_ASSERT(!placed(id), "instruction ", id, " placed twice");
    CSCHED_ASSERT(placement.cluster >= 0 &&
                      placement.cluster < numClusters_,
                  "cluster ", placement.cluster, " out of range");
    CSCHED_ASSERT(placement.cycle >= 0, "negative issue cycle");
    CSCHED_ASSERT(placement.finish > placement.cycle,
                  "finish must be after issue");
    placements_[id] = placement;
}

bool
Schedule::placed(InstrId id) const
{
    CSCHED_ASSERT(id >= 0 && id < numInstructions(),
                  "instruction id ", id, " out of range");
    return placements_[id].cluster != -1;
}

const Placement &
Schedule::at(InstrId id) const
{
    CSCHED_ASSERT(placed(id), "instruction ", id, " not placed");
    return placements_[id];
}

void
Schedule::addComm(CommEvent event)
{
    CSCHED_ASSERT(event.producer != kNoInstr, "comm without producer");
    CSCHED_ASSERT(event.fromCluster != event.toCluster,
                  "comm within one cluster");
    CSCHED_ASSERT(event.arrive > event.start, "comm arrives before start");
    comms_.push_back(std::move(event));
}

int
Schedule::makespan() const
{
    int last = 0;
    for (const auto &placement : placements_)
        if (placement.cluster != -1)
            last = std::max(last, placement.finish);
    for (const auto &event : comms_)
        last = std::max(last, event.arrive);
    return last;
}

std::vector<int>
Schedule::assignment() const
{
    std::vector<int> out(placements_.size());
    for (size_t i = 0; i < placements_.size(); ++i)
        out[i] = placements_[i].cluster;
    return out;
}

int
Schedule::clusterLoad(int cluster) const
{
    int load = 0;
    for (const auto &placement : placements_)
        if (placement.cluster == cluster)
            ++load;
    return load;
}

} // namespace csched
