/**
 * @file
 * The Raw tiled processor model (Taylor et al., IEEE Micro 2002).
 *
 * Tiles are organised in a rows x cols mesh; each tile has a single
 * scalar pipeline (modelled as one Universal FU), its own registers,
 * and a slice of the interleaved memory system.  Scalar operands move
 * between tiles on the compiler-controlled static network with
 * register-mapped ports: latency is three cycles between neighbouring
 * tiles and one extra cycle per additional hop.  Routes follow
 * dimension-ordered (X-then-Y) paths, and each directed mesh link can
 * carry one word per cycle, so the scheduler must reserve link slots.
 *
 * Degraded meshes (machine/fault_map.hh) may mark tiles and directed
 * links dead.  Routing stays X-then-Y whenever that path is fully
 * alive and detours along a deterministic shortest alive path
 * otherwise; commLatency() prices the detoured hop count, so every
 * pass, algorithm, and the checker agree on the cost of routing
 * around faults.  Construction validates that all alive tiles remain
 * mutually reachable (use tryCreate for a structured error).
 */

#ifndef CSCHED_MACHINE_RAW_MACHINE_HH
#define CSCHED_MACHINE_RAW_MACHINE_HH

#include <memory>

#include "machine/fault_map.hh"
#include "machine/machine.hh"

namespace csched {

/** Raw mesh machine; tile ids are row-major. */
class RawMachine : public MachineModel
{
  public:
    /** Build a @p rows x @p cols mesh of tiles. */
    RawMachine(int rows, int cols);

    /**
     * Build a degraded mesh; panics when the fault map disconnects
     * the alive tiles (use tryCreate for spec-driven construction).
     */
    RawMachine(int rows, int cols, FaultMap faults);

    /**
     * Validated construction from spec text: fails with InvalidSpec
     * when @p faults leaves some pair of alive tiles unreachable over
     * the alive links (in either direction).
     */
    static StatusOr<std::unique_ptr<RawMachine>>
    tryCreate(int rows, int cols, FaultMap faults);

    /** Convenience: square-ish mesh with @p tiles tiles (1,2,4,8,16...). */
    static RawMachine withTiles(int tiles);

    std::string name() const override;
    int numClusters() const override { return rows_ * cols_; }
    const std::vector<FuKind> &clusterFus(int cluster) const override;
    int commLatency(int from, int to) const override;
    CommStyle commStyle() const override { return CommStyle::Network; }
    int memoryPenalty(int bank, int cluster) const override;
    std::unique_ptr<MachineModel> makeSingleCluster() const override;

    bool clusterAlive(int cluster) const override
    {
        return !faults_.map.clusterDead(cluster);
    }
    int numAliveClusters() const override
    {
        return static_cast<int>(faults_.alive.size());
    }
    int remapToAlive(int cluster) const override
    {
        return faults_.remap[cluster];
    }
    int latencyFactor(int cluster) const override
    {
        return faults_.map.factorOf(cluster);
    }

    int rows() const { return rows_; }
    int cols() const { return cols_; }

    int rowOf(int tile) const { return tile / cols_; }
    int colOf(int tile) const { return tile % cols_; }
    int tileAt(int row, int col) const { return row * cols_ + col; }

    /** Manhattan distance between two tiles. */
    int distance(int from, int to) const;

    /**
     * Directed mesh links along the route from @p from to @p to:
     * X-then-Y when that path is fully alive, else a deterministic
     * shortest alive detour.  Empty when the endpoints coincide or
     * (on a degraded mesh) when either endpoint is dead.  Link ids
     * are stable and dense in [0, numLinks()).
     */
    std::vector<int> route(int from, int to) const;

    /** Total number of directed mesh links (4 per tile). */
    int numLinks() const { return numClusters() * 4; }

    /** True when directed link @p link is usable. */
    bool linkAlive(int link) const { return !faults_.map.linkDead(link); }

    /**
     * Directed link ids that physically exist on a @p rows x @p cols
     * mesh (links pointing off the edge are excluded) -- the universe
     * FaultSpec::materialize draws dead links from.
     */
    static std::vector<int> interiorLinks(int rows, int cols);

  private:
    /** Directed link leaving @p tile towards @p next (a neighbour). */
    int linkBetween(int tile, int next) const;

    /** True when every link of the X-then-Y path is usable. */
    bool xyPathAlive(int from, int to) const;

    /**
     * Build the per-destination shortest-path next-hop tables over
     * alive tiles and links; returns false when some pair of alive
     * tiles is unreachable (and fills @p why).
     */
    bool computeDetourTables(std::string *why);

    int rows_;
    int cols_;
    std::vector<FuKind> fus_;
    FaultIndex faults_;
    /** nextHop_[to * N + tile]: next tile towards @p to; -1 = none. */
    std::vector<int> nextHop_;
    /** hops_[to * N + tile]: alive-path hop count; -1 = unreachable. */
    std::vector<int> hops_;
};

} // namespace csched

#endif // CSCHED_MACHINE_RAW_MACHINE_HH
