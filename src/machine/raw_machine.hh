/**
 * @file
 * The Raw tiled processor model (Taylor et al., IEEE Micro 2002).
 *
 * Tiles are organised in a rows x cols mesh; each tile has a single
 * scalar pipeline (modelled as one Universal FU), its own registers,
 * and a slice of the interleaved memory system.  Scalar operands move
 * between tiles on the compiler-controlled static network with
 * register-mapped ports: latency is three cycles between neighbouring
 * tiles and one extra cycle per additional hop.  Routes follow
 * dimension-ordered (X-then-Y) paths, and each directed mesh link can
 * carry one word per cycle, so the scheduler must reserve link slots.
 */

#ifndef CSCHED_MACHINE_RAW_MACHINE_HH
#define CSCHED_MACHINE_RAW_MACHINE_HH

#include "machine/machine.hh"

namespace csched {

/** Raw mesh machine; tile ids are row-major. */
class RawMachine : public MachineModel
{
  public:
    /** Build a @p rows x @p cols mesh of tiles. */
    RawMachine(int rows, int cols);

    /** Convenience: square-ish mesh with @p tiles tiles (1,2,4,8,16...). */
    static RawMachine withTiles(int tiles);

    std::string name() const override;
    int numClusters() const override { return rows_ * cols_; }
    const std::vector<FuKind> &clusterFus(int cluster) const override;
    int commLatency(int from, int to) const override;
    CommStyle commStyle() const override { return CommStyle::Network; }
    int memoryPenalty(int bank, int cluster) const override;
    std::unique_ptr<MachineModel> makeSingleCluster() const override;

    int rows() const { return rows_; }
    int cols() const { return cols_; }

    int rowOf(int tile) const { return tile / cols_; }
    int colOf(int tile) const { return tile % cols_; }
    int tileAt(int row, int col) const { return row * cols_ + col; }

    /** Manhattan distance between two tiles. */
    int distance(int from, int to) const;

    /**
     * Directed mesh links along the X-then-Y route from @p from to
     * @p to.  Link ids are stable and dense in [0, numLinks()).
     */
    std::vector<int> route(int from, int to) const;

    /** Total number of directed mesh links (4 per tile). */
    int numLinks() const { return numClusters() * 4; }

  private:
    /** Directed link leaving @p tile towards @p next (a neighbour). */
    int linkBetween(int tile, int next) const;

    int rows_;
    int cols_;
    std::vector<FuKind> fus_;
};

} // namespace csched

#endif // CSCHED_MACHINE_RAW_MACHINE_HH
