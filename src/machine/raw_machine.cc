#include "machine/raw_machine.hh"

#include <cmath>
#include <cstdlib>

#include "support/logging.hh"

namespace csched {

RawMachine::RawMachine(int rows, int cols)
    : rows_(rows), cols_(cols), fus_{FuKind::Universal}
{
    CSCHED_ASSERT(rows >= 1 && cols >= 1, "mesh must be at least 1x1");
}

RawMachine
RawMachine::withTiles(int tiles)
{
    CSCHED_ASSERT(tiles >= 1, "need at least one tile");
    // Squarest factorisation with rows <= cols (2 -> 1x2, 8 -> 2x4).
    int rows = static_cast<int>(std::sqrt(static_cast<double>(tiles)));
    while (rows > 1 && tiles % rows != 0)
        --rows;
    return RawMachine(rows, tiles / rows);
}

std::string
RawMachine::name() const
{
    return "raw" + std::to_string(rows_) + "x" + std::to_string(cols_);
}

const std::vector<FuKind> &
RawMachine::clusterFus(int cluster) const
{
    CSCHED_ASSERT(cluster >= 0 && cluster < numClusters(),
                  "tile ", cluster, " out of range");
    return fus_;
}

int
RawMachine::distance(int from, int to) const
{
    return std::abs(rowOf(from) - rowOf(to)) +
           std::abs(colOf(from) - colOf(to));
}

int
RawMachine::commLatency(int from, int to) const
{
    if (from == to)
        return 0;
    // Three cycles between neighbours, one extra per additional hop.
    return 3 + (distance(from, to) - 1);
}

int
RawMachine::memoryPenalty(int bank, int cluster) const
{
    if (bank == -1)
        return 0;
    // Analysed (bank-known) references are preplaced on their home
    // tile by the compiler; a remote access would have to take the
    // dynamic network, which costs several cycles of occupancy and
    // header overhead per request/reply pair.
    const int home = homeOfBank(bank);
    if (home == cluster)
        return 0;
    return 6 + 2 * distance(home, cluster);
}

std::unique_ptr<MachineModel>
RawMachine::makeSingleCluster() const
{
    return std::make_unique<RawMachine>(1, 1);
}

int
RawMachine::linkBetween(int tile, int next) const
{
    // Directions: 0 = east, 1 = west, 2 = south, 3 = north.
    int dir;
    if (next == tile + 1)
        dir = 0;
    else if (next == tile - 1)
        dir = 1;
    else if (next == tile + cols_)
        dir = 2;
    else if (next == tile - cols_)
        dir = 3;
    else
        CSCHED_PANIC("tiles ", tile, " and ", next, " are not neighbours");
    return tile * 4 + dir;
}

std::vector<int>
RawMachine::route(int from, int to) const
{
    std::vector<int> links;
    int current = from;
    // X (column) first, then Y (row): dimension-ordered routing.
    while (colOf(current) != colOf(to)) {
        const int next = colOf(current) < colOf(to) ? current + 1
                                                    : current - 1;
        links.push_back(linkBetween(current, next));
        current = next;
    }
    while (rowOf(current) != rowOf(to)) {
        const int next = rowOf(current) < rowOf(to) ? current + cols_
                                                    : current - cols_;
        links.push_back(linkBetween(current, next));
        current = next;
    }
    return links;
}

} // namespace csched
