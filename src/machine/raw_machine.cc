#include "machine/raw_machine.hh"

#include <cmath>
#include <cstdlib>
#include <deque>

#include "support/logging.hh"

namespace csched {

RawMachine::RawMachine(int rows, int cols)
    : rows_(rows), cols_(cols), fus_{FuKind::Universal}
{
    CSCHED_ASSERT(rows >= 1 && cols >= 1, "mesh must be at least 1x1");
    faults_ = FaultIndex::build(FaultMap{}, numClusters());
}

RawMachine::RawMachine(int rows, int cols, FaultMap faults)
    : RawMachine(rows, cols)
{
    faults_ = FaultIndex::build(std::move(faults), numClusters());
    if (!faults_.map.deadCluster.empty() ||
        !faults_.map.deadLink.empty()) {
        std::string why;
        CSCHED_ASSERT(computeDetourTables(&why), why);
    }
}

StatusOr<std::unique_ptr<RawMachine>>
RawMachine::tryCreate(int rows, int cols, FaultMap faults)
{
    auto machine = std::make_unique<RawMachine>(rows, cols);
    machine->faults_ =
        FaultIndex::build(std::move(faults), machine->numClusters());
    if (!machine->faults_.map.deadCluster.empty() ||
        !machine->faults_.map.deadLink.empty()) {
        std::string why;
        if (!machine->computeDetourTables(&why))
            return Status::invalidSpec(why);
    }
    return StatusOr<std::unique_ptr<RawMachine>>(std::move(machine));
}

RawMachine
RawMachine::withTiles(int tiles)
{
    CSCHED_ASSERT(tiles >= 1, "need at least one tile");
    // Squarest factorisation with rows <= cols (2 -> 1x2, 8 -> 2x4).
    int rows = static_cast<int>(std::sqrt(static_cast<double>(tiles)));
    while (rows > 1 && tiles % rows != 0)
        --rows;
    return RawMachine(rows, tiles / rows);
}

std::string
RawMachine::name() const
{
    const std::string base =
        "raw" + std::to_string(rows_) + "x" + std::to_string(cols_);
    return faults_.map.empty() ? base : base + "/degraded";
}

const std::vector<FuKind> &
RawMachine::clusterFus(int cluster) const
{
    CSCHED_ASSERT(cluster >= 0 && cluster < numClusters(),
                  "tile ", cluster, " out of range");
    return fus_;
}

int
RawMachine::distance(int from, int to) const
{
    return std::abs(rowOf(from) - rowOf(to)) +
           std::abs(colOf(from) - colOf(to));
}

int
RawMachine::commLatency(int from, int to) const
{
    if (from == to)
        return 0;
    // Three cycles between neighbours, one extra per additional hop;
    // on a degraded mesh the hop count is the detoured alive-path
    // length, so detours are priced everywhere the latency is asked.
    if (!hops_.empty()) {
        const int hops = hops_[to * numClusters() + from];
        if (hops > 0)
            return 3 + (hops - 1);
        // Dead or unreachable endpoint: fall through to the pristine
        // estimate (no schedule ever routes there -- the checker
        // rejects dead endpoints before routes are compared).
    }
    return 3 + (distance(from, to) - 1);
}

int
RawMachine::memoryPenalty(int bank, int cluster) const
{
    if (bank == -1)
        return 0;
    // Analysed (bank-known) references are preplaced on their home
    // tile by the compiler; a remote access would have to take the
    // dynamic network, which costs several cycles of occupancy and
    // header overhead per request/reply pair.
    const int home = homeOfBank(bank);
    if (home == cluster)
        return 0;
    return 6 + 2 * distance(home, cluster);
}

std::unique_ptr<MachineModel>
RawMachine::makeSingleCluster() const
{
    return std::make_unique<RawMachine>(1, 1);
}

int
RawMachine::linkBetween(int tile, int next) const
{
    // Directions: 0 = east, 1 = west, 2 = south, 3 = north.
    int dir;
    if (next == tile + 1)
        dir = 0;
    else if (next == tile - 1)
        dir = 1;
    else if (next == tile + cols_)
        dir = 2;
    else if (next == tile - cols_)
        dir = 3;
    else
        CSCHED_PANIC("tiles ", tile, " and ", next, " are not neighbours");
    return tile * 4 + dir;
}

bool
RawMachine::xyPathAlive(int from, int to) const
{
    int current = from;
    auto step = [&](int next) {
        if (!clusterAlive(next) ||
            !linkAlive(linkBetween(current, next)))
            return false;
        current = next;
        return true;
    };
    while (colOf(current) != colOf(to))
        if (!step(colOf(current) < colOf(to) ? current + 1 : current - 1))
            return false;
    while (rowOf(current) != rowOf(to))
        if (!step(rowOf(current) < rowOf(to) ? current + cols_
                                             : current - cols_))
            return false;
    return true;
}

std::vector<int>
RawMachine::route(int from, int to) const
{
    std::vector<int> links;
    if (from == to)
        return links;
    if (!hops_.empty()) {
        if (!clusterAlive(from) || !clusterAlive(to))
            return links;
        if (!xyPathAlive(from, to)) {
            // Deterministic shortest alive detour from the
            // per-destination next-hop tables.
            int current = from;
            while (current != to) {
                const int next = nextHop_[to * numClusters() + current];
                CSCHED_ASSERT(next >= 0, "no alive route from tile ",
                              from, " to tile ", to);
                links.push_back(linkBetween(current, next));
                current = next;
            }
            return links;
        }
    }
    int current = from;
    // X (column) first, then Y (row): dimension-ordered routing.
    while (colOf(current) != colOf(to)) {
        const int next = colOf(current) < colOf(to) ? current + 1
                                                    : current - 1;
        links.push_back(linkBetween(current, next));
        current = next;
    }
    while (rowOf(current) != rowOf(to)) {
        const int next = rowOf(current) < rowOf(to) ? current + cols_
                                                    : current - cols_;
        links.push_back(linkBetween(current, next));
        current = next;
    }
    return links;
}

std::vector<int>
RawMachine::interiorLinks(int rows, int cols)
{
    std::vector<int> links;
    for (int tile = 0; tile < rows * cols; ++tile) {
        const int row = tile / cols;
        const int col = tile % cols;
        if (col + 1 < cols)
            links.push_back(tile * 4 + 0);  // east
        if (col > 0)
            links.push_back(tile * 4 + 1);  // west
        if (row + 1 < rows)
            links.push_back(tile * 4 + 2);  // south
        if (row > 0)
            links.push_back(tile * 4 + 3);  // north
    }
    return links;
}

bool
RawMachine::computeDetourTables(std::string *why)
{
    const int n = numClusters();
    nextHop_.assign(static_cast<size_t>(n) * n, -1);
    hops_.assign(static_cast<size_t>(n) * n, -1);

    // Per-destination reverse BFS over alive tiles and links.  The
    // frontier is FIFO and neighbours are visited in fixed direction
    // order (E, W, S, N), so the next-hop tables -- and therefore
    // every detour route -- are deterministic.
    for (int dest : faults_.alive) {
        int *next_hop = &nextHop_[static_cast<size_t>(dest) * n];
        int *hops = &hops_[static_cast<size_t>(dest) * n];
        hops[dest] = 0;
        std::deque<int> frontier{dest};
        int reached = 1;
        while (!frontier.empty()) {
            const int tile = frontier.front();
            frontier.pop_front();
            const int neighbours[4] = {
                colOf(tile) + 1 < cols_ ? tile + 1 : -1,
                colOf(tile) > 0 ? tile - 1 : -1,
                rowOf(tile) + 1 < rows_ ? tile + cols_ : -1,
                rowOf(tile) > 0 ? tile - cols_ : -1,
            };
            for (int source : neighbours) {
                if (source < 0 || !clusterAlive(source) ||
                    hops[source] != -1)
                    continue;
                if (!linkAlive(linkBetween(source, tile)))
                    continue;
                hops[source] = hops[tile] + 1;
                next_hop[source] = tile;
                frontier.push_back(source);
                ++reached;
            }
        }
        if (reached != numAliveClusters()) {
            if (why != nullptr)
                *why = "fault map disconnects the mesh: only " +
                       std::to_string(reached) + " of " +
                       std::to_string(numAliveClusters()) +
                       " alive tiles can reach tile " +
                       std::to_string(dest);
            return false;
        }
    }
    return true;
}

} // namespace csched
