#include "machine/single_cluster.hh"

#include "support/logging.hh"

namespace csched {

UniformMachine::UniformMachine(int num_clusters, int fus_per_cluster,
                               int comm_latency)
    : numClusters_(num_clusters), commLatency_(comm_latency)
{
    CSCHED_ASSERT(num_clusters >= 1, "need at least one cluster");
    CSCHED_ASSERT(fus_per_cluster >= 1, "need at least one FU");
    CSCHED_ASSERT(comm_latency >= 1, "communication must cost something");
    fus_.assign(fus_per_cluster, FuKind::Universal);
}

std::string
UniformMachine::name() const
{
    return "uniform" + std::to_string(numClusters_) + "x" +
           std::to_string(static_cast<int>(fus_.size()));
}

const std::vector<FuKind> &
UniformMachine::clusterFus(int cluster) const
{
    CSCHED_ASSERT(cluster >= 0 && cluster < numClusters_,
                  "cluster ", cluster, " out of range");
    return fus_;
}

int
UniformMachine::commLatency(int from, int to) const
{
    return from == to ? 0 : commLatency_;
}

CommStyle
UniformMachine::commStyle() const
{
    return CommStyle::ReceiveOp;
}

int
UniformMachine::memoryPenalty(int bank, int cluster) const
{
    if (bank == -1)
        return 0;
    return homeOfBank(bank) == cluster ? 0 : 1;
}

std::unique_ptr<MachineModel>
UniformMachine::makeSingleCluster() const
{
    return std::make_unique<UniformMachine>(
        1, static_cast<int>(fus_.size()), commLatency_);
}

} // namespace csched
