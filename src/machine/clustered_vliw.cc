#include "machine/clustered_vliw.hh"

#include "support/logging.hh"

namespace csched {

ClusteredVliwMachine::ClusteredVliwMachine(int num_clusters)
    : ClusteredVliwMachine(num_clusters, FaultMap{})
{
}

ClusteredVliwMachine::ClusteredVliwMachine(int num_clusters,
                                           FaultMap faults)
    : numClusters_(num_clusters),
      fus_{FuKind::IntAlu, FuKind::IntAluMem, FuKind::Fpu, FuKind::Transfer}
{
    CSCHED_ASSERT(num_clusters >= 1, "need at least one cluster, got ",
                  num_clusters);
    faults_ = FaultIndex::build(std::move(faults), num_clusters);
}

std::string
ClusteredVliwMachine::name() const
{
    const std::string base = "vliw" + std::to_string(numClusters_);
    return degraded() ? base + "/degraded" : base;
}

const std::vector<FuKind> &
ClusteredVliwMachine::clusterFus(int cluster) const
{
    CSCHED_ASSERT(cluster >= 0 && cluster < numClusters_,
                  "cluster ", cluster, " out of range");
    return fus_;
}

int
ClusteredVliwMachine::commLatency(int from, int to) const
{
    // One cycle to copy a register value between any two clusters.
    return from == to ? 0 : 1;
}

int
ClusteredVliwMachine::memoryPenalty(int bank, int cluster) const
{
    if (bank == -1)
        return 0;
    return homeOfBank(bank) == cluster ? 0 : 1;
}

std::unique_ptr<MachineModel>
ClusteredVliwMachine::makeSingleCluster() const
{
    return std::make_unique<ClusteredVliwMachine>(1);
}

} // namespace csched
