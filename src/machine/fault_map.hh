/**
 * @file
 * Deterministic machine fault maps: dead clusters/tiles, dead directed
 * mesh links, and slowed clusters with an FU-latency multiplier.
 *
 * A fault map turns a pristine machine model into a degraded one that
 * is still a first-class schedulable platform: the schedulers must
 * route around dead resources instead of treating them as errors.
 * Maps are parsed from the machine-spec suffix
 *
 *   <base>/faults=seed:7,tiles:5%,links:3%,slow:10%,factor:2
 *
 * where each category takes either a percentage (seeded, deterministic
 * draw without replacement) or an explicit `+`-separated id list
 * (`tiles:3+7`).  Because the whole map derives from the spec text and
 * the seed, a degraded machine is identical on every worker, host, and
 * resume -- the property the grid's byte-identical reports rely on.
 */

#ifndef CSCHED_MACHINE_FAULT_MAP_HH
#define CSCHED_MACHINE_FAULT_MAP_HH

#include <cstdint>
#include <string>
#include <vector>

#include "support/status.hh"

namespace csched {

/** Materialised fault state of one concrete machine. */
struct FaultMap
{
    /** Per-cluster dead flag; empty means no cluster faults. */
    std::vector<uint8_t> deadCluster;
    /** Per-directed-link dead flag (mesh only); empty means none. */
    std::vector<uint8_t> deadLink;
    /** Per-cluster FU-latency multiplier; empty means all 1. */
    std::vector<int> slowFactor;

    bool
    empty() const
    {
        return deadCluster.empty() && deadLink.empty() &&
               slowFactor.empty();
    }

    bool
    clusterDead(int cluster) const
    {
        return !deadCluster.empty() && deadCluster[cluster] != 0;
    }

    bool
    linkDead(int link) const
    {
        return !deadLink.empty() && deadLink[link] != 0;
    }

    int
    factorOf(int cluster) const
    {
        return slowFactor.empty() ? 1 : slowFactor[cluster];
    }

    /** Human-readable summary, e.g. "2 dead tiles, 1 dead link". */
    std::string summary() const;
};

/**
 * Parsed (machine-size independent) fault specification.  Percentages
 * and explicit id lists may be combined; the dead set is the union.
 */
struct FaultSpec
{
    uint64_t seed = 0;
    int tilesPct = 0;
    std::vector<int> tiles;
    int linksPct = 0;
    std::vector<int> links;
    int slowPct = 0;
    std::vector<int> slow;
    /** Latency multiplier applied to slowed clusters. */
    int slowFactor = 2;

    bool
    empty() const
    {
        return tilesPct == 0 && tiles.empty() && linksPct == 0 &&
               links.empty() && slowPct == 0 && slow.empty();
    }

    bool
    wantsLinkFaults() const
    {
        return linksPct > 0 || !links.empty();
    }

    /**
     * Parse the text after "faults=" (e.g. "seed:7,tiles:5%").
     * Returns InvalidSpec with a diagnostic on malformed input.
     */
    static StatusOr<FaultSpec> parse(const std::string &text);

    /**
     * Materialise the spec against a machine with @p num_clusters
     * clusters and the given faultable directed-link id universe
     * (empty for machines without mesh links).  Draws are seeded and
     * deterministic.  Fails with InvalidSpec when ids are out of
     * range or when the map would kill every cluster.
     */
    StatusOr<FaultMap> materialize(int num_clusters,
                                   const std::vector<int> &link_ids,
                                   int num_links) const;
};

/**
 * Derived per-machine index over a FaultMap: the alive-cluster list
 * and the deterministic dead->alive remap table the machine models
 * share.  remap[c] == c for alive clusters; a dead cluster c maps to
 * alive[c % numAlive].
 */
struct FaultIndex
{
    FaultMap map;
    std::vector<int> alive;   ///< alive cluster ids, ascending
    std::vector<int> remap;   ///< dead->alive remap (identity if alive)

    static FaultIndex build(FaultMap map, int num_clusters);
};

} // namespace csched

#endif // CSCHED_MACHINE_FAULT_MAP_HH
