/**
 * @file
 * The Chorus-style clustered VLIW machine (Section 5 of the paper).
 *
 * N identical clusters; each cluster has four functional units: one
 * integer ALU, one integer ALU that can also access memory, one
 * floating-point unit, and one transfer unit.  The transfer unit copies
 * a register value to another cluster in one cycle.  Memory addresses
 * are interleaved across the clusters' banks; a memory operation may
 * access a remote bank with a one-cycle penalty.
 */

#ifndef CSCHED_MACHINE_CLUSTERED_VLIW_HH
#define CSCHED_MACHINE_CLUSTERED_VLIW_HH

#include "machine/fault_map.hh"
#include "machine/machine.hh"

namespace csched {

/** Clustered VLIW with identical 4-FU clusters. */
class ClusteredVliwMachine : public MachineModel
{
  public:
    /** Build a machine with @p num_clusters identical clusters. */
    explicit ClusteredVliwMachine(int num_clusters);

    /**
     * Build a degraded machine; @p faults must leave at least one
     * cluster alive (validate via FaultSpec::materialize first).
     */
    ClusteredVliwMachine(int num_clusters, FaultMap faults);

    std::string name() const override;
    int numClusters() const override { return numClusters_; }
    const std::vector<FuKind> &clusterFus(int cluster) const override;
    int commLatency(int from, int to) const override;
    CommStyle commStyle() const override { return CommStyle::TransferUnit; }
    int memoryPenalty(int bank, int cluster) const override;
    std::unique_ptr<MachineModel> makeSingleCluster() const override;

    bool clusterAlive(int cluster) const override
    {
        return !faults_.map.clusterDead(cluster);
    }
    int numAliveClusters() const override
    {
        return static_cast<int>(faults_.alive.size());
    }
    int remapToAlive(int cluster) const override
    {
        return faults_.remap[cluster];
    }
    int latencyFactor(int cluster) const override
    {
        return faults_.map.factorOf(cluster);
    }

  private:
    int numClusters_;
    std::vector<FuKind> fus_;
    FaultIndex faults_;
};

} // namespace csched

#endif // CSCHED_MACHINE_CLUSTERED_VLIW_HH
