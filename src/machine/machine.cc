#include "machine/machine.hh"

#include "support/logging.hh"

namespace csched {

bool
MachineModel::canExecute(int cluster, Opcode op) const
{
    if (!clusterAlive(cluster))
        return false;
    for (FuKind fu : clusterFus(cluster))
        if (fuCanExecute(fu, op))
            return true;
    return false;
}

std::vector<int>
MachineModel::aliveClusters() const
{
    std::vector<int> alive;
    alive.reserve(numClusters());
    for (int c = 0; c < numClusters(); ++c)
        if (clusterAlive(c))
            alive.push_back(c);
    return alive;
}

int
MachineModel::firstAliveCluster() const
{
    for (int c = 0; c < numClusters(); ++c)
        if (clusterAlive(c))
            return c;
    CSCHED_PANIC("machine has no alive cluster");
}

int
MachineModel::numFusFor(int cluster, Opcode op) const
{
    int count = 0;
    for (FuKind fu : clusterFus(cluster))
        if (fuCanExecute(fu, op))
            ++count;
    return count;
}

} // namespace csched
