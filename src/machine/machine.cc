#include "machine/machine.hh"

namespace csched {

bool
MachineModel::canExecute(int cluster, Opcode op) const
{
    for (FuKind fu : clusterFus(cluster))
        if (fuCanExecute(fu, op))
            return true;
    return false;
}

int
MachineModel::numFusFor(int cluster, Opcode op) const
{
    int count = 0;
    for (FuKind fu : clusterFus(cluster))
        if (fuCanExecute(fu, op))
            ++count;
    return count;
}

} // namespace csched
