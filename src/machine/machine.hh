/**
 * @file
 * Abstract machine model for spatial architectures.
 *
 * A machine is a set of clusters (VLIW clusters or Raw tiles), each
 * holding functional units and a slice of the interleaved memory
 * system.  The scheduler interrogates the model for FU capabilities,
 * communication latencies, and memory-bank locality; the concrete
 * subclasses add the topology details the list scheduler needs to
 * reserve communication resources (transfer units, receive slots, or
 * network links).
 */

#ifndef CSCHED_MACHINE_MACHINE_HH
#define CSCHED_MACHINE_MACHINE_HH

#include <memory>
#include <string>
#include <vector>

#include "ir/opcode.hh"

namespace csched {

/** How operand values cross clusters on this machine. */
enum class CommStyle {
    /**
     * A Copy op occupies a Transfer FU on the *source* cluster for one
     * cycle; the value lands in the destination register file
     * commLatency() cycles later (the clustered VLIW of the paper).
     */
    TransferUnit,
    /**
     * A Recv op occupies a regular FU on the *destination* cluster;
     * the value is usable once the receive completes (the abstract
     * three-cluster machine of the paper's Figure 1).
     */
    ReceiveOp,
    /**
     * The value is injected into a point-to-point network whose
     * per-hop links must be reserved; no FU slots are consumed
     * (Raw's register-mapped static network).
     */
    Network,
};

/** Base class for the spatial machine models. */
class MachineModel
{
  public:
    virtual ~MachineModel() = default;

    /** Short identifier used in tables, e.g. "vliw4" or "raw4x4". */
    virtual std::string name() const = 0;

    /** Number of clusters (VLIW clusters or Raw tiles). */
    virtual int numClusters() const = 0;

    /** Functional units of cluster @p cluster. */
    virtual const std::vector<FuKind> &clusterFus(int cluster) const = 0;

    /**
     * Cycles between a producer's finish on @p from and the value's
     * availability on @p to, assuming no resource contention.  Zero
     * when from == to.
     */
    virtual int commLatency(int from, int to) const = 0;

    /** How values cross clusters (selects the scheduler's comm path). */
    virtual CommStyle commStyle() const = 0;

    /** Cluster owning memory bank @p bank (banks interleave). */
    int homeOfBank(int bank) const { return bank % numClusters(); }

    /**
     * Additional access latency for a memory operation touching
     * @p bank when executed on @p cluster (0 when local).
     */
    virtual int memoryPenalty(int bank, int cluster) const = 0;

    /** Architected registers per cluster (for pressure accounting). */
    virtual int registersPerCluster() const { return 32; }

    /**
     * A one-cluster machine of the same family, used to compute the
     * paper's speedup-vs-one-cluster normalisation.
     */
    virtual std::unique_ptr<MachineModel> makeSingleCluster() const = 0;

    /** True when some FU of @p cluster can issue @p op. */
    bool canExecute(int cluster, Opcode op) const;

    /** Number of FUs of @p cluster that can issue @p op. */
    int numFusFor(int cluster, Opcode op) const;
};

} // namespace csched

#endif // CSCHED_MACHINE_MACHINE_HH
