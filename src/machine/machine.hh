/**
 * @file
 * Abstract machine model for spatial architectures.
 *
 * A machine is a set of clusters (VLIW clusters or Raw tiles), each
 * holding functional units and a slice of the interleaved memory
 * system.  The scheduler interrogates the model for FU capabilities,
 * communication latencies, and memory-bank locality; the concrete
 * subclasses add the topology details the list scheduler needs to
 * reserve communication resources (transfer units, receive slots, or
 * network links).
 */

#ifndef CSCHED_MACHINE_MACHINE_HH
#define CSCHED_MACHINE_MACHINE_HH

#include <memory>
#include <string>
#include <vector>

#include "ir/opcode.hh"

namespace csched {

/** How operand values cross clusters on this machine. */
enum class CommStyle {
    /**
     * A Copy op occupies a Transfer FU on the *source* cluster for one
     * cycle; the value lands in the destination register file
     * commLatency() cycles later (the clustered VLIW of the paper).
     */
    TransferUnit,
    /**
     * A Recv op occupies a regular FU on the *destination* cluster;
     * the value is usable once the receive completes (the abstract
     * three-cluster machine of the paper's Figure 1).
     */
    ReceiveOp,
    /**
     * The value is injected into a point-to-point network whose
     * per-hop links must be reserved; no FU slots are consumed
     * (Raw's register-mapped static network).
     */
    Network,
};

/** Base class for the spatial machine models. */
class MachineModel
{
  public:
    virtual ~MachineModel() = default;

    /** Short identifier used in tables, e.g. "vliw4" or "raw4x4". */
    virtual std::string name() const = 0;

    /** Number of clusters (VLIW clusters or Raw tiles). */
    virtual int numClusters() const = 0;

    /** Functional units of cluster @p cluster. */
    virtual const std::vector<FuKind> &clusterFus(int cluster) const = 0;

    /**
     * Cycles between a producer's finish on @p from and the value's
     * availability on @p to, assuming no resource contention.  Zero
     * when from == to.
     */
    virtual int commLatency(int from, int to) const = 0;

    /** How values cross clusters (selects the scheduler's comm path). */
    virtual CommStyle commStyle() const = 0;

    // ---- Fault surface (see machine/fault_map.hh) -------------------
    //
    // A degraded machine is a first-class schedulable platform: dead
    // clusters stay addressable (indices are stable) but report
    // clusterAlive() == false and canExecute() == false, so every
    // placement loop skips them; slowed clusters stretch FU latencies
    // by latencyFactor().  Pristine machines use the defaults below.

    /** True when @p cluster is usable (not marked dead). */
    virtual bool clusterAlive(int cluster) const
    {
        (void)cluster;
        return true;
    }

    /** Number of alive clusters (== numClusters() when pristine). */
    virtual int numAliveClusters() const { return numClusters(); }

    /**
     * Deterministic dead->alive cluster remap: identity for alive
     * clusters; a dead cluster maps to a fixed alive one.  Used to
     * re-home preplaced instructions and memory banks on degraded
     * machines (see remapPreplacedForMachine in eval/experiment.hh).
     */
    virtual int remapToAlive(int cluster) const { return cluster; }

    /** FU-latency multiplier of @p cluster (1 = full speed). */
    virtual int latencyFactor(int cluster) const
    {
        (void)cluster;
        return 1;
    }

    /** @p latency cycles stretched by the cluster's latency factor. */
    int execLatency(int cluster, int latency) const
    {
        return latency * latencyFactor(cluster);
    }

    /** True when any cluster of the machine is dead. */
    bool degraded() const { return numAliveClusters() != numClusters(); }

    /** Alive cluster ids, ascending (setup paths only; not cached). */
    std::vector<int> aliveClusters() const;

    /** Smallest alive cluster id. */
    int firstAliveCluster() const;

    /**
     * Cluster owning memory bank @p bank (banks interleave); on a
     * degraded machine, banks homed on dead clusters move to that
     * cluster's remap target so analysed references stay local.
     */
    int homeOfBank(int bank) const
    {
        return remapToAlive(bank % numClusters());
    }

    /**
     * Additional access latency for a memory operation touching
     * @p bank when executed on @p cluster (0 when local).
     */
    virtual int memoryPenalty(int bank, int cluster) const = 0;

    /** Architected registers per cluster (for pressure accounting). */
    virtual int registersPerCluster() const { return 32; }

    /**
     * A one-cluster machine of the same family, used to compute the
     * paper's speedup-vs-one-cluster normalisation.
     */
    virtual std::unique_ptr<MachineModel> makeSingleCluster() const = 0;

    /** True when some FU of @p cluster can issue @p op. */
    bool canExecute(int cluster, Opcode op) const;

    /** Number of FUs of @p cluster that can issue @p op. */
    int numFusFor(int cluster, Opcode op) const;
};

} // namespace csched

#endif // CSCHED_MACHINE_MACHINE_HH
