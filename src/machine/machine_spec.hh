/**
 * @file
 * Machine-spec parsing with input validation, shared by csched_cli,
 * csched_bench, and the grid runner.  A spec is one of
 *
 *   vliwN    -- an N-cluster clustered VLIW (N >= 1), e.g. "vliw4"
 *   rawN     -- a square-ish Raw mesh with N tiles, e.g. "raw16"
 *   rawRxC   -- an explicit R x C Raw mesh, e.g. "raw4x4"
 *   single   -- shorthand for vliw1
 *
 * Malformed specs ("vliw0", "raw4x", "vliwabc") are rejected with a
 * diagnostic instead of silently defaulting.
 */

#ifndef CSCHED_MACHINE_MACHINE_SPEC_HH
#define CSCHED_MACHINE_MACHINE_SPEC_HH

#include <memory>
#include <string>

#include "machine/machine.hh"

namespace csched {

/**
 * Parse @p spec into a machine model.  Returns nullptr on malformed
 * input and, when @p error is non-null, stores the reason.
 */
std::unique_ptr<MachineModel>
parseMachineSpec(const std::string &spec, std::string *error = nullptr);

/** True when @p spec parses cleanly. */
bool isValidMachineSpec(const std::string &spec);

} // namespace csched

#endif // CSCHED_MACHINE_MACHINE_SPEC_HH
