/**
 * @file
 * Machine-spec parsing with input validation, shared by csched_cli,
 * csched_bench, and the grid runner.  A spec is one of
 *
 *   vliwN    -- an N-cluster clustered VLIW (N >= 1), e.g. "vliw4"
 *   rawN     -- a square-ish Raw mesh with N tiles, e.g. "raw16"
 *   rawRxC   -- an explicit R x C Raw mesh, e.g. "raw4x4" or "raw32x32"
 *   single   -- shorthand for vliw1
 *
 * Any spec may carry a deterministic fault map as a suffix
 * (machine/fault_map.hh):
 *
 *   raw8x8/faults=seed:7,tiles:5%,links:3%
 *   vliw8/faults=seed:1,clusters:25%,slow:25%,factor:2
 *
 * with categories `tiles` (alias `clusters`), `links` (mesh only),
 * and `slow`, each either a seeded percentage or an explicit
 * `+`-separated id list; `factor:K` sets the FU-latency multiplier of
 * slowed clusters.  Fault maps that kill every cluster or disconnect
 * the alive mesh tiles are rejected as InvalidSpec.
 *
 * Malformed specs ("vliw0", "raw4x", "vliwabc") are rejected with a
 * diagnostic instead of silently defaulting; no spec text, however
 * hostile, can abort the process.
 */

#ifndef CSCHED_MACHINE_MACHINE_SPEC_HH
#define CSCHED_MACHINE_MACHINE_SPEC_HH

#include <memory>
#include <string>
#include <vector>

#include "machine/machine.hh"
#include "support/status.hh"

namespace csched {

/**
 * Parse @p spec into a machine model; InvalidSpec with a diagnostic
 * on malformed input.  With @p extra_dead_clusters, those cluster ids
 * are marked dead on top of whatever the spec's own fault map says --
 * the hook the online mid-run degradation event uses to build "the
 * same machine, minus the tiles that just died".
 */
StatusOr<std::unique_ptr<MachineModel>>
tryParseMachineSpec(const std::string &spec,
                    const std::vector<int> &extra_dead_clusters = {});

/**
 * Parse @p spec into a machine model.  Returns nullptr on malformed
 * input and, when @p error is non-null, stores the reason.
 */
std::unique_ptr<MachineModel>
parseMachineSpec(const std::string &spec, std::string *error = nullptr);

/** True when @p spec parses cleanly. */
bool isValidMachineSpec(const std::string &spec);

/**
 * Split a comma-separated machine list into specs, re-stitching the
 * commas inside a faults= suffix: a part that does not parse on its
 * own but completes the previous spec ("raw8x8/faults=seed:7" +
 * "tiles:5%") continues it.  Invalid parts pass through unstitched so
 * the caller's validation reports them.  This is how the CLIs accept
 * "--machines raw8x8,raw8x8/faults=seed:7,tiles:5%".
 */
std::vector<std::string> splitMachineList(const std::string &csv);

} // namespace csched

#endif // CSCHED_MACHINE_MACHINE_SPEC_HH
