/**
 * @file
 * Idealised single-cluster machine used in unit tests and in the
 * Figure-1 reproduction: one cluster with a configurable number of
 * homogeneous universal FUs and no communication.
 */

#ifndef CSCHED_MACHINE_SINGLE_CLUSTER_HH
#define CSCHED_MACHINE_SINGLE_CLUSTER_HH

#include "machine/machine.hh"

namespace csched {

/**
 * Abstract test machine: @p num_clusters clusters of @p fus_per_cluster
 * universal FUs with a uniform inter-cluster latency.  This is the
 * "architecture with three clusters, each with one functional unit,
 * where communication takes one cycle" of the paper's Figure 1.
 */
class UniformMachine : public MachineModel
{
  public:
    UniformMachine(int num_clusters, int fus_per_cluster,
                   int comm_latency);

    std::string name() const override;
    int numClusters() const override { return numClusters_; }
    const std::vector<FuKind> &clusterFus(int cluster) const override;
    int commLatency(int from, int to) const override;
    CommStyle commStyle() const override;
    int memoryPenalty(int bank, int cluster) const override;
    std::unique_ptr<MachineModel> makeSingleCluster() const override;

  private:
    int numClusters_;
    int commLatency_;
    std::vector<FuKind> fus_;
};

} // namespace csched

#endif // CSCHED_MACHINE_SINGLE_CLUSTER_HH
