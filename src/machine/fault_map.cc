#include "machine/fault_map.hh"

#include <algorithm>
#include <cctype>

#include "support/logging.hh"
#include "support/rng.hh"
#include "support/str.hh"

namespace csched {

namespace {

/** Parse a non-negative decimal integer; -1 on anything else. */
long
parseNonNegative(const std::string &text, int max_digits)
{
    if (text.empty() || static_cast<int>(text.size()) > max_digits)
        return -1;
    long value = 0;
    for (char c : text) {
        if (!std::isdigit(static_cast<unsigned char>(c)))
            return -1;
        value = value * 10 + (c - '0');
    }
    return value;
}

/** Parse "30%" into 30, or a `+`-separated id list; false on error. */
bool
parseCategory(const std::string &value, int *pct, std::vector<int> *ids,
              std::string *why)
{
    if (value.empty()) {
        *why = "empty value";
        return false;
    }
    if (value.back() == '%') {
        const long p = parseNonNegative(value.substr(0, value.size() - 1), 3);
        if (p < 0 || p > 100) {
            *why = "expected a percentage in 0..100";
            return false;
        }
        *pct = static_cast<int>(p);
        return true;
    }
    for (const std::string &part : split(value, '+')) {
        const long id = parseNonNegative(part, 6);
        if (id < 0) {
            *why = "expected a percentage (e.g. 5%) or a +-separated "
                   "id list (e.g. 3+7)";
            return false;
        }
        ids->push_back(static_cast<int>(id));
    }
    return true;
}

/**
 * Deterministic draw of @p count distinct elements from @p universe
 * (partial Fisher-Yates); the draw order depends only on @p rng.
 */
std::vector<int>
drawWithoutReplacement(std::vector<int> universe, int count, Rng &rng)
{
    count = std::min<int>(count, static_cast<int>(universe.size()));
    std::vector<int> chosen;
    chosen.reserve(count);
    for (int i = 0; i < count; ++i) {
        const int j =
            i + rng.range(static_cast<int>(universe.size()) - i);
        std::swap(universe[i], universe[j]);
        chosen.push_back(universe[i]);
    }
    return chosen;
}

int
percentCount(int universe, int pct)
{
    return static_cast<int>((static_cast<long>(universe) * pct + 50) / 100);
}

} // namespace

std::string
FaultMap::summary() const
{
    auto count = [](const auto &flags) {
        int n = 0;
        for (auto f : flags)
            n += f != 0 ? 1 : 0;
        return n;
    };
    int slow = 0;
    for (int f : slowFactor)
        slow += f > 1 ? 1 : 0;
    return std::to_string(count(deadCluster)) + " dead tiles, " +
           std::to_string(count(deadLink)) + " dead links, " +
           std::to_string(slow) + " slowed";
}

StatusOr<FaultSpec>
FaultSpec::parse(const std::string &text)
{
    FaultSpec spec;
    if (trim(text).empty())
        return Status::invalidSpec("empty faults= specification");
    for (const std::string &field : split(text, ',')) {
        const auto colon = field.find(':');
        if (colon == std::string::npos)
            return Status::invalidSpec("malformed faults field '" + field +
                                       "': expected key:value");
        const std::string key = trim(field.substr(0, colon));
        const std::string value = trim(field.substr(colon + 1));
        std::string why;
        if (key == "seed") {
            const long seed = parseNonNegative(value, 18);
            if (seed < 0)
                return Status::invalidSpec(
                    "malformed faults seed '" + value +
                    "': expected a non-negative integer");
            spec.seed = static_cast<uint64_t>(seed);
        } else if (key == "tiles" || key == "clusters") {
            if (!parseCategory(value, &spec.tilesPct, &spec.tiles, &why))
                return Status::invalidSpec("malformed faults " + key +
                                           " '" + value + "': " + why);
        } else if (key == "links") {
            if (!parseCategory(value, &spec.linksPct, &spec.links, &why))
                return Status::invalidSpec("malformed faults links '" +
                                           value + "': " + why);
        } else if (key == "slow") {
            if (!parseCategory(value, &spec.slowPct, &spec.slow, &why))
                return Status::invalidSpec("malformed faults slow '" +
                                           value + "': " + why);
        } else if (key == "factor") {
            const long factor = parseNonNegative(value, 3);
            if (factor < 2 || factor > 16)
                return Status::invalidSpec(
                    "malformed faults factor '" + value +
                    "': expected an integer in 2..16");
            spec.slowFactor = static_cast<int>(factor);
        } else {
            return Status::invalidSpec(
                "unknown faults key '" + key +
                "' (expected seed, tiles, links, slow, or factor)");
        }
    }
    return spec;
}

StatusOr<FaultMap>
FaultSpec::materialize(int num_clusters, const std::vector<int> &link_ids,
                       int num_links) const
{
    CSCHED_ASSERT(num_clusters >= 1, "machine must have clusters");
    FaultMap map;
    Rng rng(seed);

    // Category order (tiles, links, slow) is fixed so that the draws
    // are reproducible from the seed alone.
    std::vector<int> dead_tiles;
    if (tilesPct > 0) {
        std::vector<int> universe(num_clusters);
        for (int c = 0; c < num_clusters; ++c)
            universe[c] = c;
        dead_tiles = drawWithoutReplacement(
            std::move(universe), percentCount(num_clusters, tilesPct), rng);
    }
    for (int id : tiles) {
        if (id >= num_clusters)
            return Status::invalidSpec(
                "faults tile id " + std::to_string(id) +
                " out of range for a machine with " +
                std::to_string(num_clusters) + " tiles");
        dead_tiles.push_back(id);
    }

    std::vector<int> dead_links;
    if (wantsLinkFaults()) {
        if (link_ids.empty())
            return Status::invalidSpec(
                "faults links=... requires a mesh machine");
        if (linksPct > 0)
            dead_links = drawWithoutReplacement(
                link_ids,
                percentCount(static_cast<int>(link_ids.size()), linksPct),
                rng);
        for (int id : links) {
            if (std::find(link_ids.begin(), link_ids.end(), id) ==
                link_ids.end())
                return Status::invalidSpec(
                    "faults link id " + std::to_string(id) +
                    " is not a directed mesh link of this machine");
            dead_links.push_back(id);
        }
    }

    std::vector<int> slowed;
    if (slowPct > 0) {
        std::vector<int> universe(num_clusters);
        for (int c = 0; c < num_clusters; ++c)
            universe[c] = c;
        slowed = drawWithoutReplacement(
            std::move(universe), percentCount(num_clusters, slowPct), rng);
    }
    for (int id : slow) {
        if (id >= num_clusters)
            return Status::invalidSpec(
                "faults slow id " + std::to_string(id) +
                " out of range for a machine with " +
                std::to_string(num_clusters) + " tiles");
        slowed.push_back(id);
    }

    if (!dead_tiles.empty()) {
        map.deadCluster.assign(num_clusters, 0);
        for (int id : dead_tiles)
            map.deadCluster[id] = 1;
        int alive = 0;
        for (uint8_t dead : map.deadCluster)
            alive += dead == 0 ? 1 : 0;
        if (alive == 0)
            return Status::invalidSpec(
                "fault map kills every tile of the machine");
    }
    if (!dead_links.empty()) {
        map.deadLink.assign(num_links, 0);
        for (int id : dead_links)
            map.deadLink[id] = 1;
    }
    if (!slowed.empty()) {
        map.slowFactor.assign(num_clusters, 1);
        for (int id : slowed)
            map.slowFactor[id] = slowFactor;
    }
    return map;
}

FaultIndex
FaultIndex::build(FaultMap map, int num_clusters)
{
    FaultIndex index;
    index.alive.reserve(num_clusters);
    for (int c = 0; c < num_clusters; ++c)
        if (!map.clusterDead(c))
            index.alive.push_back(c);
    CSCHED_ASSERT(!index.alive.empty(), "fault map kills every cluster");
    index.remap.resize(num_clusters);
    const int num_alive = static_cast<int>(index.alive.size());
    for (int c = 0; c < num_clusters; ++c)
        index.remap[c] =
            map.clusterDead(c) ? index.alive[c % num_alive] : c;
    index.map = std::move(map);
    return index;
}

} // namespace csched
