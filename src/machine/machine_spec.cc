#include "machine/machine_spec.hh"

#include <cctype>

#include "machine/clustered_vliw.hh"
#include "machine/fault_map.hh"
#include "machine/raw_machine.hh"
#include "support/str.hh"

namespace csched {

namespace {

/**
 * Largest machine a spec may name (64x64 tiles).  The cap keeps a
 * hostile spec from allocating unbounded routing tables in a worker;
 * the paper's evaluation tops out at 32x32.
 */
constexpr int kMaxClusters = 4096;

/** Parse a strictly positive decimal integer; -1 on anything else. */
int
parsePositiveInt(const std::string &text)
{
    if (text.empty() || text.size() > 6)
        return -1;
    long value = 0;
    for (char c : text) {
        if (!std::isdigit(static_cast<unsigned char>(c)))
            return -1;
        value = value * 10 + (c - '0');
    }
    return value >= 1 ? static_cast<int>(value) : -1;
}

Status
malformed(const std::string &spec, const std::string &why)
{
    return Status::invalidSpec("malformed machine spec '" + spec +
                               "': " + why);
}

} // namespace

StatusOr<std::unique_ptr<MachineModel>>
tryParseMachineSpec(const std::string &spec,
                    const std::vector<int> &extra_dead_clusters)
{
    // Split off the optional "/faults=..." suffix.
    std::string base = spec;
    FaultSpec faults;
    const auto slash = spec.find('/');
    if (slash != std::string::npos) {
        const std::string suffix = spec.substr(slash + 1);
        if (suffix.rfind("faults=", 0) != 0)
            return malformed(spec,
                             "expected /faults=... after the base spec");
        base = spec.substr(0, slash);
        auto parsed = FaultSpec::parse(suffix.substr(7));
        if (!parsed.ok())
            return malformed(spec, parsed.status().message());
        faults = std::move(*parsed);
    }
    for (int cluster : extra_dead_clusters) {
        if (cluster < 0)
            return malformed(spec, "negative degraded cluster id");
        faults.tiles.push_back(cluster);
    }

    int vliw_clusters = 0;
    int rows = 0;
    int cols = 0;
    if (base == "single") {
        vliw_clusters = 1;
    } else if (base.rfind("vliw", 0) == 0) {
        vliw_clusters = parsePositiveInt(base.substr(4));
        if (vliw_clusters < 1)
            return malformed(spec, "expected vliwN with N >= 1");
    } else if (base.rfind("raw", 0) == 0) {
        const std::string dims = base.substr(3);
        const auto x = dims.find('x');
        if (x == std::string::npos) {
            const int tiles = parsePositiveInt(dims);
            if (tiles < 1)
                return malformed(
                    spec, "expected rawN or rawRxC with positive "
                          "dimensions");
            if (tiles > kMaxClusters)
                return malformed(spec,
                                 "mesh exceeds " +
                                     std::to_string(kMaxClusters) +
                                     " tiles");
            const RawMachine shape = RawMachine::withTiles(tiles);
            rows = shape.rows();
            cols = shape.cols();
        } else {
            rows = parsePositiveInt(dims.substr(0, x));
            cols = parsePositiveInt(dims.substr(x + 1));
            if (rows < 1 || cols < 1)
                return malformed(spec,
                                 "expected rawRxC with positive R and C");
        }
        if (static_cast<long>(rows) * cols > kMaxClusters)
            return malformed(spec, "mesh exceeds " +
                                       std::to_string(kMaxClusters) +
                                       " tiles");
    } else {
        return Status::invalidSpec(
            "unknown machine spec '" + spec +
            "' (expected vliwN, rawN, rawRxC, or single)");
    }

    if (vliw_clusters > 0) {
        if (vliw_clusters > kMaxClusters)
            return malformed(spec, "machine exceeds " +
                                       std::to_string(kMaxClusters) +
                                       " clusters");
        if (faults.wantsLinkFaults())
            return malformed(spec, "links faults require a mesh machine");
        auto map = faults.materialize(vliw_clusters, {}, 0);
        if (!map.ok())
            return malformed(spec, map.status().message());
        return StatusOr<std::unique_ptr<MachineModel>>(
            std::make_unique<ClusteredVliwMachine>(vliw_clusters,
                                                   std::move(*map)));
    }

    auto map = faults.materialize(rows * cols,
                                  RawMachine::interiorLinks(rows, cols),
                                  rows * cols * 4);
    if (!map.ok())
        return malformed(spec, map.status().message());
    auto machine = RawMachine::tryCreate(rows, cols, std::move(*map));
    if (!machine.ok())
        return malformed(spec, machine.status().message());
    return StatusOr<std::unique_ptr<MachineModel>>(std::move(*machine));
}

std::unique_ptr<MachineModel>
parseMachineSpec(const std::string &spec, std::string *error)
{
    auto machine = tryParseMachineSpec(spec);
    if (!machine.ok()) {
        if (error != nullptr)
            *error = machine.status().message();
        return nullptr;
    }
    return std::move(*machine);
}

bool
isValidMachineSpec(const std::string &spec)
{
    return parseMachineSpec(spec) != nullptr;
}

std::vector<std::string>
splitMachineList(const std::string &csv)
{
    std::vector<std::string> specs;
    for (const auto &part : split(csv, ',')) {
        const std::string piece = trim(part);
        if (!specs.empty() && !isValidMachineSpec(piece) &&
            isValidMachineSpec(specs.back() + "," + piece)) {
            specs.back() += "," + piece;
            continue;
        }
        specs.push_back(piece);
    }
    return specs;
}

} // namespace csched
