#include "machine/machine_spec.hh"

#include <cctype>

#include "machine/clustered_vliw.hh"
#include "machine/raw_machine.hh"

namespace csched {

namespace {

/** Parse a strictly positive decimal integer; -1 on anything else. */
int
parsePositiveInt(const std::string &text)
{
    if (text.empty() || text.size() > 6)
        return -1;
    long value = 0;
    for (char c : text) {
        if (!std::isdigit(static_cast<unsigned char>(c)))
            return -1;
        value = value * 10 + (c - '0');
    }
    return value >= 1 ? static_cast<int>(value) : -1;
}

std::unique_ptr<MachineModel>
fail(const std::string &why, std::string *error)
{
    if (error != nullptr)
        *error = why;
    return nullptr;
}

} // namespace

std::unique_ptr<MachineModel>
parseMachineSpec(const std::string &spec, std::string *error)
{
    if (spec == "single")
        return std::make_unique<ClusteredVliwMachine>(1);

    if (spec.rfind("vliw", 0) == 0) {
        const int clusters = parsePositiveInt(spec.substr(4));
        if (clusters < 1)
            return fail("malformed machine spec '" + spec +
                            "': expected vliwN with N >= 1",
                        error);
        return std::make_unique<ClusteredVliwMachine>(clusters);
    }

    if (spec.rfind("raw", 0) == 0) {
        const std::string dims = spec.substr(3);
        const auto x = dims.find('x');
        if (x == std::string::npos) {
            const int tiles = parsePositiveInt(dims);
            if (tiles < 1)
                return fail("malformed machine spec '" + spec +
                                "': expected rawN or rawRxC with "
                                "positive dimensions",
                            error);
            return std::make_unique<RawMachine>(
                RawMachine::withTiles(tiles));
        }
        const int rows = parsePositiveInt(dims.substr(0, x));
        const int cols = parsePositiveInt(dims.substr(x + 1));
        if (rows < 1 || cols < 1)
            return fail("malformed machine spec '" + spec +
                            "': expected rawRxC with positive R and C",
                        error);
        return std::make_unique<RawMachine>(rows, cols);
    }

    return fail("unknown machine spec '" + spec +
                    "' (expected vliwN, rawN, rawRxC, or single)",
                error);
}

bool
isValidMachineSpec(const std::string &spec)
{
    return parseMachineSpec(spec) != nullptr;
}

} // namespace csched
