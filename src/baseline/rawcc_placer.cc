#include "baseline/rawcc_placer.hh"

#include <algorithm>

#include "support/logging.hh"

namespace csched {

std::vector<int>
placeClusters(const DependenceGraph &graph, const MachineModel &machine,
              const ClusteringResult &clustering)
{
    const int num_tiles = machine.numClusters();
    const int num_vclusters = clustering.count;
    CSCHED_ASSERT(num_vclusters <= machine.numAliveClusters(),
                  "more virtual clusters (", num_vclusters,
                  ") than alive tiles (", machine.numAliveClusters(),
                  ")");

    // Pairwise communication volume between virtual clusters.
    std::vector<std::vector<int>> volume(
        num_vclusters, std::vector<int>(num_vclusters, 0));
    for (const auto &edge : graph.edges()) {
        if (edge.kind != DepKind::Data)
            continue;
        const int a = clustering.clusterOf[edge.src];
        const int b = clustering.clusterOf[edge.dst];
        if (a != b) {
            ++volume[a][b];
            ++volume[b][a];
        }
    }

    std::vector<int> tile_of(num_vclusters, -1);
    std::vector<bool> tile_used(num_tiles, false);
    // Dead tiles never receive a virtual cluster.
    for (int tile = 0; tile < num_tiles; ++tile)
        if (!machine.clusterAlive(tile))
            tile_used[tile] = true;

    // Pinned clusters first.
    for (int v = 0; v < num_vclusters; ++v) {
        if (clustering.home[v] == kNoCluster)
            continue;
        const int tile = clustering.home[v];
        CSCHED_ASSERT(!tile_used[tile], "two clusters pinned to tile ",
                      tile);
        tile_of[v] = tile;
        tile_used[tile] = true;
    }

    // Free clusters: largest total volume first, greedy best tile.
    std::vector<int> free_clusters;
    for (int v = 0; v < num_vclusters; ++v)
        if (tile_of[v] == -1)
            free_clusters.push_back(v);
    auto total_volume = [&](int v) {
        int total = 0;
        for (int u = 0; u < num_vclusters; ++u)
            total += volume[v][u];
        return total;
    };
    std::stable_sort(free_clusters.begin(), free_clusters.end(),
                     [&](int a, int b) {
                         return total_volume(a) > total_volume(b);
                     });

    auto placement_cost = [&](int v, int tile) {
        double cost = 0.0;
        for (int u = 0; u < num_vclusters; ++u) {
            if (u == v || tile_of[u] == -1 || volume[v][u] == 0)
                continue;
            cost += volume[v][u] *
                    machine.commLatency(tile, tile_of[u]);
        }
        return cost;
    };

    for (int v : free_clusters) {
        int best_tile = -1;
        double best_cost = 0.0;
        for (int tile = 0; tile < num_tiles; ++tile) {
            if (tile_used[tile])
                continue;
            const double cost = placement_cost(v, tile);
            if (best_tile == -1 || cost < best_cost) {
                best_tile = tile;
                best_cost = cost;
            }
        }
        CSCHED_ASSERT(best_tile != -1, "ran out of tiles");
        tile_of[v] = best_tile;
        tile_used[best_tile] = true;
    }

    // Pairwise swap refinement among free clusters.
    auto total_cost = [&]() {
        double cost = 0.0;
        for (int a = 0; a < num_vclusters; ++a)
            for (int b = a + 1; b < num_vclusters; ++b)
                if (volume[a][b] > 0)
                    cost += volume[a][b] *
                            machine.commLatency(tile_of[a], tile_of[b]);
        return cost;
    };
    double current = total_cost();
    bool improved = true;
    int rounds = 0;
    while (improved && rounds < 8) {
        improved = false;
        ++rounds;
        for (size_t i = 0; i < free_clusters.size(); ++i) {
            for (size_t j = i + 1; j < free_clusters.size(); ++j) {
                const int a = free_clusters[i];
                const int b = free_clusters[j];
                std::swap(tile_of[a], tile_of[b]);
                const double swapped = total_cost();
                if (swapped + 1e-9 < current) {
                    current = swapped;
                    improved = true;
                } else {
                    std::swap(tile_of[a], tile_of[b]);
                }
            }
        }
    }

    std::vector<int> assignment(graph.numInstructions());
    for (InstrId id = 0; id < graph.numInstructions(); ++id)
        assignment[id] = tile_of[clustering.clusterOf[id]];
    return assignment;
}

} // namespace csched
