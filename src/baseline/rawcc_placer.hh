/**
 * @file
 * Rawcc phase 3: placement (Lee et al., ASPLOS '98).
 *
 * Maps the merged virtual clusters onto physical clusters/tiles.
 * Clusters pinned by preplacement go to their home tile; the rest are
 * placed greedily (largest communication volume first) to minimise
 * the sum over cross-cluster data edges of volume x communication
 * latency, then improved with pairwise-swap refinement -- the step
 * that matters on Raw, where latency grows with mesh distance.
 */

#ifndef CSCHED_BASELINE_RAWCC_PLACER_HH
#define CSCHED_BASELINE_RAWCC_PLACER_HH

#include "baseline/rawcc_clusterer.hh"
#include "machine/machine.hh"

namespace csched {

/**
 * Place @p clustering (at most machine.numClusters() clusters, one
 * home per cluster, one cluster per home) onto the machine; returns
 * the physical cluster per instruction.
 */
std::vector<int> placeClusters(const DependenceGraph &graph,
                               const MachineModel &machine,
                               const ClusteringResult &clustering);

} // namespace csched

#endif // CSCHED_BASELINE_RAWCC_PLACER_HH
