/**
 * @file
 * PCC -- Partial Component Clustering (Desoli, HP Labs TR HPL-98-13),
 * the paper's second clustered-VLIW baseline.
 *
 * PCC first grows "partial components" bottom-up over the data
 * dependence graph, critical paths first, capping each component's
 * size at a threshold.  Components get an initial cluster assignment
 * based on load balancing and communication affinity, and the
 * assignment is then improved by iterative descent: components are
 * tentatively moved to other clusters and a move is kept whenever the
 * (fully modelled, preplacement-aware) schedule length improves.  The
 * repeated full schedule evaluations are what make PCC orders of
 * magnitude slower than UAS and convergent scheduling at large
 * instruction counts (the paper's Figure 10), while the descent makes
 * it competitive on quality for small units.
 *
 * As in the paper's evaluation, preplacement is honoured: a component
 * containing preplaced instructions is pinned to their home cluster,
 * and component growth never mixes two homes.
 */

#ifndef CSCHED_BASELINE_PCC_HH
#define CSCHED_BASELINE_PCC_HH

#include <vector>

#include "machine/machine.hh"
#include "sched/algorithm.hh"

namespace csched {

/** Partial-component clustering baseline. */
class PccScheduler : public SchedulingAlgorithm
{
  public:
    /** Tunables (the TR leaves the exact threshold policy open). */
    struct Options
    {
        /**
         * Maximum instructions per component; 0 selects
         * max(4, n / (4 * clusters)) automatically.
         */
        int componentCap = 0;

        /** Maximum full passes of iterative descent. */
        int maxDescentRounds = 8;
    };

    /**
     * The schedule-length estimator that guides the iterative
     * descent, as Desoli's TR uses an estimation algorithm rather
     * than a full scheduler: issue-width-limited list simulation per
     * cluster (no FU typing), a fixed one-hop communication cost per
     * cross-cluster data edge, and the remote-bank penalty for
     * preplaced memory operations placed off their home (the
     * preplacement extension the convergent-scheduling paper added).
     * Exposed for tests.
     */
    int estimate(const DependenceGraph &graph,
                 const std::vector<int> &assignment) const;

    explicit PccScheduler(const MachineModel &machine);
    PccScheduler(const MachineModel &machine, Options options);

    std::string name() const override { return "PCC"; }
    ScheduleResult run(const DependenceGraph &graph) const override;

    /**
     * Component id per instruction (exposed for tests).  Ids are dense
     * in [0, numComponents).
     */
    std::vector<int> buildComponents(const DependenceGraph &graph) const;

    /** The effective component cap for a graph of @p n instructions. */
    int effectiveCap(int n) const;

  private:
    const MachineModel &machine_;
    Options options_;
};

} // namespace csched

#endif // CSCHED_BASELINE_PCC_HH
