#include "baseline/rawcc_partitioner.hh"

#include "baseline/rawcc_clusterer.hh"
#include "baseline/rawcc_merger.hh"
#include "baseline/rawcc_placer.hh"
#include "sched/list_scheduler.hh"
#include "sched/priorities.hh"

namespace csched {

RawccPartitioner::RawccPartitioner(const MachineModel &machine)
    : machine_(machine)
{
}

std::vector<int>
RawccPartitioner::assign(const DependenceGraph &graph) const
{
    // The clusterer's communication cost is the machine's neighbour
    // latency: the cheapest cross-cluster hop a value can take.
    const int comm_cost = machine_.numClusters() > 1
                              ? machine_.commLatency(0, 1)
                              : 1;

    const auto clustered = rawccCluster(graph, comm_cost);
    const auto merged =
        mergeClusters(graph, clustered, machine_.numClusters());
    return placeClusters(graph, machine_, merged);
}

ScheduleResult
RawccPartitioner::run(const DependenceGraph &graph) const
{
    const ListScheduler scheduler(machine_);
    return {scheduler.run(graph, assign(graph),
                          criticalPathPriority(graph)),
            {}};
}

} // namespace csched
