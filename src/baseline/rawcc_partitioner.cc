#include "baseline/rawcc_partitioner.hh"

#include "baseline/rawcc_clusterer.hh"
#include "baseline/rawcc_merger.hh"
#include "baseline/rawcc_placer.hh"
#include "sched/list_scheduler.hh"
#include "sched/priorities.hh"

namespace csched {

RawccPartitioner::RawccPartitioner(const MachineModel &machine)
    : machine_(machine)
{
}

std::vector<int>
RawccPartitioner::assign(const DependenceGraph &graph) const
{
    // The clusterer's communication cost is the machine's neighbour
    // latency: the cheapest cross-cluster hop a value can take.  On a
    // degraded machine only alive tiles count -- both for the cost
    // and for the merge budget, since dead tiles can't host work.
    const auto alive = machine_.aliveClusters();
    const int comm_cost =
        alive.size() > 1 ? machine_.commLatency(alive[0], alive[1]) : 1;

    const auto clustered = rawccCluster(graph, comm_cost);
    const auto merged =
        mergeClusters(graph, clustered, machine_.numAliveClusters());
    return placeClusters(graph, machine_, merged);
}

ScheduleResult
RawccPartitioner::run(const DependenceGraph &graph) const
{
    const ListScheduler scheduler(machine_);
    return {scheduler.run(graph, assign(graph),
                          criticalPathPriority(graph)),
            {}};
}

} // namespace csched
