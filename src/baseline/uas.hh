/**
 * @file
 * UAS -- Unified Assign and Schedule (Ozer, Banerjia, Conte,
 * MICRO-31, 1998), one of the paper's two clustered-VLIW baselines.
 *
 * UAS integrates cluster assignment into a cycle-driven list
 * scheduler: at every cycle, ready instructions are considered in
 * critical-path priority order, and each is placed into the first
 * cluster (in a cluster-priority order) that can issue it this cycle,
 * including any inter-cluster copies its operands need.  Copies
 * consume real resources (transfer-unit slots, receive slots, or
 * network links) in earlier cycles; a cluster whose copies cannot be
 * scheduled in time is infeasible this cycle.  Decisions are final --
 * UAS never revisits an assignment, which is the property the paper
 * contrasts convergent scheduling against.
 *
 * Cluster ordering follows the CPSC (completion-cycle) heuristic:
 * feasible clusters are preferred by earliest completion of the
 * candidate, breaking ties by fewer new copies, then lower load.  As
 * in the paper's evaluation, the heuristic is augmented with
 * preplacement: a preplaced instruction is only ever tried on its
 * home cluster.
 */

#ifndef CSCHED_BASELINE_UAS_HH
#define CSCHED_BASELINE_UAS_HH

#include "machine/machine.hh"
#include "sched/algorithm.hh"

namespace csched {

/** Unified assign-and-schedule baseline. */
class UasScheduler : public SchedulingAlgorithm
{
  public:
    explicit UasScheduler(const MachineModel &machine);

    std::string name() const override { return "UAS"; }
    ScheduleResult run(const DependenceGraph &graph) const override;

  private:
    const MachineModel &machine_;
};

} // namespace csched

#endif // CSCHED_BASELINE_UAS_HH
