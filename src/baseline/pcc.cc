#include "baseline/pcc.hh"

#include <algorithm>
#include <queue>
#include <tuple>

#include "sched/list_scheduler.hh"
#include "sched/priorities.hh"
#include "support/fault_injection.hh"
#include "support/logging.hh"

namespace csched {

int
PccScheduler::estimate(const DependenceGraph &graph,
                       const std::vector<int> &assignment) const
{
    const int n = graph.numInstructions();
    const int num_clusters = machine_.numClusters();
    // Neighbour latency between the first two alive clusters (dead
    // resources never host work, so they must not price the estimate).
    const auto alive = machine_.aliveClusters();
    const int comm_cost =
        alive.size() > 1 ? machine_.commLatency(alive[0], alive[1]) : 1;

    // Issue width per cluster: total FU slots, ignoring typing.
    std::vector<int> width(num_clusters);
    for (int c = 0; c < num_clusters; ++c)
        width[c] = static_cast<int>(machine_.clusterFus(c).size());

    // Cycle-bucketed issue counts grow on demand.
    std::vector<std::vector<int>> issued(num_clusters);
    auto issue_slot = [&](int cluster, int from) {
        auto &slots = issued[cluster];
        int cycle = from;
        while (true) {
            if (cycle >= static_cast<int>(slots.size()))
                slots.resize(cycle + 1, 0);
            if (slots[cycle] < width[cluster]) {
                ++slots[cycle];
                return cycle;
            }
            ++cycle;
        }
    };

    std::vector<int> unplaced_preds(n);
    std::vector<int> data_ready(n, 0);
    using Entry = std::tuple<int, int, InstrId>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
    for (InstrId id = 0; id < n; ++id) {
        unplaced_preds[id] = static_cast<int>(graph.preds(id).size());
        if (unplaced_preds[id] == 0)
            heap.emplace(0, -graph.latestFinishSlack(id), id);
    }

    int makespan = 0;
    while (!heap.empty()) {
        const auto [ready, neg_slack, id] = heap.top();
        heap.pop();
        const int cluster = assignment[id];
        const int start = issue_slot(cluster, ready);
        int finish =
            start + machine_.execLatency(cluster, graph.latency(id));
        const auto &instr = graph.instr(id);
        if (isMemory(instr.op))
            finish += machine_.memoryPenalty(instr.memBank, cluster);
        makespan = std::max(makespan, finish);
        for (InstrId succ : graph.succs(id)) {
            const int arrival =
                finish + (assignment[succ] == cluster ? 0 : comm_cost);
            data_ready[succ] = std::max(data_ready[succ], arrival);
            if (--unplaced_preds[succ] == 0) {
                heap.emplace(data_ready[succ],
                             -graph.latestFinishSlack(succ), succ);
            }
        }
    }
    return makespan;
}

int
PccScheduler::effectiveCap(int n) const
{
    if (options_.componentCap > 0)
        return options_.componentCap;
    return std::max(4, n / (4 * machine_.numClusters()));
}

PccScheduler::PccScheduler(const MachineModel &machine)
    : PccScheduler(machine, Options())
{
}

PccScheduler::PccScheduler(const MachineModel &machine, Options options)
    : machine_(machine), options_(options)
{
}

std::vector<int>
PccScheduler::buildComponents(const DependenceGraph &graph) const
{
    const int n = graph.numInstructions();
    const int cap = effectiveCap(n);

    std::vector<int> component(n, -1);
    std::vector<int> comp_size;
    std::vector<int> comp_home;

    // Bottom-up: successors are processed before their producers, so
    // walk the topological order in reverse.  This grows components
    // from the leaves towards the roots, critical chains first
    // (the most critical successor is preferred below).
    const auto &topo = graph.topoOrder();
    for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
        const InstrId id = *it;
        const int home = graph.instr(id).homeCluster;

        // Candidate: the most critical joinable successor component.
        int best_comp = -1;
        int best_slack = -1;
        for (InstrId succ : graph.succs(id)) {
            const int comp = component[succ];
            CSCHED_ASSERT(comp != -1, "successor not yet componentised");
            if (comp_size[comp] >= cap)
                continue;
            if (home != kNoCluster && comp_home[comp] != kNoCluster &&
                comp_home[comp] != home) {
                continue;  // incompatible preplacement homes
            }
            if (graph.latestFinishSlack(succ) > best_slack) {
                best_slack = graph.latestFinishSlack(succ);
                best_comp = comp;
            }
        }

        if (best_comp == -1) {
            best_comp = static_cast<int>(comp_size.size());
            comp_size.push_back(0);
            comp_home.push_back(kNoCluster);
        }
        component[id] = best_comp;
        comp_size[best_comp] += 1;
        if (home != kNoCluster)
            comp_home[best_comp] = home;
    }
    return component;
}

ScheduleResult
PccScheduler::run(const DependenceGraph &graph) const
{
    const int n = graph.numInstructions();
    const int num_clusters = machine_.numClusters();
    const auto component = buildComponents(graph);
    int num_components = 0;
    for (int comp : component)
        num_components = std::max(num_components, comp + 1);

    // Component metadata: members, load (total latency), home.
    std::vector<std::vector<InstrId>> members(num_components);
    std::vector<int> comp_load(num_components, 0);
    std::vector<int> comp_home(num_components, kNoCluster);
    for (InstrId id = 0; id < n; ++id) {
        const int comp = component[id];
        members[comp].push_back(id);
        comp_load[comp] += graph.latency(id);
        const int home = graph.instr(id).homeCluster;
        if (home != kNoCluster) {
            CSCHED_ASSERT(comp_home[comp] == kNoCluster ||
                              comp_home[comp] == home,
                          "component mixes preplacement homes");
            comp_home[comp] = home;
        }
    }

    // Inter-component communication volume (data edges).
    std::vector<std::vector<std::pair<int, int>>> comp_edges(
        num_components);  // (other component, count) accumulated below
    {
        std::vector<std::vector<int>> volume(
            num_components, std::vector<int>(num_components, 0));
        for (const auto &edge : graph.edges()) {
            if (edge.kind != DepKind::Data)
                continue;
            const int a = component[edge.src];
            const int b = component[edge.dst];
            if (a != b) {
                ++volume[a][b];
                ++volume[b][a];
            }
        }
        for (int a = 0; a < num_components; ++a)
            for (int b = 0; b < num_components; ++b)
                if (volume[a][b] > 0)
                    comp_edges[a].emplace_back(b, volume[a][b]);
    }

    // ---- Initial assignment: big components first, to the cluster
    // with the best load/affinity score; pinned components go home.
    std::vector<int> comp_cluster(num_components, -1);
    std::vector<int> cluster_load(num_clusters, 0);
    std::vector<int> order(num_components);
    for (int i = 0; i < num_components; ++i)
        order[i] = i;
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
        return comp_load[a] > comp_load[b];
    });
    for (int comp : order) {
        int chosen;
        if (comp_home[comp] != kNoCluster) {
            chosen = comp_home[comp];
        } else {
            chosen = machine_.firstAliveCluster();
            double best_score = 0.0;
            bool first = true;
            for (int c = 0; c < num_clusters; ++c) {
                if (!machine_.clusterAlive(c))
                    continue;  // dead clusters never host work
                double affinity = 0.0;
                for (const auto &[other, count] : comp_edges[comp])
                    if (comp_cluster[other] == c)
                        affinity += count;
                const double score = cluster_load[c] - 2.0 * affinity;
                if (first || score < best_score) {
                    first = false;
                    best_score = score;
                    chosen = c;
                }
            }
        }
        comp_cluster[comp] = chosen;
        cluster_load[chosen] += comp_load[comp];
    }

    // ---- Iterative descent: move one component at a time to the best
    // improving cluster, guided by the schedule-length estimator.
    const ListScheduler scheduler(machine_);
    const auto priority = criticalPathPriority(graph);
    std::vector<int> assignment(n);
    auto materialize = [&]() {
        for (InstrId id = 0; id < n; ++id)
            assignment[id] = comp_cluster[component[id]];
    };
    auto evaluate = [&]() {
        materialize();
        return estimate(graph, assignment);
    };

    int best_makespan = evaluate();
    for (int round = 0; round < options_.maxDescentRounds; ++round) {
        bool improved = false;
        for (int comp = 0; comp < num_components; ++comp) {
            // The descent is the superlinear part of PCC (Figure 10),
            // so this is where a deadline must be able to stop it.
            checkpoint("pcc.descent");
            if (comp_home[comp] != kNoCluster)
                continue;  // pinned by preplacement
            const int original = comp_cluster[comp];
            int best_cluster = original;
            for (int c = 0; c < num_clusters; ++c) {
                if (c == original || !machine_.clusterAlive(c))
                    continue;
                comp_cluster[comp] = c;
                const int makespan = evaluate();
                if (makespan < best_makespan) {
                    best_makespan = makespan;
                    best_cluster = c;
                }
            }
            comp_cluster[comp] = best_cluster;
            improved |= best_cluster != original;
        }
        if (!improved)
            break;
    }

    materialize();
    return {scheduler.run(graph, assignment, priority), {}};
}

} // namespace csched
