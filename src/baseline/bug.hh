/**
 * @file
 * BUG -- Bottom-Up Greedy cluster assignment (Ellis, "Bulldog: A
 * Compiler for VLIW Architectures", 1986).
 *
 * The pioneering assignment algorithm of the paper's related-work
 * section, and (with Rawcc) one of only two prior approaches that
 * directly support preplaced instructions.  BUG runs two traversals of
 * the dependence graph:
 *
 *  1. bottom-up, propagating preplacement information: every
 *     instruction learns which clusters its downstream preplaced
 *     consumers live on;
 *  2. top-down, greedily assigning each instruction to the candidate
 *     cluster that can execute it *earliest*, estimating completion
 *     times from operand locations and communication latency.
 *
 * Decisions are final -- like UAS, BUG cannot recover from a bad early
 * choice, which is the property convergent scheduling removes.
 * Included as an additional baseline beyond the paper's evaluated set.
 */

#ifndef CSCHED_BASELINE_BUG_HH
#define CSCHED_BASELINE_BUG_HH

#include "machine/machine.hh"
#include "sched/algorithm.hh"

namespace csched {

/** Bottom-up-greedy assignment + critical-path list scheduling. */
class BugScheduler : public SchedulingAlgorithm
{
  public:
    explicit BugScheduler(const MachineModel &machine);

    std::string name() const override { return "BUG"; }
    ScheduleResult run(const DependenceGraph &graph) const override;

    /** The assignment BUG's two traversals produce (for tests). */
    std::vector<int> assign(const DependenceGraph &graph) const;

  private:
    const MachineModel &machine_;
};

} // namespace csched

#endif // CSCHED_BASELINE_BUG_HH
