/**
 * @file
 * The Rawcc space-time scheduler baseline (Lee et al., ASPLOS '98):
 * clustering, merging, and placement composed into a full
 * SchedulingAlgorithm, followed by critical-path list scheduling with
 * communication insertion.  This is the "Base" configuration of the
 * paper's Table 2.
 */

#ifndef CSCHED_BASELINE_RAWCC_PARTITIONER_HH
#define CSCHED_BASELINE_RAWCC_PARTITIONER_HH

#include "machine/machine.hh"
#include "sched/algorithm.hh"

namespace csched {

/** Cluster/merge/place partitioner in the style of Rawcc. */
class RawccPartitioner : public SchedulingAlgorithm
{
  public:
    explicit RawccPartitioner(const MachineModel &machine);

    std::string name() const override { return "Rawcc"; }
    ScheduleResult run(const DependenceGraph &graph) const override;

    /** The assignment the three phases produce (exposed for tests). */
    std::vector<int> assign(const DependenceGraph &graph) const;

  private:
    const MachineModel &machine_;
};

} // namespace csched

#endif // CSCHED_BASELINE_RAWCC_PARTITIONER_HH
