/**
 * @file
 * Rawcc phase 2: merging (Lee et al., ASPLOS '98).
 *
 * Reduces the number of virtual clusters produced by the clusterer to
 * at most the machine's cluster count.  Clusters that share a
 * preplacement home are coalesced first (at most one cluster may end
 * up on any home tile); the remainder are merged smallest-first into
 * the compatible cluster with the highest communication affinity,
 * preferring merges that keep the load balanced.
 */

#ifndef CSCHED_BASELINE_RAWCC_MERGER_HH
#define CSCHED_BASELINE_RAWCC_MERGER_HH

#include "baseline/rawcc_clusterer.hh"

namespace csched {

/**
 * Merge @p clustering down to at most @p max_clusters clusters.
 * The result keeps the ClusteringResult invariants (dense ids, at
 * most one home per cluster, at most one cluster per home).
 */
ClusteringResult mergeClusters(const DependenceGraph &graph,
                               const ClusteringResult &clustering,
                               int max_clusters);

} // namespace csched

#endif // CSCHED_BASELINE_RAWCC_MERGER_HH
