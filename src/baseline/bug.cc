#include "baseline/bug.hh"

#include <algorithm>
#include <vector>

#include "sched/list_scheduler.hh"
#include "sched/priorities.hh"
#include "support/logging.hh"

namespace csched {

BugScheduler::BugScheduler(const MachineModel &machine)
    : machine_(machine)
{
}

std::vector<int>
BugScheduler::assign(const DependenceGraph &graph) const
{
    const int n = graph.numInstructions();
    const int num_clusters = machine_.numClusters();

    // ---- Pass 1 (bottom-up): preplacement affinity.  affinity[i][c]
    // counts downstream preplaced instructions homed on c, attenuated
    // by distance, so ties in the greedy pass break towards where the
    // results must eventually live.
    std::vector<std::vector<double>> affinity(
        n, std::vector<double>(num_clusters, 0.0));
    const auto &topo = graph.topoOrder();
    for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
        const InstrId id = *it;
        const int home = graph.instr(id).homeCluster;
        if (home != kNoCluster)
            affinity[id][home] += 1.0;
        for (InstrId succ : graph.succs(id))
            for (int c = 0; c < num_clusters; ++c)
                affinity[id][c] += 0.5 * affinity[succ][c];
    }

    // ---- Pass 2 (top-down): greedy earliest-completion assignment
    // with an idealised timing model (one op per cluster per cycle,
    // operands arrive commLatency() after the producer's estimated
    // finish when remote).
    std::vector<int> assignment(n, -1);
    std::vector<int> finish(n, 0);
    std::vector<int> cluster_free(num_clusters, 0);

    for (InstrId id : topo) {
        const auto &instr = graph.instr(id);
        int best_cluster = -1;
        int best_finish = 0;
        double best_affinity = 0.0;
        for (int c = 0; c < num_clusters; ++c) {
            if (!machine_.canExecute(c, instr.op))
                continue;
            if (instr.preplaced() && c != instr.homeCluster)
                continue;
            int ready = cluster_free[c];
            for (InstrId pred : graph.preds(id)) {
                const int arrival =
                    finish[pred] +
                    machine_.commLatency(assignment[pred], c);
                ready = std::max(ready, arrival);
            }
            int done = ready + graph.latency(id);
            if (isMemory(instr.op))
                done += machine_.memoryPenalty(instr.memBank, c);
            if (best_cluster == -1 || done < best_finish ||
                (done == best_finish &&
                 affinity[id][c] > best_affinity)) {
                best_cluster = c;
                best_finish = done;
                best_affinity = affinity[id][c];
            }
        }
        CSCHED_ASSERT(best_cluster != -1, "no cluster can execute ",
                      opcodeName(instr.op));
        assignment[id] = best_cluster;
        finish[id] = best_finish;
        cluster_free[best_cluster] =
            std::max(cluster_free[best_cluster],
                     best_finish - graph.latency(id) + 1);
    }
    return assignment;
}

ScheduleResult
BugScheduler::run(const DependenceGraph &graph) const
{
    const ListScheduler scheduler(machine_);
    return {scheduler.run(graph, assign(graph),
                          criticalPathPriority(graph)),
            {}};
}

} // namespace csched
