#include "baseline/single_cluster_scheduler.hh"

#include "sched/list_scheduler.hh"
#include "sched/priorities.hh"

namespace csched {

SingleClusterScheduler::SingleClusterScheduler(const MachineModel &machine)
    : machine_(machine)
{
}

ScheduleResult
SingleClusterScheduler::run(const DependenceGraph &graph) const
{
    // All work on one cluster: the first alive one (cluster 0 unless
    // a fault map killed it).
    const std::vector<int> assignment(graph.numInstructions(),
                                      machine_.firstAliveCluster());
    const ListScheduler scheduler(machine_);
    return {scheduler.run(graph, assignment, criticalPathPriority(graph)),
            {}};
}

} // namespace csched
