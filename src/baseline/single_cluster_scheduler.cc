#include "baseline/single_cluster_scheduler.hh"

#include "sched/list_scheduler.hh"
#include "sched/priorities.hh"

namespace csched {

SingleClusterScheduler::SingleClusterScheduler(const MachineModel &machine)
    : machine_(machine)
{
}

ScheduleResult
SingleClusterScheduler::run(const DependenceGraph &graph) const
{
    const std::vector<int> assignment(graph.numInstructions(), 0);
    const ListScheduler scheduler(machine_);
    return {scheduler.run(graph, assignment, criticalPathPriority(graph)),
            {}};
}

} // namespace csched
