/**
 * @file
 * Degenerate scheduler that places everything on cluster 0 with
 * classic critical-path list scheduling.  Used on one-cluster machines
 * to compute the paper's speedup-vs-one-cluster normalisation.
 */

#ifndef CSCHED_BASELINE_SINGLE_CLUSTER_SCHEDULER_HH
#define CSCHED_BASELINE_SINGLE_CLUSTER_SCHEDULER_HH

#include "machine/machine.hh"
#include "sched/algorithm.hh"

namespace csched {

/** All-on-cluster-0 critical-path list scheduler. */
class SingleClusterScheduler : public SchedulingAlgorithm
{
  public:
    /**
     * @pre every preplaced instruction in the graphs this scheduler
     *      will see is homed on cluster 0 (true whenever preplacement
     *      was derived for a one-cluster machine).
     */
    explicit SingleClusterScheduler(const MachineModel &machine);

    std::string name() const override { return "single"; }
    ScheduleResult run(const DependenceGraph &graph) const override;

  private:
    const MachineModel &machine_;
};

} // namespace csched

#endif // CSCHED_BASELINE_SINGLE_CLUSTER_SCHEDULER_HH
