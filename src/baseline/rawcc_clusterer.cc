#include "baseline/rawcc_clusterer.hh"

#include <algorithm>
#include <queue>
#include <tuple>

#include "support/logging.hh"

namespace csched {

int
estimateClusteredMakespan(const DependenceGraph &graph,
                          const std::vector<int> &cluster_of,
                          int comm_cost)
{
    // Greedy list simulation: each virtual cluster is a single serial
    // FU; communication between clusters costs comm_cost cycles.
    const int n = graph.numInstructions();
    int num_clusters = 0;
    for (int c : cluster_of)
        num_clusters = std::max(num_clusters, c + 1);

    std::vector<int> cluster_free(num_clusters, 0);
    std::vector<int> unplaced_preds(n);
    std::vector<int> data_ready(n, 0);
    std::vector<int> finish(n, 0);

    // Ready heap ordered by (data_ready, -slack): earliest first, most
    // critical first among equals.
    using Entry = std::tuple<int, int, InstrId>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;

    for (InstrId id = 0; id < n; ++id) {
        unplaced_preds[id] = static_cast<int>(graph.preds(id).size());
        if (unplaced_preds[id] == 0)
            heap.emplace(0, -graph.latestFinishSlack(id), id);
    }

    int makespan = 0;
    while (!heap.empty()) {
        const auto [ready, neg_slack, id] = heap.top();
        heap.pop();
        const int cluster = cluster_of[id];
        const int start = std::max(ready, cluster_free[cluster]);
        finish[id] = start + graph.latency(id);
        cluster_free[cluster] = finish[id];
        makespan = std::max(makespan, finish[id]);
        for (InstrId succ : graph.succs(id)) {
            const int arrival =
                finish[id] +
                (cluster_of[succ] == cluster ? 0 : comm_cost);
            data_ready[succ] = std::max(data_ready[succ], arrival);
            if (--unplaced_preds[succ] == 0) {
                heap.emplace(data_ready[succ],
                             -graph.latestFinishSlack(succ), succ);
            }
        }
    }
    return makespan;
}

ClusteringResult
rawccCluster(const DependenceGraph &graph, int comm_cost)
{
    const int n = graph.numInstructions();
    std::vector<int> cluster_of(n);
    std::vector<int> home(n, kNoCluster);
    for (InstrId id = 0; id < n; ++id) {
        cluster_of[id] = id;
        home[id] = graph.instr(id).homeCluster;
    }

    // Data edges by decreasing criticality: an edge is critical when
    // it sits on a long latency-weighted path.
    std::vector<const DepEdge *> edges;
    for (const auto &edge : graph.edges())
        if (edge.kind == DepKind::Data)
            edges.push_back(&edge);
    auto edge_weight = [&](const DepEdge *edge) {
        return graph.earliestStart(edge->src) + graph.latency(edge->src) +
               graph.latestFinishSlack(edge->dst);
    };
    std::stable_sort(edges.begin(), edges.end(),
                     [&](const DepEdge *a, const DepEdge *b) {
                         return edge_weight(a) > edge_weight(b);
                     });

    int current = estimateClusteredMakespan(graph, cluster_of, comm_cost);
    for (const DepEdge *edge : edges) {
        const int a = cluster_of[edge->src];
        const int b = cluster_of[edge->dst];
        if (a == b)
            continue;
        if (home[a] != kNoCluster && home[b] != kNoCluster &&
            home[a] != home[b]) {
            continue;  // would mix preplacement homes
        }
        // Tentatively merge b into a.
        std::vector<InstrId> moved;
        for (InstrId id = 0; id < n; ++id) {
            if (cluster_of[id] == b) {
                cluster_of[id] = a;
                moved.push_back(id);
            }
        }
        const int merged =
            estimateClusteredMakespan(graph, cluster_of, comm_cost);
        if (merged <= current) {
            current = merged;
            if (home[a] == kNoCluster)
                home[a] = home[b];
        } else {
            for (InstrId id : moved)
                cluster_of[id] = b;
        }
    }

    // Compact cluster ids.
    ClusteringResult result;
    result.clusterOf.assign(n, -1);
    std::vector<int> dense(n, -1);
    for (InstrId id = 0; id < n; ++id) {
        const int old = cluster_of[id];
        if (dense[old] == -1) {
            dense[old] = result.count++;
            result.home.push_back(home[old]);
        }
        result.clusterOf[id] = dense[old];
    }
    return result;
}

} // namespace csched
