#include "baseline/rawcc_merger.hh"

#include <algorithm>
#include <map>

#include "support/fault_injection.hh"
#include "support/logging.hh"

namespace csched {

namespace {

/** Working view of clusters during merging. */
struct MergeState
{
    std::vector<int> clusterOf;      // instruction -> cluster id
    std::vector<int> home;           // cluster -> home (or kNoCluster)
    std::vector<int> load;           // cluster -> total latency
    std::vector<bool> alive;         // cluster -> still exists
    std::vector<std::map<int, int>> affinity;  // cluster -> {other: vol}

    int
    aliveCount() const
    {
        int count = 0;
        for (bool a : alive)
            count += a ? 1 : 0;
        return count;
    }

    /** Merge cluster @p b into cluster @p a. */
    void
    merge(int a, int b)
    {
        CSCHED_ASSERT(a != b && alive[a] && alive[b], "bad merge");
        CSCHED_ASSERT(home[a] == kNoCluster || home[b] == kNoCluster ||
                          home[a] == home[b],
                      "merging incompatible homes");
        for (auto &cluster : clusterOf)
            if (cluster == b)
                cluster = a;
        if (home[a] == kNoCluster)
            home[a] = home[b];
        load[a] += load[b];
        alive[b] = false;
        for (const auto &[other, vol] : affinity[b]) {
            if (other == a)
                continue;
            affinity[a][other] += vol;
            affinity[other][a] += vol;
            affinity[other].erase(b);
        }
        affinity[a].erase(b);
        affinity[b].clear();
    }
};

} // namespace

ClusteringResult
mergeClusters(const DependenceGraph &graph,
              const ClusteringResult &clustering, int max_clusters)
{
    CSCHED_ASSERT(max_clusters >= 1, "need at least one cluster");
    const int n = graph.numInstructions();

    MergeState state;
    state.clusterOf = clustering.clusterOf;
    state.home = clustering.home;
    state.load.assign(clustering.count, 0);
    state.alive.assign(clustering.count, true);
    state.affinity.resize(clustering.count);
    for (InstrId id = 0; id < n; ++id)
        state.load[state.clusterOf[id]] += graph.latency(id);
    for (const auto &edge : graph.edges()) {
        if (edge.kind != DepKind::Data)
            continue;
        const int a = state.clusterOf[edge.src];
        const int b = state.clusterOf[edge.dst];
        if (a != b) {
            state.affinity[a][b] += 1;
            state.affinity[b][a] += 1;
        }
    }

    // Step 1: coalesce clusters sharing a preplacement home so that at
    // most one cluster targets each home tile.
    std::map<int, int> owner_of_home;
    for (int c = 0; c < clustering.count; ++c) {
        if (!state.alive[c] || state.home[c] == kNoCluster)
            continue;
        auto [it, inserted] = owner_of_home.emplace(state.home[c], c);
        if (!inserted)
            state.merge(it->second, c);
    }

    // Step 2: merge smallest-first until the budget is met.
    while (state.aliveCount() > max_clusters) {
        checkpoint("rawcc.merge");
        int smallest = -1;
        for (int c = 0; c < clustering.count; ++c)
            if (state.alive[c] &&
                (smallest == -1 || state.load[c] < state.load[smallest]))
                smallest = c;

        // Best partner: compatible homes, highest affinity, then
        // lowest resulting load.
        int best = -1;
        auto better = [&](int cand) {
            if (best == -1)
                return true;
            const int aff_cand = state.affinity[smallest].count(cand)
                                     ? state.affinity[smallest].at(cand)
                                     : 0;
            const int aff_best = state.affinity[smallest].count(best)
                                     ? state.affinity[smallest].at(best)
                                     : 0;
            if (aff_cand != aff_best)
                return aff_cand > aff_best;
            return state.load[cand] < state.load[best];
        };
        for (int c = 0; c < clustering.count; ++c) {
            if (c == smallest || !state.alive[c])
                continue;
            if (state.home[smallest] != kNoCluster &&
                state.home[c] != kNoCluster &&
                state.home[smallest] != state.home[c]) {
                continue;
            }
            if (better(c))
                best = c;
        }
        CSCHED_ASSERT(best != -1,
                      "cannot merge below ", state.aliveCount(),
                      " clusters: too many distinct homes");
        state.merge(best, smallest);
    }

    // Compact ids.
    ClusteringResult result;
    result.clusterOf.assign(n, -1);
    std::vector<int> dense(clustering.count, -1);
    for (InstrId id = 0; id < n; ++id) {
        const int old = state.clusterOf[id];
        if (dense[old] == -1) {
            dense[old] = result.count++;
            result.home.push_back(state.home[old]);
        }
        result.clusterOf[id] = dense[old];
    }
    return result;
}

} // namespace csched
