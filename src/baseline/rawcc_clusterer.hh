/**
 * @file
 * Rawcc phase 1: clustering (Lee et al., ASPLOS '98).
 *
 * Groups together instructions that have little parallelism between
 * them so that later phases never pay communication for serial chains.
 * The implementation follows Sarkar-style internalisation: every
 * instruction starts in its own virtual cluster; data edges are
 * visited in order of decreasing criticality, and an edge's two
 * clusters are merged when doing so does not increase the estimated
 * parallel completion time on an idealised machine (one FU per
 * cluster, unbounded clusters, fixed inter-cluster communication
 * cost).  Clusters never mix two different preplacement homes.
 */

#ifndef CSCHED_BASELINE_RAWCC_CLUSTERER_HH
#define CSCHED_BASELINE_RAWCC_CLUSTERER_HH

#include <vector>

#include "ir/graph.hh"

namespace csched {

/** Result of clustering: dense virtual-cluster ids per instruction. */
struct ClusteringResult
{
    /** Virtual cluster id per instruction, dense in [0, count). */
    std::vector<int> clusterOf;
    int count = 0;
    /** Home tile per virtual cluster (kNoCluster when unconstrained). */
    std::vector<int> home;
};

/**
 * Cluster @p graph with inter-cluster communication cost
 * @p comm_cost (use the machine's neighbour latency).
 */
ClusteringResult rawccCluster(const DependenceGraph &graph, int comm_cost);

/**
 * Estimated makespan of @p clustering on the idealised machine: one
 * FU per virtual cluster, unbounded clusters, @p comm_cost cycles for
 * every cross-cluster data edge.  Exposed for tests.
 */
int estimateClusteredMakespan(const DependenceGraph &graph,
                              const std::vector<int> &cluster_of,
                              int comm_cost);

} // namespace csched

#endif // CSCHED_BASELINE_RAWCC_CLUSTERER_HH
