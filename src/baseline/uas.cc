#include "baseline/uas.hh"

#include <algorithm>
#include <limits>

#include "machine/raw_machine.hh"
#include "sched/priorities.hh"
#include "sched/reservation.hh"
#include "support/fault_injection.hh"
#include "support/logging.hh"

namespace csched {

namespace {

constexpr int kInfinity = std::numeric_limits<int>::max() / 4;

/**
 * All mutable state of one UAS run.
 *
 * UAS is strictly cycle-driven: the scheduler fills cycle t completely
 * before moving to t+1, and never revisits earlier cycles.  A copy
 * (or network inject) for a remote operand must therefore be issued in
 * the *current* cycle, and its consumer can issue no earlier than the
 * copy's arrival -- this forward-only behaviour is what the original
 * paper describes, and it is the property that distinguishes UAS from
 * the assignment-first schedulers, which reserve communication
 * retroactively wherever it fits.
 */
struct UasState
{
    UasState(const MachineModel &machine, const DependenceGraph &graph)
        : machine(machine),
          graph(graph),
          raw(machine.commStyle() == CommStyle::Network
                  ? &dynamic_cast<const RawMachine &>(machine)
                  : nullptr),
          fus(machine),
          links(raw ? raw->numLinks() : 0),
          schedule(graph.numInstructions(), machine.numClusters()),
          assignment(graph.numInstructions(), -1),
          committedCluster(graph.numInstructions(), -1),
          availAt(static_cast<size_t>(graph.numInstructions()) *
                      machine.numClusters(),
                  -1),
          load(machine.numClusters(), 0),
          predEdges(graph.numInstructions())
    {
        for (const auto &edge : graph.edges())
            predEdges[edge.dst].emplace_back(
                edge.src, edge.kind == DepKind::Data);
    }

    const MachineModel &machine;
    const DependenceGraph &graph;
    const RawMachine *raw;
    FuReservation fus;
    LinkReservation links;
    Schedule schedule;
    std::vector<int> assignment;
    /** Cluster an unscheduled instruction is moving operands to. */
    std::vector<int> committedCluster;
    std::vector<int> availAt;  // [i * K + c]
    std::vector<int> load;     // instructions per cluster
    /** (pred, isData) pairs per instruction. */
    std::vector<std::vector<std::pair<InstrId, bool>>> predEdges;

    int &
    avail(InstrId i, int c)
    {
        return availAt[static_cast<size_t>(i) * machine.numClusters() + c];
    }

    /** True when every operand of @p id is usable on @p cluster at
     *  @p cycle (and ordering preds have issued earlier). */
    bool
    operandsReady(InstrId id, int cluster, int cycle)
    {
        for (const auto &[pred, is_data] : predEdges[id]) {
            if (!is_data) {
                if (schedule.at(pred).cycle >= cycle)
                    return false;
                continue;
            }
            const int have = avail(pred, cluster);
            if (have == -1 || have > cycle)
                return false;
        }
        return true;
    }

    /**
     * Try to issue, at the current @p cycle, one communication step
     * that moves @p producer's value towards @p cluster.  Returns
     * true when a comm op was issued this cycle.
     */
    bool
    tryIssueComm(InstrId producer, int cluster, int cycle)
    {
        const int from = assignment[producer];
        if (schedule.at(producer).finish > cycle)
            return false;  // value not produced yet
        CommEvent event;
        event.producer = producer;
        event.fromCluster = from;
        event.toCluster = cluster;
        event.start = cycle;
        event.arrive = cycle + machine.commLatency(from, cluster);
        switch (machine.commStyle()) {
          case CommStyle::TransferUnit: {
            const int fu = fus.freeFuFor(from, Opcode::Copy, cycle);
            if (fu == -1)
                return false;
            fus.take(from, fu, cycle);
            event.fu = fu;
            break;
          }
          case CommStyle::ReceiveOp: {
            const int fu = fus.freeFuFor(cluster, Opcode::Recv, cycle);
            if (fu == -1)
                return false;
            fus.take(cluster, fu, cycle);
            event.fu = fu;
            break;
          }
          case CommStyle::Network: {
            const auto route = raw->route(from, cluster);
            for (size_t hop = 0; hop < route.size(); ++hop)
                if (!links.free(route[hop],
                                cycle + static_cast<int>(hop)))
                    return false;
            links.takeRoute(route, cycle);
            for (size_t hop = 0; hop < route.size(); ++hop)
                event.linkSlots.emplace_back(
                    route[hop], cycle + static_cast<int>(hop));
            break;
          }
        }
        schedule.addComm(event);
        avail(producer, cluster) = event.arrive;
        return true;
    }

    /** Issue @p id on @p cluster at @p cycle (operands must be ready). */
    bool
    issue(InstrId id, int cluster, int cycle)
    {
        const auto &instr = graph.instr(id);
        const int fu = fus.freeFuFor(cluster, instr.op, cycle);
        if (fu == -1)
            return false;
        fus.take(cluster, fu, cycle);
        Placement placement;
        placement.cluster = cluster;
        placement.cycle = cycle;
        placement.fu = fu;
        placement.finish =
            cycle + machine.execLatency(cluster, graph.latency(id)) +
            (isMemory(instr.op)
                 ? machine.memoryPenalty(instr.memBank, cluster)
                 : 0);
        schedule.place(id, placement);
        assignment[id] = cluster;
        avail(id, cluster) = placement.finish;
        ++load[cluster];
        return true;
    }
};

} // namespace

UasScheduler::UasScheduler(const MachineModel &machine)
    : machine_(machine)
{
}

ScheduleResult
UasScheduler::run(const DependenceGraph &graph) const
{
    const int n = graph.numInstructions();
    const int num_clusters = machine_.numClusters();
    UasState state(machine_, graph);
    const auto priority = criticalPathPriority(graph);

    std::vector<int> unplaced_preds(n, 0);
    std::vector<InstrId> ready;
    for (InstrId id = 0; id < n; ++id) {
        unplaced_preds[id] = static_cast<int>(graph.preds(id).size());
        if (unplaced_preds[id] == 0)
            ready.push_back(id);
    }

    int remaining = n;
    int cycle = 0;
    while (remaining > 0) {
        checkpoint("uas.cycle");
        std::vector<InstrId> candidates = ready;
        std::stable_sort(candidates.begin(), candidates.end(),
                         [&](InstrId a, InstrId b) {
                             if (priority[a] != priority[b])
                                 return priority[a] > priority[b];
                             return a < b;
                         });

        for (InstrId id : candidates) {
            const auto &instr = graph.instr(id);

            // Cluster priority (CPSC with the paper's preplacement
            // modification): preplaced instructions only consider
            // their home; free instructions order clusters by memory
            // penalty, then missing operands, then load.
            std::vector<int> order;
            if (instr.preplaced()) {
                order.push_back(instr.homeCluster);
            } else if (state.committedCluster[id] != -1) {
                // Copies are already in flight towards a cluster;
                // changing horses would strand them.
                order.push_back(state.committedCluster[id]);
            } else {
                for (int c = 0; c < num_clusters; ++c)
                    if (machine_.canExecute(c, instr.op))
                        order.push_back(c);
                auto key = [&](int c) {
                    const int penalty =
                        isMemory(instr.op)
                            ? machine_.memoryPenalty(instr.memBank, c)
                            : 0;
                    int missing = 0;
                    for (const auto &[pred, is_data] :
                         state.predEdges[id]) {
                        if (is_data && state.avail(pred, c) == -1)
                            ++missing;
                    }
                    return std::make_tuple(penalty, missing,
                                           state.load[c], c);
                };
                std::stable_sort(order.begin(), order.end(),
                                 [&](int a, int b) {
                                     return key(a) < key(b);
                                 });
            }

            // First choice: a cluster where the instruction can issue
            // right now.
            bool issued = false;
            for (int cluster : order) {
                if (state.operandsReady(id, cluster, cycle) &&
                    state.issue(id, cluster, cycle)) {
                    issued = true;
                    break;
                }
            }
            if (issued) {
                --remaining;
                ready.erase(std::find(ready.begin(), ready.end(), id));
                for (InstrId succ : graph.succs(id))
                    if (--unplaced_preds[succ] == 0)
                        ready.push_back(succ);
                continue;
            }

            // Otherwise commit to the preferred cluster and issue as
            // many of the missing copies as this cycle allows.
            const int target = order.front();
            for (const auto &[pred, is_data] : state.predEdges[id]) {
                if (!is_data)
                    continue;
                if (state.avail(pred, target) != -1)
                    continue;  // already there or already in flight
                if (state.tryIssueComm(pred, target, cycle))
                    state.committedCluster[id] = target;
            }
        }
        ++cycle;
        CSCHED_ASSERT(cycle < kInfinity, "UAS failed to make progress");
    }

    return {std::move(state.schedule), {}};
}

} // namespace csched
