/**
 * @file
 * Graceful shutdown for grid runs: SIGINT/SIGTERM handlers that arm
 * the cancellation tree (support/cancel.hh) instead of killing the
 * process mid-write.
 *
 * On the first signal the handler records the signal number and
 * requests global cancellation; every in-flight job aborts at its next
 * cooperative checkpoint with an `interrupted` outcome, queued jobs
 * are skipped, completed jobs keep their journal records, and the
 * driver writes a partial report marked `"interrupted": true` before
 * exiting with the conventional 128+signum code (130 for SIGINT, 143
 * for SIGTERM).  A second signal falls through to the default
 * disposition, so a stuck run can still be killed the hard way.
 *
 * Interrupts can also be injected deterministically through the
 * `runner.interrupt` fault point (see grid_runner.cc), which takes the
 * same requestInterrupt() path with a synthetic SIGINT -- that is what
 * keeps kill/resume tests reproducible.
 */

#ifndef CSCHED_RUNNER_SHUTDOWN_HH
#define CSCHED_RUNNER_SHUTDOWN_HH

namespace csched {

/**
 * Install the SIGINT/SIGTERM handlers described above.  Idempotent;
 * call once from a driver's main() before running a grid.
 */
void installGridSignalHandlers();

/**
 * Arm the cancellation tree as if @p signum had been delivered.  This
 * is the handler's body and the deterministic entry point used by the
 * `runner.interrupt` fault point and by tests.  Async-signal-safe.
 */
void requestInterrupt(int signum);

/** Signal that interrupted the run; 0 when none arrived. */
int interruptSignal();

/** True once requestInterrupt() ran (signal or injected). */
bool interruptRequested();

/**
 * Forget a previous interrupt and disarm the cancellation root, so a
 * resumed run (or the next test) starts clean.  Not async-signal-safe.
 */
void clearInterrupt();

/** Conventional exit code for an interrupted run: 128 + signum. */
int interruptExitCode(int signum);

} // namespace csched

#endif // CSCHED_RUNNER_SHUTDOWN_HH
