/**
 * @file
 * Graceful shutdown for grid runs and the serve daemon: signal
 * handlers that arm the cancellation tree (support/cancel.hh) instead
 * of killing the process mid-write.
 *
 * Three drain signals are handled -- SIGINT, SIGTERM, and SIGHUP (a
 * terminal hangup is a drain trigger like any other; daemons double
 * down on that convention).  On the *first* of them the handler
 * records the signal number and requests a drain; a *second* drain
 * signal -- same or different -- escalates to the default disposition
 * and re-raises, so a stuck drain dies immediately instead of
 * re-arming.  The recorded signal backs the conventional 128+signum
 * exit code (130 SIGINT, 143 SIGTERM, 129 SIGHUP).
 *
 * Two drain styles, chosen by the installer:
 *
 *  - Grid style (installGridSignalHandlers): the first signal also
 *    arms global cancellation, so every in-flight job aborts at its
 *    next cooperative checkpoint with an `interrupted` outcome,
 *    queued jobs are skipped, and the driver writes a partial report
 *    before exiting 128+signum.
 *
 *  - Serve style (installServeSignalHandlers): the first signal only
 *    *records* the drain request -- drainRequested() turns true while
 *    interruptRequested() stays false -- so the daemon can stop
 *    admissions and let in-flight requests run to completion up to
 *    its drain deadline, then call escalateInterrupt() to cancel the
 *    stragglers cooperatively (see serve/server.hh).
 *
 * Interrupts can also be injected deterministically through the
 * `runner.interrupt` fault point (see grid_runner.cc), which takes the
 * same requestInterrupt() path with a synthetic SIGINT -- that is what
 * keeps kill/resume tests reproducible.
 */

#ifndef CSCHED_RUNNER_SHUTDOWN_HH
#define CSCHED_RUNNER_SHUTDOWN_HH

namespace csched {

/**
 * Install the SIGINT/SIGTERM/SIGHUP handlers in grid style (first
 * signal cancels in-flight work).  Idempotent; call once from a
 * driver's main() before running a grid.
 */
void installGridSignalHandlers();

/**
 * Install the same handlers in serve style: the first signal records
 * the drain request without arming global cancellation, leaving
 * escalation to the daemon's drain deadline (escalateInterrupt()).
 */
void installServeSignalHandlers();

/**
 * Arm the drain as if @p signum had been delivered: record the signal
 * and, in grid style, arm global cancellation.  This is the handler's
 * body and the deterministic entry point used by the
 * `runner.interrupt` fault point and by tests.  Idempotent: a second
 * call keeps the first signal number.  Async-signal-safe.
 */
void requestInterrupt(int signum);

/**
 * Escalate a serve-style drain: arm global cancellation now, so
 * in-flight work that outlived the drain deadline aborts at its next
 * cooperative checkpoint.  No-op when already escalated.
 */
void escalateInterrupt();

/** Signal that interrupted the run; 0 when none arrived. */
int interruptSignal();

/**
 * True once in-flight work should *abort*: global cancellation is
 * armed (grid-style first signal, or a serve-style escalation).
 */
bool interruptRequested();

/**
 * True once a drain was requested at all -- even a serve-style soft
 * drain that has not escalated yet.  The serve accept/admission loops
 * poll this; grid code should keep polling interruptRequested().
 */
bool drainRequested();

/**
 * Forget a previous interrupt and disarm the cancellation root, so a
 * resumed run (or the next test) starts clean.  Not async-signal-safe.
 */
void clearInterrupt();

/** Conventional exit code for an interrupted run: 128 + signum. */
int interruptExitCode(int signum);

} // namespace csched

#endif // CSCHED_RUNNER_SHUTDOWN_HH
