/**
 * @file
 * The durable half of the grid runner: a per-run append-only JSONL
 * journal that records every job's terminal outcome the moment it
 * completes, so a killed run (crash, OOM, SIGINT/SIGTERM) can be
 * resumed without repeating finished work.
 *
 * File format (one JSON document per line):
 *
 *   {"journal": "csched-journal-v1", "grid": "<fingerprint>"}
 *   {"key": "fir/vliw4/uas", "result": { ...full JobResult... }}
 *   ...
 *
 * The header pins the schema version and the grid fingerprint (axes +
 * policy); resuming against a journal written for a different grid is
 * an error, not a silent mismatch.  Records are keyed by the job's
 * deterministic identity (jobKey) and carry every deterministic field
 * of the JobResult plus its wall-clock observability, so a replayed
 * slot serializes byte-identically to the original run.  Readers
 * ignore unknown record fields; adding fields bumps nothing, changing
 * meaning bumps the version string.
 *
 * Crash tolerance: each record is staged as one complete line and
 * appended with a single write() followed by fsync().  A crash mid-
 * append leaves at most one truncated/garbled trailing line, which the
 * loader ignores (that job simply re-runs on resume).  Only terminal
 * outcomes (ok / failed / timeout) are journaled -- an `interrupted`
 * job never is, because its outcome says nothing about what a
 * completed run would have produced.
 */

#ifndef CSCHED_RUNNER_JOURNAL_HH
#define CSCHED_RUNNER_JOURNAL_HH

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "runner/job.hh"

namespace csched {

struct GridSpec;

/** Journal schema identifier written into every header. */
inline const char *kJournalSchema = "csched-journal-v1";

/**
 * The grid identity a journal is valid for: axes, speedup flag, and
 * the outcome-affecting policy knobs (deadline, retries).  Resume
 * requires an exact match.
 */
std::string gridFingerprint(const GridSpec &grid);

/** What loading an existing journal yields. */
struct JournalReplay
{
    /** Terminal results keyed by jobKey(), ready to replay. */
    std::map<std::string, JobResult> results;
    /** Unparseable/incomplete lines skipped (crash artifacts). */
    int ignoredLines = 0;
    /** True when the header itself was missing or garbled. */
    bool rewriteHeader = false;
};

/** Append-only journal writer; thread-safe, one instance per run. */
class JobJournal
{
  public:
    /**
     * Open @p path for appending under @p fingerprint.  With
     * @p fresh, any existing file is truncated and a new header is
     * written; otherwise (resume) records are appended after the
     * existing contents, rewriting the header only when the loader
     * found none.  Fails with a Status on I/O errors.
     */
    static StatusOr<std::unique_ptr<JobJournal>>
    open(const std::string &path, const std::string &fingerprint,
         bool fresh, bool rewrite_header = false);

    ~JobJournal();

    JobJournal(const JobJournal &) = delete;
    JobJournal &operator=(const JobJournal &) = delete;

    /**
     * Durably append @p result under jobKey(@p spec): serialize to one
     * line, single write(), fsync().  Hits the `journal.append` fault
     * point first; an injected fault simulates a crash mid-append by
     * writing a deliberately truncated record and reporting failure.
     * Thread-safe.
     */
    Status append(const JobSpec &spec, const JobResult &result);

    const std::string &path() const { return path_; }

  private:
    JobJournal(int fd, std::string path);

    Status writeLine(const std::string &line);

    int fd_;
    std::string path_;
    std::mutex mutex_;
    /**
     * Set when an append may have left a partial line (failed or
     * injected-crash write); the next append starts with a newline to
     * re-sync to a line boundary, so one bad append garbles at most
     * one record.
     */
    bool resync_ = false;
};

/**
 * Load the journal at @p path for a resume of the grid identified by
 * @p fingerprint.  A missing file is an empty replay (nothing done
 * yet), a truncated/garbled trailing record is skipped, but a header
 * naming a *different* grid is an InvalidSpec error: resuming someone
 * else's journal would splice unrelated results into the report.
 */
StatusOr<JournalReplay> loadJournal(const std::string &path,
                                    const std::string &fingerprint);

/** Serialize one journal record line (exposed for tests). */
std::string journalRecordLine(const JobSpec &spec,
                              const JobResult &result);

} // namespace csched

#endif // CSCHED_RUNNER_JOURNAL_HH
