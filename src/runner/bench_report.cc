#include "runner/bench_report.hh"

#include <map>
#include <sstream>

#include "support/json.hh"
#include "support/str.hh"
#include "support/table.hh"

namespace csched {

std::string
BenchCell::key() const
{
    return workload + "/" + machine + "/" +
           (kernel.empty() ? algorithm : kernel);
}

std::string
benchReportToJson(const BenchReport &report)
{
    std::ostringstream out;
    {
        JsonWriter w(out);
        w.beginObject();
        w.key("schema").value(kBenchReportSchema);
        w.key("kind").value(report.kind);
        w.key("meta").beginObject();
        w.key("commit").value(report.meta.commit);
        w.key("buildType").value(report.meta.buildType);
        w.key("compiler").value(report.meta.compiler);
        w.key("flags").value(report.meta.flags);
        w.key("host").value(report.meta.host);
        w.key("repeats").value(report.meta.repeats);
        w.endObject();
        w.key("cells").beginArray();
        for (const auto &cell : report.cells) {
            w.beginObject();
            w.key("workload").value(cell.workload);
            w.key("machine").value(cell.machine);
            if (!cell.kernel.empty())
                w.key("kernel").value(cell.kernel);
            if (!cell.algorithm.empty())
                w.key("algorithm").value(cell.algorithm);
            w.key("medianSeconds").value(cell.medianSeconds);
            if (cell.minSeconds >= 0.0)
                w.key("minSeconds").value(cell.minSeconds);
            w.key("reps").value(cell.reps);
            if (cell.instructions > 0)
                w.key("instructions").value(cell.instructions);
            if (cell.makespan > 0)
                w.key("makespan").value(cell.makespan);
            if (cell.preRewriteSeconds >= 0.0)
                w.key("preRewriteSeconds")
                    .value(cell.preRewriteSeconds);
            w.endObject();
        }
        w.endArray();
        w.endObject();
    }
    out << "\n";
    return out.str();
}

namespace {

bool
parseCell(const JsonValue &value, BenchCell *cell, std::string *error)
{
    const JsonValue *workload = value.find("workload");
    const JsonValue *machine = value.find("machine");
    const JsonValue *median = value.find("medianSeconds");
    if (workload == nullptr || machine == nullptr || median == nullptr) {
        if (error != nullptr)
            *error = "cell missing workload/machine/medianSeconds";
        return false;
    }
    cell->workload = workload->string;
    cell->machine = machine->string;
    cell->medianSeconds = median->asDouble();
    if (const JsonValue *kernel = value.find("kernel"))
        cell->kernel = kernel->string;
    if (const JsonValue *algorithm = value.find("algorithm"))
        cell->algorithm = algorithm->string;
    if (const JsonValue *min = value.find("minSeconds"))
        cell->minSeconds = min->asDouble();
    if (const JsonValue *reps = value.find("reps"))
        cell->reps = reps->asInt();
    if (const JsonValue *instrs = value.find("instructions"))
        cell->instructions = instrs->asInt();
    if (const JsonValue *makespan = value.find("makespan"))
        cell->makespan = makespan->asInt();
    if (const JsonValue *pre = value.find("preRewriteSeconds"))
        cell->preRewriteSeconds = pre->asDouble();
    return true;
}

} // namespace

std::optional<BenchReport>
parseBenchReport(const std::string &text, std::string *error)
{
    const auto doc = parseJson(text, error);
    if (!doc.has_value())
        return std::nullopt;
    const JsonValue *schema = doc->find("schema");
    if (schema == nullptr || schema->string != kBenchReportSchema) {
        if (error != nullptr)
            *error = "not a " + std::string(kBenchReportSchema) +
                     " document";
        return std::nullopt;
    }
    BenchReport report;
    if (const JsonValue *kind = doc->find("kind"))
        report.kind = kind->string;
    if (const JsonValue *meta = doc->find("meta")) {
        if (const JsonValue *v = meta->find("commit"))
            report.meta.commit = v->string;
        if (const JsonValue *v = meta->find("buildType"))
            report.meta.buildType = v->string;
        if (const JsonValue *v = meta->find("compiler"))
            report.meta.compiler = v->string;
        if (const JsonValue *v = meta->find("flags"))
            report.meta.flags = v->string;
        if (const JsonValue *v = meta->find("host"))
            report.meta.host = v->string;
        if (const JsonValue *v = meta->find("repeats"))
            report.meta.repeats = v->asInt();
    }
    const JsonValue *cells = doc->find("cells");
    if (cells == nullptr || cells->kind != JsonValue::Kind::Array) {
        if (error != nullptr)
            *error = "missing cells array";
        return std::nullopt;
    }
    for (const auto &entry : cells->array) {
        BenchCell cell;
        if (!parseCell(entry, &cell, error))
            return std::nullopt;
        report.cells.push_back(cell);
    }
    return report;
}

bool
compareBenchReports(const BenchReport &baseline,
                    const BenchReport &current,
                    const BenchCompareOptions &options, std::ostream &out)
{
    std::map<std::string, const BenchCell *> base_by_key;
    for (const auto &cell : baseline.cells)
        base_by_key[cell.key()] = &cell;

    TablePrinter table({"cell", "baseline-ms", "current-ms", "delta",
                        "verdict"});
    bool ok = true;
    std::map<std::string, bool> joined;
    for (const auto &cell : current.cells) {
        const auto it = base_by_key.find(cell.key());
        if (it == base_by_key.end()) {
            table.addRow({cell.key(), "-",
                          formatDouble(cell.medianSeconds * 1e3, 3),
                          "-", "new"});
            continue;
        }
        joined[cell.key()] = true;
        const BenchCell &base = *it->second;
        // Gate on best-of-N when both sides carry it: the minimum is
        // far less sensitive to ambient machine load than the median,
        // so the gate flags engine regressions, not noisy neighbours.
        const bool use_min =
            base.minSeconds >= 0.0 && cell.minSeconds >= 0.0;
        const double base_s =
            use_min ? base.minSeconds : base.medianSeconds;
        const double cur_s =
            use_min ? cell.minSeconds : cell.medianSeconds;
        const double delta =
            base_s > 0.0 ? (cur_s - base_s) / base_s : 0.0;
        std::string verdict = "ok";
        if (base_s < options.minBaselineSeconds) {
            verdict = "noise";
        } else if (delta > options.slowdownThreshold) {
            verdict = "REGRESSED";
            ok = false;
        } else if (delta < -options.slowdownThreshold) {
            verdict = "faster";
        }
        table.addRow({cell.key(), formatDouble(base_s * 1e3, 3),
                      formatDouble(cur_s * 1e3, 3),
                      formatDouble(delta * 100.0, 1) + "%", verdict});
    }
    for (const auto &cell : baseline.cells)
        if (joined.find(cell.key()) == joined.end())
            table.addRow({cell.key(),
                          formatDouble(cell.medianSeconds * 1e3, 3),
                          "-", "-", "missing"});
    table.print(out);
    return ok;
}

} // namespace csched
