#include "runner/worker.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <sstream>
#include <thread>

#include <fcntl.h>
#include <poll.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#ifdef __linux__
#include <sys/prctl.h>
#endif

#include "eval/experiment.hh"
#include "runner/shutdown.hh"
#include "runner/json_report.hh"
#include "support/cancel.hh"
#include "support/fault_injection.hh"
#include "support/json.hh"
#include "support/logging.hh"
#include "support/subprocess.hh"

namespace csched {

namespace {

/** Fixed spellings for the signals workers die by (deterministic
 *  diagnostics must not depend on strsignal's locale). */
const char *
signalName(int signum)
{
    switch (signum) {
      case SIGSEGV: return "SIGSEGV";
      case SIGKILL: return "SIGKILL";
      case SIGTERM: return "SIGTERM";
      case SIGINT:  return "SIGINT";
      case SIGABRT: return "SIGABRT";
      case SIGBUS:  return "SIGBUS";
      case SIGFPE:  return "SIGFPE";
      case SIGILL:  return "SIGILL";
      case SIGXCPU: return "SIGXCPU";
      case SIGPIPE: return "SIGPIPE";
      default:      return nullptr;
    }
}

std::string
describeSignal(int signum)
{
    const char *name = signalName(signum);
    return name != nullptr ? std::string(name)
                           : "signal " + std::to_string(signum);
}

// ---------------------------------------------------------------------
// Child side.
// ---------------------------------------------------------------------

/**
 * The "oom" death directive: allocate-and-touch until RLIMIT_AS makes
 * malloc fail (the contained analogue of a real memory runaway), then
 * die the way the kernel OOM killer kills -- by SIGKILL.  Without a
 * limit the loop caps itself at 1 GiB so the directive still produces
 * a deterministic death instead of taking the machine down.
 */
[[noreturn]] void
dieOfMemory()
{
    constexpr size_t kBlock = 16u << 20;
    constexpr size_t kCap = 1u << 30;
    size_t total = 0;
    while (total < kCap) {
        char *block = static_cast<char *>(std::malloc(kBlock));
        if (block == nullptr)
            break;
        // One touch per block keeps the allocator honest; RLIMIT_AS
        // accounts the virtual reservation either way, and touching
        // every page would only burn wall-clock (slowly enough under
        // a sanitizer to lose the race with the parent watchdog).
        block[0] = 1;
        total += kBlock;   // leaked on purpose; this process is dying
    }
    ::raise(SIGKILL);
    ::_exit(121);  // unreachable; SIGKILL cannot be handled
}

/** Rebuild the Status shipped in baseline{Error,Message} fields. */
Status
statusFromWire(const std::string &code_name, const std::string &message)
{
    if (code_name == "ok")
        return Status();
    const auto code = parseErrorCodeName(code_name);
    return Status::error(code.value_or(ErrorCode::Internal), message);
}

std::string
encodeWorkerReply(const JobResult &result)
{
    std::ostringstream out;
    {
        JsonWriter w(out);
        w.beginObject();
        writeJobResultFields(w, result);
        w.endObject();
    }
    return compactJson(out.str());
}

/** Decode and run one dispatched job; never throws. */
JobResult
runWorkerJob(const JsonValue &msg)
{
    auto frame = decodeWorkerJobFields(msg);
    if (!frame.ok()) {
        JobResult bad;
        bad.outcome = JobOutcome::Failed;
        bad.error = ErrorCode::Internal;
        if (const JsonValue *workload = msg.find("workload"))
            bad.workload = workload->string;
        if (const JsonValue *machine = msg.find("machine"))
            bad.machine = machine->string;
        if (const JsonValue *algorithm = msg.find("algorithm"))
            bad.algorithm = algorithm->string;
        bad.error = frame.status().code();
        bad.diagnostic = frame.status().message();
        return bad;
    }
    const BaselineMemo memo = frame->baselineMemo();
    return runJob(frame->spec, frame->policy(),
                  memo.empty() ? nullptr : &memo);
}

/**
 * The worker process body: a read-job/run/reply loop that only exits
 * on EOF (pool teardown) or an unusable channel.  Entered right after
 * fork(); never returns to the caller's stack.
 */
[[noreturn]] void
workerChildMain(int in_fd, int out_fd, int mem_limit_mb,
                int cpu_limit_sec)
{
    // A fresh shutdown slate: the child reacts to its *own* signals
    // (the parent forwards SIGTERM during a drain) by interrupting
    // the current job and replying `interrupted`, exactly like an
    // in-process job reacting to a shutdown request.
    clearInterrupt();
    resetGlobalCancel();
    installGridSignalHandlers();
    applyChildResourceLimits(mem_limit_mb, cpu_limit_sec);
#ifdef __linux__
    // Workers inherit each other's pipe ends (fork, no exec), so a
    // parent crash does not reliably EOF every child; die with the
    // parent instead of lingering as an orphan.
    ::prctl(PR_SET_PDEATHSIG, SIGKILL);
#endif

    for (;;) {
        const FrameResult frame = readFrame(in_fd);
        if (frame.kind == FrameResult::Kind::Eof)
            ::_exit(0);
        if (!frame.ok())
            ::_exit(110);  // unusable channel; parent sees a death
        const auto msg = parseJson(frame.payload);
        if (!msg.has_value() || msg->kind != JsonValue::Kind::Object)
            ::_exit(111);

        // Death directives: the parent-side worker.* fault points
        // decided this dispatch must demonstrate containment.
        if (const JsonValue *die = msg->find("die")) {
            if (die->string == "crash") {
                // A sanitizer runtime intercepts SIGSEGV and would
                // turn the death into an abort/exit; restore the
                // default disposition so the worker dies by the real
                // signal under every build flavour.
                std::signal(SIGSEGV, SIG_DFL);
                ::raise(SIGSEGV);
                ::_exit(112);  // only if SIGSEGV was blocked somehow
            }
            if (die->string == "hang")
                for (;;)
                    ::pause();
            if (die->string == "oom")
                dieOfMemory();
        }

        const JobResult result = runWorkerJob(*msg);
        if (!writeFrame(out_fd, encodeWorkerReply(result)).ok())
            ::_exit(113);
    }
}

} // namespace

// ---------------------------------------------------------------------
// Parent side.
// ---------------------------------------------------------------------

namespace {

/** How one dispatch (send + await reply) ended. */
struct Dispatch
{
    enum class Kind {
        Reply,     ///< a complete reply frame arrived
        Died,      ///< the worker died (or garbled the channel)
        Watchdog,  ///< no reply within the budget; worker killed
    };

    Kind kind = Kind::Died;
    FrameResult frame;   ///< Reply payload, or the channel failure
    int waitStatus = 0;  ///< raw waitpid() status for Died/Watchdog
    int budgetMs = 0;    ///< the watchdog budget that expired
};

} // namespace

/** One forked worker process and the parent's ends of its channel. */
class Worker
{
  public:
    ~Worker()
    {
        killAndReap();
        if (toChild_ >= 0)
            ::close(toChild_);
        if (fromChild_ >= 0)
            ::close(fromChild_);
        if (stderrFd_ >= 0)
            ::close(stderrFd_);
    }

    Worker(const Worker &) = delete;
    Worker &operator=(const Worker &) = delete;

    static std::unique_ptr<Worker> spawn(int mem_limit_mb,
                                         int cpu_limit_sec);

    Status send(const std::string &payload)
    {
        return writeFrame(toChild_, payload);
    }

    Dispatch await(int budget_ms);

    bool dead() const { return reaped_; }
    int waitStatus() const { return waitStatus_; }

    /** Current size of the worker's stderr capture file. */
    long stderrSize() const
    {
        struct stat st;
        if (stderrFd_ < 0 || ::fstat(stderrFd_, &st) != 0)
            return 0;
        return static_cast<long>(st.st_size);
    }

    /** Last stderr lines the worker wrote after @p offset. */
    std::string stderrTailSince(long offset) const
    {
        const long size = stderrSize();
        if (stderrFd_ < 0 || size <= offset)
            return "";
        // Only the tail matters for a diagnostic; cap the read.
        constexpr long kTailBytes = 16 << 10;
        const long begin = std::max(offset, size - kTailBytes);
        std::string text(static_cast<size_t>(size - begin), '\0');
        const ssize_t n =
            ::pread(stderrFd_, text.data(), text.size(),
                    static_cast<off_t>(begin));
        if (n <= 0)
            return "";
        text.resize(static_cast<size_t>(n));
        return lastLines(text, 5);
    }

    /** SIGKILL + reap, once; safe to call on an already-dead worker. */
    int killAndReap()
    {
        if (reaped_)
            return waitStatus_;
        ::kill(pid_, SIGKILL);
        int status = 0;
        while (::waitpid(pid_, &status, 0) < 0 && errno == EINTR) {
        }
        reaped_ = true;
        waitStatus_ = status;
        return status;
    }

  private:
    Worker(pid_t pid, int to_child, int from_child, int stderr_fd)
        : pid_(pid), toChild_(to_child), fromChild_(from_child),
          stderrFd_(stderr_fd)
    {
    }

    /** Reap without killing; true when the child has exited. */
    bool reapIfDead()
    {
        if (reaped_)
            return true;
        int status = 0;
        const pid_t got = ::waitpid(pid_, &status, WNOHANG);
        if (got != pid_)
            return false;
        reaped_ = true;
        waitStatus_ = status;
        return true;
    }

    pid_t pid_;
    int toChild_;
    int fromChild_;
    int stderrFd_;
    bool reaped_ = false;
    int waitStatus_ = 0;
};

std::unique_ptr<Worker>
Worker::spawn(int mem_limit_mb, int cpu_limit_sec)
{
    int down[2];  // parent -> child (job frames)
    int up[2];    // child -> parent (reply frames)
    if (::pipe(down) != 0)
        return nullptr;
    if (::pipe(up) != 0) {
        ::close(down[0]);
        ::close(down[1]);
        return nullptr;
    }

    // The child's stderr goes to an unlinked temp file the parent can
    // pread() from, so a death diagnostic can carry the worker's last
    // words.  O_APPEND keeps child writes at the end regardless of the
    // parent's reads.  Failure to create it only costs the tail.
    char path[] = "/tmp/csched-worker-stderr-XXXXXX";
    const int stderr_fd = ::mkstemp(path);
    if (stderr_fd >= 0) {
        ::unlink(path);
        ::fcntl(stderr_fd, F_SETFL, O_APPEND);
    }

    const pid_t pid = ::fork();
    if (pid < 0) {
        ::close(down[0]);
        ::close(down[1]);
        ::close(up[0]);
        ::close(up[1]);
        if (stderr_fd >= 0)
            ::close(stderr_fd);
        return nullptr;
    }
    if (pid == 0) {
        ::close(down[1]);
        ::close(up[0]);
        if (stderr_fd >= 0) {
            ::dup2(stderr_fd, 2);
            ::close(stderr_fd);
        }
        workerChildMain(down[0], up[1], mem_limit_mb, cpu_limit_sec);
    }
    ::close(down[0]);
    ::close(up[1]);
    return std::unique_ptr<Worker>(
        new Worker(pid, down[1], up[0], stderr_fd));
}

Dispatch
Worker::await(int budget_ms)
{
    using Clock = std::chrono::steady_clock;
    const auto start = Clock::now();
    std::optional<Clock::time_point> deadline;
    if (budget_ms > 0)
        deadline = start + std::chrono::milliseconds(budget_ms);
    // Once a drain begins the worker gets SIGTERM (mirroring what the
    // terminal would deliver) and a short grace budget to reply
    // `interrupted`; a worker that cannot (it is hung, or mid-crash)
    // is killed, and the caller maps that death to Interrupted.
    std::optional<Clock::time_point> drainDeadline;
    bool term_forwarded = false;

    // A complete reply frame arrives in one child write; the slices
    // here only bound the *wait for its first byte*, so the watchdog
    // and drain checks run a few times per second without ever
    // splitting a frame across reads.
    constexpr int kSliceMs = 50;
    // Generous bound for the rest of a frame whose first byte arrived
    // (the child could still die mid-write).
    constexpr int kFrameCompletionMs = 10'000;

    for (;;) {
        if (interruptRequested() && !term_forwarded) {
            ::kill(pid_, SIGTERM);
            term_forwarded = true;
            drainDeadline =
                Clock::now() + std::chrono::milliseconds(2000);
        }

        std::optional<Clock::time_point> effective = deadline;
        if (drainDeadline.has_value() &&
            (!effective.has_value() || *drainDeadline < *effective))
            effective = drainDeadline;

        const auto now = Clock::now();
        if (effective.has_value() && now >= *effective) {
            Dispatch dispatch;
            dispatch.kind = Dispatch::Kind::Watchdog;
            dispatch.budgetMs = budget_ms;
            dispatch.waitStatus = killAndReap();
            return dispatch;
        }

        int slice = kSliceMs;
        if (effective.has_value()) {
            const auto left =
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    *effective - now)
                    .count();
            slice = static_cast<int>(
                std::max<long long>(1, std::min<long long>(slice, left)));
        }

        struct pollfd probe = {fromChild_, POLLIN, 0};
        const int rc = ::poll(&probe, 1, slice);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            Dispatch dispatch;
            dispatch.kind = Dispatch::Kind::Died;
            dispatch.frame.kind = FrameResult::Kind::Malformed;
            dispatch.frame.error =
                std::string("poll: ") + std::strerror(errno);
            dispatch.waitStatus = killAndReap();
            return dispatch;
        }
        if (rc > 0 && (probe.revents & (POLLIN | POLLHUP | POLLERR))) {
            const FrameResult frame =
                readFrame(fromChild_, kFrameCompletionMs);
            Dispatch dispatch;
            dispatch.frame = frame;
            if (frame.ok()) {
                dispatch.kind = Dispatch::Kind::Reply;
                return dispatch;
            }
            dispatch.kind = Dispatch::Kind::Died;
            dispatch.waitStatus = killAndReap();
            return dispatch;
        }

        // Quiet pipe: if the worker is dead we are done waiting -- but
        // a reply may have raced in between the poll and the reap, so
        // check the pipe once more before concluding "no reply".
        if (reapIfDead()) {
            struct pollfd again = {fromChild_, POLLIN, 0};
            if (::poll(&again, 1, 0) > 0 &&
                (again.revents & (POLLIN | POLLHUP | POLLERR))) {
                const FrameResult frame =
                    readFrame(fromChild_, kFrameCompletionMs);
                Dispatch dispatch;
                dispatch.frame = frame;
                dispatch.waitStatus = waitStatus_;
                dispatch.kind = frame.ok() ? Dispatch::Kind::Reply
                                           : Dispatch::Kind::Died;
                return dispatch;
            }
            Dispatch dispatch;
            dispatch.kind = Dispatch::Kind::Died;
            dispatch.frame.kind = FrameResult::Kind::Eof;
            dispatch.waitStatus = waitStatus_;
            return dispatch;
        }
    }
}

// ---------------------------------------------------------------------
// WorkerPool.
// ---------------------------------------------------------------------

WorkerPool::WorkerPool(int size, int mem_limit_mb, int cpu_limit_sec)
    : memLimitMb_(mem_limit_mb), cpuLimitSec_(cpu_limit_sec),
      size_(std::max(1, size))
{
    // A worker that dies mid-read leaves the parent writing into a
    // closed pipe; that must be an EPIPE Status, not a fatal SIGPIPE.
    std::signal(SIGPIPE, SIG_IGN);
    // Mid-run respawns fork from pool threads; keep the logging mutex
    // consistent across those forks.
    installLogForkGuard();
    for (int k = 0; k < size_; ++k) {
        auto worker = Worker::spawn(memLimitMb_, cpuLimitSec_);
        if (worker == nullptr) {
            CSCHED_WARN("worker pre-fork failed: ",
                        std::strerror(errno));
            break;
        }
        idle_.push_back(std::move(worker));
    }
}

WorkerPool::~WorkerPool() = default;

std::unique_ptr<Worker>
WorkerPool::acquire()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!idle_.empty()) {
            auto worker = std::move(idle_.back());
            idle_.pop_back();
            return worker;
        }
    }
    return Worker::spawn(memLimitMb_, cpuLimitSec_);
}

void
WorkerPool::release(std::unique_ptr<Worker> worker)
{
    if (worker == nullptr || worker->dead())
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    idle_.push_back(std::move(worker));
}

// ---------------------------------------------------------------------
// runJobIsolated.
// ---------------------------------------------------------------------

namespace {

/**
 * Hit the three worker.* fault points for this dispatch and return
 * the death directive the first firing rule selects ("" for none).
 * All three points are hit every time so their per-scope counters
 * advance in lockstep with dispatches, and the counters live in the
 * parent -- which is what lets an nth=1 rule fire on the first
 * dispatch only, even though that dispatch's worker dies and a fresh
 * one takes its place.
 */
std::string
deathDirective()
{
    std::string directive;
    for (const char *point :
         {"worker.crash", "worker.hang", "worker.oom"}) {
        try {
            faultPoint(point);
        } catch (const StatusError &) {
            if (directive.empty())
                directive = point + std::strlen("worker.");
        }
    }
    return directive;
}

/**
 * Wall-clock budget for one dispatch: the child enforces the
 * per-attempt deadline itself, so the parent watchdog only has to
 * catch a child that stopped cooperating -- its budget covers every
 * attempt the child may legitimately run, their retry backoffs, and
 * startup slack.  0 (no watchdog) without a deadline: a hang can then
 * wait forever, exactly like non-polling code in an in-process run.
 */
int
watchdogBudgetMs(const JobPolicy &policy, int child_attempts)
{
    if (policy.deadlineMs <= 0)
        return 0;
    return policy.deadlineMs * child_attempts + 250 * child_attempts +
           1000;
}

/** The deterministic half of a worker-death diagnostic. */
std::string
describeDeath(const Dispatch &dispatch)
{
    if (dispatch.kind == Dispatch::Kind::Watchdog)
        return "worker gave no reply within the " +
               std::to_string(dispatch.budgetMs) +
               " ms watchdog budget; killed";
    if (dispatch.frame.kind == FrameResult::Kind::Malformed ||
        dispatch.frame.kind == FrameResult::Kind::Oversized)
        return "worker protocol error: " + dispatch.frame.error;
    const int status = dispatch.waitStatus;
    if (WIFSIGNALED(status))
        return "worker killed by " +
               describeSignal(WTERMSIG(status));
    if (WIFEXITED(status) && WEXITSTATUS(status) != 0)
        return "worker exited with status " +
               std::to_string(WEXITSTATUS(status));
    return "worker exited without a reply";
}

/** Sleep @p ms in small slices, stopping early on a drain. */
void
interruptibleSleep(int ms)
{
    using Clock = std::chrono::steady_clock;
    const auto until = Clock::now() + std::chrono::milliseconds(ms);
    while (Clock::now() < until && !interruptRequested())
        std::this_thread::sleep_for(std::chrono::milliseconds(
            std::min<long long>(
                10,
                std::max<long long>(
                    1, std::chrono::duration_cast<
                           std::chrono::milliseconds>(until -
                                                      Clock::now())
                           .count()))));
}

void
fillInterrupted(JobResult &result, const char *when)
{
    result.outcome = JobOutcome::Interrupted;
    result.error = ErrorCode::Interrupted;
    result.diagnostic = std::string("shutdown requested ") + when;
    result.workerSignal = 0;
    result.workerExitStatus = 0;
}

} // namespace

void
writeWorkerJobFields(JsonWriter &w, const JobSpec &spec,
                     const JobPolicy &policy, int retries,
                     const std::string &die,
                     const BaselineMemo *baselines)
{
    w.key("workload").value(spec.workload);
    w.key("machine").value(spec.machine);
    w.key("algorithm").value(spec.algorithm.text());
    w.key("computeSpeedup").value(spec.computeSpeedup);
    w.key("deadlineMs").value(policy.deadlineMs);
    w.key("retries").value(retries);
    w.key("faults").value(
        policy.faults != nullptr ? policy.faults->text() : "");
    w.key("die").value(die);
    if (baselines != nullptr) {
        const auto it = baselines->find({spec.workload, spec.machine});
        if (it != baselines->end()) {
            w.key("baselineError")
                .value(std::string(
                    errorCodeName(it->second.status.code())));
            w.key("baselineMessage")
                .value(it->second.status.message());
            w.key("baselineMakespan").value(it->second.makespan);
        }
    }
}

std::string
encodeWorkerJob(const JobSpec &spec, const JobPolicy &policy,
                int retries, const std::string &die,
                const BaselineMemo *baselines)
{
    std::ostringstream out;
    {
        JsonWriter w(out);
        w.beginObject();
        writeWorkerJobFields(w, spec, policy, retries, die, baselines);
        w.endObject();
    }
    return compactJson(out.str());
}

StatusOr<WorkerJobFrame>
decodeWorkerJobFields(const JsonValue &msg)
{
    for (const char *field :
         {"workload", "machine", "algorithm", "computeSpeedup",
          "deadlineMs", "retries", "faults"}) {
        if (msg.find(field) == nullptr)
            return Status::internal(
                std::string("worker job frame missing '") + field +
                "'");
    }

    WorkerJobFrame frame;
    frame.spec.workload = msg.at("workload").string;
    frame.spec.machine = msg.at("machine").string;
    frame.spec.computeSpeedup = msg.at("computeSpeedup").boolean;
    std::string error;
    const auto algorithm =
        parseAlgorithmSpec(msg.at("algorithm").string, &error);
    if (!algorithm.has_value())
        return Status::invalidSpec(error);
    frame.spec.algorithm = *algorithm;

    const std::string faults_text = msg.at("faults").string;
    if (!faults_text.empty()) {
        frame.faults = FaultPlan::parse(faults_text, &error);
        if (!frame.faults.has_value())
            return Status::internal(
                "worker fault plan did not parse: " + error);
    }

    frame.deadlineMs = msg.at("deadlineMs").asInt();
    frame.retries = msg.at("retries").asInt();
    if (const JsonValue *die = msg.find("die"))
        frame.die = die->string;
    if (const JsonValue *makespan = msg.find("baselineMakespan")) {
        frame.hasBaseline = true;
        frame.baseline.status =
            statusFromWire(msg.at("baselineError").string,
                           msg.at("baselineMessage").string);
        frame.baseline.makespan = makespan->asInt();
    }
    return frame;
}

StatusOr<JobResult>
decodeWorkerReply(const std::string &payload)
{
    const auto parsed = parseJson(payload);
    if (!parsed.has_value() ||
        parsed->kind != JsonValue::Kind::Object)
        return Status::workerCrashed(
            "worker protocol error: reply frame is not a JSON object");
    auto result = parseJobResultFields(*parsed);
    if (!result.has_value())
        return Status::workerCrashed(
            "worker protocol error: reply frame is missing result "
            "fields");
    return std::move(*result);
}

JobResult
runJobIsolated(const JobSpec &spec, const JobPolicy &policy,
               WorkerPool &pool, const BaselineMemo *baselines,
               bool propagate_interrupt)
{
    JobResult result;
    result.workload = spec.workload;
    result.machine = spec.machine;
    result.algorithm = spec.algorithm.text();

    // The same per-job fault scope as in-process execution, holding
    // the parent-side worker.* counters.  The child binds its own
    // scope (same key) for the in-job fault points, so no point is
    // counted twice.
    FaultScope faults(policy.faults, jobKey(spec));
    ScopedFaultScope fault_guard(&faults);
    ScopedLogContext log_context("job " + jobKey(spec));

    if (interruptRequested()) {
        fillInterrupted(result, "before the job started");
        result.attempts = 0;
        return result;
    }

    const int max_attempts = 1 + std::max(0, policy.retries);
    int consumed = 0;  // attempts burned by dead dispatches
    std::vector<int> backoffs;  // parent-side re-dispatch delays, ms

    for (;;) {
        const std::string die = deathDirective();
        auto worker = pool.acquire();
        if (worker == nullptr) {
            result.outcome = JobOutcome::Failed;
            result.error = ErrorCode::WorkerCrashed;
            result.diagnostic = "cannot fork an isolated worker: " +
                                std::string(std::strerror(errno));
            result.attempts = consumed + 1;
            return result;
        }
        const long stderr_mark = worker->stderrSize();

        const int child_attempts = max_attempts - consumed;
        const std::string frame = encodeWorkerJob(
            spec, policy, child_attempts - 1, die, baselines);

        Dispatch dispatch;
        const Status sent = worker->send(frame);
        if (sent.ok()) {
            dispatch =
                worker->await(watchdogBudgetMs(policy, child_attempts));
        } else {
            // The worker died before (or while) taking the job.
            dispatch.kind = Dispatch::Kind::Died;
            dispatch.frame.kind = FrameResult::Kind::Malformed;
            dispatch.frame.error = sent.message();
            dispatch.waitStatus = worker->killAndReap();
        }

        if (dispatch.kind == Dispatch::Kind::Reply) {
            auto decoded = decodeWorkerReply(dispatch.frame.payload);
            if (decoded.ok()) {
                result = std::move(*decoded);
                result.attempts += consumed;
                // A job interrupted inside the worker (its own signal
                // or an injected runner.interrupt) must drain the
                // whole grid, exactly as it would in-process -- unless
                // the caller is a daemon serving someone else's grid.
                if (propagate_interrupt &&
                    result.outcome == JobOutcome::Interrupted &&
                    !interruptRequested())
                    requestInterrupt(SIGINT);
                pool.release(std::move(worker));
                return result;
            }
            // A frame that parses as nothing useful counts as a
            // protocol-level crash; retire the worker.
            dispatch.kind = Dispatch::Kind::Died;
            dispatch.frame.kind = FrameResult::Kind::Malformed;
            dispatch.frame.error = decoded.status().message();
            dispatch.waitStatus = worker->killAndReap();
        }

        // The worker is gone (or garbled); one attempt is consumed.
        const std::string tail =
            worker->stderrTailSince(stderr_mark);
        worker.reset();
        ++consumed;

        if (interruptRequested()) {
            // The death happened during a drain -- likely *because* of
            // it (forwarded SIGTERM, grace-budget kill), so it is not
            // a verdict: hand the job back as interrupted, never
            // journaled, and let resume settle it.
            fillInterrupted(result, "while the worker was draining");
            result.attempts = consumed;
            return result;
        }

        const int status = dispatch.waitStatus;
        if (dispatch.kind == Dispatch::Kind::Watchdog) {
            result.outcome = JobOutcome::Timeout;
            result.error = ErrorCode::WorkerKilled;
        } else {
            result.outcome = JobOutcome::Failed;
            result.error = ErrorCode::WorkerCrashed;
        }
        result.workerSignal =
            WIFSIGNALED(status) ? WTERMSIG(status) : 0;
        result.workerExitStatus =
            WIFEXITED(status) ? WEXITSTATUS(status) : 0;
        result.diagnostic = describeDeath(dispatch);
        if (!tail.empty())
            result.diagnostic += "; last stderr: " + tail;

        if (consumed >= max_attempts) {
            result.attempts = consumed;
            if (!backoffs.empty()) {
                result.diagnostic += " [retry backoff ms:";
                for (const int ms : backoffs)
                    result.diagnostic += " " + std::to_string(ms);
                result.diagnostic += "]";
            }
            return result;
        }

        // Respawn-and-retry, after the same deterministic jittered
        // backoff in-process retries use.
        const int delay = retryBackoffMs(jobKey(spec), consumed + 1);
        backoffs.push_back(delay);
        interruptibleSleep(delay);
    }
}

} // namespace csched
