/**
 * @file
 * The batch experiment runner: expands a (workload x machine x
 * algorithm) grid into independent jobs and executes them on a
 * fixed-size thread pool.  This is the substrate behind csched_bench
 * and the per-figure bench binaries -- the paper's Section-5
 * evaluation grid as a parallel job pool.
 *
 * Determinism: each job is self-contained (see job.hh) and writes its
 * result into a pre-assigned slot of the result vector, so the report
 * -- including its order -- is bit-identical for any thread count.
 */

#ifndef CSCHED_RUNNER_GRID_RUNNER_HH
#define CSCHED_RUNNER_GRID_RUNNER_HH

#include <string>
#include <vector>

#include "runner/job.hh"

namespace csched {

/** Declarative description of a whole experiment grid. */
struct GridSpec
{
    std::vector<std::string> workloads;
    std::vector<std::string> machines;   ///< validated machine specs
    std::vector<AlgorithmSpec> algorithms;
    /** Worker threads; 1 = serial, 0 = hardware concurrency. */
    int jobs = 1;
    /** Run the one-cluster normalisation for each (workload, machine). */
    bool computeSpeedup = true;
};

/** All grid results plus end-to-end wall-clock. */
struct GridReport
{
    std::vector<JobResult> results;  ///< grid order: w-major, a-minor
    int threads = 1;                 ///< pool size actually used
    double wallSeconds = 0.0;
};

/**
 * Expand @p grid into jobs in deterministic (workload, machine,
 * algorithm) lexicographic-by-index order.
 */
std::vector<JobSpec> expandGrid(const GridSpec &grid);

/**
 * Validate every workload, machine, and algorithm of @p grid.
 * Returns false and fills @p error on the first invalid entry.
 */
bool validateGrid(const GridSpec &grid, std::string *error);

/** Run the whole grid; fatal on invalid specs (validate first). */
GridReport runGrid(const GridSpec &grid);

} // namespace csched

#endif // CSCHED_RUNNER_GRID_RUNNER_HH
