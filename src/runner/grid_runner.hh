/**
 * @file
 * The batch experiment runner: expands a (workload x machine x
 * algorithm) grid into independent jobs and executes them on a
 * fixed-size thread pool.  This is the substrate behind csched_bench
 * and the per-figure bench binaries -- the paper's Section-5
 * evaluation grid as a parallel job pool.
 *
 * Fault model: the grid always completes.  A job that fails is
 * isolated -- its result records the outcome and diagnostic while
 * every healthy cell is salvaged -- and the report's summary says how
 * the run went overall.  Callers decide what a failure means (the
 * drivers exit non-zero unless --keep-going).
 *
 * Determinism: each job is self-contained (see job.hh) and writes its
 * result into a pre-assigned slot of the result vector, so the report
 * -- including its order, per-job statuses, attempt counts, and
 * diagnostics -- is bit-identical for any thread count.
 */

#ifndef CSCHED_RUNNER_GRID_RUNNER_HH
#define CSCHED_RUNNER_GRID_RUNNER_HH

#include <string>
#include <vector>

#include "runner/job.hh"

namespace csched {

struct DistOptions;

/** Declarative description of a whole experiment grid. */
struct GridSpec
{
    std::vector<std::string> workloads;
    std::vector<std::string> machines;   ///< validated machine specs
    std::vector<AlgorithmSpec> algorithms;
    /** Worker threads; 1 = serial, 0 = hardware concurrency. */
    int jobs = 1;
    /** Run the one-cluster normalisation for each (workload, machine). */
    bool computeSpeedup = true;
    /** Per-attempt deadline per job in milliseconds; 0 = none. */
    int deadlineMs = 0;
    /** Bounded retries for failed/timed-out jobs. */
    int retries = 0;
    /** Armed fault-injection plan; nullptr = none (borrowed). */
    const FaultPlan *faults = nullptr;
    /**
     * Path of the append-only job journal; empty = no journal.  With
     * a journal, every terminal job outcome is durably recorded the
     * moment it completes (see runner/journal.hh).
     */
    std::string journalPath;
    /**
     * Resume from an existing journal: journaled jobs are skipped and
     * their recorded outcomes replayed into their pre-assigned result
     * slots, so the final report is byte-identical to an
     * uninterrupted run.  Requires journalPath.
     */
    bool resume = false;
    /**
     * Run every job inside a forked worker process (runner/worker.hh)
     * so a crash, hang, or memory runaway is contained as that job's
     * outcome instead of taking the grid down.  Pure packaging: the
     * deterministic report layer is byte-identical with or without
     * isolation (and gridFingerprint() excludes this flag, so a
     * journal written either way resumes under the other).
     */
    bool isolate = false;
    /**
     * RLIMIT_AS cap per isolated worker, in megabytes; 0 = unlimited.
     * Only meaningful with isolate.
     */
    int memLimitMb = 0;
    /**
     * Remote worker endpoints ("host:port" each).  When non-empty the
     * grid's jobs execute on a fleet of csched_workerd daemons through
     * a RemoteWorkerPool (dist/remote_pool.hh) instead of in-process;
     * each daemon contains its jobs exactly as --isolate would, so --
     * like isolate -- this is pure packaging: the deterministic report
     * layer is byte-identical at any host count, gridFingerprint()
     * excludes it, and a journal written in any mode resumes under any
     * other.  Mutually exclusive with isolate.
     */
    std::vector<std::string> hosts;
    /** Dist-client tuning; nullptr = defaults (borrowed). */
    const DistOptions *dist = nullptr;
};

/** Outcome tally of one grid run. */
struct GridSummary
{
    int total = 0;
    int ok = 0;       ///< includes retried-then-ok jobs
    int failed = 0;
    int timeout = 0;
    int retried = 0;  ///< jobs that succeeded only after retrying
    /** Jobs stopped by a shutdown request (0 in a complete run). */
    int interrupted = 0;
};

/** All grid results plus end-to-end wall-clock. */
struct GridReport
{
    std::vector<JobResult> results;  ///< grid order: w-major, a-minor
    GridSummary summary;
    /** True when a shutdown request cut the run short (partial). */
    bool interrupted = false;
    /** Jobs replayed from the journal instead of executed (resume). */
    int replayed = 0;
    int threads = 1;                 ///< pool size actually used
    double wallSeconds = 0.0;

    /** True when every job (after retries) produced a result. */
    bool allOk() const
    {
        return summary.failed == 0 && summary.timeout == 0 &&
               summary.interrupted == 0;
    }
};

/**
 * Expand @p grid into jobs in deterministic (workload, machine,
 * algorithm) lexicographic-by-index order.
 */
std::vector<JobSpec> expandGrid(const GridSpec &grid);

/**
 * Validate every workload, machine, and algorithm of @p grid.
 * Returns false and fills @p error on the first invalid entry.
 */
bool validateGrid(const GridSpec &grid, std::string *error);

/**
 * Run the whole grid and always return a complete report: failed
 * cells carry their outcome, healthy cells their measurements.
 * Fatal only on an invalid grid (programmer error; validate first)
 * or an unusable journal.
 *
 * Durability: with grid.journalPath set, each terminal outcome is
 * appended to the journal as it completes; with grid.resume the
 * journaled jobs are replayed instead of re-run.  A shutdown request
 * (SIGINT/SIGTERM via runner/shutdown.hh, or the `runner.interrupt`
 * fault point) drains in-flight jobs, marks the rest `interrupted`,
 * and returns a partial report with report.interrupted set -- the
 * journal plus --resume completes it later, byte-identically.
 */
GridReport runGrid(const GridSpec &grid);

} // namespace csched

#endif // CSCHED_RUNNER_GRID_RUNNER_HH
