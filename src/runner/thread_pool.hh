/**
 * @file
 * A fixed-size thread pool for the experiment grid (and any future
 * embarrassingly parallel batch work).  Deliberately minimal: submit
 * void() tasks, wait for quiescence, destruction joins the workers.
 * Determinism of results is the *caller's* job -- the pool makes no
 * ordering promises, so callers must write into pre-assigned slots
 * rather than share mutable state (see grid_runner.cc).
 */

#ifndef CSCHED_RUNNER_THREAD_POOL_HH
#define CSCHED_RUNNER_THREAD_POOL_HH

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace csched {

/** Fixed-size pool of worker threads draining one task queue. */
class ThreadPool
{
  public:
    /**
     * Start @p num_threads workers.  num_threads == 0 asks for
     * defaultConcurrency().  A single-threaded pool still runs tasks
     * on its one worker, so the execution path is identical for
     * --jobs 1 and --jobs N.
     */
    explicit ThreadPool(int num_threads);

    /** Joins all workers; pending tasks are completed first. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue one task. */
    void submit(std::function<void()> task);

    /** Block until the queue is empty and every worker is idle. */
    void wait();

    int numThreads() const { return static_cast<int>(workers_.size()); }

    /** hardware_concurrency with a sane floor of 1. */
    static int defaultConcurrency();

  private:
    void workerLoop();

    std::mutex mutex_;
    std::condition_variable workReady_;
    std::condition_variable allIdle_;
    std::deque<std::function<void()>> queue_;
    std::vector<std::thread> workers_;
    int active_ = 0;
    bool stopping_ = false;
};

} // namespace csched

#endif // CSCHED_RUNNER_THREAD_POOL_HH
