#include "runner/journal.hh"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include <fcntl.h>
#include <unistd.h>

#include "runner/grid_runner.hh"
#include "runner/json_report.hh"
#include "support/fault_injection.hh"
#include "support/json.hh"
#include "support/str.hh"

namespace csched {

namespace {

Status
ioError(const std::string &what, const std::string &path)
{
    return Status::internal(what + " '" + path + "': " +
                            std::strerror(errno));
}

std::string
headerLine(const std::string &fingerprint)
{
    std::ostringstream out;
    {
        JsonWriter w(out);
        w.beginObject();
        w.key("journal").value(std::string(kJournalSchema));
        w.key("grid").value(fingerprint);
        w.endObject();
    }
    return compactJson(out.str());
}

} // namespace

std::string
gridFingerprint(const GridSpec &grid)
{
    std::vector<std::string> algorithms;
    for (const auto &spec : grid.algorithms)
        algorithms.push_back(spec.text());
    return join(grid.workloads, ",") + "|" +
           join(grid.machines, ",") + "|" + join(algorithms, ",") +
           "|speedup=" + (grid.computeSpeedup ? "1" : "0") +
           "|deadline=" + std::to_string(grid.deadlineMs) +
           "|retries=" + std::to_string(grid.retries);
}

std::string
journalRecordLine(const JobSpec &spec, const JobResult &result)
{
    std::ostringstream out;
    {
        JsonWriter w(out);
        w.beginObject();
        w.key("key").value(jobKey(spec));
        w.key("result").beginObject();
        writeJobResultFields(w, result);
        w.endObject();
        w.endObject();
    }
    return compactJson(out.str());
}

JobJournal::JobJournal(int fd, std::string path)
    : fd_(fd), path_(std::move(path))
{
}

JobJournal::~JobJournal()
{
    if (fd_ >= 0)
        ::close(fd_);
}

StatusOr<std::unique_ptr<JobJournal>>
JobJournal::open(const std::string &path,
                 const std::string &fingerprint, bool fresh,
                 bool rewrite_header)
{
    const bool truncate = fresh || rewrite_header;
    const int flags =
        O_WRONLY | O_CREAT | O_APPEND | (truncate ? O_TRUNC : 0);
    const int fd = ::open(path.c_str(), flags, 0644);
    if (fd < 0)
        return ioError("open journal", path);

    std::unique_ptr<JobJournal> journal(new JobJournal(fd, path));
    if (truncate) {
        const Status status =
            journal->writeLine(headerLine(fingerprint));
        if (!status.ok())
            return status;
    }
    return journal;
}

Status
JobJournal::writeLine(const std::string &line)
{
    // After a failed append the file may end mid-line; start on a
    // fresh line so the earlier artifact garbles only itself.
    const std::string record =
        (resync_ ? "\n" : "") + line + "\n";
    size_t written = 0;
    while (written < record.size()) {
        const ssize_t n = ::write(fd_, record.data() + written,
                                  record.size() - written);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            resync_ = true;
            return ioError("append to journal", path_);
        }
        written += static_cast<size_t>(n);
    }
    resync_ = false;
    if (::fsync(fd_) != 0)
        return ioError("fsync journal", path_);
    return Status();
}

Status
JobJournal::append(const JobSpec &spec, const JobResult &result)
{
    const std::string line = journalRecordLine(spec, result);
    std::lock_guard<std::mutex> lock(mutex_);
    try {
        faultPoint("journal.append");
    } catch (const StatusError &error) {
        // Simulate the crash the fault models: leave a half-written
        // record (no newline, no fsync) and report the append failed.
        // The loader must skip exactly this artifact on resume.
        const std::string half = line.substr(0, line.size() / 2);
        const ssize_t ignored = ::write(fd_, half.data(), half.size());
        (void)ignored;
        resync_ = true;
        return error.status.withContext("journal append " +
                                        jobKey(spec));
    }
    return writeLine(line);
}

StatusOr<JournalReplay>
loadJournal(const std::string &path, const std::string &fingerprint)
{
    JournalReplay replay;

    std::ifstream in(path);
    if (!in) {
        // Nothing journaled yet: resume of a run that died before its
        // first record (or was never started).
        replay.rewriteHeader = true;
        return replay;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string contents = buffer.str();

    bool saw_header = false;
    for (const auto &line : split(contents, '\n')) {
        if (trim(line).empty())
            continue;
        const auto parsed = parseJson(line);
        if (!parsed.has_value() ||
            parsed->kind != JsonValue::Kind::Object) {
            // A crash artifact (truncated or garbled record): the job
            // it described simply re-runs.
            ++replay.ignoredLines;
            continue;
        }
        if (!saw_header) {
            const JsonValue *schema = parsed->find("journal");
            const JsonValue *grid = parsed->find("grid");
            if (schema == nullptr || grid == nullptr ||
                schema->string != kJournalSchema) {
                // No recognizable header: treat the file as untrusted
                // and start over rather than splice unknown records.
                replay.results.clear();
                replay.ignoredLines = 0;
                replay.rewriteHeader = true;
                return replay;
            }
            if (grid->string != fingerprint)
                return Status::invalidSpec(
                    "journal '" + path +
                    "' was written for a different grid; refusing "
                    "to resume (delete it to start over)");
            saw_header = true;
            continue;
        }
        const JsonValue *key = parsed->find("key");
        const JsonValue *result = parsed->find("result");
        if (key == nullptr || result == nullptr) {
            ++replay.ignoredLines;
            continue;
        }
        auto rebuilt = parseJobResultFields(*result);
        if (!rebuilt.has_value()) {
            ++replay.ignoredLines;
            continue;
        }
        replay.results[key->string] = std::move(*rebuilt);
    }
    replay.rewriteHeader = !saw_header;
    return replay;
}

} // namespace csched
