#include "runner/failure_summary.hh"

#include "runner/shutdown.hh"

namespace csched {

void
printFailureSummary(std::ostream &out, const GridReport &report)
{
    const GridSummary &summary = report.summary;
    if (summary.ok == summary.total && summary.retried == 0 &&
        !report.interrupted)
        return;

    for (const auto &job : report.results) {
        if (job.ok() && !job.retriedThenOk())
            continue;
        out << "  " << jobOutcomeName(job.outcome) << "  "
            << job.workload << "/" << job.machine << "/"
            << job.algorithm;
        if (job.attempts > 1)
            out << "  (" << job.attempts << " attempts)";
        if (!job.ok() && job.outcome != JobOutcome::Interrupted)
            out << "  [" << errorCodeName(job.error) << "] "
                << job.diagnostic;
        out << "\n";
    }
    out << summary.ok << "/" << summary.total << " jobs ok";
    if (summary.failed > 0)
        out << ", " << summary.failed << " failed";
    if (summary.timeout > 0)
        out << ", " << summary.timeout << " timed out";
    if (summary.interrupted > 0)
        out << ", " << summary.interrupted << " interrupted";
    if (summary.retried > 0)
        out << ", " << summary.retried << " recovered by retry";
    out << "\n";
    if (report.interrupted)
        out << "run interrupted; resume with --journal <path> "
               "--resume\n";
}

int
gridExitCode(const GridReport &report, bool keep_going)
{
    if (report.interrupted)
        return interruptExitCode(interruptSignal());
    return report.allOk() || keep_going ? 0 : 1;
}

} // namespace csched
