/**
 * @file
 * Process-isolated job execution: the containment layer behind the
 * grid runner's --isolate mode.
 *
 * In-process execution (runner/job.hh) already contains every
 * *cooperative* failure -- bad specs, checker rejections, deadlines,
 * injected faults -- but a job that segfaults, hangs in non-polling
 * code, or exhausts memory takes the whole grid down with it.  This
 * layer closes that gap: each job runs inside a forked worker process
 * that talks to the parent over a length-prefixed pipe protocol
 * (support/subprocess.hh), so a worker death of any kind becomes one
 * more recorded per-job outcome:
 *
 *  - death by signal, nonzero exit, OOM kill, or a garbled reply
 *    frame  -> JobOutcome::Failed with ErrorCode::WorkerCrashed;
 *  - killed by the parent watchdog after exceeding its wall-clock
 *    budget -> JobOutcome::Timeout with ErrorCode::WorkerKilled.
 *
 * Both carry the fatal signal / exit status and the worker's last
 * stderr lines in the result, are retryable (the pool forks a
 * replacement and re-dispatches, consuming one attempt per dead
 * dispatch), and flow through the journal, resume, and
 * failure-summary contracts unchanged.  Isolation is pure packaging:
 * the child executes the very same runJob(), so the deterministic
 * report layer -- outcomes, diagnostics, attempt counts, measurements
 * -- is byte-identical to an in-process run of the same grid, at any
 * --jobs value.
 *
 * The job spec crosses the process boundary in its *text* form
 * (workload/machine names, AlgorithmSpec::text(), FaultPlan::text()),
 * so anything a driver can express round-trips exactly.
 *
 * Deterministic worker deaths are injected through three parent-side
 * fault points hit once per dispatch, in the job's own fault scope:
 * "worker.crash" (the child raises SIGSEGV), "worker.hang" (the child
 * blocks forever; needs a deadline to be observed), and "worker.oom"
 * (the child allocates until its RLIMIT_AS kills it).  Hit counters
 * persist across respawns, so `worker.crash=fail:nth=1` models a
 * transient crash that the retry heals.
 */

#ifndef CSCHED_RUNNER_WORKER_HH
#define CSCHED_RUNNER_WORKER_HH

#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "runner/job.hh"
#include "support/fault_injection.hh"

namespace csched {

class Worker;
class JsonWriter;
struct JsonValue;

/**
 * A pool of forked worker processes, one job in flight per worker.
 *
 * The constructor pre-forks @p size workers immediately -- call it
 * while the process is still single-threaded (before the ThreadPool
 * exists) so the children never start from a mid-operation heap or a
 * held lock.  Replacements for dead workers are forked on demand from
 * pool threads; that path is guarded by the pthread_atfork hook on
 * the logging mutex (see logging.hh).  The constructor also ignores
 * SIGPIPE so a write to a dead worker surfaces as EPIPE, not a parent
 * death.
 */
class WorkerPool
{
  public:
    /**
     * Fork @p size workers.  Each child caps its address space at
     * @p mem_limit_mb megabytes (0 = unlimited) and its cumulative
     * CPU time at @p cpu_limit_sec seconds (0 = unlimited; a coarse
     * backstop under the parent watchdog, not a per-job limit).
     */
    explicit WorkerPool(int size, int mem_limit_mb = 0,
                        int cpu_limit_sec = 0);
    ~WorkerPool();

    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    int size() const { return size_; }

    /**
     * Take an idle worker (forking a replacement if none is idle);
     * nullptr only when forking fails.  Internal to runJobIsolated.
     */
    std::unique_ptr<Worker> acquire();

    /** Return a healthy worker for reuse. */
    void release(std::unique_ptr<Worker> worker);

  private:
    const int memLimitMb_;
    const int cpuLimitSec_;
    int size_ = 0;
    std::mutex mutex_;
    std::vector<std::unique_ptr<Worker>> idle_;
};

/**
 * Execute one job in a worker process from @p pool, under the same
 * policy, fault-scope, retry, and drain semantics as runJob() -- plus
 * the containment described above.  @p baselines must supply the
 * memoized single-cluster entry when spec.computeSpeedup is set (the
 * grid always does); the entry ships to the child in the job frame so
 * baseline failures poison dependents identically to in-process runs.
 *
 * @p propagate_interrupt: an `interrupted` reply from the worker
 * (its own signal, or an injected runner.interrupt inside the job)
 * normally drains the whole grid, exactly as it would in-process.
 * The remote worker daemon (dist/workerd.hh) passes false: there the
 * interrupt belongs to the *client's* grid, and draining the daemon
 * for a job-level interrupt would take every other client's jobs
 * down with it.
 */
JobResult runJobIsolated(const JobSpec &spec, const JobPolicy &policy,
                         WorkerPool &pool,
                         const BaselineMemo *baselines = nullptr,
                         bool propagate_interrupt = true);

/**
 * Serialize one job dispatch frame: the spec in text form, the policy
 * (with @p retries attempts remaining for the child), the armed fault
 * plan, a death directive ("" / "crash" / "hang" / "oom"), and the
 * memoized baseline entry if any.  Exposed for protocol tests.
 */
std::string encodeWorkerJob(const JobSpec &spec,
                            const JobPolicy &policy, int retries,
                            const std::string &die,
                            const BaselineMemo *baselines);

/**
 * Decode a worker reply frame back into the JobResult it carries.
 * Anything that does not parse as a complete result -- truncation
 * artifacts, garbage from a corrupted worker -- comes back as a
 * WorkerCrashed status with the reason, never a throw or a hang.
 */
StatusOr<JobResult> decodeWorkerReply(const std::string &payload);

/**
 * The field layer under encodeWorkerJob: writes the job-dispatch
 * fields into an already-open JSON object, so other envelopes -- the
 * dist protocol's `job` message (dist/protocol.hh) -- can carry the
 * exact same text-form job crossing with their own framing around it.
 */
void writeWorkerJobFields(JsonWriter &w, const JobSpec &spec,
                          const JobPolicy &policy, int retries,
                          const std::string &die,
                          const BaselineMemo *baselines);

/**
 * One decoded job-dispatch frame: everything a remote executor needs
 * to run the job, with owned storage for the parts JobPolicy only
 * borrows (the fault plan) and the baseline memo entry.
 */
struct WorkerJobFrame
{
    JobSpec spec;
    int deadlineMs = 0;
    int retries = 0;
    std::optional<FaultPlan> faults;  ///< owned; policy() points here
    std::string die;                  ///< "", "crash", "hang", "oom"
    bool hasBaseline = false;
    BaselineEntry baseline;

    /**
     * The policy for running this frame.  Borrows this->faults: only
     * valid while the frame outlives the returned policy's use.
     */
    JobPolicy policy() const
    {
        JobPolicy out;
        out.deadlineMs = deadlineMs;
        out.retries = retries;
        out.faults = faults.has_value() ? &*faults : nullptr;
        return out;
    }

    /** The baseline entry as a one-entry memo (empty when absent). */
    BaselineMemo baselineMemo() const
    {
        BaselineMemo memo;
        if (hasBaseline)
            memo[{spec.workload, spec.machine}] = baseline;
        return memo;
    }
};

/**
 * Inverse of writeWorkerJobFields over a parsed JSON object: the
 * decoder both the forked worker child and the remote worker daemon
 * run on every incoming job frame.  Missing fields, an unparsable
 * algorithm, or a garbled fault plan come back as an InvalidSpec
 * status -- the frame is addressable garbage, never a crash.
 */
StatusOr<WorkerJobFrame> decodeWorkerJobFields(const JsonValue &msg);

} // namespace csched

#endif // CSCHED_RUNNER_WORKER_HH
