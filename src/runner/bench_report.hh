/**
 * @file
 * The csched-bench-report-v1 schema: the persistent perf-trajectory
 * record emitted by `csched_bench perf` and gated by tools/ci.sh.
 *
 * Three documents share the schema, distinguished by "kind":
 *
 *  - "pass-kernels" (BENCH_pass_kernels.json): one cell per
 *    (workload, machine, kernel) where kernel is a convergent pass
 *    name; medianSeconds is the median-of-N wall time of that pass
 *    inside a full pipeline run.
 *  - "end-to-end" (BENCH_end_to_end.json): one cell per
 *    (workload, machine, algorithm); medianSeconds is the median-of-N
 *    wall time of a complete schedule() call (graph construction
 *    excluded), with the resulting makespan and instruction count for
 *    context.
 *  - "online" (BENCH_online.json): one cell per
 *    (stream spec, machine, online policy); medianSeconds is the
 *    median-of-N wall time of one full runOnline() commit loop over a
 *    pre-generated arrival stream (stream generation untimed), with
 *    the committed timeline's makespan and instruction count for
 *    context.  The workload field carries the stream spec text.
 *
 * Document layout (the one spelling every kind shares):
 *
 *   {
 *     "schema": "csched-bench-report-v1",
 *     "kind": "pass-kernels" | "end-to-end" | "online",
 *     "meta": { "commit", "buildType", "compiler", "flags", "host",
 *               "repeats" },
 *     "cells": [ { "workload", "machine", "kernel" | "algorithm",
 *                  "medianSeconds", "minSeconds", "reps",
 *                  e2e only: "instructions", "makespan",
 *                  optional: "preRewriteSeconds" } ]
 *   }
 *
 * "medianSeconds" is the headline statistic; "minSeconds" (best-of-N)
 * is what the regression gate compares when both sides carry it,
 * because the minimum is far more robust to ambient machine load than
 * the median on half-second cells.
 *
 * "preRewriteSeconds" carries the medians measured on the engine as
 * it was before the blocked-layout rewrite (see EXPERIMENTS.md), so
 * the perf trajectory's starting point travels with the report.
 *
 * Cells are identified by (workload, machine, kernel-or-algorithm);
 * compareBenchReports() joins two reports on that key and fails on
 * relative slowdown beyond a threshold, which is the ci.sh perf gate.
 * Serialization uses the deterministic JsonWriter of support/json --
 * the same infrastructure as the csched-grid-report-v2 documents --
 * so bench reports diff cleanly and parse with the same parser.
 */

#ifndef CSCHED_RUNNER_BENCH_REPORT_HH
#define CSCHED_RUNNER_BENCH_REPORT_HH

#include <optional>
#include <ostream>
#include <string>
#include <vector>

namespace csched {

/** Schema identifier written into every bench report. */
inline const char *kBenchReportSchema = "csched-bench-report-v1";

/** Build/host provenance recorded with every measurement. */
struct BenchMeta
{
    std::string commit;     ///< git commit the binary was built from
    std::string buildType;  ///< CMAKE_BUILD_TYPE
    std::string compiler;   ///< compiler version string
    std::string flags;      ///< optimisation-relevant compile flags
    std::string host;       ///< uname sysname/release/machine
    int repeats = 0;        ///< samples per cell (median-of-N)
};

/** One measured cell. */
struct BenchCell
{
    std::string workload;
    std::string machine;
    /** Pass name for "pass-kernels" documents; empty otherwise. */
    std::string kernel;
    /** Algorithm spec for "end-to-end" documents; empty otherwise. */
    std::string algorithm;
    double medianSeconds = 0.0;
    /** Best-of-N; < 0 when absent (reports written before the field). */
    double minSeconds = -1.0;
    int reps = 0;
    /** End-to-end context; 0 for pass-kernel cells. */
    int instructions = 0;
    int makespan = 0;
    /** Median on the pre-rewrite engine, when annotated; else < 0. */
    double preRewriteSeconds = -1.0;

    /** The join key used by compareBenchReports. */
    std::string key() const;
};

/** One complete bench document. */
struct BenchReport
{
    std::string kind;  ///< "pass-kernels", "end-to-end", or "online"
    BenchMeta meta;
    std::vector<BenchCell> cells;
};

/** Serialize @p report (trailing newline included). */
std::string benchReportToJson(const BenchReport &report);

/**
 * Parse a csched-bench-report-v1 document.  Returns std::nullopt on
 * syntax errors, schema mismatch, or missing required fields and,
 * when @p error is non-null, stores the reason.
 */
std::optional<BenchReport> parseBenchReport(const std::string &text,
                                            std::string *error = nullptr);

/** Knobs of the perf regression gate. */
struct BenchCompareOptions
{
    /** Fail when (current - baseline) / baseline exceeds this. */
    double slowdownThreshold = 0.15;
    /**
     * Ignore cells whose baseline median is below this (sub-100us
     * kernels are dominated by timer noise, not by the engine).
     */
    double minBaselineSeconds = 1e-4;
};

/**
 * Compare @p current against @p baseline cell-by-cell and print a
 * per-kernel delta table to @p out.  Cells present on only one side
 * are reported but never fail the gate (the suite may grow).  Returns
 * true when no joined cell regressed beyond the threshold.
 */
bool compareBenchReports(const BenchReport &baseline,
                         const BenchReport &current,
                         const BenchCompareOptions &options,
                         std::ostream &out);

} // namespace csched

#endif // CSCHED_RUNNER_BENCH_REPORT_HH
