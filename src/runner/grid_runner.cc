#include "runner/grid_runner.hh"

#include <chrono>

#include "eval/speedup.hh"
#include "machine/machine_spec.hh"
#include "runner/thread_pool.hh"
#include "support/logging.hh"
#include "workloads/workloads.hh"

namespace csched {

JobResult
runJob(const JobSpec &spec)
{
    std::string machine_error;
    const auto machine = parseMachineSpec(spec.machine, &machine_error);
    if (machine == nullptr)
        CSCHED_FATAL("grid job: ", machine_error);

    const WorkloadSpec &workload = findWorkload(spec.workload);
    const DependenceGraph graph = workload.build(
        machine->numClusters(), machine->numClusters());

    const auto algorithm = makeAlgorithm(spec.algorithm, *machine);
    RunResult run = runAndCheck(*algorithm, graph, *machine);

    JobResult result;
    result.workload = spec.workload;
    result.machine = spec.machine;
    result.algorithm = spec.algorithm.text();
    result.algorithmName = run.algorithm;
    result.instructions = run.instructions;
    result.makespan = run.makespan;
    result.criticalPathLength = graph.criticalPathLength();
    result.assignment = run.result.schedule.assignment();
    result.seconds = run.seconds;
    result.trace = std::move(run.result.trace);

    if (spec.computeSpeedup) {
        result.singleClusterMakespan =
            singleClusterMakespan(workload, *machine);
        CSCHED_ASSERT(result.makespan > 0, "zero makespan");
        result.speedup =
            static_cast<double>(result.singleClusterMakespan) /
            static_cast<double>(result.makespan);
    }
    return result;
}

std::vector<JobSpec>
expandGrid(const GridSpec &grid)
{
    std::vector<JobSpec> jobs;
    jobs.reserve(grid.workloads.size() * grid.machines.size() *
                 grid.algorithms.size());
    for (const auto &workload : grid.workloads)
        for (const auto &machine : grid.machines)
            for (const auto &algorithm : grid.algorithms)
                jobs.push_back({workload, machine, algorithm,
                                grid.computeSpeedup});
    return jobs;
}

bool
validateGrid(const GridSpec &grid, std::string *error)
{
    auto fail = [&](const std::string &why) {
        if (error != nullptr)
            *error = why;
        return false;
    };

    if (grid.jobs < 0)
        return fail("--jobs must be >= 0 (0 = hardware concurrency)");
    if (grid.workloads.empty() || grid.machines.empty() ||
        grid.algorithms.empty())
        return fail("empty grid: need at least one workload, machine, "
                    "and algorithm");

    for (const auto &name : grid.workloads) {
        bool known = false;
        for (const auto &spec : allWorkloads())
            known |= spec.name == name;
        if (!known)
            return fail("unknown workload '" + name + "'");
    }
    for (const auto &machine : grid.machines) {
        std::string why;
        if (parseMachineSpec(machine, &why) == nullptr)
            return fail(why);
    }
    for (const auto &algorithm : grid.algorithms) {
        std::string why;
        if (!parseAlgorithmSpec(algorithm.text(), &why))
            return fail(why);
    }
    return true;
}

GridReport
runGrid(const GridSpec &grid)
{
    std::string error;
    if (!validateGrid(grid, &error))
        CSCHED_FATAL("invalid grid: ", error);

    const auto jobs = expandGrid(grid);
    GridReport report;
    report.results.resize(jobs.size());

    const auto begin = std::chrono::steady_clock::now();
    {
        // Each task writes only its own pre-assigned slot; the pool
        // imposes no ordering, the slot layout does.
        ThreadPool pool(grid.jobs);
        report.threads = pool.numThreads();
        for (size_t k = 0; k < jobs.size(); ++k)
            pool.submit([&jobs, &report, k] {
                report.results[k] = runJob(jobs[k]);
            });
        pool.wait();
    }
    const auto end = std::chrono::steady_clock::now();
    report.wallSeconds =
        std::chrono::duration<double>(end - begin).count();
    return report;
}

} // namespace csched
