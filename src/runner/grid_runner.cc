#include "runner/grid_runner.hh"

#include <chrono>
#include <csignal>
#include <exception>
#include <memory>
#include <thread>

#include "dist/remote_pool.hh"
#include "eval/speedup.hh"
#include "machine/machine_spec.hh"
#include "online/arrival.hh"
#include "online/online_grid.hh"
#include "runner/journal.hh"
#include "runner/shutdown.hh"
#include "runner/thread_pool.hh"
#include "runner/worker.hh"
#include "support/cancel.hh"
#include "support/fault_injection.hh"
#include "support/logging.hh"
#include "support/rng.hh"
#include "support/socket.hh"
#include "support/str.hh"
#include "workloads/workloads.hh"

namespace csched {

const char *
jobOutcomeName(JobOutcome outcome)
{
    switch (outcome) {
      case JobOutcome::Ok:
        return "ok";
      case JobOutcome::Failed:
        return "failed";
      case JobOutcome::Timeout:
        return "timeout";
      case JobOutcome::Interrupted:
        return "interrupted";
    }
    CSCHED_PANIC("unreachable job outcome ", static_cast<int>(outcome));
}

std::optional<JobOutcome>
parseJobOutcomeName(const std::string &name)
{
    for (const JobOutcome candidate :
         {JobOutcome::Ok, JobOutcome::Failed, JobOutcome::Timeout,
          JobOutcome::Interrupted}) {
        if (name == jobOutcomeName(candidate))
            return candidate;
    }
    return std::nullopt;
}

std::string
jobKey(const JobSpec &spec)
{
    return spec.workload + "/" + spec.machine + "/" +
           spec.algorithm.text();
}

namespace {

/**
 * One attempt of one job.  Recoverable failures come back as a
 * Status: either returned directly (spec/baseline/checker problems)
 * or thrown as StatusError from a cancellation poll or fault point
 * deep inside a scheduler loop and caught here.  Measurement fields
 * of @p out are written only on the success path.
 */
Status
runJobAttempt(const JobSpec &spec, const JobPolicy &policy,
              const BaselineMemo *baselines, JobResult &out)
{
    try {
        CancelToken token;
        if (policy.deadlineMs > 0)
            token.armDeadline(policy.deadlineMs);
        ScopedCancelToken cancel_guard(&token);

        checkpoint("runner.job.start");

        // Online cells (stream workload x policy) take their own
        // path: same cancel token, same fault scope, same StatusError
        // unwinding through the catch below.
        if (isOnlineJobSpec(spec))
            return runOnlineJobAttempt(spec, out);

        std::string machine_error;
        const auto machine = parseMachineSpec(spec.machine, &machine_error);
        if (machine == nullptr)
            return Status::invalidSpec(machine_error);

        const WorkloadSpec *workload = tryFindWorkload(spec.workload);
        if (workload == nullptr)
            return Status::invalidSpec("unknown workload '" +
                                       spec.workload + "'");

        DependenceGraph graph = workload->build(machine->numClusters(),
                                                machine->numClusters());
        // Degraded machines: move preplaced homes off dead clusters.
        remapPreplacedForMachine(graph, *machine);

        auto algorithm = tryMakeAlgorithm(spec.algorithm, *machine);
        if (!algorithm.ok())
            return algorithm.status();

        auto run = tryRunAndCheck(**algorithm, graph, *machine);
        if (!run.ok())
            return run.status();

        int baseline = 0;
        if (spec.computeSpeedup) {
            if (baselines != nullptr) {
                const auto it =
                    baselines->find({spec.workload, spec.machine});
                CSCHED_ASSERT(it != baselines->end(),
                              "baseline memo missing ", spec.workload,
                              " on ", spec.machine);
                if (!it->second.status.ok())
                    return it->second.status;
                baseline = it->second.makespan;
            } else {
                const auto computed =
                    trySingleClusterMakespan(*workload, *machine);
                if (!computed.ok())
                    return computed.status();
                baseline = *computed;
            }
            if (run->makespan <= 0)
                return Status::internal(
                    "zero makespan for a non-empty graph");
        }

        out.algorithmName = run->algorithm;
        out.instructions = run->instructions;
        out.makespan = run->makespan;
        out.criticalPathLength = graph.criticalPathLength();
        out.assignment = run->result.schedule.assignment();
        out.seconds = run->seconds;
        out.trace = std::move(run->result.trace);
        if (spec.computeSpeedup) {
            out.singleClusterMakespan = baseline;
            out.speedup = static_cast<double>(baseline) /
                          static_cast<double>(out.makespan);
        }
        return Status();
    } catch (const StatusError &error) {
        return error.status;
    } catch (const std::exception &error) {
        // Not a library invariant (those panic/abort): record it.
        return Status::internal(std::string("uncaught exception: ") +
                                error.what());
    }
}

/**
 * The deterministic shutdown hook: hit the `runner.interrupt` fault
 * point inside the current fault scope; an armed rule firing here is
 * translated into the same global interrupt a SIGINT would cause
 * (synthetic SIGINT, so the exit-code contract holds).
 */
void
interruptPoint()
{
    try {
        faultPoint("runner.interrupt");
    } catch (const StatusError &) {
        requestInterrupt(SIGINT);
    }
}

/** Fill @p result as "stopped by shutdown before finishing". */
void
markInterrupted(JobResult &result, const char *when)
{
    result.outcome = JobOutcome::Interrupted;
    result.error = ErrorCode::Interrupted;
    result.diagnostic = std::string("shutdown requested ") + when;
}

/**
 * Sleep @p ms between retry attempts, in small slices so a drain
 * request cuts the wait short instead of stalling the shutdown.
 */
void
backoffSleep(int ms)
{
    using Clock = std::chrono::steady_clock;
    const auto until = Clock::now() + std::chrono::milliseconds(ms);
    while (!interruptRequested()) {
        const auto left =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                until - Clock::now())
                .count();
        if (left <= 0)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(
            std::min<long long>(10, left)));
    }
}

/** Append the recorded backoff delays to a terminal diagnostic. */
void
appendBackoffNote(JobResult &result, const std::vector<int> &delays)
{
    if (delays.empty() || result.outcome == JobOutcome::Ok ||
        result.outcome == JobOutcome::Interrupted)
        return;
    result.diagnostic += " [retry backoff ms:";
    for (const int ms : delays)
        result.diagnostic += " " + std::to_string(ms);
    result.diagnostic += "]";
}

/**
 * One (workload, machine) baseline under the same isolation as a job.
 * Scope keys end in "/single-cluster" so fault rules can target or
 * spare the baseline phase via match=.
 */
BaselineEntry
computeBaseline(const std::string &workload,
                const std::string &machine_spec, const JobPolicy &policy)
{
    const std::string key =
        workload + "/" + machine_spec + "/single-cluster";
    FaultScope faults(policy.faults, key);
    ScopedFaultScope fault_guard(&faults);
    ScopedLogContext log_context("baseline " + key);

    BaselineEntry entry;
    try {
        CancelToken token;
        if (policy.deadlineMs > 0)
            token.armDeadline(policy.deadlineMs);
        ScopedCancelToken cancel_guard(&token);

        // The baseline is a unit of work like any job (its scope key
        // just ends in "/single-cluster"), so it starts at the same
        // fault point.
        checkpoint("runner.job.start");

        std::string machine_error;
        const auto machine =
            parseMachineSpec(machine_spec, &machine_error);
        if (machine == nullptr) {
            entry.status = Status::invalidSpec(machine_error);
            return entry;
        }
        const WorkloadSpec *spec = tryFindWorkload(workload);
        if (spec == nullptr) {
            entry.status = Status::invalidSpec("unknown workload '" +
                                               workload + "'");
            return entry;
        }
        const auto makespan = trySingleClusterMakespan(*spec, *machine);
        if (!makespan.ok()) {
            entry.status = makespan.status();
            return entry;
        }
        entry.makespan = *makespan;
    } catch (const StatusError &error) {
        entry.status =
            error.status.withContext("single-cluster baseline");
    } catch (const std::exception &error) {
        entry.status = Status::internal(
            std::string("single-cluster baseline: uncaught exception: ") +
            error.what());
    }
    return entry;
}

} // namespace

int
retryBackoffMs(const std::string &job_key, int attempt)
{
    CSCHED_ASSERT(attempt >= 2,
                  "backoff applies from the second attempt on");
    // Exponential base, capped well below a deadline-scale pause: a
    // retry exists to outlive a *transient* fault, not to reschedule
    // the job for later.
    const int exponent = std::min(attempt - 2, 5);
    const int base = std::min(10 << exponent, 200);
    // The jitter draw is a pure function of (job identity, attempt),
    // never of wall-clock or thread identity, so the delays -- which
    // are recorded in terminal diagnostics -- are byte-identical at
    // any --jobs value.
    Rng rng(fnv1aHash(job_key) ^ static_cast<uint64_t>(attempt));
    const double jitter = 0.5 + rng.uniform();
    return std::max(1, static_cast<int>(base * jitter));
}

JobResult
runJob(const JobSpec &spec, const JobPolicy &policy,
       const BaselineMemo *baselines)
{
    JobResult result;
    result.workload = spec.workload;
    result.machine = spec.machine;
    result.algorithm = spec.algorithm.text();

    // One fault scope per *job*: hit counters persist across retries,
    // so an nth=1 rule models a transient fault the retry heals.
    FaultScope faults(policy.faults, jobKey(spec));
    ScopedFaultScope fault_guard(&faults);
    ScopedLogContext log_context("job " + jobKey(spec));

    interruptPoint();
    if (interruptRequested()) {
        markInterrupted(result, "before the job started");
        result.attempts = 0;
        return result;
    }

    const int max_attempts = 1 + std::max(0, policy.retries);
    std::vector<int> backoffs;
    for (int attempt = 1; attempt <= max_attempts; ++attempt) {
        result.attempts = attempt;
        const Status status =
            runJobAttempt(spec, policy, baselines, result);
        if (status.ok()) {
            result.outcome = JobOutcome::Ok;
            result.error = ErrorCode::Ok;
            result.diagnostic.clear();
            break;
        }
        if (status.code() == ErrorCode::Interrupted) {
            // Shutdown, not a verdict: the job re-runs on resume.
            result.outcome = JobOutcome::Interrupted;
            result.error = status.code();
            result.diagnostic = status.message();
            break;
        }
        result.outcome = status.code() == ErrorCode::Timeout
                             ? JobOutcome::Timeout
                             : JobOutcome::Failed;
        result.error = status.code();
        result.diagnostic = status.message();
        // A spec problem is permanent; retrying cannot heal it.
        if (status.code() == ErrorCode::InvalidSpec)
            break;
        // Never burn retries during a drain: with attempts left the
        // outcome is not terminal yet, so hand the job back as
        // `interrupted` (a journaled failure here could differ from
        // what an uninterrupted run's remaining retries would give).
        if (attempt < max_attempts && interruptRequested()) {
            markInterrupted(result, "between retry attempts");
            break;
        }
        // Jittered exponential backoff before the next attempt, so
        // retries of simultaneously-failing jobs (shared-cause
        // faults, resource exhaustion) do not stampede in lockstep.
        // Skipped entirely during a drain (checked above and inside
        // the sliced sleep).
        if (attempt < max_attempts) {
            const int delay =
                retryBackoffMs(jobKey(spec), attempt + 1);
            backoffs.push_back(delay);
            backoffSleep(delay);
        }
    }
    appendBackoffNote(result, backoffs);
    return result;
}

std::vector<JobSpec>
expandGrid(const GridSpec &grid)
{
    std::vector<JobSpec> jobs;
    jobs.reserve(grid.workloads.size() * grid.machines.size() *
                 grid.algorithms.size());
    for (const auto &workload : grid.workloads)
        for (const auto &machine : grid.machines)
            for (const auto &algorithm : grid.algorithms)
                jobs.push_back({workload, machine, algorithm,
                                grid.computeSpeedup});
    return jobs;
}

bool
validateGrid(const GridSpec &grid, std::string *error)
{
    auto fail = [&](const std::string &why) {
        if (error != nullptr)
            *error = why;
        return false;
    };

    if (grid.jobs < 0)
        return fail("--jobs must be >= 0 (0 = hardware concurrency)");
    if (grid.deadlineMs < 0)
        return fail("--deadline-ms must be >= 0 (0 = no deadline)");
    if (grid.retries < 0)
        return fail("--retries must be >= 0");
    if (grid.memLimitMb < 0)
        return fail("--mem-limit-mb must be >= 0 (0 = unlimited)");
    if (grid.workloads.empty() || grid.machines.empty() ||
        grid.algorithms.empty())
        return fail("empty grid: need at least one workload, machine, "
                    "and algorithm");
    if (!grid.hosts.empty() && grid.isolate)
        return fail("--hosts and --isolate are mutually exclusive "
                    "(remote hosts already isolate every job)");
    for (const auto &endpoint : grid.hosts) {
        std::string host;
        uint16_t port = 0;
        const Status parsed = parseHostPort(endpoint, &host, &port);
        if (!parsed.ok())
            return fail("--hosts: " + parsed.message());
    }

    for (const auto &name : grid.workloads) {
        if (isStreamWorkload(name)) {
            std::string why;
            if (!parseStreamSpec(name, &why))
                return fail(why);
            continue;
        }
        bool known = false;
        for (const auto &spec : allWorkloads())
            known |= spec.name == name;
        if (!known)
            return fail("unknown workload '" + name + "'");
    }
    for (const auto &machine : grid.machines) {
        std::string why;
        if (parseMachineSpec(machine, &why) == nullptr)
            return fail(why);
    }
    for (const auto &algorithm : grid.algorithms) {
        std::string why;
        if (!parseAlgorithmSpec(algorithm.text(), &why))
            return fail(why);
    }
    return true;
}

GridReport
runGrid(const GridSpec &grid)
{
    std::string error;
    if (!validateGrid(grid, &error))
        CSCHED_FATAL("invalid grid: ", error);

    const auto jobs = expandGrid(grid);
    const JobPolicy policy{grid.deadlineMs, grid.retries, grid.faults};
    GridReport report;
    report.results.resize(jobs.size());

    // Durability setup.  The fingerprint pins the grid identity; a
    // resume first replays journaled terminal outcomes into their
    // pre-assigned slots, then the journal is (re)opened for appending
    // the outcomes this run produces.
    const std::string fingerprint = gridFingerprint(grid);
    std::vector<char> replayed(jobs.size(), 0);
    bool rewrite_header = false;
    if (grid.resume) {
        CSCHED_ASSERT(!grid.journalPath.empty(),
                      "grid.resume requires grid.journalPath");
        auto loaded = loadJournal(grid.journalPath, fingerprint);
        if (!loaded.ok())
            CSCHED_FATAL("cannot resume: ",
                         loaded.status().toString());
        rewrite_header = loaded->rewriteHeader;
        if (loaded->ignoredLines > 0)
            CSCHED_WARN("journal '", grid.journalPath, "': skipped ",
                        loaded->ignoredLines,
                        " incomplete record(s); those jobs re-run");
        for (size_t k = 0; k < jobs.size(); ++k) {
            const auto it = loaded->results.find(jobKey(jobs[k]));
            if (it == loaded->results.end())
                continue;
            report.results[k] = it->second;
            replayed[k] = 1;
            ++report.replayed;
        }
    }
    std::unique_ptr<JobJournal> journal;
    if (!grid.journalPath.empty()) {
        auto opened = JobJournal::open(grid.journalPath, fingerprint,
                                       !grid.resume, rewrite_header);
        if (!opened.ok())
            CSCHED_FATAL("cannot open journal: ",
                         opened.status().toString());
        journal = std::move(*opened);
    }

    // Isolation: pre-fork the worker processes *before* the thread
    // pool exists, so every initial child starts from a quiescent,
    // single-threaded parent image.  (Mid-run respawns fork from pool
    // threads under the logging fork guard.)  The CPU rlimit is a
    // coarse cumulative backstop beneath the per-dispatch watchdog,
    // armed only when a deadline bounds legitimate work.
    std::unique_ptr<WorkerPool> workers;
    if (grid.isolate) {
        const int pool_size = grid.jobs > 0
                                  ? grid.jobs
                                  : ThreadPool::defaultConcurrency();
        workers = std::make_unique<WorkerPool>(
            pool_size, grid.memLimitMb,
            grid.deadlineMs > 0 ? 900 : 0);
    }

    // Distribution: connect the fleet before the thread pool exists
    // (same quiescent-parent stance as the worker pool -- the dist
    // client's own reader/controller threads come up here).  Baselines
    // stay client-computed: they are part of the deterministic report
    // layer, and shipping them in each job frame keeps every host's
    // execution a pure function of the frame.
    std::unique_ptr<RemoteWorkerPool> fleet;
    if (!grid.hosts.empty()) {
        DistOptions dist_options =
            grid.dist != nullptr ? *grid.dist : DistOptions{};
        dist_options.hosts = grid.hosts;
        fleet = std::make_unique<RemoteWorkerPool>(
            std::move(dist_options));
        const Status started = fleet->start();
        if (!started.ok())
            CSCHED_FATAL("cannot start remote fleet: ",
                         started.toString());
    }

    const auto begin = std::chrono::steady_clock::now();
    {
        // Each task writes only its own pre-assigned slot; the pool
        // imposes no ordering, the slot layout does.
        ThreadPool pool(grid.jobs);
        report.threads = pool.numThreads();

        // Phase 1: one single-cluster baseline per (workload, machine)
        // pair, instead of one per job.  The memo's entries are
        // created up front (in deterministic grid order), so the
        // workers mutate disjoint, pre-existing slots.  On resume,
        // only pairs with at least one job still to run are computed.
        BaselineMemo baselines;
        if (grid.computeSpeedup) {
            // Stream cells have no one-cluster normalisation (their
            // job path never consults the memo), so don't compute one.
            for (size_t k = 0; k < jobs.size(); ++k)
                if (!replayed[k] && !isStreamWorkload(jobs[k].workload))
                    baselines.try_emplace(
                        {jobs[k].workload, jobs[k].machine});
            for (auto &pair : baselines)
                pool.submit([&pair, &policy] {
                    pair.second = computeBaseline(
                        pair.first.first, pair.first.second, policy);
                });
            pool.wait();
        }

        // Phase 2: the grid itself.  Terminal outcomes are journaled
        // the moment they complete; `interrupted` results are not (the
        // job re-runs on resume -- see runner/journal.hh).
        for (size_t k = 0; k < jobs.size(); ++k) {
            if (replayed[k])
                continue;
            pool.submit([&jobs, &report, &policy, &baselines, &journal,
                         &workers, &fleet, k] {
                report.results[k] =
                    fleet != nullptr
                        ? runJobRemote(jobs[k], policy, *fleet,
                                       &baselines)
                        : workers != nullptr
                              ? runJobIsolated(jobs[k], policy,
                                               *workers, &baselines)
                              : runJob(jobs[k], policy, &baselines);
                const JobResult &result = report.results[k];
                if (journal == nullptr ||
                    result.outcome == JobOutcome::Interrupted)
                    return;
                // Appends run in the job's own fault scope (suffix
                // "/journal") so tests can target one job's append.
                FaultScope faults(policy.faults,
                                  jobKey(jobs[k]) + "/journal");
                ScopedFaultScope fault_guard(&faults);
                const Status status =
                    journal->append(jobs[k], result);
                if (!status.ok())
                    CSCHED_WARN("journal append failed (job still "
                                "ran): ",
                                status.toString());
            });
        }
        pool.wait();
    }
    const auto end = std::chrono::steady_clock::now();
    report.wallSeconds =
        std::chrono::duration<double>(end - begin).count();

    report.interrupted = interruptRequested() || globalCancelRequested();
    for (const auto &result : report.results) {
        ++report.summary.total;
        switch (result.outcome) {
          case JobOutcome::Ok:
            ++report.summary.ok;
            if (result.retriedThenOk())
                ++report.summary.retried;
            break;
          case JobOutcome::Failed:
            ++report.summary.failed;
            break;
          case JobOutcome::Timeout:
            ++report.summary.timeout;
            break;
          case JobOutcome::Interrupted:
            ++report.summary.interrupted;
            break;
        }
    }
    return report;
}

} // namespace csched
