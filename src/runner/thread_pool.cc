#include "runner/thread_pool.hh"

#include "support/logging.hh"

namespace csched {

int
ThreadPool::defaultConcurrency()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int num_threads)
{
    if (num_threads == 0)
        num_threads = defaultConcurrency();
    CSCHED_ASSERT(num_threads >= 1, "thread pool needs >= 1 thread, got ",
                  num_threads);
    workers_.reserve(num_threads);
    for (int k = 0; k < num_threads; ++k)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    workReady_.notify_all();
    for (auto &worker : workers_)
        worker.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        CSCHED_ASSERT(!stopping_, "submit on a stopping pool");
        queue_.push_back(std::move(task));
    }
    workReady_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    allIdle_.wait(lock,
                  [this] { return queue_.empty() && active_ == 0; });
}

void
ThreadPool::workerLoop()
{
    // Drops active_ (and wakes wait()) however the task exits, so a
    // throwing task cannot leak the count and deadlock wait().
    struct ActiveGuard
    {
        ThreadPool &pool;

        ~ActiveGuard()
        {
            std::unique_lock<std::mutex> lock(pool.mutex_);
            --pool.active_;
            if (pool.queue_.empty() && pool.active_ == 0)
                pool.allIdle_.notify_all();
        }
    };

    while (true) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            workReady_.wait(lock, [this] {
                return stopping_ || !queue_.empty();
            });
            if (queue_.empty())
                return;  // stopping and drained
            task = std::move(queue_.front());
            queue_.pop_front();
            ++active_;
        }
        ActiveGuard guard{*this};
        // Tasks are expected to handle their own failures (the grid
        // runner records them per job); an exception reaching here
        // would otherwise std::terminate the process, so the barrier
        // turns it into a warning and keeps the worker alive.
        try {
            task();
        } catch (const std::exception &error) {
            CSCHED_WARN("task escaped with exception: ", error.what());
        } catch (...) {
            CSCHED_WARN("task escaped with a non-standard exception");
        }
    }
}

} // namespace csched
