/**
 * @file
 * The drivers' shared view of how a grid run went: a human-readable
 * failure summary and the exit-status contract.
 *
 * Exit-code contract (both csched_bench and csched_cli):
 *   0    every job ultimately succeeded, or --keep-going was given;
 *   1    at least one job failed or timed out after all retries;
 *   2    usage error (bad flags / specs), before any job ran;
 *   128+signum  a shutdown request (SIGINT -> 130, SIGTERM -> 143)
 *        cut the run short after a graceful drain; the partial report
 *        is marked "interrupted" and --keep-going does not downgrade
 *        it, because the grid did not finish.
 */

#ifndef CSCHED_RUNNER_FAILURE_SUMMARY_HH
#define CSCHED_RUNNER_FAILURE_SUMMARY_HH

#include <ostream>

#include "runner/grid_runner.hh"

namespace csched {

/**
 * Print one line per failed/timed-out job plus a tally to @p out
 * (intended for stderr).  Prints nothing when every job is ok and no
 * job needed a retry.
 */
void printFailureSummary(std::ostream &out, const GridReport &report);

/** The process exit status for @p report under the contract above. */
int gridExitCode(const GridReport &report, bool keep_going);

} // namespace csched

#endif // CSCHED_RUNNER_FAILURE_SUMMARY_HH
