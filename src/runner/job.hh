/**
 * @file
 * The unit of work of the experiment grid: one (workload, machine,
 * algorithm) cell, and the structured record one such run produces.
 *
 * A JobSpec is fully self-describing -- strings plus an AlgorithmSpec
 * -- so a job can be executed on any thread with no shared mutable
 * state: the worker parses its own machine, builds its own graph, and
 * constructs its own algorithm (whose RNG is seeded from the spec's
 * PassParams, a pure function of the spec).  That is what makes grid
 * results bit-identical regardless of thread count.
 */

#ifndef CSCHED_RUNNER_JOB_HH
#define CSCHED_RUNNER_JOB_HH

#include <string>
#include <vector>

#include "eval/experiment.hh"
#include "sched/algorithm.hh"

namespace csched {

/** One cell of the (workload x machine x algorithm) grid. */
struct JobSpec
{
    std::string workload;
    std::string machine;  ///< validated machine spec, e.g. "raw4x4"
    AlgorithmSpec algorithm;
    /** Also run the one-cluster normalisation to compute speedup. */
    bool computeSpeedup = true;
};

/** Structured result of one job (everything the paper's tables need). */
struct JobResult
{
    // Identity (echoed from the spec so a result is self-describing).
    std::string workload;
    std::string machine;
    std::string algorithm;      ///< AlgorithmSpec::text()
    std::string algorithmName;  ///< display name, e.g. "Convergent"

    // Deterministic measurements.
    int instructions = 0;
    int makespan = 0;
    int criticalPathLength = 0;
    /** One-cluster makespan; 0 when speedup was not requested. */
    int singleClusterMakespan = 0;
    /** makespan(1 cluster) / makespan; 0 when not requested. */
    double speedup = 0.0;
    /** Cluster per instruction (the spatial assignment). */
    std::vector<int> assignment;

    // Wall-clock observability (excluded from deterministic output).
    double seconds = 0.0;  ///< scheduling time of the measured run
    /** Per-pass convergence + timing; empty for one-shot baselines. */
    std::vector<PassStep> trace;
};

/** Execute one job; fatal on illegal schedules (checker-verified). */
JobResult runJob(const JobSpec &spec);

} // namespace csched

#endif // CSCHED_RUNNER_JOB_HH
