/**
 * @file
 * The unit of work of the experiment grid: one (workload, machine,
 * algorithm) cell, the execution policy applied to it, and the
 * structured record one such run produces -- including its outcome,
 * because a job that fails (bad spec, checker rejection, deadline,
 * injected fault) is *recorded*, not allowed to kill the grid.
 *
 * A JobSpec is fully self-describing -- strings plus an AlgorithmSpec
 * -- so a job can be executed on any thread with no shared mutable
 * state: the worker parses its own machine, builds its own graph, and
 * constructs its own algorithm (whose RNG is seeded from the spec's
 * PassParams, a pure function of the spec).  Retries run inline on the
 * same worker and fault decisions depend only on the job's own
 * deterministic state, which is what keeps grid results -- statuses
 * included -- bit-identical regardless of thread count.
 */

#ifndef CSCHED_RUNNER_JOB_HH
#define CSCHED_RUNNER_JOB_HH

#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "eval/experiment.hh"
#include "sched/algorithm.hh"
#include "support/status.hh"

namespace csched {

class FaultPlan;

/** One cell of the (workload x machine x algorithm) grid. */
struct JobSpec
{
    std::string workload;
    std::string machine;  ///< validated machine spec, e.g. "raw4x4"
    AlgorithmSpec algorithm;
    /** Also run the one-cluster normalisation to compute speedup. */
    bool computeSpeedup = true;
};

/** How a job ultimately ended. */
enum class JobOutcome {
    Ok,       ///< produced a verified schedule (possibly after retry)
    Failed,   ///< every attempt failed (spec, checker, fault, internal)
    Timeout,  ///< the final attempt exceeded the deadline
    /**
     * A shutdown request (signal or injected interrupt) stopped the
     * job before it reached a terminal outcome.  Unlike the other
     * non-ok outcomes this is not a verdict about the job: it is never
     * journaled, and a resumed run executes the job from scratch.
     */
    Interrupted,
};

/** Stable lower-case name, e.g. "timeout" (used in JSON). */
const char *jobOutcomeName(JobOutcome outcome);

/** Inverse of jobOutcomeName; nullopt for unknown names. */
std::optional<JobOutcome> parseJobOutcomeName(const std::string &name);

/**
 * The job's deterministic identity, "workload/machine/algorithm".
 * Doubles as the fault-scope key, the log context, and the journal
 * record key -- one spelling everywhere.
 */
std::string jobKey(const JobSpec &spec);

/** Execution policy shared by every job of a grid. */
struct JobPolicy
{
    /** Per-attempt deadline in milliseconds; 0 = none. */
    int deadlineMs = 0;
    /** Extra attempts for failed/timed-out jobs (bounded, inline). */
    int retries = 0;
    /** Armed fault plan; nullptr = none.  Borrowed, not owned. */
    const FaultPlan *faults = nullptr;
};

/**
 * Memoized single-cluster baselines keyed by (workload, machine):
 * computed once per pair instead of once per job, and carrying a
 * Status so a failed baseline fails its dependents with a diagnosis
 * rather than a crash.
 */
struct BaselineEntry
{
    Status status;
    int makespan = 0;
};
using BaselineMemo =
    std::map<std::pair<std::string, std::string>, BaselineEntry>;

/** Structured result of one job (everything the paper's tables need). */
struct JobResult
{
    // Identity (echoed from the spec so a result is self-describing).
    std::string workload;
    std::string machine;
    std::string algorithm;      ///< AlgorithmSpec::text()
    std::string algorithmName;  ///< display name, e.g. "Convergent"

    // Outcome of the job's (possibly retried) execution.
    JobOutcome outcome = JobOutcome::Ok;
    /** Error class of the final failed attempt; Ok when the job is. */
    ErrorCode error = ErrorCode::Ok;
    /** Deterministic diagnostic text; empty when the job succeeded. */
    std::string diagnostic;
    /** Attempts consumed (1 = first try; > 1 and Ok = retried). */
    int attempts = 1;

    // Worker metadata, set only when the job ran under --isolate and
    // its worker process died (error is WorkerCrashed/WorkerKilled).
    // Deterministic for injected deaths, so they journal and replay
    // byte-identically like any other outcome.
    /** Signal that killed the worker; 0 when it exited normally. */
    int workerSignal = 0;
    /** Worker exit status for a nonzero-exit death; 0 otherwise. */
    int workerExitStatus = 0;

    // Deterministic measurements (valid only when ok()).
    int instructions = 0;
    int makespan = 0;
    int criticalPathLength = 0;
    /** One-cluster makespan; 0 when speedup was not requested. */
    int singleClusterMakespan = 0;
    /** makespan(1 cluster) / makespan; 0 when not requested. */
    double speedup = 0.0;
    /** Cluster per instruction (the spatial assignment); for online
     *  jobs, the committed region ids in timeline order instead. */
    std::vector<int> assignment;

    // Online measurements, set only for stream/policy cells (see
    // online/online_grid.hh); regions == 0 marks an offline job.
    /** Regions committed by the online run. */
    int regions = 0;
    /** Sum over regions of weight x completion cycle. */
    int64_t weightedCompletion = 0;
    /** Max over regions of completion - release. */
    int maxFlowTime = 0;
    /** Mean flow time (exact ratio of integers). */
    double meanFlowTime = 0.0;
    /** Regions that completed after their deadline. */
    int deadlineMisses = 0;
    /** Commits rolled back by preempt-and-recommit. */
    int preemptions = 0;
    /** Decisions that fell back to UAS on a budget expiry. */
    int fallbackDecisions = 0;

    // Wall-clock observability (excluded from deterministic output).
    double seconds = 0.0;  ///< scheduling time of the measured run
    /** Per-pass convergence + timing; empty for one-shot baselines. */
    std::vector<PassStep> trace;

    bool ok() const { return outcome == JobOutcome::Ok; }
    bool retriedThenOk() const { return ok() && attempts > 1; }
};

/**
 * Execute one job under @p policy: every recoverable failure --
 * invalid spec, checker rejection, deadline, injected fault, escaped
 * exception -- becomes the job's outcome, never a process exit.
 * Retryable failures (anything but InvalidSpec) are re-attempted up to
 * policy.retries times.  @p baselines, when non-null, supplies the
 * memoized single-cluster makespans (grid use); otherwise the job
 * computes its own.
 */
JobResult runJob(const JobSpec &spec, const JobPolicy &policy = {},
                 const BaselineMemo *baselines = nullptr);

/**
 * Deterministic jittered exponential backoff before retry @p attempt
 * (2-based: the attempt about to run) of the job identified by
 * @p job_key: base 10 ms doubling per attempt, capped at 200 ms, with
 * a [0.5, 1.5) jitter factor drawn from a seed that is a pure
 * function of (job_key, attempt) -- so recorded delays are part of
 * the deterministic report layer and identical at any --jobs value.
 */
int retryBackoffMs(const std::string &job_key, int attempt);

} // namespace csched

#endif // CSCHED_RUNNER_JOB_HH
