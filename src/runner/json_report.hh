/**
 * @file
 * JSON serialization of grid reports -- the machine-readable output
 * every downstream perf/ablation analysis consumes.
 *
 * Two layers of fields:
 *  - deterministic results (per-job outcomes and diagnostics,
 *    makespans, speedups, assignments, convergence fractions): always
 *    written, bit-identical for any thread count and across runs;
 *  - wall-clock observability (per-run and per-pass seconds, pool
 *    size): written unless options.timings is false, so reports meant
 *    for byte-wise comparison use `--no-timings`.
 *
 * Schema v2 (over v1): every job carries "outcome"/"attempts" (plus
 * "error" and "diagnostic" when not ok), measurements appear only for
 * ok jobs, and the report carries a "summary" tally -- so a salvaged
 * partial run is a complete, self-describing document.
 */

#ifndef CSCHED_RUNNER_JSON_REPORT_HH
#define CSCHED_RUNNER_JSON_REPORT_HH

#include <ostream>
#include <string>

#include "runner/grid_runner.hh"

namespace csched {

/** What goes into a serialized report. */
struct ReportOptions
{
    /** Include wall-clock fields (seconds, per-pass seconds, pool). */
    bool timings = true;
    /** Include the per-instruction assignment vectors. */
    bool assignments = true;
    /** Include the per-pass convergence trace. */
    bool trace = true;
};

/** Schema identifier written into every report. */
inline const char *kGridReportSchema = "csched-grid-report-v2";

/** Serialize @p report as JSON (trailing newline included). */
void writeGridReport(std::ostream &out, const GridReport &report,
                     const ReportOptions &options = ReportOptions());

/** Convenience: serialize to a string (used by tests and the CLI). */
std::string gridReportToJson(const GridReport &report,
                             const ReportOptions &options =
                                 ReportOptions());

} // namespace csched

#endif // CSCHED_RUNNER_JSON_REPORT_HH
