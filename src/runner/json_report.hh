/**
 * @file
 * JSON serialization of grid reports -- the machine-readable output
 * every downstream perf/ablation analysis consumes.
 *
 * Two layers of fields:
 *  - deterministic results (per-job outcomes and diagnostics,
 *    makespans, speedups, assignments, convergence fractions): always
 *    written, bit-identical for any thread count and across runs;
 *  - wall-clock observability (per-run and per-pass seconds, pool
 *    size): written unless options.timings is false, so reports meant
 *    for byte-wise comparison use `--no-timings`.
 *
 * Schema v2 (over v1): every job carries "outcome"/"attempts" (plus
 * "error" and "diagnostic" when not ok), measurements appear only for
 * ok jobs, and the report carries a "summary" tally -- so a salvaged
 * partial run is a complete, self-describing document.
 */

#ifndef CSCHED_RUNNER_JSON_REPORT_HH
#define CSCHED_RUNNER_JSON_REPORT_HH

#include <optional>
#include <ostream>
#include <string>

#include "runner/grid_runner.hh"

namespace csched {

/** What goes into a serialized report. */
struct ReportOptions
{
    /** Include wall-clock fields (seconds, per-pass seconds, pool). */
    bool timings = true;
    /** Include the per-instruction assignment vectors. */
    bool assignments = true;
    /** Include the per-pass convergence trace. */
    bool trace = true;
};

/** Schema identifier written into every report. */
inline const char *kGridReportSchema = "csched-grid-report-v2";

/** Serialize @p report as JSON (trailing newline included). */
void writeGridReport(std::ostream &out, const GridReport &report,
                     const ReportOptions &options = ReportOptions());

/** Convenience: serialize to a string (used by tests and the CLI). */
std::string gridReportToJson(const GridReport &report,
                             const ReportOptions &options =
                                 ReportOptions());

class JsonWriter;
struct JsonValue;

/**
 * The *wire* form of a JobResult: every field, deterministic and
 * wall-clock alike, so a round trip reproduces the result exactly.
 * This one spelling backs both persistence formats -- journal records
 * (runner/journal.cc) and worker reply frames (runner/worker.cc).
 * Writes the fields of an already-open JSON object.
 */
void writeJobResultFields(JsonWriter &w, const JobResult &result);

/**
 * Inverse of writeJobResultFields; nullopt when @p value is missing
 * required fields or malformed.  Fields added after v1 (worker
 * metadata, skipped trace flags) are optional on read, so older
 * journals still load.
 */
std::optional<JobResult> parseJobResultFields(const JsonValue &value);

} // namespace csched

#endif // CSCHED_RUNNER_JSON_REPORT_HH
