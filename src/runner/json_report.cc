#include "runner/json_report.hh"

#include <sstream>

#include "support/json.hh"

namespace csched {

namespace {

void
writeJob(JsonWriter &w, const JobResult &job, const ReportOptions &options)
{
    w.beginObject();
    w.key("workload").value(job.workload);
    w.key("machine").value(job.machine);
    w.key("algorithm").value(job.algorithm);
    w.key("outcome").value(std::string(jobOutcomeName(job.outcome)));
    w.key("attempts").value(job.attempts);
    if (!job.ok()) {
        // Failed cells carry their diagnosis and nothing else: the
        // measurement fields would be meaningless.
        w.key("error").value(std::string(errorCodeName(job.error)));
        w.key("diagnostic").value(job.diagnostic);
        w.endObject();
        return;
    }
    w.key("algorithmName").value(job.algorithmName);
    w.key("instructions").value(job.instructions);
    w.key("makespan").value(job.makespan);
    w.key("criticalPathLength").value(job.criticalPathLength);
    if (job.singleClusterMakespan > 0) {
        w.key("singleClusterMakespan")
            .value(job.singleClusterMakespan);
        w.key("speedup").value(job.speedup);
    }
    if (options.assignments)
        w.key("assignment").value(job.assignment);
    if (options.timings)
        w.key("seconds").value(job.seconds);
    if (options.trace && !job.trace.empty()) {
        w.key("trace").beginArray();
        for (const auto &step : job.trace) {
            w.beginObject();
            w.key("pass").value(step.pass);
            w.key("fractionChanged").value(step.fractionChanged);
            w.key("temporalOnly").value(step.temporalOnly);
            if (options.timings)
                w.key("seconds").value(step.seconds);
            w.endObject();
        }
        w.endArray();
    }
    w.endObject();
}

} // namespace

void
writeGridReport(std::ostream &out, const GridReport &report,
                const ReportOptions &options)
{
    JsonWriter w(out);
    w.beginObject();
    w.key("schema").value(kGridReportSchema);
    // Always written (false on a complete run) so a resumed-to-
    // completion report is byte-identical to an uninterrupted one.
    w.key("interrupted").value(report.interrupted);
    if (options.timings) {
        w.key("threads").value(report.threads);
        w.key("wallSeconds").value(report.wallSeconds);
    }
    w.key("summary").beginObject();
    w.key("total").value(report.summary.total);
    w.key("ok").value(report.summary.ok);
    w.key("failed").value(report.summary.failed);
    w.key("timeout").value(report.summary.timeout);
    w.key("retried").value(report.summary.retried);
    w.key("interrupted").value(report.summary.interrupted);
    w.endObject();
    w.key("results").beginArray();
    for (const auto &job : report.results)
        writeJob(w, job, options);
    w.endArray();
    w.endObject();
    out << "\n";
}

std::string
gridReportToJson(const GridReport &report, const ReportOptions &options)
{
    std::ostringstream out;
    writeGridReport(out, report, options);
    return out.str();
}

} // namespace csched
