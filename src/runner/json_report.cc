#include "runner/json_report.hh"

#include <sstream>

#include "support/json.hh"

namespace csched {

namespace {

void
writeJob(JsonWriter &w, const JobResult &job, const ReportOptions &options)
{
    w.beginObject();
    w.key("workload").value(job.workload);
    w.key("machine").value(job.machine);
    w.key("algorithm").value(job.algorithm);
    w.key("outcome").value(std::string(jobOutcomeName(job.outcome)));
    w.key("attempts").value(job.attempts);
    if (!job.ok()) {
        // Failed cells carry their diagnosis and nothing else: the
        // measurement fields would be meaningless.
        w.key("error").value(std::string(errorCodeName(job.error)));
        w.key("diagnostic").value(job.diagnostic);
        if (job.error == ErrorCode::WorkerCrashed ||
            job.error == ErrorCode::WorkerKilled) {
            w.key("workerSignal").value(job.workerSignal);
            w.key("workerExitStatus").value(job.workerExitStatus);
        }
        w.endObject();
        return;
    }
    w.key("algorithmName").value(job.algorithmName);
    w.key("instructions").value(job.instructions);
    w.key("makespan").value(job.makespan);
    w.key("criticalPathLength").value(job.criticalPathLength);
    if (job.regions > 0) {
        // Online cells (stream workload x policy): the responsiveness
        // scores next to the shared throughput fields above.
        w.key("online").beginObject();
        w.key("regions").value(job.regions);
        w.key("weightedCompletion").value(job.weightedCompletion);
        w.key("maxFlowTime").value(job.maxFlowTime);
        w.key("meanFlowTime").value(job.meanFlowTime);
        w.key("deadlineMisses").value(job.deadlineMisses);
        w.key("preemptions").value(job.preemptions);
        w.key("fallbackDecisions").value(job.fallbackDecisions);
        w.endObject();
    }
    if (job.singleClusterMakespan > 0) {
        w.key("singleClusterMakespan")
            .value(job.singleClusterMakespan);
        w.key("speedup").value(job.speedup);
    }
    if (options.assignments)
        w.key("assignment").value(job.assignment);
    if (options.timings)
        w.key("seconds").value(job.seconds);
    if (options.trace && !job.trace.empty()) {
        w.key("trace").beginArray();
        for (const auto &step : job.trace) {
            w.beginObject();
            w.key("pass").value(step.pass);
            w.key("fractionChanged").value(step.fractionChanged);
            w.key("temporalOnly").value(step.temporalOnly);
            // Written only when set, so reports of runs where no pass
            // misbehaved keep their exact pre-degradation bytes.
            if (step.skipped)
                w.key("skipped").value(true);
            if (options.timings)
                w.key("seconds").value(step.seconds);
            w.endObject();
        }
        w.endArray();
    }
    w.endObject();
}

} // namespace

void
writeGridReport(std::ostream &out, const GridReport &report,
                const ReportOptions &options)
{
    JsonWriter w(out);
    w.beginObject();
    w.key("schema").value(kGridReportSchema);
    // Always written (false on a complete run) so a resumed-to-
    // completion report is byte-identical to an uninterrupted one.
    w.key("interrupted").value(report.interrupted);
    if (options.timings) {
        w.key("threads").value(report.threads);
        w.key("wallSeconds").value(report.wallSeconds);
    }
    w.key("summary").beginObject();
    w.key("total").value(report.summary.total);
    w.key("ok").value(report.summary.ok);
    w.key("failed").value(report.summary.failed);
    w.key("timeout").value(report.summary.timeout);
    w.key("retried").value(report.summary.retried);
    w.key("interrupted").value(report.summary.interrupted);
    w.endObject();
    w.key("results").beginArray();
    for (const auto &job : report.results)
        writeJob(w, job, options);
    w.endArray();
    w.endObject();
    out << "\n";
}

std::string
gridReportToJson(const GridReport &report, const ReportOptions &options)
{
    std::ostringstream out;
    writeGridReport(out, report, options);
    return out.str();
}

void
writeJobResultFields(JsonWriter &w, const JobResult &result)
{
    w.key("workload").value(result.workload);
    w.key("machine").value(result.machine);
    w.key("algorithm").value(result.algorithm);
    w.key("algorithmName").value(result.algorithmName);
    w.key("outcome").value(
        std::string(jobOutcomeName(result.outcome)));
    w.key("error").value(std::string(errorCodeName(result.error)));
    w.key("diagnostic").value(result.diagnostic);
    w.key("attempts").value(result.attempts);
    w.key("workerSignal").value(result.workerSignal);
    w.key("workerExitStatus").value(result.workerExitStatus);
    w.key("instructions").value(result.instructions);
    w.key("makespan").value(result.makespan);
    w.key("criticalPathLength").value(result.criticalPathLength);
    w.key("singleClusterMakespan")
        .value(result.singleClusterMakespan);
    w.key("speedup").value(result.speedup);
    w.key("assignment").value(result.assignment);
    w.key("regions").value(result.regions);
    w.key("weightedCompletion").value(result.weightedCompletion);
    w.key("maxFlowTime").value(result.maxFlowTime);
    w.key("meanFlowTime").value(result.meanFlowTime);
    w.key("deadlineMisses").value(result.deadlineMisses);
    w.key("preemptions").value(result.preemptions);
    w.key("fallbackDecisions").value(result.fallbackDecisions);
    w.key("seconds").value(result.seconds);
    w.key("trace").beginArray();
    for (const auto &step : result.trace) {
        w.beginObject();
        w.key("pass").value(step.pass);
        w.key("fractionChanged").value(step.fractionChanged);
        w.key("temporalOnly").value(step.temporalOnly);
        w.key("skipped").value(step.skipped);
        w.key("seconds").value(step.seconds);
        w.endObject();
    }
    w.endArray();
}

std::optional<JobResult>
parseJobResultFields(const JsonValue &value)
{
    if (value.kind != JsonValue::Kind::Object)
        return std::nullopt;
    for (const char *field :
         {"workload", "machine", "algorithm", "algorithmName",
          "outcome", "error", "diagnostic", "attempts",
          "instructions", "makespan", "criticalPathLength",
          "singleClusterMakespan", "speedup", "assignment",
          "seconds", "trace"})
        if (value.find(field) == nullptr)
            return std::nullopt;

    JobResult result;
    result.workload = value.at("workload").string;
    result.machine = value.at("machine").string;
    result.algorithm = value.at("algorithm").string;
    result.algorithmName = value.at("algorithmName").string;

    const auto outcome =
        parseJobOutcomeName(value.at("outcome").string);
    const auto error = parseErrorCodeName(value.at("error").string);
    if (!outcome.has_value())
        return std::nullopt;
    result.outcome = *outcome;
    result.error = error.value_or(ErrorCode::Ok);
    result.diagnostic = value.at("diagnostic").string;
    result.attempts = value.at("attempts").asInt();
    // Post-v1 fields: absent in journals written before the worker
    // layer existed, so read them tolerantly.
    if (const JsonValue *sig = value.find("workerSignal"))
        result.workerSignal = sig->asInt();
    if (const JsonValue *status = value.find("workerExitStatus"))
        result.workerExitStatus = status->asInt();
    // Online fields: also post-v1, also tolerant.
    if (const JsonValue *regions = value.find("regions"))
        result.regions = regions->asInt();
    if (const JsonValue *wc = value.find("weightedCompletion"))
        result.weightedCompletion = static_cast<int64_t>(wc->asDouble());
    if (const JsonValue *flow = value.find("maxFlowTime"))
        result.maxFlowTime = flow->asInt();
    if (const JsonValue *flow = value.find("meanFlowTime"))
        result.meanFlowTime = flow->asDouble();
    if (const JsonValue *misses = value.find("deadlineMisses"))
        result.deadlineMisses = misses->asInt();
    if (const JsonValue *preempts = value.find("preemptions"))
        result.preemptions = preempts->asInt();
    if (const JsonValue *fallbacks = value.find("fallbackDecisions"))
        result.fallbackDecisions = fallbacks->asInt();
    result.instructions = value.at("instructions").asInt();
    result.makespan = value.at("makespan").asInt();
    result.criticalPathLength =
        value.at("criticalPathLength").asInt();
    result.singleClusterMakespan =
        value.at("singleClusterMakespan").asInt();
    result.speedup = value.at("speedup").asDouble();
    result.seconds = value.at("seconds").asDouble();
    for (const auto &entry : value.at("assignment").array)
        result.assignment.push_back(entry.asInt());
    for (const auto &step : value.at("trace").array) {
        if (step.kind != JsonValue::Kind::Object ||
            step.find("pass") == nullptr ||
            step.find("fractionChanged") == nullptr ||
            step.find("temporalOnly") == nullptr ||
            step.find("seconds") == nullptr)
            return std::nullopt;
        PassStep parsed;
        parsed.pass = step.at("pass").string;
        parsed.fractionChanged =
            step.at("fractionChanged").asDouble();
        parsed.temporalOnly = step.at("temporalOnly").boolean;
        if (const JsonValue *skipped = step.find("skipped"))
            parsed.skipped = skipped->boolean;
        parsed.seconds = step.at("seconds").asDouble();
        result.trace.push_back(std::move(parsed));
    }
    return result;
}

} // namespace csched
