#include "runner/shutdown.hh"

#include <atomic>
#include <csignal>

#include "support/cancel.hh"

namespace csched {

namespace {

// Async-signal-safety audit (everything reachable from the handler):
// the handler may run on a thread that holds *any* lock -- including
// the logging mutex mid-fprintf -- so it must only touch lock-free
// atomics and functions the POSIX list blesses.  It therefore does
// exactly four things: a lock-free CAS on the signal slot, a
// lock-free load of the drain-style flag, a lock-free store on the
// global-cancel flag (support/cancel.cc), and -- on a *second* drain
// signal -- a std::signal() restore plus raise() (both
// async-signal-safe per POSIX).  No logging, no allocation, no
// mutexes; the regression test in tests/journal_test.cc raises
// SIGTERM while the logging mutex is held to keep it that way.
std::atomic<int> g_interrupt_signal{0};
static_assert(std::atomic<int>::is_always_lock_free,
              "the signal handler needs a lock-free interrupt flag");

// Serve-style soft drain: the first signal records the drain request
// but leaves global cancellation to escalateInterrupt() (the serve
// drain deadline).  Grid style (the default) cancels immediately.
std::atomic<bool> g_soft_drain{false};
static_assert(std::atomic<bool>::is_always_lock_free,
              "the signal handler needs a lock-free style flag");

extern "C" void
gridSignalHandler(int signum)
{
    int expected = 0;
    if (!g_interrupt_signal.compare_exchange_strong(expected, signum)) {
        // Second drain signal (same or different): escalate to an
        // immediate death instead of re-arming the drain.  Restoring
        // the default disposition and re-raising lets the kernel
        // deliver the pending signal the moment the handler returns,
        // so the process dies by the real signal (correct wait status
        // for the parent, conventional 128+signum for the shell).
        std::signal(signum, SIG_DFL);
        ::raise(signum);
        return;
    }
    if (!g_soft_drain.load())
        requestGlobalCancel();
}

void
installDrainHandlers()
{
    std::signal(SIGINT, gridSignalHandler);
    std::signal(SIGTERM, gridSignalHandler);
    std::signal(SIGHUP, gridSignalHandler);
}

} // namespace

void
installGridSignalHandlers()
{
    g_soft_drain.store(false);
    installDrainHandlers();
}

void
installServeSignalHandlers()
{
    g_soft_drain.store(true);
    installDrainHandlers();
}

void
requestInterrupt(int signum)
{
    int expected = 0;
    g_interrupt_signal.compare_exchange_strong(expected, signum);
    if (!g_soft_drain.load())
        requestGlobalCancel();
}

void
escalateInterrupt()
{
    requestGlobalCancel();
}

int
interruptSignal()
{
    return g_interrupt_signal.load();
}

bool
interruptRequested()
{
    // In serve style a recorded-but-unescalated drain must *not* read
    // as "abort in-flight work"; only the armed cancellation root
    // does.  In grid style the two arm together, so the disjunction
    // preserves the historical behaviour for direct
    // requestGlobalCancel() callers (tests).
    return globalCancelRequested() ||
           (!g_soft_drain.load() && g_interrupt_signal.load() != 0);
}

bool
drainRequested()
{
    return g_interrupt_signal.load() != 0 || globalCancelRequested();
}

void
clearInterrupt()
{
    g_interrupt_signal.store(0);
    resetGlobalCancel();
}

int
interruptExitCode(int signum)
{
    return 128 + (signum > 0 ? signum : SIGINT);
}

} // namespace csched
