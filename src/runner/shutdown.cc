#include "runner/shutdown.hh"

#include <atomic>
#include <csignal>

#include "support/cancel.hh"

namespace csched {

namespace {

std::atomic<int> g_interrupt_signal{0};

extern "C" void
gridSignalHandler(int signum)
{
    requestInterrupt(signum);
    // One chance at a graceful drain: restore the default disposition
    // so a second signal kills the process outright.
    std::signal(signum, SIG_DFL);
}

} // namespace

void
installGridSignalHandlers()
{
    std::signal(SIGINT, gridSignalHandler);
    std::signal(SIGTERM, gridSignalHandler);
}

void
requestInterrupt(int signum)
{
    int expected = 0;
    g_interrupt_signal.compare_exchange_strong(expected, signum);
    requestGlobalCancel();
}

int
interruptSignal()
{
    return g_interrupt_signal.load();
}

bool
interruptRequested()
{
    return g_interrupt_signal.load() != 0 || globalCancelRequested();
}

void
clearInterrupt()
{
    g_interrupt_signal.store(0);
    resetGlobalCancel();
}

int
interruptExitCode(int signum)
{
    return 128 + (signum > 0 ? signum : SIGINT);
}

} // namespace csched
