#include "runner/shutdown.hh"

#include <atomic>
#include <csignal>

#include "support/cancel.hh"

namespace csched {

namespace {

// Async-signal-safety audit (everything reachable from the handler):
// the handler may run on a thread that holds *any* lock -- including
// the logging mutex mid-fprintf -- so it must only touch lock-free
// atomics and functions the POSIX list blesses.  It therefore does
// exactly three things: a lock-free CAS on this flag, a lock-free
// store on the global-cancel flag (support/cancel.cc), and a
// std::signal() re-arm (async-signal-safe per POSIX signal()).  No
// logging, no allocation, no mutexes; the regression test in
// tests/journal_test.cc raises SIGTERM while the logging mutex is
// held to keep it that way.
std::atomic<int> g_interrupt_signal{0};
static_assert(std::atomic<int>::is_always_lock_free,
              "the signal handler needs a lock-free interrupt flag");

extern "C" void
gridSignalHandler(int signum)
{
    requestInterrupt(signum);
    // One chance at a graceful drain: restore the default disposition
    // so a second signal kills the process outright.
    std::signal(signum, SIG_DFL);
}

} // namespace

void
installGridSignalHandlers()
{
    std::signal(SIGINT, gridSignalHandler);
    std::signal(SIGTERM, gridSignalHandler);
}

void
requestInterrupt(int signum)
{
    int expected = 0;
    g_interrupt_signal.compare_exchange_strong(expected, signum);
    requestGlobalCancel();
}

int
interruptSignal()
{
    return g_interrupt_signal.load();
}

bool
interruptRequested()
{
    return g_interrupt_signal.load() != 0 || globalCancelRequested();
}

void
clearInterrupt()
{
    g_interrupt_signal.store(0);
    resetGlobalCancel();
}

int
interruptExitCode(int signum)
{
    return 128 + (signum > 0 ? signum : SIGINT);
}

} // namespace csched
