#include "eval/experiment.hh"

#include <chrono>

#include "baseline/pcc.hh"
#include "baseline/rawcc_partitioner.hh"
#include "baseline/single_cluster_scheduler.hh"
#include "baseline/uas.hh"
#include "sched/schedule_checker.hh"
#include "support/logging.hh"

namespace csched {

ConvergentAlgorithm::ConvergentAlgorithm(const MachineModel &machine)
    : scheduler_(ConvergentScheduler::forMachine(machine))
{
}

ConvergentAlgorithm::ConvergentAlgorithm(const MachineModel &machine,
                                         const std::string &sequence,
                                         PassParams params)
    : scheduler_(machine, sequence, params)
{
}

Schedule
ConvergentAlgorithm::run(const DependenceGraph &graph) const
{
    return scheduler_.schedule(graph).schedule;
}

ConvergentResult
ConvergentAlgorithm::runFull(const DependenceGraph &graph) const
{
    return scheduler_.schedule(graph);
}

std::unique_ptr<SchedulingAlgorithm>
makeAlgorithm(AlgorithmKind kind, const MachineModel &machine)
{
    switch (kind) {
      case AlgorithmKind::Convergent:
        return std::make_unique<ConvergentAlgorithm>(machine);
      case AlgorithmKind::Uas:
        return std::make_unique<UasScheduler>(machine);
      case AlgorithmKind::Pcc:
        return std::make_unique<PccScheduler>(machine);
      case AlgorithmKind::Rawcc:
        return std::make_unique<RawccPartitioner>(machine);
      case AlgorithmKind::Single:
        return std::make_unique<SingleClusterScheduler>(machine);
    }
    CSCHED_PANIC("unknown algorithm kind ", static_cast<int>(kind));
}

RunResult
runAndCheck(const SchedulingAlgorithm &algorithm,
            const DependenceGraph &graph, const MachineModel &machine)
{
    const auto begin = std::chrono::steady_clock::now();
    const Schedule schedule = algorithm.run(graph);
    const auto end = std::chrono::steady_clock::now();

    const auto check = checkSchedule(graph, machine, schedule);
    if (!check.ok()) {
        CSCHED_FATAL(algorithm.name(), " produced an illegal schedule: ",
                     check.message());
    }

    RunResult result;
    result.algorithm = algorithm.name();
    result.instructions = graph.numInstructions();
    result.makespan = schedule.makespan();
    result.seconds =
        std::chrono::duration<double>(end - begin).count();
    return result;
}

} // namespace csched
