#include "eval/experiment.hh"

#include <algorithm>
#include <cctype>
#include <chrono>

#include "baseline/bug.hh"
#include "baseline/pcc.hh"
#include "baseline/rawcc_partitioner.hh"
#include "baseline/single_cluster_scheduler.hh"
#include "baseline/uas.hh"
#include "convergent/pass_registry.hh"
#include "convergent/sequences.hh"
#include "online/policy.hh"
#include "sched/schedule_checker.hh"
#include "support/fault_injection.hh"
#include "support/logging.hh"
#include "support/str.hh"

namespace csched {

ConvergentAlgorithm::ConvergentAlgorithm(const MachineModel &machine)
    : scheduler_(ConvergentScheduler::forMachine(machine))
{
}

ConvergentAlgorithm::ConvergentAlgorithm(const MachineModel &machine,
                                         const std::string &sequence,
                                         PassParams params)
    : scheduler_(machine, sequence, params)
{
}

ScheduleResult
ConvergentAlgorithm::run(const DependenceGraph &graph) const
{
    ConvergentResult full = scheduler_.schedule(graph);
    return {std::move(full.schedule), std::move(full.trace)};
}

ConvergentResult
ConvergentAlgorithm::runDetailed(const DependenceGraph &graph) const
{
    return scheduler_.schedule(graph);
}

std::string
AlgorithmSpec::text() const
{
    return sequence.empty() ? name : name + ":" + sequence;
}

const std::vector<std::string> &
knownAlgorithmNames()
{
    static const std::vector<std::string> names{
        "convergent", "uas", "pcc", "rawcc", "single", "bug"};
    return names;
}

std::optional<AlgorithmSpec>
parseAlgorithmSpec(const std::string &text, std::string *error)
{
    auto fail = [&](const std::string &why) -> std::optional<AlgorithmSpec> {
        if (error != nullptr)
            *error = why;
        return std::nullopt;
    };

    const auto colon = text.find(':');
    AlgorithmSpec spec;
    spec.name = trim(text.substr(0, colon));
    std::transform(spec.name.begin(), spec.name.end(),
                   spec.name.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (colon != std::string::npos)
        spec.sequence = trim(text.substr(colon + 1));

    // Online policies parse as algorithms so they ride the grid's
    // algorithm axis (and cross the worker pipe) unchanged; the grid
    // runner routes them to the online job path.  tryMakeAlgorithm
    // still rejects them -- they are not offline SchedulingAlgorithms.
    if (isOnlinePolicyName(spec.name)) {
        std::string why;
        if (!parseOnlinePolicy(spec.text(), &why))
            return fail(why);
        return spec;
    }

    const auto &names = knownAlgorithmNames();
    if (std::find(names.begin(), names.end(), spec.name) == names.end())
        return fail("unknown algorithm '" + spec.name + "' (expected " +
                    join(names, "|") + " or an online policy, see "
                    "online/policy.hh)");

    if (!spec.sequence.empty() && spec.name != "convergent")
        return fail("algorithm '" + spec.name +
                    "' does not take a pass sequence");

    if (!spec.sequence.empty()) {
        const auto known = knownPassNames();
        for (const auto &part : split(spec.sequence, ',')) {
            const std::string pass = toUpper(trim(part));
            if (pass.empty())
                return fail("empty pass name in sequence '" +
                            spec.sequence + "'");
            if (std::find(known.begin(), known.end(), pass) ==
                known.end())
                return fail("unknown pass '" + pass + "' (expected " +
                            join(known, "|") + ")");
        }
    }
    return spec;
}

std::unique_ptr<SchedulingAlgorithm>
makeAlgorithm(const AlgorithmSpec &spec, const MachineModel &machine)
{
    auto made = tryMakeAlgorithm(spec, machine);
    if (!made.ok())
        CSCHED_FATAL(made.status().message());
    return std::move(*made);
}

StatusOr<std::unique_ptr<SchedulingAlgorithm>>
tryMakeAlgorithm(const AlgorithmSpec &spec, const MachineModel &machine)
{
    if (spec.name == "convergent") {
        if (spec.sequence.empty() && !spec.params.has_value())
            return std::make_unique<ConvergentAlgorithm>(machine);
        const bool is_raw = machine.commStyle() == CommStyle::Network;
        const std::string sequence =
            spec.sequence.empty()
                ? (is_raw ? rawPassSequence() : vliwPassSequence())
                : spec.sequence;
        const PassParams params = spec.params.value_or(
            is_raw ? rawPassParams() : vliwPassParams());
        return std::make_unique<ConvergentAlgorithm>(machine, sequence,
                                                     params);
    }
    if (spec.name == "uas")
        return std::make_unique<UasScheduler>(machine);
    if (spec.name == "pcc")
        return std::make_unique<PccScheduler>(machine);
    if (spec.name == "rawcc")
        return std::make_unique<RawccPartitioner>(machine);
    if (spec.name == "single")
        return std::make_unique<SingleClusterScheduler>(machine);
    if (spec.name == "bug")
        return std::make_unique<BugScheduler>(machine);
    return Status::invalidSpec(
        "unknown algorithm '" + spec.name +
        "' (specs must come from parseAlgorithmSpec)");
}

RunResult
runAndCheck(const SchedulingAlgorithm &algorithm,
            const DependenceGraph &graph, const MachineModel &machine)
{
    auto run = tryRunAndCheck(algorithm, graph, machine);
    if (!run.ok())
        CSCHED_FATAL(run.status().message());
    return std::move(*run);
}

void
remapPreplacedForMachine(DependenceGraph &graph,
                         const MachineModel &machine)
{
    if (!machine.degraded())
        return;
    std::vector<int> remap(machine.numClusters());
    for (int c = 0; c < machine.numClusters(); ++c)
        remap[c] = machine.remapToAlive(c);
    graph.remapPreplacedHomes(remap);
}

StatusOr<RunResult>
tryRunAndCheck(const SchedulingAlgorithm &algorithm,
               const DependenceGraph &graph, const MachineModel &machine)
{
    // Pre-flight on degraded machines: a preplaced home on a dead
    // cluster means the graph was never re-homed for this machine
    // (remapPreplacedForMachine); no algorithm can satisfy both the
    // preplacement and the dead-cluster checker rules, so fail
    // structurally instead of letting a scheduler trip an invariant.
    if (machine.degraded()) {
        for (const auto &instr : graph.instructions()) {
            if (instr.preplaced() &&
                !machine.clusterAlive(instr.homeCluster)) {
                return Status::invalidSpec(
                    "preplaced instruction " + std::to_string(instr.id) +
                    " is homed on dead cluster " +
                    std::to_string(instr.homeCluster) +
                    " (re-home the graph with "
                    "remapPreplacedForMachine)");
            }
        }
    }

    const auto begin = std::chrono::steady_clock::now();
    ScheduleResult produced = algorithm.run(graph);
    const auto end = std::chrono::steady_clock::now();

    checkpoint("checker.verify");
    const auto check = checkSchedule(graph, machine, produced.schedule);
    if (!check.ok()) {
        return Status::checkFailed(algorithm.name() +
                                   " produced an illegal schedule: " +
                                   check.message());
    }

    return RunResult{
        algorithm.name(), graph.numInstructions(),
        produced.schedule.makespan(),
        std::chrono::duration<double>(end - begin).count(),
        std::move(produced)};
}

} // namespace csched
