/**
 * @file
 * Speedup computation as in the paper's Table 2 and Figure 8:
 * "speedup is relative to performance on one tile / a single-cluster
 * machine".  The same kernel (same unroll, i.e. the same bank count as
 * the target machine) is scheduled on the one-cluster sibling of the
 * target machine, and speedup = makespan(1 cluster) / makespan(N).
 */

#ifndef CSCHED_EVAL_SPEEDUP_HH
#define CSCHED_EVAL_SPEEDUP_HH

#include <string>

#include "machine/machine.hh"
#include "sched/algorithm.hh"
#include "support/status.hh"
#include "workloads/workloads.hh"

namespace csched {

/**
 * Makespan of @p spec on the one-cluster sibling of @p target (the
 * kernel is built with target's bank count but preplaced for one
 * cluster).
 */
int singleClusterMakespan(const WorkloadSpec &spec,
                          const MachineModel &target);

/**
 * Non-fatal variant of singleClusterMakespan for the grid runner's
 * memoized baseline phase: a checker rejection (or injected fault)
 * becomes an error status instead of killing the process.
 */
StatusOr<int> trySingleClusterMakespan(const WorkloadSpec &spec,
                                       const MachineModel &target);

/** Speedup of @p algorithm on @p spec over the one-cluster run. */
double speedupOf(const WorkloadSpec &spec, const MachineModel &machine,
                 const SchedulingAlgorithm &algorithm);

} // namespace csched

#endif // CSCHED_EVAL_SPEEDUP_HH
