/**
 * @file
 * Scoring for online schedules.
 *
 * The bi-criteria framing (Dutot et al., PAPERS.md): an online policy
 * is judged both on throughput (makespan of the whole committed
 * timeline) and on responsiveness (weighted completion time, flow
 * time).  Select-and-Permute's WSPT ordering optimizes the weighted
 * completion objective; FIFO baselines trade it for simplicity.
 * Every metric is integral or an exact ratio of integrals, so reports
 * stay byte-identical across runs.
 */

#ifndef CSCHED_EVAL_ONLINE_METRICS_HH
#define CSCHED_EVAL_ONLINE_METRICS_HH

#include <cstdint>
#include <vector>

#include "online/online_scheduler.hh"

namespace csched {

/** Aggregate scores of one committed online timeline. */
struct OnlineMetrics
{
    /** Regions committed. */
    int regions = 0;
    /** Instructions across all committed regions. */
    int instructions = 0;
    /** Last completion cycle (0 for an empty timeline). */
    int makespan = 0;
    /** Sum over regions of weight x completion cycle. */
    int64_t weightedCompletion = 0;
    /** Max over regions of completion - release. */
    int maxFlowTime = 0;
    /** Mean flow time (exact ratio; 0 for an empty timeline). */
    double meanFlowTime = 0.0;
    /** Regions whose completion exceeded their deadline. */
    int deadlineMisses = 0;
    /** Longest region critical path (the lower bound per region). */
    int maxCriticalPathLength = 0;
};

/** Score a committed timeline; a pure function of the commits. */
OnlineMetrics computeOnlineMetrics(const std::vector<OnlineCommit> &commits);

} // namespace csched

#endif // CSCHED_EVAL_ONLINE_METRICS_HH
