#include "eval/speedup.hh"

#include "baseline/single_cluster_scheduler.hh"
#include "eval/experiment.hh"
#include "support/logging.hh"

namespace csched {

int
singleClusterMakespan(const WorkloadSpec &spec,
                      const MachineModel &target)
{
    const auto single = target.makeSingleCluster();
    const DependenceGraph graph =
        spec.build(target.numClusters(), /*preplace_clusters=*/1);
    const SingleClusterScheduler scheduler(*single);
    return runAndCheck(scheduler, graph, *single).makespan;
}

double
speedupOf(const WorkloadSpec &spec, const MachineModel &machine,
          const SchedulingAlgorithm &algorithm)
{
    const DependenceGraph graph =
        spec.build(machine.numClusters(), machine.numClusters());
    const int makespan =
        runAndCheck(algorithm, graph, machine).makespan;
    CSCHED_ASSERT(makespan > 0, "zero makespan");
    return static_cast<double>(singleClusterMakespan(spec, machine)) /
           static_cast<double>(makespan);
}

} // namespace csched
