#include "eval/speedup.hh"

#include "baseline/single_cluster_scheduler.hh"
#include "eval/experiment.hh"
#include "support/logging.hh"

namespace csched {

int
singleClusterMakespan(const WorkloadSpec &spec,
                      const MachineModel &target)
{
    const auto baseline = trySingleClusterMakespan(spec, target);
    if (!baseline.ok())
        CSCHED_FATAL(baseline.status().message());
    return *baseline;
}

StatusOr<int>
trySingleClusterMakespan(const WorkloadSpec &spec,
                         const MachineModel &target)
{
    const auto single = target.makeSingleCluster();
    const DependenceGraph graph =
        spec.build(target.numClusters(), /*preplace_clusters=*/1);
    const SingleClusterScheduler scheduler(*single);
    auto run = tryRunAndCheck(scheduler, graph, *single);
    if (!run.ok())
        return run.status().withContext("single-cluster baseline");
    return run->makespan;
}

double
speedupOf(const WorkloadSpec &spec, const MachineModel &machine,
          const SchedulingAlgorithm &algorithm)
{
    const DependenceGraph graph =
        spec.build(machine.numClusters(), machine.numClusters());
    const int makespan =
        runAndCheck(algorithm, graph, machine).makespan;
    CSCHED_ASSERT(makespan > 0, "zero makespan");
    return static_cast<double>(singleClusterMakespan(spec, machine)) /
           static_cast<double>(makespan);
}

} // namespace csched
