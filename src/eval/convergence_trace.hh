/**
 * @file
 * Helpers for the convergence figures (7 and 9): extract the spatial
 * passes from a convergent run's trace and format the per-pass
 * fraction-changed series.
 */

#ifndef CSCHED_EVAL_CONVERGENCE_TRACE_HH
#define CSCHED_EVAL_CONVERGENCE_TRACE_HH

#include <string>
#include <vector>

#include "convergent/convergent_scheduler.hh"

namespace csched {

/**
 * Keep only the passes that can modify spatial preferences, as the
 * paper's Figures 7 and 9 do ("they exclude passes that only modify
 * temporal preferences").
 */
std::vector<PassStep> spatialSteps(const std::vector<PassStep> &trace);

/** Pass labels of @p steps, in order. */
std::vector<std::string> stepLabels(const std::vector<PassStep> &steps);

} // namespace csched

#endif // CSCHED_EVAL_CONVERGENCE_TRACE_HH
