#include "eval/convergence_trace.hh"

namespace csched {

std::vector<PassStep>
spatialSteps(const std::vector<PassStep> &trace)
{
    std::vector<PassStep> out;
    for (const auto &step : trace)
        if (!step.temporalOnly)
            out.push_back(step);
    return out;
}

std::vector<std::string>
stepLabels(const std::vector<PassStep> &steps)
{
    std::vector<std::string> out;
    for (const auto &step : steps)
        out.push_back(step.pass);
    return out;
}

} // namespace csched
