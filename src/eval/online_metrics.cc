#include "eval/online_metrics.hh"

#include <algorithm>

namespace csched {

OnlineMetrics
computeOnlineMetrics(const std::vector<OnlineCommit> &commits)
{
    OnlineMetrics metrics;
    metrics.regions = static_cast<int>(commits.size());
    int64_t flowSum = 0;
    for (const OnlineCommit &commit : commits) {
        const int completion = commit.end();
        const int flow = completion - commit.release;
        metrics.instructions += commit.instructions;
        metrics.makespan = std::max(metrics.makespan, completion);
        metrics.weightedCompletion +=
            static_cast<int64_t>(commit.weight) * completion;
        metrics.maxFlowTime = std::max(metrics.maxFlowTime, flow);
        flowSum += flow;
        if (commit.deadline >= 0 && completion > commit.deadline)
            ++metrics.deadlineMisses;
        metrics.maxCriticalPathLength =
            std::max(metrics.maxCriticalPathLength,
                     commit.criticalPathLength);
    }
    if (!commits.empty())
        metrics.meanFlowTime = static_cast<double>(flowSum) /
                               static_cast<double>(commits.size());
    return metrics;
}

} // namespace csched
