/**
 * @file
 * Experiment driver: constructs algorithms by name, runs them on
 * workloads, verifies every produced schedule with the checker, and
 * reports makespans and wall-clock scheduling times.
 */

#ifndef CSCHED_EVAL_EXPERIMENT_HH
#define CSCHED_EVAL_EXPERIMENT_HH

#include <memory>
#include <string>

#include "convergent/convergent_scheduler.hh"
#include "machine/machine.hh"
#include "sched/algorithm.hh"

namespace csched {

/** Adapter exposing the convergent scheduler as a SchedulingAlgorithm. */
class ConvergentAlgorithm : public SchedulingAlgorithm
{
  public:
    /** Use the Table-1 sequence matching the machine family. */
    explicit ConvergentAlgorithm(const MachineModel &machine);

    /** Use an explicit pass sequence. */
    ConvergentAlgorithm(const MachineModel &machine,
                        const std::string &sequence,
                        PassParams params = PassParams());

    std::string name() const override { return "Convergent"; }
    Schedule run(const DependenceGraph &graph) const override;

    /** Full result including the convergence trace. */
    ConvergentResult runFull(const DependenceGraph &graph) const;

  private:
    ConvergentScheduler scheduler_;
};

/** The scheduling algorithms the experiments compare. */
enum class AlgorithmKind { Convergent, Uas, Pcc, Rawcc, Single };

/** Construct algorithm @p kind bound to @p machine. */
std::unique_ptr<SchedulingAlgorithm>
makeAlgorithm(AlgorithmKind kind, const MachineModel &machine);

/** One algorithm-on-workload measurement. */
struct RunResult
{
    std::string algorithm;
    int instructions = 0;
    int makespan = 0;
    double seconds = 0.0;  ///< wall-clock scheduling time
};

/**
 * Run @p algorithm on @p graph, verify the schedule (fatal on any
 * checker violation: experiments must never report illegal
 * schedules), and measure the scheduling time.
 */
RunResult runAndCheck(const SchedulingAlgorithm &algorithm,
                      const DependenceGraph &graph,
                      const MachineModel &machine);

} // namespace csched

#endif // CSCHED_EVAL_EXPERIMENT_HH
