/**
 * @file
 * Experiment driver: constructs algorithms from declarative specs,
 * runs them on workloads, verifies every produced schedule with the
 * checker, and reports makespans and wall-clock scheduling times.
 *
 * The single source of truth for "which algorithm is this?" is
 * AlgorithmSpec, parsed in exactly one place (parseAlgorithmSpec) from
 * strings such as "uas" or "convergent:INITTIME,PLACE,COMM".  Every
 * driver -- csched_cli, csched_bench, the per-figure bench binaries,
 * and the grid runner -- goes through it.
 */

#ifndef CSCHED_EVAL_EXPERIMENT_HH
#define CSCHED_EVAL_EXPERIMENT_HH

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "convergent/convergent_scheduler.hh"
#include "machine/machine.hh"
#include "sched/algorithm.hh"
#include "support/status.hh"

namespace csched {

/** Adapter exposing the convergent scheduler as a SchedulingAlgorithm. */
class ConvergentAlgorithm : public SchedulingAlgorithm
{
  public:
    /** Use the Table-1 sequence matching the machine family. */
    explicit ConvergentAlgorithm(const MachineModel &machine);

    /** Use an explicit pass sequence. */
    ConvergentAlgorithm(const MachineModel &machine,
                        const std::string &sequence,
                        PassParams params = PassParams());

    std::string name() const override { return "Convergent"; }

    /** Full result: schedule plus the convergence/timing trace. */
    ScheduleResult run(const DependenceGraph &graph) const override;

    /** Assignment/preferred-time detail beyond ScheduleResult. */
    ConvergentResult runDetailed(const DependenceGraph &graph) const;

  private:
    ConvergentScheduler scheduler_;
};

/**
 * Declarative description of one scheduling algorithm, the unit the
 * experiment grid iterates over.  `name` is one of "convergent",
 * "uas", "pcc", "rawcc", "single", or "bug".  For "convergent",
 * `sequence` optionally overrides the Table-1 pass pipeline and
 * `params` optionally overrides the family-tuned heuristic weights;
 * both default to the machine-family presets of sequences.hh.
 */
struct AlgorithmSpec
{
    std::string name = "convergent";
    std::string sequence;
    std::optional<PassParams> params;

    /**
     * The spec in its parseable text form, e.g.
     * "convergent:INITTIME,PLACE".  Used as the stable identity of
     * the algorithm in reports and JSON output.
     */
    std::string text() const;
};

/** Algorithm names accepted by parseAlgorithmSpec, in display order. */
const std::vector<std::string> &knownAlgorithmNames();

/**
 * Parse "name[:PASS,PASS,...]" into a spec.  The only place algorithm
 * spellings are interpreted.  On malformed input returns std::nullopt
 * and, when @p error is non-null, stores a human-readable reason.
 */
std::optional<AlgorithmSpec>
parseAlgorithmSpec(const std::string &text, std::string *error = nullptr);

/** Construct the algorithm described by @p spec bound to @p machine. */
std::unique_ptr<SchedulingAlgorithm>
makeAlgorithm(const AlgorithmSpec &spec, const MachineModel &machine);

/**
 * Non-fatal variant of makeAlgorithm: InvalidSpec when the spec names
 * an unknown algorithm (specs should come from parseAlgorithmSpec).
 */
StatusOr<std::unique_ptr<SchedulingAlgorithm>>
tryMakeAlgorithm(const AlgorithmSpec &spec, const MachineModel &machine);

/** One algorithm-on-workload measurement. */
struct RunResult
{
    std::string algorithm;
    int instructions = 0;
    int makespan = 0;
    double seconds = 0.0;  ///< wall-clock scheduling time
    /** Schedule plus pass trace; no longer thrown away. */
    ScheduleResult result;
};

/**
 * Run @p algorithm on @p graph, verify the schedule (fatal on any
 * checker violation: experiments must never report illegal
 * schedules), and measure the scheduling time.
 */
RunResult runAndCheck(const SchedulingAlgorithm &algorithm,
                      const DependenceGraph &graph,
                      const MachineModel &machine);

/**
 * Re-home the graph's preplaced instructions onto the alive clusters
 * of @p machine (graph.remapPreplacedHomes with the machine's
 * remapToAlive table); a no-op on pristine machines.  Every driver
 * must call this after building a workload graph for a degraded
 * machine -- the workload generators interleave homes over all
 * clusters, including dead ones.
 */
void remapPreplacedForMachine(DependenceGraph &graph,
                              const MachineModel &machine);

/**
 * Non-fatal variant of runAndCheck: a checker rejection becomes a
 * CheckFailed status carrying the violations, so the grid runner can
 * record it as a per-job outcome instead of killing the process.
 * Hits the "checker.verify" fault point before verification.  On a
 * degraded machine, a graph whose preplaced homes were not re-homed
 * (remapPreplacedForMachine) fails up front with InvalidSpec.
 */
StatusOr<RunResult> tryRunAndCheck(const SchedulingAlgorithm &algorithm,
                                   const DependenceGraph &graph,
                                   const MachineModel &machine);

} // namespace csched

#endif // CSCHED_EVAL_EXPERIMENT_HH
