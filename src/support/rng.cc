#include "support/rng.hh"

#include "support/logging.hh"

namespace csched {

namespace {

/** splitmix64 step, used only to expand the seed into the full state. */
uint64_t
splitmix64(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t s = seed;
    for (auto &word : state_)
        word = splitmix64(s);
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 random mantissa bits give a uniform double in [0, 1).
    return (next() >> 11) * 0x1.0p-53;
}

int
Rng::range(int bound)
{
    CSCHED_ASSERT(bound > 0, "range bound must be positive, got ", bound);
    return static_cast<int>(next() % static_cast<uint64_t>(bound));
}

int
Rng::between(int lo, int hi)
{
    CSCHED_ASSERT(lo <= hi, "between(", lo, ", ", hi, ") is empty");
    return lo + range(hi - lo + 1);
}

bool
Rng::chance(double p)
{
    return uniform() < p;
}

} // namespace csched
