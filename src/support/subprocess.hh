/**
 * @file
 * POSIX subprocess plumbing for the process-isolated worker layer
 * (runner/worker.hh): a length-prefixed pipe framing protocol, child
 * resource limits, and small diagnostics helpers.
 *
 * Frame format: a 4-byte little-endian payload length followed by the
 * payload bytes.  The protocol is deliberately dumb -- one frame per
 * message, no multiplexing -- because the failure modes it must
 * survive are not protocol bugs but *process deaths*: a worker that
 * segfaults mid-write leaves a truncated frame, a corrupted worker
 * may emit garbage length bytes, and the reader must classify both as
 * structured errors (never hang, never throw) so the parent can turn
 * them into a WorkerCrashed outcome.
 */

#ifndef CSCHED_SUPPORT_SUBPROCESS_HH
#define CSCHED_SUPPORT_SUBPROCESS_HH

#include <cstdint>
#include <string>

#include "support/status.hh"

namespace csched {

/**
 * Refuse frames longer than this (64 MiB).  A length above the cap is
 * read as corruption -- a real reply (a JobResult, even with a large
 * assignment vector) is orders of magnitude smaller -- so garbage
 * length bytes fail fast instead of triggering a huge allocation.
 */
inline constexpr uint32_t kMaxFrameBytes = 64u << 20;

/** How one readFrame() call ended. */
struct FrameResult
{
    enum class Kind {
        Payload,    ///< a complete frame was read
        Eof,        ///< clean end-of-stream before any length byte
        Timeout,    ///< the deadline passed before a full frame arrived
        Malformed,  ///< truncated frame or I/O error
        /**
         * The length prefix exceeds the caller's frame cap.  Kept
         * distinct from Malformed because the two call for different
         * reactions from a server reading *untrusted* peers: a
         * truncated frame usually means the peer died mid-write,
         * while an oversized length is either corruption or a hostile
         * client probing for a huge allocation -- the serve daemon
         * reports it with its own structured error before dropping
         * the connection (see serve/server.hh).
         */
        Oversized,
    };

    Kind kind = Kind::Eof;
    std::string payload;  ///< valid only for Kind::Payload
    /** Human-readable reason for Timeout/Malformed. */
    std::string error;

    bool ok() const { return kind == Kind::Payload; }
};

/**
 * Write one frame (length prefix + @p payload) to @p fd, retrying
 * short writes and EINTR.  Fails on I/O errors -- including EPIPE
 * when the peer died, which callers treat as a crashed worker.
 */
Status writeFrame(int fd, const std::string &payload);

/**
 * Read one frame from @p fd.  @p timeout_ms < 0 blocks indefinitely;
 * otherwise the whole frame must arrive within the budget (polled, so
 * a peer that stops mid-frame cannot hang the caller).  Never throws;
 * every failure mode comes back classified in the FrameResult.
 */
FrameResult readFrame(int fd, int timeout_ms = -1,
                      uint32_t max_bytes = kMaxFrameBytes);

/**
 * Apply resource caps to the calling process (used in a freshly
 * forked worker child, before the first job runs): RLIMIT_AS capped
 * to @p mem_limit_mb megabytes and RLIMIT_CPU to @p cpu_limit_sec
 * seconds; zero leaves the respective limit untouched.  Failures are
 * ignored (a looser-than-requested child still runs correctly).
 */
void applyChildResourceLimits(int mem_limit_mb, int cpu_limit_sec);

/** The last @p n lines of @p text (for stderr-tail diagnostics). */
std::string lastLines(const std::string &text, int n);

} // namespace csched

#endif // CSCHED_SUPPORT_SUBPROCESS_HH
