/**
 * @file
 * Crash-safe file output: every report, DOT graph, and JSON artifact
 * the drivers emit goes through writeFileAtomic(), which stages the
 * full contents in `<path>.tmp`, fsyncs, and renames over the
 * destination.  A crash (or an injected `report.write` fault) at any
 * point leaves either the complete old file or the complete new file
 * -- never a truncated artifact -- plus at worst an orphaned `.tmp`
 * staging file.
 */

#ifndef CSCHED_SUPPORT_ATOMIC_FILE_HH
#define CSCHED_SUPPORT_ATOMIC_FILE_HH

#include <string>

#include "support/status.hh"

namespace csched {

/** The staging path writeFileAtomic() uses for @p path. */
std::string atomicTempPath(const std::string &path);

/**
 * Atomically replace @p path with @p contents: write `<path>.tmp`,
 * fsync it, rename over @p path, then fsync the parent directory so
 * the rename itself is durable.  Hits the `report.write` fault point
 * after staging and before the rename -- the widest crash window --
 * so tests can prove the destination survives a mid-write death.
 * I/O errors (and injected faults) come back as a non-ok Status; the
 * destination is untouched in every failure case.
 */
Status writeFileAtomic(const std::string &path,
                       const std::string &contents);

} // namespace csched

#endif // CSCHED_SUPPORT_ATOMIC_FILE_HH
