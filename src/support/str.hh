/**
 * @file
 * String helpers: split/trim/join/case used by the pass-sequence parser
 * and the table printer.
 */

#ifndef CSCHED_SUPPORT_STR_HH
#define CSCHED_SUPPORT_STR_HH

#include <cstdint>
#include <string>
#include <vector>

namespace csched {

/** Split @p text on @p sep; empty fields are preserved. */
std::vector<std::string> split(const std::string &text, char sep);

/** Strip leading and trailing ASCII whitespace. */
std::string trim(const std::string &text);

/** Upper-case ASCII letters in place-free fashion. */
std::string toUpper(const std::string &text);

/** Join @p parts with @p sep between consecutive elements. */
std::string join(const std::vector<std::string> &parts,
                 const std::string &sep);

/** printf-style double formatting with @p decimals fraction digits. */
std::string formatDouble(double value, int decimals);

/**
 * 64-bit FNV-1a of @p text: stable across platforms and runs, unlike
 * std::hash.  Seeds every per-key deterministic draw (fault-injection
 * probability rules, retry-backoff jitter).
 */
uint64_t fnv1aHash(const std::string &text);

} // namespace csched

#endif // CSCHED_SUPPORT_STR_HH
