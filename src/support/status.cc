#include "support/status.hh"

namespace csched {

const char *
errorCodeName(ErrorCode code)
{
    switch (code) {
      case ErrorCode::Ok:
        return "ok";
      case ErrorCode::InvalidSpec:
        return "invalid-spec";
      case ErrorCode::CheckFailed:
        return "check-failed";
      case ErrorCode::Timeout:
        return "timeout";
      case ErrorCode::Injected:
        return "injected";
      case ErrorCode::Internal:
        return "internal";
      case ErrorCode::Interrupted:
        return "interrupted";
      case ErrorCode::WorkerCrashed:
        return "worker-crashed";
      case ErrorCode::WorkerKilled:
        return "worker-killed";
      case ErrorCode::Overloaded:
        return "overloaded";
      case ErrorCode::HostLost:
        return "host-lost";
    }
    CSCHED_PANIC("unreachable error code ", static_cast<int>(code));
}

std::optional<ErrorCode>
parseErrorCodeName(const std::string &name)
{
    for (const ErrorCode candidate :
         {ErrorCode::InvalidSpec, ErrorCode::CheckFailed,
          ErrorCode::Timeout, ErrorCode::Injected, ErrorCode::Internal,
          ErrorCode::Interrupted, ErrorCode::WorkerCrashed,
          ErrorCode::WorkerKilled, ErrorCode::Overloaded,
          ErrorCode::HostLost}) {
        if (name == errorCodeName(candidate))
            return candidate;
    }
    return std::nullopt;
}

Status
Status::error(ErrorCode code, std::string message)
{
    CSCHED_ASSERT(code != ErrorCode::Ok,
                  "Status::error needs a non-Ok code");
    return Status(code, std::move(message));
}

Status
Status::invalidSpec(std::string message)
{
    return error(ErrorCode::InvalidSpec, std::move(message));
}

Status
Status::checkFailed(std::string message)
{
    return error(ErrorCode::CheckFailed, std::move(message));
}

Status
Status::timedOut(std::string message)
{
    return error(ErrorCode::Timeout, std::move(message));
}

Status
Status::injected(std::string message)
{
    return error(ErrorCode::Injected, std::move(message));
}

Status
Status::internal(std::string message)
{
    return error(ErrorCode::Internal, std::move(message));
}

Status
Status::interrupted(std::string message)
{
    return error(ErrorCode::Interrupted, std::move(message));
}

Status
Status::workerCrashed(std::string message)
{
    return error(ErrorCode::WorkerCrashed, std::move(message));
}

Status
Status::workerKilled(std::string message)
{
    return error(ErrorCode::WorkerKilled, std::move(message));
}

Status
Status::overloaded(std::string message)
{
    return error(ErrorCode::Overloaded, std::move(message));
}

Status
Status::hostLost(std::string message)
{
    return error(ErrorCode::HostLost, std::move(message));
}

Status
Status::withContext(const std::string &context) const
{
    if (ok())
        return *this;
    return Status(code_, context + ": " + message_);
}

std::string
Status::toString() const
{
    if (ok())
        return "ok";
    return std::string(errorCodeName(code_)) + ": " + message_;
}

} // namespace csched
