#include "support/atomic_file.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

#include "support/fault_injection.hh"

namespace csched {

namespace {

Status
ioError(const std::string &what, const std::string &path)
{
    return Status::internal(what + " '" + path + "': " +
                            std::strerror(errno));
}

/** Directory part of @p path ("." when it has none). */
std::string
parentDir(const std::string &path)
{
    const auto slash = path.find_last_of('/');
    if (slash == std::string::npos)
        return ".";
    if (slash == 0)
        return "/";
    return path.substr(0, slash);
}

Status
writeAll(int fd, const std::string &contents, const std::string &path)
{
    size_t written = 0;
    while (written < contents.size()) {
        const ssize_t n = ::write(fd, contents.data() + written,
                                  contents.size() - written);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return ioError("write", path);
        }
        written += static_cast<size_t>(n);
    }
    return Status();
}

} // namespace

std::string
atomicTempPath(const std::string &path)
{
    return path + ".tmp";
}

Status
writeFileAtomic(const std::string &path, const std::string &contents)
{
    const std::string tmp = atomicTempPath(path);

    const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC,
                          0644);
    if (fd < 0)
        return ioError("open", tmp);

    Status status = writeAll(fd, contents, tmp);
    if (status.ok() && ::fsync(fd) != 0)
        status = ioError("fsync", tmp);
    if (::close(fd) != 0 && status.ok())
        status = ioError("close", tmp);
    if (!status.ok())
        return status;

    // The staged file is durable; a crash from here on loses nothing
    // but the rename.  The fault point sits in that window so a
    // simulated crash leaves the orphaned .tmp and an untouched
    // destination -- exactly what a real mid-write death leaves.
    try {
        faultPoint("report.write");
    } catch (const StatusError &error) {
        return error.status.withContext("atomic write of " + path);
    }

    if (::rename(tmp.c_str(), path.c_str()) != 0)
        return ioError("rename", tmp + " -> " + path);

    // Make the rename itself durable: fsync the parent directory.
    // Failure here is not worth failing the run over (some filesystems
    // reject directory fsync); the data file itself is already synced.
    const std::string dir = parentDir(path);
    const int dirfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (dirfd >= 0) {
        ::fsync(dirfd);
        ::close(dirfd);
    }
    return Status();
}

} // namespace csched
