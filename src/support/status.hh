/**
 * @file
 * Structured error model for everything reachable from grid-job
 * execution.
 *
 * The failure policy of the library is three-tiered:
 *
 *  - Status / StatusOr<T>: recoverable failures (bad specs, checker
 *    rejections, deadlines, injected faults) travel as values to the
 *    job boundary, where the runner records them as per-job outcomes
 *    instead of killing the whole grid.
 *  - StatusError: the exception form of a Status, used only for
 *    cooperative unwinding out of deep scheduler loops (deadline
 *    cancellation, armed fault points); always caught at the job
 *    boundary in runJob.
 *  - CSCHED_PANIC / CSCHED_ASSERT (logging.hh): true library-invariant
 *    bugs; still abort the process so a debugger can capture state.
 */

#ifndef CSCHED_SUPPORT_STATUS_HH
#define CSCHED_SUPPORT_STATUS_HH

#include <optional>
#include <string>
#include <type_traits>
#include <utility>

#include "support/logging.hh"

namespace csched {

/** Machine-readable classification of a failure. */
enum class ErrorCode {
    Ok,           ///< no error
    InvalidSpec,  ///< unknown/malformed workload, machine, or algorithm
    CheckFailed,  ///< the checker rejected a produced schedule
    Timeout,      ///< a deadline expired (cooperative cancellation)
    Injected,     ///< forced by the fault-injection harness
    Internal,     ///< a library expectation failed at the job boundary
    Interrupted,  ///< aborted by a shutdown request (SIGINT/SIGTERM)
    /**
     * An isolated worker process died (signal, nonzero exit, OOM
     * kill, or a garbled pipe frame) instead of reporting a result.
     * Only produced under --isolate (runner/worker.hh).
     */
    WorkerCrashed,
    /** The parent watchdog killed a worker stuck past its deadline. */
    WorkerKilled,
    /**
     * The serve daemon refused admission: its bounded request queue
     * was full or the worker pool was crash-looping.  Backpressure,
     * not a verdict about the request -- the client should retry
     * later (see serve/server.hh).
     */
    Overloaded,
    /**
     * Every remote worker host was lost (dead, partitioned, or
     * quarantined) before the job could complete.  Only produced
     * under --hosts (dist/remote_pool.hh), and only after the lease
     * layer ran out of healthy hosts to reassign to -- a single host
     * death never surfaces this code, it just moves the lease.
     */
    HostLost,
};

/** Stable lower-case name, e.g. "check-failed" (used in JSON). */
const char *errorCodeName(ErrorCode code);

/**
 * Inverse of errorCodeName over the non-Ok codes, used by the fault
 * harness (`code=` rule options) and the journal loader.  Returns
 * nullopt for unknown names.
 */
std::optional<ErrorCode> parseErrorCodeName(const std::string &name);

/** An error code plus a human-readable message; default is success. */
class Status
{
  public:
    /** Success. */
    Status() = default;

    /** An error of @p code; @p code must not be Ok. */
    static Status error(ErrorCode code, std::string message);

    static Status invalidSpec(std::string message);
    static Status checkFailed(std::string message);
    static Status timedOut(std::string message);
    static Status injected(std::string message);
    static Status internal(std::string message);
    static Status interrupted(std::string message);
    static Status workerCrashed(std::string message);
    static Status workerKilled(std::string message);
    static Status overloaded(std::string message);
    static Status hostLost(std::string message);

    bool ok() const { return code_ == ErrorCode::Ok; }
    ErrorCode code() const { return code_; }
    const std::string &message() const { return message_; }

    /** Same status with "@p context: " prefixed to the message. */
    Status withContext(const std::string &context) const;

    /** "check-failed: <message>", or "ok". */
    std::string toString() const;

  private:
    Status(ErrorCode code, std::string message)
        : code_(code), message_(std::move(message))
    {
    }

    ErrorCode code_ = ErrorCode::Ok;
    std::string message_;
};

/**
 * Exception wrapper for a Status: thrown by cancellation polls and
 * armed fault points inside scheduler loops, caught (only) at the job
 * boundary and converted back into a per-job Status.
 */
struct StatusError
{
    explicit StatusError(Status status) : status(std::move(status))
    {
        CSCHED_ASSERT(!this->status.ok(),
                      "StatusError must carry an error");
    }

    Status status;
};

/** A T or the Status explaining why there is no T. */
template <typename T>
class StatusOr
{
  public:
    /** From an error; @p status must not be ok. */
    StatusOr(Status status) : status_(std::move(status))
    {
        CSCHED_ASSERT(!status_.ok(),
                      "StatusOr built from an ok Status needs a value");
    }

    /**
     * From a value (or anything convertible to one, e.g. a
     * unique_ptr<Derived> for a StatusOr<unique_ptr<Base>>).
     */
    template <typename U = T,
              typename = std::enable_if_t<
                  std::is_convertible_v<U &&, T> &&
                  !std::is_same_v<std::decay_t<U>, Status> &&
                  !std::is_same_v<std::decay_t<U>, StatusOr<T>>>>
    StatusOr(U &&value) : value_(std::in_place, std::forward<U>(value))
    {
    }

    bool ok() const { return value_.has_value(); }
    const Status &status() const { return status_; }

    T &
    value()
    {
        CSCHED_ASSERT(ok(), "value() on an error StatusOr: ",
                      status_.toString());
        return *value_;
    }

    const T &
    value() const
    {
        CSCHED_ASSERT(ok(), "value() on an error StatusOr: ",
                      status_.toString());
        return *value_;
    }

    T &operator*() { return value(); }
    const T &operator*() const { return value(); }
    T *operator->() { return &value(); }
    const T *operator->() const { return &value(); }

  private:
    Status status_;  ///< Ok exactly when value_ holds a value
    std::optional<T> value_;
};

} // namespace csched

#endif // CSCHED_SUPPORT_STATUS_HH
