/**
 * @file
 * Error-reporting helpers in the spirit of gem5's logging.hh.
 *
 * panic()  -- an internal invariant was violated (a bug in this library);
 *             aborts so a debugger or core dump can capture the state.
 * fatal()  -- the caller supplied an impossible configuration or input;
 *             exits with status 1.
 * warn()   -- something is suspicious but execution can continue.
 */

#ifndef CSCHED_SUPPORT_LOGGING_HH
#define CSCHED_SUPPORT_LOGGING_HH

#include <cstdlib>
#include <mutex>
#include <sstream>
#include <string>

namespace csched {

/** Severity of a log message; selects the prefix and the exit behaviour. */
enum class LogLevel { Warn, Fatal, Panic };

/**
 * Emit a message to stderr and, for Fatal/Panic, terminate the process.
 *
 * @param level severity; Fatal calls exit(1), Panic calls abort().
 * @param file  source file of the call site.
 * @param line  source line of the call site.
 * @param msg   already-formatted message body.
 */
[[noreturn]] void logAndDie(LogLevel level, const char *file, int line,
                            const std::string &msg);

/** Emit a non-fatal warning to stderr. */
void logWarn(const char *file, int line, const std::string &msg);

/**
 * Thread-local context prepended to every log line emitted from this
 * thread, e.g. "job fir/vliw4/uas".  The grid runner installs one per
 * job so a warn/fatal/panic from a worker names the job it came from.
 * Scopes nest; destruction restores the previous context.
 */
class ScopedLogContext
{
  public:
    explicit ScopedLogContext(std::string context);
    ~ScopedLogContext();

    ScopedLogContext(const ScopedLogContext &) = delete;
    ScopedLogContext &operator=(const ScopedLogContext &) = delete;

  private:
    std::string previous_;
};

/** The current thread's log context; empty when none is installed. */
const std::string &logThreadContext();

/**
 * Register a pthread_atfork hook that holds the logging mutex across
 * fork(), so a child forked from a multi-threaded parent (worker
 * respawns, see runner/worker.hh) never inherits the mutex locked by
 * some other thread mid-message.  Idempotent; cheap to call again.
 */
void installLogForkGuard();

/**
 * The logging mutex itself, exposed so tests can hold it while
 * raising a signal -- proving the shutdown handlers never take it
 * (see runner/shutdown.cc).  Not for production use.
 */
std::mutex &logMutexForTesting();

namespace detail {

/** Concatenate a mixed argument pack into one string via a stream. */
template <typename... Args>
std::string
formatParts(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail

} // namespace csched

/** Abort with a message: an internal invariant was violated. */
#define CSCHED_PANIC(...)                                                   \
    ::csched::logAndDie(::csched::LogLevel::Panic, __FILE__, __LINE__,      \
                        ::csched::detail::formatParts(__VA_ARGS__))

/** Exit(1) with a message: the user supplied an impossible input. */
#define CSCHED_FATAL(...)                                                   \
    ::csched::logAndDie(::csched::LogLevel::Fatal, __FILE__, __LINE__,      \
                        ::csched::detail::formatParts(__VA_ARGS__))

/** Print a warning and keep going. */
#define CSCHED_WARN(...)                                                    \
    ::csched::logWarn(__FILE__, __LINE__,                                   \
                      ::csched::detail::formatParts(__VA_ARGS__))

/** Panic when @p cond is false; use for internal invariants. */
#define CSCHED_ASSERT(cond, ...)                                            \
    do {                                                                    \
        if (!(cond)) {                                                      \
            CSCHED_PANIC("assertion failed: " #cond " ",                    \
                         ::csched::detail::formatParts(__VA_ARGS__));       \
        }                                                                   \
    } while (0)

#endif // CSCHED_SUPPORT_LOGGING_HH
