#include "support/socket.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

namespace csched {

namespace {

/** Fill a sockaddr_un; fails when @p path exceeds sun_path. */
Status
makeAddress(const std::string &path, sockaddr_un *addr)
{
    std::memset(addr, 0, sizeof(*addr));
    addr->sun_family = AF_UNIX;
    if (path.empty())
        return Status::invalidSpec("socket path is empty");
    if (path.size() >= sizeof(addr->sun_path))
        return Status::invalidSpec(
            "socket path '" + path + "' exceeds the " +
            std::to_string(sizeof(addr->sun_path) - 1) +
            "-byte sun_path limit");
    std::memcpy(addr->sun_path, path.data(), path.size());
    return Status();
}

} // namespace

StatusOr<int>
listenUnix(const std::string &path, int backlog)
{
    sockaddr_un addr;
    const Status named = makeAddress(path, &addr);
    if (!named.ok())
        return named;

    // A stale *socket* file from a previous daemon run is removed; any
    // other file type at the path is someone else's data.
    struct stat st;
    if (::lstat(path.c_str(), &st) == 0) {
        if (!S_ISSOCK(st.st_mode))
            return Status::invalidSpec("'" + path +
                                       "' exists and is not a socket");
        ::unlink(path.c_str());
    }

    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return Status::internal(std::string("socket: ") +
                                std::strerror(errno));
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        const Status status = Status::internal(
            "bind '" + path + "': " + std::strerror(errno));
        ::close(fd);
        return status;
    }
    if (::listen(fd, backlog) != 0) {
        const Status status = Status::internal(
            "listen '" + path + "': " + std::strerror(errno));
        ::close(fd);
        ::unlink(path.c_str());
        return status;
    }
    return fd;
}

StatusOr<int>
acceptClient(int listen_fd, int timeout_ms)
{
    struct pollfd probe = {listen_fd, POLLIN, 0};
    for (;;) {
        const int ready = ::poll(&probe, 1, timeout_ms);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            return Status::internal(std::string("poll: ") +
                                    std::strerror(errno));
        }
        if (ready == 0)
            return Status::timedOut("no client within the accept "
                                    "budget");
        break;
    }
    for (;;) {
        const int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd >= 0)
            return fd;
        if (errno == EINTR)
            continue;
        // The client that woke the poll may already be gone; that is
        // an idle tick, not an accept-loop failure.
        if (errno == ECONNABORTED || errno == EAGAIN ||
            errno == EWOULDBLOCK)
            return Status::timedOut("client vanished before accept");
        return Status::internal(std::string("accept: ") +
                                std::strerror(errno));
    }
}

StatusOr<int>
connectUnix(const std::string &path, int timeout_ms)
{
    sockaddr_un addr;
    const Status named = makeAddress(path, &addr);
    if (!named.ok())
        return named;

    using Clock = std::chrono::steady_clock;
    const auto deadline =
        Clock::now() + std::chrono::milliseconds(std::max(0, timeout_ms));
    for (;;) {
        const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0)
            return Status::internal(std::string("socket: ") +
                                    std::strerror(errno));
        if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) == 0)
            return fd;
        const int why = errno;
        ::close(fd);
        // ENOENT/ECONNREFUSED: the daemon is still starting (or its
        // backlog is momentarily full); retry inside the budget.
        if ((why == ENOENT || why == ECONNREFUSED) &&
            Clock::now() < deadline) {
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
            continue;
        }
        return Status::internal("connect '" + path +
                                "': " + std::strerror(why));
    }
}

namespace {

/** Fill a sockaddr_in from a numeric IPv4 address. */
Status
makeTcpAddress(const std::string &host, uint16_t port,
               sockaddr_in *addr)
{
    std::memset(addr, 0, sizeof(*addr));
    addr->sin_family = AF_INET;
    addr->sin_port = htons(port);
    if (host.empty())
        return Status::invalidSpec("TCP host is empty");
    if (::inet_pton(AF_INET, host.c_str(), &addr->sin_addr) != 1)
        return Status::invalidSpec(
            "'" + host + "' is not a numeric IPv4 address");
    return Status();
}

} // namespace

void
setTcpNoDelay(int fd)
{
    const int one = 1;
    (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one,
                       sizeof(one));
}

StatusOr<int>
listenTcp(const std::string &host, uint16_t port, int backlog)
{
    sockaddr_in addr;
    const Status named = makeTcpAddress(host, port, &addr);
    if (!named.ok())
        return named;

    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return Status::internal(std::string("socket: ") +
                                std::strerror(errno));
    // A restarting daemon must be able to rebind its port while the
    // previous incarnation's connections sit in TIME_WAIT.
    const int one = 1;
    (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one,
                       sizeof(one));
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        const Status status = Status::internal(
            "bind " + host + ":" + std::to_string(port) + ": " +
            std::strerror(errno));
        ::close(fd);
        return status;
    }
    if (::listen(fd, backlog) != 0) {
        const Status status = Status::internal(
            "listen " + host + ":" + std::to_string(port) + ": " +
            std::strerror(errno));
        ::close(fd);
        return status;
    }
    return fd;
}

StatusOr<uint16_t>
boundTcpPort(int listen_fd)
{
    sockaddr_in addr;
    socklen_t len = sizeof(addr);
    if (::getsockname(listen_fd, reinterpret_cast<sockaddr *>(&addr),
                      &len) != 0)
        return Status::internal(std::string("getsockname: ") +
                                std::strerror(errno));
    return static_cast<uint16_t>(ntohs(addr.sin_port));
}

StatusOr<int>
connectTcp(const std::string &host, uint16_t port, int timeout_ms)
{
    sockaddr_in addr;
    const Status named = makeTcpAddress(host, port, &addr);
    if (!named.ok())
        return named;

    using Clock = std::chrono::steady_clock;
    const auto deadline =
        Clock::now() + std::chrono::milliseconds(std::max(0, timeout_ms));
    for (;;) {
        const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd < 0)
            return Status::internal(std::string("socket: ") +
                                    std::strerror(errno));
        // Non-blocking connect so the TCP handshake itself honours
        // the caller's budget: a partitioned host must come back as a
        // Timeout status, not a minutes-long kernel SYN retry stall.
        const int flags = ::fcntl(fd, F_GETFL, 0);
        (void)::fcntl(fd, F_SETFL, flags | O_NONBLOCK);

        int rc = ::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                           sizeof(addr));
        int why = rc == 0 ? 0 : errno;
        while (rc != 0 && why == EINTR) {
            rc = ::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                           sizeof(addr));
            why = rc == 0 ? 0 : errno;
            if (why == EISCONN) {
                rc = 0;
                why = 0;
            }
        }
        if (rc != 0 && why == EINPROGRESS) {
            // Wait for the handshake within what is left of the budget.
            for (;;) {
                const auto left =
                    std::chrono::duration_cast<
                        std::chrono::milliseconds>(deadline -
                                                   Clock::now())
                        .count();
                if (left <= 0) {
                    ::close(fd);
                    return Status::timedOut(
                        "connect " + host + ":" +
                        std::to_string(port) + ": no handshake within " +
                        std::to_string(timeout_ms) + " ms");
                }
                struct pollfd probe = {fd, POLLOUT, 0};
                const int ready = ::poll(
                    &probe, 1,
                    static_cast<int>(std::min<long long>(left, 100)));
                if (ready < 0 && errno != EINTR) {
                    const Status status = Status::internal(
                        std::string("poll: ") + std::strerror(errno));
                    ::close(fd);
                    return status;
                }
                if (ready > 0)
                    break;
            }
            int soerr = 0;
            socklen_t len = sizeof(soerr);
            if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &len) !=
                0)
                soerr = errno;
            rc = soerr == 0 ? 0 : -1;
            why = soerr;
        }
        if (rc == 0) {
            (void)::fcntl(fd, F_SETFL, flags);
            setTcpNoDelay(fd);
            return fd;
        }
        ::close(fd);
        // ECONNREFUSED: the daemon is still binding (or its backlog is
        // momentarily full); retry inside the budget.
        if (why == ECONNREFUSED && Clock::now() < deadline) {
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
            continue;
        }
        if (Clock::now() >= deadline &&
            (why == ECONNREFUSED || why == ETIMEDOUT ||
             why == EHOSTUNREACH || why == ENETUNREACH))
            return Status::timedOut("connect " + host + ":" +
                                    std::to_string(port) + ": " +
                                    std::strerror(why));
        return Status::internal("connect " + host + ":" +
                                std::to_string(port) + ": " +
                                std::strerror(why));
    }
}

Status
parseHostPort(const std::string &endpoint, std::string *host,
              uint16_t *port)
{
    const auto colon = endpoint.rfind(':');
    if (colon == std::string::npos || colon == 0)
        return Status::invalidSpec("'" + endpoint +
                                   "' is not host:port");
    const std::string port_text = endpoint.substr(colon + 1);
    if (port_text.empty() ||
        port_text.find_first_not_of("0123456789") != std::string::npos)
        return Status::invalidSpec("'" + endpoint +
                                   "': port must be numeric");
    const long value = std::strtol(port_text.c_str(), nullptr, 10);
    if (value < 1 || value > 65535)
        return Status::invalidSpec("'" + endpoint +
                                   "': port must be in 1..65535");
    *host = endpoint.substr(0, colon);
    *port = static_cast<uint16_t>(value);
    return Status();
}

void
setSendTimeout(int fd, int ms)
{
    if (ms <= 0)
        return;
    struct timeval tv;
    tv.tv_sec = ms / 1000;
    tv.tv_usec = (ms % 1000) * 1000;
    (void)::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

void
setRecvTimeout(int fd, int ms)
{
    if (ms <= 0)
        return;
    struct timeval tv;
    tv.tv_sec = ms / 1000;
    tv.tv_usec = (ms % 1000) * 1000;
    (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

} // namespace csched
