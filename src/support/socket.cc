#include "support/socket.hh"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

namespace csched {

namespace {

/** Fill a sockaddr_un; fails when @p path exceeds sun_path. */
Status
makeAddress(const std::string &path, sockaddr_un *addr)
{
    std::memset(addr, 0, sizeof(*addr));
    addr->sun_family = AF_UNIX;
    if (path.empty())
        return Status::invalidSpec("socket path is empty");
    if (path.size() >= sizeof(addr->sun_path))
        return Status::invalidSpec(
            "socket path '" + path + "' exceeds the " +
            std::to_string(sizeof(addr->sun_path) - 1) +
            "-byte sun_path limit");
    std::memcpy(addr->sun_path, path.data(), path.size());
    return Status();
}

} // namespace

StatusOr<int>
listenUnix(const std::string &path, int backlog)
{
    sockaddr_un addr;
    const Status named = makeAddress(path, &addr);
    if (!named.ok())
        return named;

    // A stale *socket* file from a previous daemon run is removed; any
    // other file type at the path is someone else's data.
    struct stat st;
    if (::lstat(path.c_str(), &st) == 0) {
        if (!S_ISSOCK(st.st_mode))
            return Status::invalidSpec("'" + path +
                                       "' exists and is not a socket");
        ::unlink(path.c_str());
    }

    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return Status::internal(std::string("socket: ") +
                                std::strerror(errno));
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        const Status status = Status::internal(
            "bind '" + path + "': " + std::strerror(errno));
        ::close(fd);
        return status;
    }
    if (::listen(fd, backlog) != 0) {
        const Status status = Status::internal(
            "listen '" + path + "': " + std::strerror(errno));
        ::close(fd);
        ::unlink(path.c_str());
        return status;
    }
    return fd;
}

StatusOr<int>
acceptClient(int listen_fd, int timeout_ms)
{
    struct pollfd probe = {listen_fd, POLLIN, 0};
    for (;;) {
        const int ready = ::poll(&probe, 1, timeout_ms);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            return Status::internal(std::string("poll: ") +
                                    std::strerror(errno));
        }
        if (ready == 0)
            return Status::timedOut("no client within the accept "
                                    "budget");
        break;
    }
    for (;;) {
        const int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd >= 0)
            return fd;
        if (errno == EINTR)
            continue;
        // The client that woke the poll may already be gone; that is
        // an idle tick, not an accept-loop failure.
        if (errno == ECONNABORTED || errno == EAGAIN ||
            errno == EWOULDBLOCK)
            return Status::timedOut("client vanished before accept");
        return Status::internal(std::string("accept: ") +
                                std::strerror(errno));
    }
}

StatusOr<int>
connectUnix(const std::string &path, int timeout_ms)
{
    sockaddr_un addr;
    const Status named = makeAddress(path, &addr);
    if (!named.ok())
        return named;

    using Clock = std::chrono::steady_clock;
    const auto deadline =
        Clock::now() + std::chrono::milliseconds(std::max(0, timeout_ms));
    for (;;) {
        const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0)
            return Status::internal(std::string("socket: ") +
                                    std::strerror(errno));
        if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) == 0)
            return fd;
        const int why = errno;
        ::close(fd);
        // ENOENT/ECONNREFUSED: the daemon is still starting (or its
        // backlog is momentarily full); retry inside the budget.
        if ((why == ENOENT || why == ECONNREFUSED) &&
            Clock::now() < deadline) {
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
            continue;
        }
        return Status::internal("connect '" + path +
                                "': " + std::strerror(why));
    }
}

void
setSendTimeout(int fd, int ms)
{
    if (ms <= 0)
        return;
    struct timeval tv;
    tv.tv_sec = ms / 1000;
    tv.tv_usec = (ms % 1000) * 1000;
    (void)::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

} // namespace csched
