#include "support/cancel.hh"

#include <string>

#include "support/status.hh"

namespace csched {

namespace {

thread_local CancelToken *t_current_token = nullptr;

// Reached from the shutdown signal handler (runner/shutdown.cc), so
// it must stay a lock-free atomic: no mutex, no allocation.
std::atomic<bool> g_global_cancel{false};
static_assert(std::atomic<bool>::is_always_lock_free,
              "the signal handler needs a lock-free cancel flag");

} // namespace

void
requestGlobalCancel()
{
    g_global_cancel.store(true);
}

bool
globalCancelRequested()
{
    return g_global_cancel.load();
}

void
resetGlobalCancel()
{
    g_global_cancel.store(false);
}

void
CancelToken::armDeadline(int ms)
{
    has_deadline_ = true;
    deadline_ms_ = ms;
    deadline_ =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
}

bool
CancelToken::expired() const
{
    if (cancelled_.load())
        return true;
    return has_deadline_ &&
           std::chrono::steady_clock::now() >= deadline_;
}

ScopedCancelToken::ScopedCancelToken(CancelToken *token)
    : previous_(t_current_token)
{
    t_current_token = token;
}

ScopedCancelToken::~ScopedCancelToken()
{
    t_current_token = previous_;
}

CancelToken *
currentCancelToken()
{
    return t_current_token;
}

void
pollCancellation(const char *where)
{
    const CancelToken *token = t_current_token;
    if (token == nullptr)
        return;
    // The root outranks the local token: a shutdown request surfaces
    // as `interrupted` (the job re-runs on resume), never as a
    // spurious `timeout` outcome that would be journaled as terminal.
    if (globalCancelRequested())
        throw StatusError(Status::interrupted(
            std::string("interrupted at ") + where));
    if (!token->expired())
        return;
    std::string why;
    if (token->deadlineMs() > 0) {
        why = "deadline of " + std::to_string(token->deadlineMs()) +
              " ms exceeded at " + where;
    } else {
        why = std::string("cancelled at ") + where;
    }
    throw StatusError(Status::timedOut(why));
}

} // namespace csched
