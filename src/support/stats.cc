#include "support/stats.hh"

#include <algorithm>
#include <cmath>

#include "support/logging.hh"

namespace csched {

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values) {
        CSCHED_ASSERT(v > 0.0, "geomean requires positive values, got ", v);
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

double
stddev(const std::vector<double> &values)
{
    if (values.size() < 2)
        return 0.0;
    const double m = mean(values);
    double acc = 0.0;
    for (double v : values)
        acc += (v - m) * (v - m);
    return std::sqrt(acc / static_cast<double>(values.size()));
}

double
median(std::vector<double> values)
{
    if (values.empty())
        return 0.0;
    std::sort(values.begin(), values.end());
    return values[(values.size() - 1) / 2];
}

double
percentile(std::vector<double> values, double p)
{
    if (values.empty())
        return 0.0;
    CSCHED_ASSERT(p > 0.0 && p <= 100.0,
                  "percentile p must be in (0, 100], got ", p);
    std::sort(values.begin(), values.end());
    const double n = static_cast<double>(values.size());
    size_t rank = static_cast<size_t>(std::ceil(p / 100.0 * n));
    if (rank == 0)
        rank = 1;  // guard against rounding below the first rank
    if (rank > values.size())
        rank = values.size();
    return values[rank - 1];
}

void
Accumulator::add(double value)
{
    if (count_ == 0) {
        min_ = value;
        max_ = value;
    } else {
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
    }
    sum_ += value;
    ++count_;
}

double
Accumulator::min() const
{
    CSCHED_ASSERT(count_ > 0, "min() of empty accumulator");
    return min_;
}

double
Accumulator::max() const
{
    CSCHED_ASSERT(count_ > 0, "max() of empty accumulator");
    return max_;
}

double
Accumulator::mean() const
{
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

} // namespace csched
