/**
 * @file
 * Stream-socket helpers shared by the scheduler-as-a-service daemon
 * (serve/server.hh) and the distributed worker backend
 * (dist/remote_pool.hh, dist/workerd.hh): UNIX-domain endpoints for
 * same-host daemons, TCP endpoints for remote worker fleets.
 *
 * Thin, Status-returning wrappers over the POSIX calls: bind/listen
 * with stale-socket cleanup, poll-bounded accept (so a daemon's
 * accept loop can wake up and notice a drain request), connect with a
 * bounded wait (EINTR-retried throughout), and send/receive-timeout
 * knobs so one stuck peer cannot park a thread in read()/write()
 * forever.  TCP listeners take SO_REUSEADDR (a restarting daemon must
 * not trip over its own TIME_WAIT sockets) and connections take
 * TCP_NODELAY (frames are small request/reply units; Nagle would add
 * round-trip latency to every dispatch).  Stream payloads on top of
 * these fds use the same 4-byte LE length-prefixed frame codec as the
 * worker pipes (support/subprocess.hh) -- with a *smaller* frame cap,
 * because socket peers are less trusted than our own forked workers.
 */

#ifndef CSCHED_SUPPORT_SOCKET_HH
#define CSCHED_SUPPORT_SOCKET_HH

#include <cstdint>
#include <string>

#include "support/status.hh"

namespace csched {

/**
 * Create, bind, and listen on a UNIX-domain stream socket at @p path.
 * An existing socket file at @p path is unlinked first (a daemon
 * restarting over its own stale socket), a non-socket file is not
 * touched (refuses with InvalidSpec).  Returns the listening fd.
 */
StatusOr<int> listenUnix(const std::string &path, int backlog = 64);

/**
 * Accept one client from @p listen_fd, waiting at most @p timeout_ms
 * (0 polls once; < 0 blocks).  Returns the connected fd, a Timeout
 * status when nothing arrived in the budget (the normal idle case --
 * callers poll their drain flags and try again), or an Internal
 * status for real accept errors.
 */
StatusOr<int> acceptClient(int listen_fd, int timeout_ms);

/**
 * Connect to the UNIX-domain socket at @p path, retrying connection
 * refusal for up to @p timeout_ms (a client racing a daemon that is
 * still binding).  Returns the connected fd.
 */
StatusOr<int> connectUnix(const std::string &path, int timeout_ms);

/**
 * Create, bind, and listen on a TCP stream socket at @p host:@p port
 * with SO_REUSEADDR.  @p port 0 binds an ephemeral port -- read the
 * actual one back with boundTcpPort() (how tests and localhost CI
 * fleets avoid port collisions).  @p host must be a numeric address
 * ("127.0.0.1", "0.0.0.0"); no resolver, so daemon startup cannot
 * block on DNS.  Returns the listening fd.
 */
StatusOr<int> listenTcp(const std::string &host, uint16_t port,
                        int backlog = 64);

/** The local port @p listen_fd is bound to (after listenTcp). */
StatusOr<uint16_t> boundTcpPort(int listen_fd);

/**
 * Connect to @p host:@p port, retrying connection refusal for up to
 * @p timeout_ms (a client racing a daemon that is still binding) and
 * bounding the TCP handshake itself by the same budget (non-blocking
 * connect + poll, EINTR-retried).  The connected fd comes back with
 * TCP_NODELAY set.  A budget that expires is a Timeout status;
 * malformed addresses are InvalidSpec; anything else Internal.
 */
StatusOr<int> connectTcp(const std::string &host, uint16_t port,
                         int timeout_ms);

/**
 * Split "host:port" into its parts; fails with InvalidSpec on a
 * missing/empty host, a missing colon, or a port outside 1..65535.
 * This is the spelling `--hosts` and csched_load accept.
 */
Status parseHostPort(const std::string &endpoint, std::string *host,
                     uint16_t *port);

/**
 * Bound the time a blocking write on @p fd may stall on a peer that
 * stopped reading (SO_SNDTIMEO).  A write that exceeds it fails with
 * EAGAIN, which frame writers surface as a Status -- a daemon's
 * defence against slow-client head-of-line blocking.
 */
void setSendTimeout(int fd, int ms);

/**
 * Disable Nagle on a TCP @p fd.  connectTcp() already does this for
 * outbound connections; servers must do it for *accepted* fds too,
 * or successive small frames (a daemon streaming result frames
 * back-to-back) stall ~40 ms each on the Nagle/delayed-ACK
 * interaction.  A no-op on non-TCP fds.
 */
void setTcpNoDelay(int fd);

/**
 * Bound the time a blocking read on @p fd may wait for a silent peer
 * (SO_RCVTIMEO).  Frame readers that pass their own poll budget to
 * readFrame() do not need this; it is a belt-and-braces backstop for
 * plain read() paths.
 */
void setRecvTimeout(int fd, int ms);

} // namespace csched

#endif // CSCHED_SUPPORT_SOCKET_HH
