/**
 * @file
 * UNIX-domain socket helpers for the scheduler-as-a-service daemon
 * (serve/server.hh) and its clients.
 *
 * Thin, Status-returning wrappers over the POSIX calls: bind/listen
 * with stale-socket cleanup, poll-bounded accept (so the daemon's
 * accept loop can wake up and notice a drain request), connect with a
 * bounded wait, and a send-timeout knob so one stuck client cannot
 * park a dispatcher thread in write() forever.  Stream payloads on
 * top of these fds use the same 4-byte LE length-prefixed frame codec
 * as the worker pipes (support/subprocess.hh) -- with a *smaller*
 * frame cap, because socket peers are less trusted than our own
 * forked workers.
 */

#ifndef CSCHED_SUPPORT_SOCKET_HH
#define CSCHED_SUPPORT_SOCKET_HH

#include <string>

#include "support/status.hh"

namespace csched {

/**
 * Create, bind, and listen on a UNIX-domain stream socket at @p path.
 * An existing socket file at @p path is unlinked first (a daemon
 * restarting over its own stale socket), a non-socket file is not
 * touched (refuses with InvalidSpec).  Returns the listening fd.
 */
StatusOr<int> listenUnix(const std::string &path, int backlog = 64);

/**
 * Accept one client from @p listen_fd, waiting at most @p timeout_ms
 * (0 polls once; < 0 blocks).  Returns the connected fd, a Timeout
 * status when nothing arrived in the budget (the normal idle case --
 * callers poll their drain flags and try again), or an Internal
 * status for real accept errors.
 */
StatusOr<int> acceptClient(int listen_fd, int timeout_ms);

/**
 * Connect to the UNIX-domain socket at @p path, retrying connection
 * refusal for up to @p timeout_ms (a client racing a daemon that is
 * still binding).  Returns the connected fd.
 */
StatusOr<int> connectUnix(const std::string &path, int timeout_ms);

/**
 * Bound the time a blocking write on @p fd may stall on a peer that
 * stopped reading (SO_SNDTIMEO).  A write that exceeds it fails with
 * EAGAIN, which frame writers surface as a Status -- the serve
 * daemon's defence against slow-client head-of-line blocking.
 */
void setSendTimeout(int fd, int ms);

} // namespace csched

#endif // CSCHED_SUPPORT_SOCKET_HH
