#include "support/json.hh"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "support/logging.hh"

namespace csched {

// ---- escaping ------------------------------------------------------

std::string
escapeJson(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (unsigned char c : text) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

std::string
compactJson(const std::string &pretty)
{
    std::string out;
    out.reserve(pretty.size());
    for (size_t k = 0; k < pretty.size(); ++k) {
        if (pretty[k] != '\n') {
            out += pretty[k];
            continue;
        }
        while (k + 1 < pretty.size() && pretty[k + 1] == ' ')
            ++k;
    }
    return out;
}

namespace {

/** Shortest text that parses back to exactly @p number. */
std::string
formatNumber(double number)
{
    if (!std::isfinite(number))
        return "null";  // JSON has no Inf/NaN; reports never need them
    char buf[32];
    const auto res =
        std::to_chars(buf, buf + sizeof buf, number);
    CSCHED_ASSERT(res.ec == std::errc(), "to_chars failed");
    return std::string(buf, res.ptr);
}

} // namespace

// ---- writer --------------------------------------------------------

JsonWriter::JsonWriter(std::ostream &out) : out_(out) {}

JsonWriter::~JsonWriter()
{
    // Unbalanced begin/end is a bug in the caller, but destructors
    // must not panic during unwinding; the output is simply truncated.
}

void
JsonWriter::indent()
{
    out_ << "\n";
    for (size_t k = 0; k < stack_.size(); ++k)
        out_ << "  ";
}

void
JsonWriter::beforeItem()
{
    if (stack_.empty())
        return;
    Level &top = stack_.back();
    if (top.scope == Scope::Object) {
        CSCHED_ASSERT(top.keyPending,
                      "JSON object value emitted without a key");
        top.keyPending = false;
        return;
    }
    if (top.items > 0)
        out_ << ",";
    ++top.items;
    indent();
}

void
JsonWriter::raw(const std::string &text)
{
    beforeItem();
    out_ << text;
}

JsonWriter &
JsonWriter::beginObject()
{
    beforeItem();
    out_ << "{";
    stack_.push_back({Scope::Object});
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    CSCHED_ASSERT(!stack_.empty() &&
                      stack_.back().scope == Scope::Object &&
                      !stack_.back().keyPending,
                  "unbalanced endObject");
    const bool empty = stack_.back().items == 0;
    stack_.pop_back();
    if (!empty)
        indent();
    out_ << "}";
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    beforeItem();
    out_ << "[";
    stack_.push_back({Scope::Array});
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    CSCHED_ASSERT(!stack_.empty() &&
                      stack_.back().scope == Scope::Array,
                  "unbalanced endArray");
    const bool empty = stack_.back().items == 0;
    stack_.pop_back();
    if (!empty)
        indent();
    out_ << "]";
    return *this;
}

JsonWriter &
JsonWriter::key(const std::string &name)
{
    CSCHED_ASSERT(!stack_.empty() &&
                      stack_.back().scope == Scope::Object &&
                      !stack_.back().keyPending,
                  "JSON key outside an object or after another key");
    Level &top = stack_.back();
    if (top.items > 0)
        out_ << ",";
    ++top.items;
    indent();
    out_ << "\"" << escapeJson(name) << "\": ";
    top.keyPending = true;
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &text)
{
    raw("\"" + escapeJson(text) + "\"");
    return *this;
}

JsonWriter &
JsonWriter::value(const char *text)
{
    return value(std::string(text));
}

JsonWriter &
JsonWriter::value(int number)
{
    raw(std::to_string(number));
    return *this;
}

JsonWriter &
JsonWriter::value(int64_t number)
{
    raw(std::to_string(number));
    return *this;
}

JsonWriter &
JsonWriter::value(uint64_t number)
{
    raw(std::to_string(number));
    return *this;
}

JsonWriter &
JsonWriter::value(double number)
{
    raw(formatNumber(number));
    return *this;
}

JsonWriter &
JsonWriter::value(bool flag)
{
    raw(flag ? "true" : "false");
    return *this;
}

JsonWriter &
JsonWriter::nullValue()
{
    raw("null");
    return *this;
}

JsonWriter &
JsonWriter::value(const std::vector<int> &numbers)
{
    // Compact one-line form: assignment vectors would otherwise
    // dominate the report line count.
    beforeItem();
    out_ << "[";
    for (size_t k = 0; k < numbers.size(); ++k)
        out_ << (k > 0 ? ", " : "") << numbers[k];
    out_ << "]";
    return *this;
}

JsonWriter &
JsonWriter::value(const std::vector<double> &numbers)
{
    beforeItem();
    out_ << "[";
    for (size_t k = 0; k < numbers.size(); ++k)
        out_ << (k > 0 ? ", " : "") << formatNumber(numbers[k]);
    out_ << "]";
    return *this;
}

// ---- parsed-value accessors ----------------------------------------

const JsonValue *
JsonValue::find(const std::string &name) const
{
    if (kind != Kind::Object)
        return nullptr;
    for (const auto &[key, value] : object)
        if (key == name)
            return &value;
    return nullptr;
}

const JsonValue &
JsonValue::at(const std::string &name) const
{
    const JsonValue *found = find(name);
    if (found == nullptr)
        CSCHED_FATAL("JSON object has no member '", name, "'");
    return *found;
}

int
JsonValue::asInt() const
{
    CSCHED_ASSERT(kind == Kind::Number, "JSON value is not a number");
    return static_cast<int>(number);
}

double
JsonValue::asDouble() const
{
    CSCHED_ASSERT(kind == Kind::Number, "JSON value is not a number");
    return number;
}

// ---- parser --------------------------------------------------------

namespace {

class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    std::optional<JsonValue>
    parse(std::string *error)
    {
        JsonValue value;
        if (!parseValue(value) || (skipSpace(), pos_ != text_.size())) {
            if (!failed_)
                fail("trailing characters after document");
            if (error != nullptr)
                *error = error_;
            return std::nullopt;
        }
        return value;
    }

  private:
    bool
    fail(const std::string &why)
    {
        if (!failed_) {
            failed_ = true;
            error_ = "JSON error at offset " + std::to_string(pos_) +
                     ": " + why;
        }
        return false;
    }

    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool
    consume(char expected)
    {
        skipSpace();
        if (pos_ >= text_.size() || text_[pos_] != expected)
            return fail(std::string("expected '") + expected + "'");
        ++pos_;
        return true;
    }

    bool
    parseLiteral(const char *literal, JsonValue &out, JsonValue::Kind kind,
                 bool boolean)
    {
        const size_t len = std::string(literal).size();
        if (text_.compare(pos_, len, literal) != 0)
            return fail(std::string("expected '") + literal + "'");
        pos_ += len;
        out.kind = kind;
        out.boolean = boolean;
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (!consume('"'))
            return false;
        out.clear();
        while (true) {
            if (pos_ >= text_.size())
                return fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                return fail("unterminated escape");
            const char esc = text_[pos_++];
            switch (esc) {
              case '"':  out += '"'; break;
              case '\\': out += '\\'; break;
              case '/':  out += '/'; break;
              case 'b':  out += '\b'; break;
              case 'f':  out += '\f'; break;
              case 'n':  out += '\n'; break;
              case 'r':  out += '\r'; break;
              case 't':  out += '\t'; break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    return fail("truncated \\u escape");
                unsigned code = 0;
                for (int k = 0; k < 4; ++k) {
                    const char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= h - '0';
                    else if (h >= 'a' && h <= 'f')
                        code |= h - 'a' + 10;
                    else if (h >= 'A' && h <= 'F')
                        code |= h - 'A' + 10;
                    else
                        return fail("bad hex digit in \\u escape");
                }
                // UTF-8 encode (BMP only; the writer never emits
                // surrogate pairs).
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xc0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                } else {
                    out += static_cast<char>(0xe0 | (code >> 12));
                    out += static_cast<char>(0x80 |
                                             ((code >> 6) & 0x3f));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                }
                break;
              }
              default:
                return fail("unknown escape");
            }
        }
    }

    bool
    parseNumber(JsonValue &out)
    {
        const size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        double number = 0.0;
        const auto res = std::from_chars(text_.data() + start,
                                         text_.data() + pos_, number);
        if (res.ec != std::errc() ||
            res.ptr != text_.data() + pos_)
            return fail("malformed number");
        out.kind = JsonValue::Kind::Number;
        out.number = number;
        return true;
    }

    bool
    parseValue(JsonValue &out)
    {
        skipSpace();
        if (pos_ >= text_.size())
            return fail("unexpected end of document");
        const char c = text_[pos_];
        if (c == '{') {
            ++pos_;
            out.kind = JsonValue::Kind::Object;
            skipSpace();
            if (pos_ < text_.size() && text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            while (true) {
                skipSpace();
                std::string key;
                JsonValue value;
                if (!parseString(key) || !consume(':') ||
                    !parseValue(value))
                    return false;
                out.object.emplace_back(std::move(key),
                                        std::move(value));
                skipSpace();
                if (pos_ >= text_.size())
                    return fail("unterminated object");
                if (text_[pos_] == ',') {
                    ++pos_;
                    continue;
                }
                return consume('}');
            }
        }
        if (c == '[') {
            ++pos_;
            out.kind = JsonValue::Kind::Array;
            skipSpace();
            if (pos_ < text_.size() && text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            while (true) {
                JsonValue value;
                if (!parseValue(value))
                    return false;
                out.array.push_back(std::move(value));
                skipSpace();
                if (pos_ >= text_.size())
                    return fail("unterminated array");
                if (text_[pos_] == ',') {
                    ++pos_;
                    continue;
                }
                return consume(']');
            }
        }
        if (c == '"') {
            out.kind = JsonValue::Kind::String;
            return parseString(out.string);
        }
        if (c == 't')
            return parseLiteral("true", out, JsonValue::Kind::Bool,
                                true);
        if (c == 'f')
            return parseLiteral("false", out, JsonValue::Kind::Bool,
                                false);
        if (c == 'n')
            return parseLiteral("null", out, JsonValue::Kind::Null,
                                false);
        return parseNumber(out);
    }

    const std::string &text_;
    size_t pos_ = 0;
    bool failed_ = false;
    std::string error_;
};

} // namespace

std::optional<JsonValue>
parseJson(const std::string &text, std::string *error)
{
    return Parser(text).parse(error);
}

} // namespace csched
