#include "support/str.hh"

#include <cctype>
#include <cstdio>

namespace csched {

std::vector<std::string>
split(const std::string &text, char sep)
{
    std::vector<std::string> out;
    std::string current;
    for (char ch : text) {
        if (ch == sep) {
            out.push_back(current);
            current.clear();
        } else {
            current.push_back(ch);
        }
    }
    out.push_back(current);
    return out;
}

std::string
trim(const std::string &text)
{
    size_t begin = 0;
    size_t end = text.size();
    while (begin < end &&
           std::isspace(static_cast<unsigned char>(text[begin]))) {
        ++begin;
    }
    while (end > begin &&
           std::isspace(static_cast<unsigned char>(text[end - 1]))) {
        --end;
    }
    return text.substr(begin, end - begin);
}

std::string
toUpper(const std::string &text)
{
    std::string out = text;
    for (char &ch : out)
        ch = static_cast<char>(std::toupper(static_cast<unsigned char>(ch)));
    return out;
}

std::string
join(const std::vector<std::string> &parts, const std::string &sep)
{
    std::string out;
    for (size_t i = 0; i < parts.size(); ++i) {
        if (i > 0)
            out += sep;
        out += parts[i];
    }
    return out;
}

std::string
formatDouble(double value, int decimals)
{
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.*f", decimals, value);
    return buffer;
}

uint64_t
fnv1aHash(const std::string &text)
{
    uint64_t hash = 0xcbf29ce484222325ULL;
    for (const unsigned char c : text) {
        hash ^= c;
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

} // namespace csched
