#include "support/logging.hh"

#include <cstdio>

namespace csched {

void
logAndDie(LogLevel level, const char *file, int line, const std::string &msg)
{
    const char *prefix = level == LogLevel::Panic ? "panic" : "fatal";
    std::fprintf(stderr, "%s: %s (%s:%d)\n", prefix, msg.c_str(), file, line);
    std::fflush(stderr);
    if (level == LogLevel::Panic)
        std::abort();
    std::exit(1);
}

void
logWarn(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "warn: %s (%s:%d)\n", msg.c_str(), file, line);
}

} // namespace csched
