#include "support/logging.hh"

#include <cstdio>
#include <mutex>
#include <utility>

#include <pthread.h>

namespace csched {

namespace {

/** Serialises stderr writes so worker-thread messages never shear. */
std::mutex &
logMutex()
{
    static std::mutex mutex;
    return mutex;
}

thread_local std::string t_log_context;

void
emit(const char *prefix, const char *file, int line,
     const std::string &msg)
{
    std::lock_guard<std::mutex> lock(logMutex());
    if (t_log_context.empty()) {
        std::fprintf(stderr, "%s: %s (%s:%d)\n", prefix, msg.c_str(),
                     file, line);
    } else {
        std::fprintf(stderr, "%s: [%s] %s (%s:%d)\n", prefix,
                     t_log_context.c_str(), msg.c_str(), file, line);
    }
    std::fflush(stderr);
}

} // namespace

ScopedLogContext::ScopedLogContext(std::string context)
    : previous_(std::move(t_log_context))
{
    t_log_context = std::move(context);
}

ScopedLogContext::~ScopedLogContext()
{
    t_log_context = std::move(previous_);
}

const std::string &
logThreadContext()
{
    return t_log_context;
}

void
logAndDie(LogLevel level, const char *file, int line, const std::string &msg)
{
    const char *prefix = level == LogLevel::Panic ? "panic" : "fatal";
    emit(prefix, file, line, msg);
    if (level == LogLevel::Panic)
        std::abort();
    std::exit(1);
}

void
logWarn(const char *file, int line, const std::string &msg)
{
    emit("warn", file, line, msg);
}

namespace {

void lockLogMutex() { logMutex().lock(); }
void unlockLogMutex() { logMutex().unlock(); }

} // namespace

void
installLogForkGuard()
{
    // Acquire before fork, release in both parent and child: the
    // child's copy of the mutex is then unlocked no matter which
    // thread was emitting when the fork happened.
    static const int rc [[maybe_unused]] = ::pthread_atfork(
        lockLogMutex, unlockLogMutex, unlockLogMutex);
}

std::mutex &
logMutexForTesting()
{
    return logMutex();
}

} // namespace csched
