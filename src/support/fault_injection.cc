#include "support/fault_injection.hh"

#include <chrono>
#include <cstdio>
#include <thread>

#include "support/cancel.hh"
#include "support/rng.hh"
#include "support/str.hh"

namespace csched {

namespace {

thread_local FaultScope *t_current_scope = nullptr;

/**
 * Deterministic per-hit draw in [0, 1): a function of the rule seed,
 * the point, the scope key, and the hit index only.
 */
double
hitDraw(const FaultRule &rule, const std::string &key, int index)
{
    const uint64_t mixed = rule.seed ^ (fnv1aHash(rule.point) * 3) ^
                           (fnv1aHash(key) * 5) ^
                           (static_cast<uint64_t>(index) * 0x9e3779b9ULL);
    return Rng(mixed).uniform();
}

} // namespace

std::optional<FaultPlan>
FaultPlan::parse(const std::string &text, std::string *error)
{
    auto fail = [&](const std::string &why) -> std::optional<FaultPlan> {
        if (error != nullptr)
            *error = why;
        return std::nullopt;
    };

    FaultPlan plan;
    for (const auto &rule_text : split(text, ';')) {
        const std::string trimmed = trim(rule_text);
        if (trimmed.empty())
            continue;
        const auto eq = trimmed.find('=');
        if (eq == std::string::npos)
            return fail("fault rule '" + trimmed +
                        "' has no '=': expected point=action[:opt=val]");

        FaultRule rule;
        rule.point = trim(trimmed.substr(0, eq));
        if (rule.point.empty())
            return fail("fault rule '" + trimmed + "' names no point");

        const auto parts = split(trimmed.substr(eq + 1), ':');
        const std::string action = trim(parts[0]);
        if (action == "fail") {
            rule.action = FaultAction::Fail;
        } else if (action == "timeout") {
            rule.action = FaultAction::Timeout;
        } else if (action == "slow") {
            rule.action = FaultAction::Slow;
        } else {
            return fail("unknown fault action '" + action +
                        "' (expected fail|timeout|slow)");
        }

        for (size_t k = 1; k < parts.size(); ++k) {
            const std::string opt = trim(parts[k]);
            const auto opt_eq = opt.find('=');
            if (opt_eq == std::string::npos)
                return fail("fault option '" + opt +
                            "' has no '=': expected opt=value");
            const std::string name = trim(opt.substr(0, opt_eq));
            const std::string value = trim(opt.substr(opt_eq + 1));
            try {
                if (name == "match") {
                    rule.match = value;
                } else if (name == "nth") {
                    rule.nth = std::stoi(value);
                    if (rule.nth < 1)
                        return fail("nth must be >= 1, got " + value);
                } else if (name == "prob") {
                    rule.probability = std::stod(value);
                    if (rule.probability < 0.0 || rule.probability > 1.0)
                        return fail("prob must be in [0, 1], got " +
                                    value);
                } else if (name == "seed") {
                    rule.seed = std::stoull(value);
                } else if (name == "ms") {
                    rule.slowMs = std::stoi(value);
                    if (rule.slowMs < 0)
                        return fail("ms must be >= 0, got " + value);
                } else if (name == "code") {
                    const auto code = parseErrorCodeName(value);
                    if (!code.has_value())
                        return fail("unknown error code '" + value + "'");
                    rule.code = *code;
                } else {
                    return fail("unknown fault option '" + name + "'");
                }
            } catch (...) {
                return fail("malformed value in fault option '" + opt +
                            "'");
            }
        }
        plan.add(std::move(rule));
    }
    return plan;
}

std::string
FaultPlan::text() const
{
    std::string out;
    for (const auto &rule : rules_) {
        if (!out.empty())
            out += ";";
        out += rule.point + "=";
        switch (rule.action) {
          case FaultAction::Fail:
            out += "fail";
            break;
          case FaultAction::Timeout:
            out += "timeout";
            break;
          case FaultAction::Slow:
            out += "slow";
            break;
        }
        if (rule.code != ErrorCode::Injected)
            out += std::string(":code=") + errorCodeName(rule.code);
        if (!rule.match.empty())
            out += ":match=" + rule.match;
        if (rule.nth > 0)
            out += ":nth=" + std::to_string(rule.nth);
        if (rule.probability < 1.0) {
            char buffer[48];
            std::snprintf(buffer, sizeof(buffer), "%.17g",
                          rule.probability);
            out += std::string(":prob=") + buffer;
        }
        if (rule.seed != 0)
            out += ":seed=" + std::to_string(rule.seed);
        if (rule.slowMs != 100)
            out += ":ms=" + std::to_string(rule.slowMs);
    }
    return out;
}

FaultScope::FaultScope(const FaultPlan *plan, std::string key)
    : plan_(plan), key_(std::move(key))
{
}

void
FaultScope::hit(const std::string &point)
{
    if (plan_ == nullptr || plan_->empty())
        return;
    const int index = ++hits_[point];
    for (const auto &rule : plan_->rules()) {
        if (rule.point != point)
            continue;
        if (!rule.match.empty() &&
            key_.find(rule.match) == std::string::npos)
            continue;
        if (rule.nth > 0 && index != rule.nth)
            continue;
        if (rule.probability < 1.0 &&
            hitDraw(rule, key_, index) >= rule.probability)
            continue;
        switch (rule.action) {
          case FaultAction::Slow:
            std::this_thread::sleep_for(
                std::chrono::milliseconds(rule.slowMs));
            continue;  // a slowdown is not a failure
          case FaultAction::Timeout:
            throw StatusError(
                Status::timedOut("injected timeout at " + point));
          case FaultAction::Fail:
            throw StatusError(Status::error(
                rule.code, std::string("injected fault (") +
                               errorCodeName(rule.code) + ") at " +
                               point));
        }
    }
}

ScopedFaultScope::ScopedFaultScope(FaultScope *scope)
    : previous_(t_current_scope)
{
    t_current_scope = scope;
}

ScopedFaultScope::~ScopedFaultScope()
{
    t_current_scope = previous_;
}

FaultScope *
currentFaultScope()
{
    return t_current_scope;
}

void
faultPoint(const char *point)
{
    if (t_current_scope != nullptr)
        t_current_scope->hit(point);
}

void
checkpoint(const char *point)
{
    faultPoint(point);
    pollCancellation(point);
}

} // namespace csched
