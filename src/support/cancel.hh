/**
 * @file
 * Cooperative cancellation for long-running scheduler loops.
 *
 * A CancelToken is armed with a deadline (and/or cancelled explicitly)
 * by the job runner; the schedulers poll it at natural loop boundaries
 * -- convergent pass applications, PCC descent moves, UAS cycles,
 * Rawcc merges -- via pollCancellation(), which throws a
 * StatusError(Timeout) that the job boundary converts into a `timeout`
 * job outcome.  Polling is push-free and lock-free: a token is bound
 * to the executing thread through a thread-local pointer, so deep
 * scheduler code needs no plumbing, and code running outside a job
 * (tests, the single-run CLI path) polls against no token at all,
 * which is a no-op.
 */

#ifndef CSCHED_SUPPORT_CANCEL_HH
#define CSCHED_SUPPORT_CANCEL_HH

#include <atomic>
#include <chrono>

namespace csched {

/** A deadline and/or an explicit cancellation request. */
class CancelToken
{
  public:
    CancelToken() = default;

    /** Arm a wall-clock deadline @p ms milliseconds from now. */
    void armDeadline(int ms);

    /** Request cancellation explicitly (thread-safe). */
    void requestCancel() { cancelled_.store(true); }

    /** True once cancelled or past the armed deadline. */
    bool expired() const;

    /** The armed deadline in ms; 0 when none (for diagnostics). */
    int deadlineMs() const { return deadline_ms_; }

  private:
    std::atomic<bool> cancelled_{false};
    bool has_deadline_ = false;
    int deadline_ms_ = 0;
    std::chrono::steady_clock::time_point deadline_;
};

/** Binds @p token to the current thread for the scope's lifetime. */
class ScopedCancelToken
{
  public:
    explicit ScopedCancelToken(CancelToken *token);
    ~ScopedCancelToken();

    ScopedCancelToken(const ScopedCancelToken &) = delete;
    ScopedCancelToken &operator=(const ScopedCancelToken &) = delete;

  private:
    CancelToken *previous_;
};

/** The token bound to this thread, or nullptr outside any job. */
CancelToken *currentCancelToken();

/**
 * The root of the cancellation tree: a process-wide flag sitting above
 * every per-job CancelToken.  The signal handlers of a graceful
 * shutdown (see runner/shutdown.hh) arm it, and every cancellation
 * poll consults it before the thread's own token -- so one request
 * drains every in-flight job cooperatively, no matter which worker it
 * runs on.  Async-signal-safe: a lock-free atomic store.
 */
void requestGlobalCancel();

/** True once requestGlobalCancel() was called (and not reset). */
bool globalCancelRequested();

/** Reset the root flag (tests and resumed driver runs only). */
void resetGlobalCancel();

/**
 * Throw when the current thread's job should stop: a
 * StatusError(Interrupted) when the global root is armed, else a
 * StatusError(Timeout) when the thread's token (if any) has expired.
 * @p where names the poll site for the diagnostic.
 */
void pollCancellation(const char *where);

} // namespace csched

#endif // CSCHED_SUPPORT_CANCEL_HH
