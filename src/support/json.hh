/**
 * @file
 * Minimal JSON support: a deterministic streaming writer (the format
 * every experiment report is serialized in) and a small recursive-
 * descent parser used to load reports back and to round-trip-test the
 * writer.  No external dependencies; numbers are written with
 * shortest-round-trip formatting so equal doubles always produce equal
 * bytes (the grid runner's determinism guarantee relies on this).
 */

#ifndef CSCHED_SUPPORT_JSON_HH
#define CSCHED_SUPPORT_JSON_HH

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace csched {

/** Escape @p text for inclusion in a JSON string literal (no quotes). */
std::string escapeJson(const std::string &text);

/**
 * Collapse a JsonWriter's pretty-printed output to one line: drop
 * every newline plus its following indentation.  Literal newlines
 * never appear inside JSON string literals (escapeJson escapes them),
 * so this is a pure formatting transform.  Used wherever a document
 * must be a single line: journal records, worker pipe frames.
 */
std::string compactJson(const std::string &pretty);

/**
 * Streaming JSON writer producing deterministically formatted,
 * 2-space-indented output.  Usage:
 *
 *   JsonWriter w(out);
 *   w.beginObject();
 *   w.key("makespan").value(42);
 *   w.key("trace").beginArray(); ... w.endArray();
 *   w.endObject();
 *
 * Structural errors (value without key inside an object, unbalanced
 * end calls) are programming errors and panic.
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &out);
    ~JsonWriter();

    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Emit an object key; the next emission must be its value. */
    JsonWriter &key(const std::string &name);

    JsonWriter &value(const std::string &text);
    JsonWriter &value(const char *text);
    JsonWriter &value(int number);
    JsonWriter &value(int64_t number);
    JsonWriter &value(uint64_t number);
    JsonWriter &value(double number);
    JsonWriter &value(bool flag);
    JsonWriter &nullValue();

    /** Whole-array conveniences for the common numeric payloads. */
    JsonWriter &value(const std::vector<int> &numbers);
    JsonWriter &value(const std::vector<double> &numbers);

  private:
    enum class Scope { Object, Array };
    struct Level
    {
        Scope scope;
        int items = 0;
        bool keyPending = false;
    };

    void beforeItem();
    void raw(const std::string &text);
    void indent();

    std::ostream &out_;
    std::vector<Level> stack_;
};

/** Parsed JSON document node. */
struct JsonValue
{
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> array;
    /** Insertion-ordered key/value pairs. */
    std::vector<std::pair<std::string, JsonValue>> object;

    bool isNull() const { return kind == Kind::Null; }

    /** Object member lookup; nullptr when absent or not an object. */
    const JsonValue *find(const std::string &name) const;

    /** Object member access; fatal when absent (malformed report). */
    const JsonValue &at(const std::string &name) const;

    int asInt() const;
    double asDouble() const;
};

/**
 * Parse a complete JSON document.  Returns std::nullopt on syntax
 * errors and, when @p error is non-null, stores position + reason.
 * Supports the full value grammar minus \uXXXX surrogate pairs
 * (non-BMP escapes), which the writer never emits.
 */
std::optional<JsonValue> parseJson(const std::string &text,
                                   std::string *error = nullptr);

} // namespace csched

#endif // CSCHED_SUPPORT_JSON_HH
