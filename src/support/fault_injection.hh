/**
 * @file
 * Deterministic fault injection: the mechanism that proves the
 * runner's recovery paths (isolation, retry, timeout, salvage)
 * actually work.
 *
 * The library is instrumented with *named fault points* --
 * checkpoint() calls at interesting boundaries such as
 * "runner.job.start", "checker.verify", "pass.apply", "pcc.descent",
 * "uas.cycle", "rawcc.merge", and "machine.degrade" (hit exactly
 * once when an online mid-run degradation event fires, so tile loss
 * is deterministically injectable).  A FaultPlan (parsed from a test or
 * from the hidden --inject driver option) arms rules against those
 * points; a FaultScope binds the plan to one job's execution with a
 * scope key (e.g. "fir/vliw4/uas") and per-point hit counters.
 *
 * Determinism: a rule's decision to fire depends only on (seed, point,
 * scope key, hit index) -- never on wall-clock, thread identity, or
 * global state -- so an injected grid produces byte-identical reports
 * at any --jobs value.  Hit counters live in the scope (one per job)
 * and persist across retry attempts, which is how "fail on the first
 * hit only" rules model transient faults that a retry heals.
 *
 * Rule spec grammar (rules separated by ';'):
 *
 *   point=action[:opt=value]...
 *
 *   action: fail     throw an error (default code "injected")
 *           timeout  throw a timeout (simulates an expired deadline)
 *           slow     sleep ms milliseconds, then continue
 *   opts:   match=S  only in scopes whose key contains substring S
 *           nth=N    only on the Nth hit of the point (1-based)
 *           prob=P   fire with probability P (deterministic, seeded)
 *           seed=S   seed for prob draws (default 0)
 *           ms=N     sleep length for slow (default 100)
 *           code=C   error code for fail: injected|check-failed|
 *                    invalid-spec|internal
 *
 * Example: "runner.job.start=fail:match=uas:nth=1;pass.apply=slow:ms=5"
 */

#ifndef CSCHED_SUPPORT_FAULT_INJECTION_HH
#define CSCHED_SUPPORT_FAULT_INJECTION_HH

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "support/status.hh"

namespace csched {

/** What an armed rule does when it fires. */
enum class FaultAction { Fail, Timeout, Slow };

/** One armed rule of a fault plan. */
struct FaultRule
{
    std::string point;  ///< exact fault-point name this rule watches
    FaultAction action = FaultAction::Fail;
    /** Error code thrown by Fail (Injected unless overridden). */
    ErrorCode code = ErrorCode::Injected;
    /** Scope-key substring filter; empty matches every scope. */
    std::string match;
    /** Fire only on this hit index (1-based); 0 = every hit. */
    int nth = 0;
    /** Firing probability per hit; draws are seeded and per-hit. */
    double probability = 1.0;
    /** Seed for probability draws. */
    uint64_t seed = 0;
    /** Sleep length for Slow, in milliseconds. */
    int slowMs = 100;
};

/** An immutable set of rules, shareable across jobs and threads. */
class FaultPlan
{
  public:
    /** Parse the ';'-separated rule spec; nullopt + error when bad. */
    static std::optional<FaultPlan> parse(const std::string &text,
                                          std::string *error = nullptr);

    /**
     * The plan back in rule-spec text form (round-trips through
     * parse()).  This is how an armed plan crosses the process
     * boundary to an isolated worker (runner/worker.hh).
     */
    std::string text() const;

    void add(FaultRule rule) { rules_.push_back(std::move(rule)); }

    bool empty() const { return rules_.empty(); }
    const std::vector<FaultRule> &rules() const { return rules_; }

  private:
    std::vector<FaultRule> rules_;
};

/**
 * One job's view of a plan: the scope key plus per-point hit counters.
 * Not thread-safe -- a scope belongs to the single thread running its
 * job.  A null plan makes every hit a no-op.
 */
class FaultScope
{
  public:
    FaultScope(const FaultPlan *plan, std::string key);

    /**
     * Record a hit of @p point and apply every matching rule: Slow
     * sleeps, Fail/Timeout throw StatusError.
     */
    void hit(const std::string &point);

    const std::string &key() const { return key_; }

  private:
    const FaultPlan *plan_;
    std::string key_;
    std::map<std::string, int> hits_;
};

/** Binds @p scope to the current thread for the scope's lifetime. */
class ScopedFaultScope
{
  public:
    explicit ScopedFaultScope(FaultScope *scope);
    ~ScopedFaultScope();

    ScopedFaultScope(const ScopedFaultScope &) = delete;
    ScopedFaultScope &operator=(const ScopedFaultScope &) = delete;

  private:
    FaultScope *previous_;
};

/** The scope bound to this thread, or nullptr outside any job. */
FaultScope *currentFaultScope();

/** Hit @p point on the current thread's scope; no-op without one. */
void faultPoint(const char *point);

/**
 * The standard instrumentation call: hit the fault point, then poll
 * cancellation.  This is what scheduler loops call at their
 * boundaries.
 */
void checkpoint(const char *point);

} // namespace csched

#endif // CSCHED_SUPPORT_FAULT_INJECTION_HH
