/**
 * @file
 * Small statistics helpers used by the evaluation harness: means,
 * geometric means, and a streaming accumulator for min/max/mean.
 */

#ifndef CSCHED_SUPPORT_STATS_HH
#define CSCHED_SUPPORT_STATS_HH

#include <cstddef>
#include <vector>

namespace csched {

/** Arithmetic mean; returns 0 for an empty vector. */
double mean(const std::vector<double> &values);

/**
 * Geometric mean; all values must be positive.  This is the standard
 * aggregate for speedup ratios (used for the paper's "average
 * improvement" numbers).
 */
double geomean(const std::vector<double> &values);

/** Population standard deviation; returns 0 for fewer than two values. */
double stddev(const std::vector<double> &values);

/**
 * Lower median (the element at index (n-1)/2 of the sorted sample);
 * returns 0 for an empty vector.  The lower median is deterministic
 * and never interpolates, which keeps bench reports exact sample
 * values rather than synthetic averages.
 */
double median(std::vector<double> values);

/** Streaming accumulator for count/min/max/mean of a sample set. */
class Accumulator
{
  public:
    /** Fold one sample into the accumulator. */
    void add(double value);

    size_t count() const { return count_; }
    double min() const;
    double max() const;
    double mean() const;
    double sum() const { return sum_; }

  private:
    size_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

} // namespace csched

#endif // CSCHED_SUPPORT_STATS_HH
