/**
 * @file
 * Small statistics helpers used by the evaluation harness: means,
 * geometric means, and a streaming accumulator for min/max/mean.
 */

#ifndef CSCHED_SUPPORT_STATS_HH
#define CSCHED_SUPPORT_STATS_HH

#include <cstddef>
#include <vector>

namespace csched {

/** Arithmetic mean; returns 0 for an empty vector. */
double mean(const std::vector<double> &values);

/**
 * Geometric mean; all values must be positive.  This is the standard
 * aggregate for speedup ratios (used for the paper's "average
 * improvement" numbers).
 */
double geomean(const std::vector<double> &values);

/** Population standard deviation; returns 0 for fewer than two values. */
double stddev(const std::vector<double> &values);

/**
 * Lower median (the element at index (n-1)/2 of the sorted sample);
 * returns 0 for an empty vector.  The lower median is deterministic
 * and never interpolates, which keeps bench reports exact sample
 * values rather than synthetic averages.
 */
double median(std::vector<double> values);

/**
 * Nearest-rank percentile: the smallest sorted element whose rank
 * covers at least p percent of the sample (index ceil(p/100 * n) - 1).
 * Like median(), this always returns an actual sample value and never
 * interpolates, so reports stay deterministic and exact.  p must be in
 * (0, 100]; returns 0 for an empty vector.  percentile(v, 50) equals
 * median(v).
 */
double percentile(std::vector<double> values, double p);

/** Streaming accumulator for count/min/max/mean of a sample set. */
class Accumulator
{
  public:
    /** Fold one sample into the accumulator. */
    void add(double value);

    size_t count() const { return count_; }
    double min() const;
    double max() const;
    double mean() const;
    double sum() const { return sum_; }

  private:
    size_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

} // namespace csched

#endif // CSCHED_SUPPORT_STATS_HH
