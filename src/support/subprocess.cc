#include "support/subprocess.hh"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <optional>

#include <poll.h>
#include <sys/resource.h>
#include <unistd.h>

namespace csched {

namespace {

using SteadyClock = std::chrono::steady_clock;

/**
 * Read exactly @p want bytes, polling so the overall @p deadline (a
 * time point; nullopt = none) bounds the wait even when the peer
 * stalls mid-frame.  Returns the number of bytes read (< want only on
 * EOF/timeout/error; *why distinguishes the latter two).
 */
size_t
readFull(int fd, char *out, size_t want,
         const std::optional<SteadyClock::time_point> &deadline,
         std::string *why)
{
    size_t got = 0;
    while (got < want) {
        if (deadline.has_value()) {
            const auto now = SteadyClock::now();
            if (now >= *deadline) {
                *why = "timeout";
                return got;
            }
            const int wait_ms = static_cast<int>(
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    *deadline - now)
                    .count() +
                1);
            struct pollfd pfd = {fd, POLLIN, 0};
            const int ready = ::poll(&pfd, 1, wait_ms);
            if (ready < 0) {
                if (errno == EINTR)
                    continue;
                *why = std::string("poll: ") + std::strerror(errno);
                return got;
            }
            if (ready == 0) {
                *why = "timeout";
                return got;
            }
        }
        const ssize_t n = ::read(fd, out + got, want - got);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            *why = std::string("read: ") + std::strerror(errno);
            return got;
        }
        if (n == 0) {
            *why = "eof";
            return got;
        }
        got += static_cast<size_t>(n);
    }
    return got;
}

} // namespace

Status
writeFrame(int fd, const std::string &payload)
{
    const uint32_t length = static_cast<uint32_t>(payload.size());
    if (payload.size() > kMaxFrameBytes)
        return Status::internal("frame payload of " +
                                std::to_string(payload.size()) +
                                " bytes exceeds the frame cap");
    std::string frame;
    frame.reserve(4 + payload.size());
    for (int shift = 0; shift < 32; shift += 8)
        frame.push_back(static_cast<char>((length >> shift) & 0xff));
    frame += payload;

    size_t written = 0;
    while (written < frame.size()) {
        const ssize_t n = ::write(fd, frame.data() + written,
                                  frame.size() - written);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return Status::internal(std::string("write frame: ") +
                                    std::strerror(errno));
        }
        written += static_cast<size_t>(n);
    }
    return Status();
}

FrameResult
readFrame(int fd, int timeout_ms, uint32_t max_bytes)
{
    std::optional<SteadyClock::time_point> deadline;
    if (timeout_ms >= 0)
        deadline = SteadyClock::now() +
                   std::chrono::milliseconds(timeout_ms);

    FrameResult result;
    std::string why;
    char header[4];
    const size_t header_got =
        readFull(fd, header, sizeof(header), deadline, &why);
    if (header_got == 0 && why == "eof") {
        result.kind = FrameResult::Kind::Eof;
        return result;
    }
    if (header_got < sizeof(header)) {
        result.kind = why == "timeout" ? FrameResult::Kind::Timeout
                                       : FrameResult::Kind::Malformed;
        result.error = "truncated frame length (" +
                       std::to_string(header_got) + " of 4 bytes, " +
                       why + ")";
        return result;
    }
    uint32_t length = 0;
    for (int k = 0; k < 4; ++k)
        length |= static_cast<uint32_t>(
                      static_cast<unsigned char>(header[k]))
                  << (8 * k);
    if (length > max_bytes) {
        result.kind = FrameResult::Kind::Oversized;
        result.error = "oversized frame length " +
                       std::to_string(length) + " (cap " +
                       std::to_string(max_bytes) + ")";
        return result;
    }

    result.payload.resize(length);
    const size_t body_got =
        readFull(fd, result.payload.data(), length, deadline, &why);
    if (body_got < length) {
        result.payload.clear();
        result.kind = why == "timeout" ? FrameResult::Kind::Timeout
                                       : FrameResult::Kind::Malformed;
        result.error = "truncated frame payload (" +
                       std::to_string(body_got) + " of " +
                       std::to_string(length) + " bytes, " + why + ")";
        return result;
    }
    result.kind = FrameResult::Kind::Payload;
    return result;
}

void
applyChildResourceLimits(int mem_limit_mb, int cpu_limit_sec)
{
    if (mem_limit_mb > 0) {
        const rlim_t bytes =
            static_cast<rlim_t>(mem_limit_mb) * 1024 * 1024;
        struct rlimit limit = {bytes, bytes};
        (void)::setrlimit(RLIMIT_AS, &limit);
    }
    if (cpu_limit_sec > 0) {
        const rlim_t sec = static_cast<rlim_t>(cpu_limit_sec);
        // Soft = hard: the first overrun delivers SIGXCPU, whose
        // default disposition kills the worker; the parent classifies
        // the death.
        struct rlimit limit = {sec, sec};
        (void)::setrlimit(RLIMIT_CPU, &limit);
    }
}

std::string
lastLines(const std::string &text, int n)
{
    if (text.empty() || n <= 0)
        return "";
    // Ignore a trailing newline so "a\nb\n" is two lines, not three.
    size_t end = text.size();
    if (text[end - 1] == '\n')
        --end;
    size_t start = end;
    int lines = 0;
    while (start > 0) {
        if (text[start - 1] == '\n' && ++lines == n)
            break;
        --start;
    }
    return text.substr(start, end - start);
}

} // namespace csched
