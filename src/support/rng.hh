/**
 * @file
 * Deterministic pseudo-random number generator.
 *
 * Every stochastic element in the library (the NOISE pass, the synthetic
 * workload generators, the random-DAG property tests) draws from this
 * generator so that runs are reproducible bit-for-bit across platforms.
 * The implementation is xoshiro256** which is fast, well distributed,
 * and has no global state.
 */

#ifndef CSCHED_SUPPORT_RNG_HH
#define CSCHED_SUPPORT_RNG_HH

#include <cstdint>

namespace csched {

/** Seedable, copyable PRNG with convenience draws. */
class Rng
{
  public:
    /** Construct from a 64-bit seed; any value (including 0) is fine. */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit draw. */
    uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform integer in [0, bound); bound must be positive. */
    int range(int bound);

    /** Uniform integer in [lo, hi] inclusive; requires lo <= hi. */
    int between(int lo, int hi);

    /** Bernoulli draw with probability @p p of returning true. */
    bool chance(double p);

  private:
    uint64_t state_[4];
};

} // namespace csched

#endif // CSCHED_SUPPORT_RNG_HH
