/**
 * @file
 * Plain-text table printer used by the benchmark harnesses to emit the
 * paper's tables and figure series in a uniform, diffable format.
 */

#ifndef CSCHED_SUPPORT_TABLE_HH
#define CSCHED_SUPPORT_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace csched {

/**
 * Column-aligned ASCII table.  Rows are added as string cells; numeric
 * convenience overloads format doubles with a fixed number of decimals.
 */
class TablePrinter
{
  public:
    /** Create a table with the given column headers. */
    explicit TablePrinter(std::vector<std::string> headers);

    /** Append a fully-formatted row; must match the header width. */
    void addRow(std::vector<std::string> cells);

    /** Render with padded columns and a separator under the header. */
    void print(std::ostream &os) const;

    size_t numRows() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace csched

#endif // CSCHED_SUPPORT_TABLE_HH
