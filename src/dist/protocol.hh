/**
 * @file
 * Wire protocol between a grid client (dist/remote_pool.hh) and the
 * remote worker daemon (dist/workerd.hh): schema "csched-dist-v1",
 * compact JSON payloads over the same 4-byte LE length-prefixed frame
 * codec as the worker pipes and the serve daemon
 * (support/subprocess.hh readFrame/writeFrame).
 *
 * Six message types, all tagged with "type":
 *
 *  - hello    client -> server   opens a connection; version check
 *  - welcome  server -> client   accepts it, advertises job capacity
 *  - job      client -> server   one job dispatch, correlation id +
 *                                the exact text-form job crossing of
 *                                the isolated-worker frames
 *                                (runner/worker.hh
 *                                writeWorkerJobFields)
 *  - result   server -> client   the finished JobResult for one id
 *  - ping     client -> server   heartbeat probe, sequence number
 *  - pong     server -> client   heartbeat echo of that sequence
 *
 * The job payload reuses writeWorkerJobFields/decodeWorkerJobFields
 * verbatim, so *anything* a driver can express -- algorithm options,
 * fault plans, baseline memo entries -- round-trips to a remote host
 * exactly as it round-trips to a forked worker child.
 *
 * Robustness stance: decodeDistMessage() classifies every byte-level
 * failure (not JSON, wrong schema, missing fields, shape abuse from a
 * hostile peer) as an InvalidSpec status -- never a throw, never a
 * crash.  The frame cap is deliberately smaller than the pipe codec's
 * (remote peers are less trusted than our own forked children).
 */

#ifndef CSCHED_DIST_PROTOCOL_HH
#define CSCHED_DIST_PROTOCOL_HH

#include <cstdint>
#include <optional>
#include <string>

#include "runner/worker.hh"

namespace csched {

/** Schema identifier carried by every dist frame. */
inline const char *kDistSchema = "csched-dist-v1";

/**
 * Refuse dist frames longer than this (8 MiB).  A real job or result
 * frame -- even one carrying a large assignment vector -- is far
 * smaller; anything bigger is corruption or a hostile peer probing
 * for a huge allocation.
 */
inline constexpr uint32_t kDistMaxFrameBytes = 8u << 20;

/** One decoded dist frame. */
struct DistMessage
{
    enum class Kind { Hello, Welcome, Job, Result, Ping, Pong };

    Kind kind = Kind::Hello;
    /** Job correlation id (Job/Result). */
    uint64_t id = 0;
    /** Heartbeat sequence number (Ping/Pong). */
    uint64_t seq = 0;
    /** Advertised concurrent-job capacity (Welcome). */
    int capacity = 0;
    /** The dispatched job (Job). */
    std::optional<WorkerJobFrame> job;
    /** The finished result (Result). */
    std::optional<JobResult> result;
};

/** Stable lower-case name of a message kind, e.g. "welcome". */
const char *distMessageKindName(DistMessage::Kind kind);

std::string encodeDistHello();
std::string encodeDistWelcome(int capacity);

/**
 * Encode one job dispatch: @p id plus the text-form job crossing (the
 * same field set encodeWorkerJob ships to a forked worker child, with
 * @p retries attempts remaining for the remote executor and no death
 * directive -- worker.* death points fire on the daemon's side).
 */
std::string encodeDistJob(uint64_t id, const JobSpec &spec,
                          const JobPolicy &policy, int retries,
                          const BaselineMemo *baselines);

std::string encodeDistResult(uint64_t id, const JobResult &result);
std::string encodeDistPing(uint64_t seq);
std::string encodeDistPong(uint64_t seq);

/**
 * Decode any dist frame.  Every way an untrusted peer can deviate
 * from the protocol -- non-JSON bytes, a wrong or missing schema, an
 * unknown type, missing or mis-shaped fields -- comes back as an
 * InvalidSpec status naming the problem.
 */
StatusOr<DistMessage> decodeDistMessage(const std::string &payload);

} // namespace csched

#endif // CSCHED_DIST_PROTOCOL_HH
