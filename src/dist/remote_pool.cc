#include "dist/remote_pool.hh"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>

#include <sys/socket.h>
#include <unistd.h>

#include "runner/shutdown.hh"
#include "support/fault_injection.hh"
#include "support/logging.hh"
#include "support/rng.hh"
#include "support/socket.hh"
#include "support/str.hh"
#include "support/subprocess.hh"

namespace csched {

namespace {

using Clock = std::chrono::steady_clock;

/** Idle tick for waits that must notice drain/steal/liveness. */
constexpr int kTickMs = 50;

/**
 * Jittered exponential reconnect delay, a pure function of
 * (endpoint, attempt) -- the retryBackoffMs recipe one layer down.
 */
int
reconnectBackoffMs(const std::string &endpoint, int attempt, int base,
                   int cap)
{
    const int exponent = std::min(std::max(0, attempt - 1), 6);
    const int raw =
        std::min(std::max(1, base) << exponent, std::max(1, cap));
    Rng rng(fnv1aHash("dist.reconnect/" + endpoint) ^
            static_cast<uint64_t>(attempt));
    const double jitter = 0.5 + rng.uniform();
    return std::max(1, static_cast<int>(raw * jitter));
}

/** Deterministic-jittered quarantine window (serve degrade recipe). */
int
quarantineCooldownMs(const std::string &endpoint, uint64_t trip,
                     int base)
{
    Rng rng(fnv1aHash("dist.quarantine/" + endpoint) ^ trip);
    const double jitter = 0.5 + rng.uniform();
    return std::max(1, static_cast<int>(base * jitter));
}

void
fillInterrupted(JobResult &result, const char *when)
{
    result.outcome = JobOutcome::Interrupted;
    result.error = ErrorCode::Interrupted;
    result.diagnostic = std::string("shutdown requested ") + when;
}

} // namespace

// ---------------------------------------------------------------------
// Options.
// ---------------------------------------------------------------------

Status
DistOptions::applyOverrides(DistOptions *options,
                            const std::string &text)
{
    struct Knob
    {
        const char *name;
        int *field;
    };
    const Knob knobs[] = {
        {"connect-timeout-ms", &options->connectTimeoutMs},
        {"heartbeat-interval-ms", &options->heartbeatIntervalMs},
        {"liveness-timeout-ms", &options->livenessTimeoutMs},
        {"reconnect-base-ms", &options->reconnectBaseMs},
        {"reconnect-cap-ms", &options->reconnectCapMs},
        {"crash-loop-threshold", &options->crashLoopThreshold},
        {"quarantine-cooldown-ms", &options->quarantineCooldownMs},
        {"partition-ms", &options->partitionMs},
        {"steal-after-ms", &options->stealAfterMs},
        {"dispatch-attempts", &options->dispatchAttempts},
        {"dispatch-wait-ms", &options->dispatchWaitMs},
        {"send-timeout-ms", &options->sendTimeoutMs},
    };

    for (const std::string &piece : split(text, ',')) {
        const std::string entry = trim(piece);
        if (entry.empty())
            continue;
        const auto eq = entry.find('=');
        if (eq == std::string::npos)
            return Status::invalidSpec("dist option '" + entry +
                                       "' is not key=value");
        const std::string key = trim(entry.substr(0, eq));
        const std::string value = trim(entry.substr(eq + 1));
        if (value.empty() ||
            value.find_first_not_of("0123456789") != std::string::npos)
            return Status::invalidSpec("dist option '" + key +
                                       "': value must be a "
                                       "non-negative integer");
        bool known = false;
        for (const Knob &knob : knobs) {
            if (key == knob.name) {
                *knob.field = std::atoi(value.c_str());
                known = true;
                break;
            }
        }
        if (!known)
            return Status::invalidSpec("unknown dist option '" + key +
                                       "'");
    }
    return Status();
}

// ---------------------------------------------------------------------
// Internal state.
// ---------------------------------------------------------------------

/** One endpoint of the fleet and its connection state machine. */
struct RemoteWorkerPool::Host
{
    enum class State {
        Disconnected,  ///< no connection; reconnect scheduled
        Connecting,    ///< TCP up, hello/welcome handshake pending
        Connected,     ///< welcomed; accepting leases
        Quarantined,   ///< crash-looping; re-admission after cooldown
    };

    std::string endpoint;  ///< the "host:port" spelling for messages
    std::string addr;
    uint16_t port = 0;
    int index = 0;

    State state = State::Disconnected;
    int fd = -1;  ///< owned (closed) by the reader thread
    /** Bumped on every loss, so stale readers cannot double-kill. */
    uint64_t generation = 0;
    int capacity = 1;
    int active = 0;  ///< outstanding dispatches leased here
    int consecutiveLosses = 0;
    int reconnectAttempt = 0;
    uint64_t quarantineTrips = 0;
    uint64_t pingSeq = 0;
    Clock::time_point lastHeard{};
    Clock::time_point nextPingAt{};
    Clock::time_point nextReconnectAt = Clock::time_point::min();
    /** Simulated partition: no reconnect attempts before this. */
    Clock::time_point noReconnectBefore = Clock::time_point::min();
};

/** One job's claim on the fleet (lives on runJobRemote's stack). */
struct RemoteWorkerPool::Lease
{
    std::condition_variable cv;  ///< waits on the pool mutex
    bool done = false;
    bool lost = false;  ///< every outstanding dispatch disappeared
    JobResult result;
    /** (dispatch id, host index) pairs still in flight. */
    std::vector<std::pair<uint64_t, int>> outstanding;
    Clock::time_point dispatchedAt{};

    // A steal must rebuild the dispatch frame without touching the
    // originating thread, so the lease owns copies of everything the
    // frame needs (the fault plan is grid-lifetime and only borrowed).
    JobSpec spec;
    JobPolicy policy;
    BaselineMemo memo;
};

struct RemoteWorkerPool::Counters
{
    std::atomic<uint64_t> dispatches{0};
    std::atomic<uint64_t> steals{0};
    std::atomic<uint64_t> staleResults{0};
    std::atomic<uint64_t> hostLosses{0};
    std::atomic<uint64_t> reconnects{0};
    std::atomic<uint64_t> quarantines{0};
    std::atomic<uint64_t> leaseReassignments{0};
};

RemoteWorkerPool::RemoteWorkerPool(DistOptions options)
    : options_(std::move(options)),
      counters_(std::make_unique<Counters>())
{
}

RemoteWorkerPool::~RemoteWorkerPool()
{
    shutdown();
}

// ---------------------------------------------------------------------
// Connection management.
// ---------------------------------------------------------------------

Status
RemoteWorkerPool::start()
{
    CSCHED_ASSERT(!started_, "RemoteWorkerPool::start() called twice");
    if (options_.hosts.empty())
        return Status::invalidSpec("no worker hosts given");

    {
        std::lock_guard<std::mutex> lock(mutex_);
        int index = 0;
        for (const std::string &endpoint : options_.hosts) {
            auto host = std::make_shared<Host>();
            host->endpoint = endpoint;
            const Status parsed =
                parseHostPort(endpoint, &host->addr, &host->port);
            if (!parsed.ok())
                return parsed.withContext("--hosts");
            host->index = index++;
            hosts_.push_back(std::move(host));
        }
    }

    // A write to a host that died mid-read must be an EPIPE Status,
    // not a fatal SIGPIPE (same stance as the worker pipes).
    std::signal(SIGPIPE, SIG_IGN);

    // First connection wave: every endpoint gets the full budget (the
    // daemons may still be binding); failures just schedule the
    // background reconnect loop.
    for (const auto &host : hosts_) {
        auto connected =
            connectTcp(host->addr, host->port, options_.connectTimeoutMs);
        std::lock_guard<std::mutex> lock(mutex_);
        if (connected.ok()) {
            setSendTimeout(*connected, options_.sendTimeoutMs);
            host->state = Host::State::Connecting;
            host->fd = *connected;
            host->lastHeard = Clock::now();
            readerThreads_.emplace_back(&RemoteWorkerPool::readerMain,
                                        this, host, *connected,
                                        host->generation);
        } else {
            host->reconnectAttempt = 1;
            host->nextReconnectAt =
                Clock::now() +
                std::chrono::milliseconds(reconnectBackoffMs(
                    host->endpoint, 1, options_.reconnectBaseMs,
                    options_.reconnectCapMs));
        }
    }

    started_ = true;
    controller_ = std::thread(&RemoteWorkerPool::controllerMain, this);

    // The fleet is usable once one host finished its handshake.
    const auto deadline =
        Clock::now() +
        std::chrono::milliseconds(options_.connectTimeoutMs + 2000);
    {
        std::unique_lock<std::mutex> lock(mutex_);
        stateChanged_.wait_until(lock, deadline, [this] {
            for (const auto &host : hosts_)
                if (host->state == Host::State::Connected)
                    return true;
            return false;
        });
        for (const auto &host : hosts_)
            if (host->state == Host::State::Connected)
                return Status();
    }
    shutdown();
    std::string tried;
    for (const std::string &endpoint : options_.hosts) {
        if (!tried.empty())
            tried += ", ";
        tried += endpoint;
    }
    return Status::hostLost("no worker host reachable (tried " +
                            tried + ")");
}

void
RemoteWorkerPool::shutdown()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!started_ || stopping_) {
            stopping_ = true;
            return;
        }
        stopping_ = true;
        for (const auto &host : hosts_)
            if (host->fd >= 0)
                connectionLost(*host, host->generation,
                               "client shutting down");
        stateChanged_.notify_all();
    }
    if (controller_.joinable())
        controller_.join();
    for (std::thread &thread : readerThreads_)
        thread.join();
    readerThreads_.clear();
}

/**
 * Declare one connection dead (mutex_ must be held): bump the
 * generation so the stale reader cannot double-kill, wake the reader
 * via shutdown(2), fail the leases parked on the host, and schedule
 * either a reconnect or -- after enough consecutive losses -- a
 * quarantine window.
 */
void
RemoteWorkerPool::connectionLost(Host &host, uint64_t generation,
                                 const char *why, bool partitioned)
{
    if (host.generation != generation)
        return;  // already handled by someone faster
    ++host.generation;
    counters_->hostLosses.fetch_add(1);
    if (host.fd >= 0) {
        ::shutdown(host.fd, SHUT_RDWR);
        host.fd = -1;  // the reader thread owns the close
    }
    if (!stopping_)
        CSCHED_WARN("worker host ", host.endpoint, " lost: ", why);

    failHostLeasesLocked(host);
    host.active = 0;

    const auto now = Clock::now();
    if (partitioned)
        host.noReconnectBefore =
            now + std::chrono::milliseconds(options_.partitionMs);

    ++host.consecutiveLosses;
    if (host.consecutiveLosses >= options_.crashLoopThreshold) {
        // Crash loop: quarantine with a deterministic-jittered
        // cooldown, then re-admit on probation.
        host.state = Host::State::Quarantined;
        counters_->quarantines.fetch_add(1);
        const int cooldown = quarantineCooldownMs(
            host.endpoint, ++host.quarantineTrips,
            options_.quarantineCooldownMs);
        host.nextReconnectAt =
            now + std::chrono::milliseconds(cooldown);
        host.consecutiveLosses = 0;
    } else {
        host.state = Host::State::Disconnected;
        ++host.reconnectAttempt;
        host.nextReconnectAt =
            now + std::chrono::milliseconds(reconnectBackoffMs(
                      host.endpoint, host.reconnectAttempt,
                      options_.reconnectBaseMs,
                      options_.reconnectCapMs));
    }
    stateChanged_.notify_all();
}

void
RemoteWorkerPool::failHostLeasesLocked(Host &host)
{
    for (auto it = pending_.begin(); it != pending_.end();) {
        Lease *lease = it->second;
        bool on_host = false;
        for (auto entry = lease->outstanding.begin();
             entry != lease->outstanding.end(); ++entry) {
            if (entry->first == it->first &&
                entry->second == host.index) {
                lease->outstanding.erase(entry);
                on_host = true;
                break;
            }
        }
        if (!on_host) {
            ++it;
            continue;
        }
        it = pending_.erase(it);
        if (lease->outstanding.empty() && !lease->done) {
            lease->lost = true;
            counters_->leaseReassignments.fetch_add(1);
            lease->cv.notify_all();
        }
    }
}

void
RemoteWorkerPool::readerMain(std::shared_ptr<Host> host, int fd,
                             uint64_t generation)
{
    // Handshake first: hello out, welcome back.  Until the welcome is
    // seen nothing else writes to this fd, so no lock is needed here.
    bool welcomed = false;
    if (writeFrame(fd, encodeDistHello()).ok()) {
        const FrameResult frame =
            readFrame(fd, options_.connectTimeoutMs,
                      options_.maxFrameBytes);
        if (frame.ok()) {
            auto decoded = decodeDistMessage(frame.payload);
            if (decoded.ok() &&
                decoded->kind == DistMessage::Kind::Welcome) {
                std::lock_guard<std::mutex> lock(mutex_);
                if (host->generation == generation && !stopping_) {
                    host->state = Host::State::Connected;
                    host->capacity = std::max(1, decoded->capacity);
                    host->active = 0;
                    host->lastHeard = Clock::now();
                    host->nextPingAt = Clock::now();
                    host->consecutiveLosses = 0;
                    host->reconnectAttempt = 0;
                    counters_->reconnects.fetch_add(1);
                    welcomed = true;
                    stateChanged_.notify_all();
                }
            }
        }
    }

    while (welcomed) {
        const FrameResult frame =
            readFrame(fd, kTickMs * 4, options_.maxFrameBytes);
        if (frame.kind == FrameResult::Kind::Timeout) {
            std::lock_guard<std::mutex> lock(mutex_);
            if (stopping_ || host->generation != generation)
                break;
            continue;  // idle tick; liveness is the controller's job
        }
        if (!frame.ok())  // EOF, malformed, oversized: channel dead
            break;

        auto decoded = decodeDistMessage(frame.payload);
        std::lock_guard<std::mutex> lock(mutex_);
        if (stopping_ || host->generation != generation)
            break;
        host->lastHeard = Clock::now();
        if (!decoded.ok())  // the peer garbles; drop it below
            break;
        if (decoded->kind == DistMessage::Kind::Pong)
            continue;
        if (decoded->kind != DistMessage::Kind::Result)
            continue;  // nothing else is server-to-client meaningful

        const auto found = pending_.find(decoded->id);
        if (found == pending_.end()) {
            // A steal won the race, or the lease was reassigned away;
            // this result is stale by id and simply dropped.
            counters_->staleResults.fetch_add(1);
            continue;
        }
        Lease *lease = found->second;
        for (const auto &[oid, hidx] : lease->outstanding) {
            pending_.erase(oid);
            Host &h = *hosts_[static_cast<size_t>(hidx)];
            h.active = std::max(0, h.active - 1);
        }
        lease->outstanding.clear();
        lease->done = true;
        lease->result = std::move(*decoded->result);
        lease->cv.notify_all();
        stateChanged_.notify_all();
    }

    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!stopping_)
            connectionLost(*host, generation, "connection closed");
    }
    ::close(fd);
}

void
RemoteWorkerPool::controllerMain()
{
    for (;;) {
        std::vector<std::shared_ptr<Host>> to_connect;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            stateChanged_.wait_for(lock,
                                   std::chrono::milliseconds(kTickMs));
            if (stopping_)
                return;
            const auto now = Clock::now();
            for (const auto &host : hosts_) {
                switch (host->state) {
                  case Host::State::Connected: {
                    const auto silent =
                        std::chrono::duration_cast<
                            std::chrono::milliseconds>(
                            now - host->lastHeard)
                            .count();
                    if (silent > options_.livenessTimeoutMs) {
                        connectionLost(*host, host->generation,
                                       "liveness deadline passed");
                        break;
                    }
                    if (now >= host->nextPingAt) {
                        host->nextPingAt =
                            now + std::chrono::milliseconds(
                                      options_.heartbeatIntervalMs);
                        if (!writeFrame(host->fd,
                                        encodeDistPing(
                                            ++host->pingSeq))
                                 .ok())
                            connectionLost(*host, host->generation,
                                           "heartbeat write failed");
                    }
                    break;
                  }
                  case Host::State::Quarantined:
                  case Host::State::Disconnected:
                    if (now >= host->nextReconnectAt &&
                        now >= host->noReconnectBefore) {
                        host->state = Host::State::Connecting;
                        to_connect.push_back(host);
                    }
                    break;
                  case Host::State::Connecting:
                    break;
                }
            }
            tryStealLocked();
        }

        // TCP connects happen unlocked (they block); each attempt is
        // kept short -- the backoff schedule provides the pacing.
        for (const auto &host : to_connect) {
            auto connected = connectTcp(
                host->addr, host->port,
                std::min(options_.connectTimeoutMs, 4 * kTickMs));
            std::lock_guard<std::mutex> lock(mutex_);
            if (stopping_) {
                if (connected.ok())
                    ::close(*connected);
                return;
            }
            if (connected.ok()) {
                setSendTimeout(*connected, options_.sendTimeoutMs);
                ++host->generation;
                host->fd = *connected;
                host->lastHeard = Clock::now();
                readerThreads_.emplace_back(
                    &RemoteWorkerPool::readerMain, this, host,
                    *connected, host->generation);
            } else {
                host->state = Host::State::Disconnected;
                ++host->reconnectAttempt;
                host->nextReconnectAt =
                    Clock::now() +
                    std::chrono::milliseconds(reconnectBackoffMs(
                        host->endpoint, host->reconnectAttempt,
                        options_.reconnectBaseMs,
                        options_.reconnectCapMs));
            }
        }
    }
}

// ---------------------------------------------------------------------
// Dispatch.
// ---------------------------------------------------------------------

/**
 * Least-loaded host with spare capacity (the greedy dual of the
 * Murray-Khuller-Chao LP view of heterogeneous dispatch), with a
 * (workload, machine) affinity tie-break so jobs sharing a memoized
 * baseline pack onto the same host (Shafiee-Ghaderi co-location).
 */
RemoteWorkerPool::Host *
RemoteWorkerPool::pickHostLocked(const std::string &affinity_key)
{
    const size_t preferred =
        hosts_.empty()
            ? 0
            : static_cast<size_t>(fnv1aHash(affinity_key) %
                                  hosts_.size());
    Host *best = nullptr;
    int best_score = 0;
    for (const auto &host : hosts_) {
        if (host->state != Host::State::Connected ||
            host->active >= host->capacity)
            continue;
        const int score = (host->active * 1024) / host->capacity;
        const bool better =
            best == nullptr || score < best_score ||
            (score == best_score &&
             static_cast<size_t>(host->index) == preferred);
        if (better) {
            best = host.get();
            best_score = score;
        }
    }
    return best;
}

bool
RemoteWorkerPool::sendOnHostLocked(Host &host,
                                   const std::string &payload)
{
    const Status sent = writeFrame(host.fd, payload);
    if (sent.ok())
        return true;
    connectionLost(host, host.generation,
                   "job dispatch write failed");
    return false;
}

/**
 * Speculative work stealing (mutex_ held): any lease in flight on
 * exactly one host for longer than the steal threshold is duplicated
 * onto an idle host under a fresh dispatch id; the first result wins
 * and the straggler is dropped as stale.
 */
void
RemoteWorkerPool::tryStealLocked()
{
    if (options_.stealAfterMs <= 0)
        return;
    const auto now = Clock::now();
    // pending_ maps several ids to the same lease; visit each once.
    std::vector<Lease *> seen;
    for (const auto &[id, lease] : pending_) {
        (void)id;
        if (lease->done || lease->outstanding.size() != 1)
            continue;
        if (std::find(seen.begin(), seen.end(), lease) != seen.end())
            continue;
        seen.push_back(lease);
        const auto in_flight =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                now - lease->dispatchedAt)
                .count();
        if (in_flight < options_.stealAfterMs)
            continue;
        const int primary = lease->outstanding.front().second;
        Host *idle = nullptr;
        for (const auto &host : hosts_) {
            if (host->index == primary ||
                host->state != Host::State::Connected ||
                host->active >= host->capacity)
                continue;
            if (idle == nullptr || host->active < idle->active)
                idle = host.get();
        }
        if (idle == nullptr)
            continue;
        const uint64_t id2 = nextDispatchId_++;
        const std::string payload = encodeDistJob(
            id2, lease->spec, lease->policy, lease->policy.retries,
            lease->memo.empty() ? nullptr : &lease->memo);
        if (!sendOnHostLocked(*idle, payload))
            continue;
        pending_[id2] = lease;
        lease->outstanding.emplace_back(id2, idle->index);
        ++idle->active;
        counters_->steals.fetch_add(1);
        counters_->dispatches.fetch_add(1);
    }
}

DistStats
RemoteWorkerPool::stats() const
{
    DistStats out;
    out.dispatches = counters_->dispatches.load();
    out.steals = counters_->steals.load();
    out.staleResults = counters_->staleResults.load();
    out.hostLosses = counters_->hostLosses.load();
    out.reconnects = counters_->reconnects.load();
    out.quarantines = counters_->quarantines.load();
    out.leaseReassignments = counters_->leaseReassignments.load();
    return out;
}

int
RemoteWorkerPool::connectedHosts() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    int connected = 0;
    for (const auto &host : hosts_)
        if (host->state == Host::State::Connected)
            ++connected;
    return connected;
}

// ---------------------------------------------------------------------
// runJobRemote.
// ---------------------------------------------------------------------

namespace {

/**
 * Hit the client-side network fault points for one primary dispatch,
 * in the job's own fault scope, and report what fired.  All three
 * points are hit every time so their per-scope counters advance in
 * lockstep with dispatches (the worker.* pattern one layer down).
 */
struct NetFault
{
    bool drop = false;
    bool partition = false;
};

NetFault
hitNetPoints()
{
    NetFault fault;
    try {
        faultPoint("net.slow");  // a slow rule sleeps inside the hit
    } catch (const StatusError &) {
        // A fail rule on net.slow models a stall worth a drop.
        fault.drop = true;
    }
    try {
        faultPoint("net.drop");
    } catch (const StatusError &) {
        fault.drop = true;
    }
    try {
        faultPoint("net.partition");
    } catch (const StatusError &) {
        fault.partition = true;
    }
    return fault;
}

} // namespace

JobResult
runJobRemote(const JobSpec &spec, const JobPolicy &policy,
             RemoteWorkerPool &pool, const BaselineMemo *baselines)
{
    JobResult result;
    result.workload = spec.workload;
    result.machine = spec.machine;
    result.algorithm = spec.algorithm.text();

    // The same per-job fault scope as every other execution mode; it
    // holds the client-side net.* counters.  The daemon binds its own
    // scope (same key) for the worker.* and in-job points, so no
    // point is counted twice.
    FaultScope faults(policy.faults, jobKey(spec));
    ScopedFaultScope fault_guard(&faults);
    ScopedLogContext log_context("job " + jobKey(spec));

    if (interruptRequested()) {
        fillInterrupted(result, "before the job started");
        result.attempts = 0;
        return result;
    }

    const std::string affinity_key =
        spec.workload + "/" + spec.machine;

    RemoteWorkerPool::Lease lease;
    lease.spec = spec;
    lease.policy = policy;
    if (baselines != nullptr) {
        const auto it = baselines->find({spec.workload, spec.machine});
        if (it != baselines->end())
            lease.memo[{spec.workload, spec.machine}] = it->second;
    }

    int transport_losses = 0;
    std::unique_lock<std::mutex> lock(pool.mutex_);
    for (;;) {
        // ---- Find a host (bounded wait). -------------------------
        const auto dispatch_deadline =
            Clock::now() +
            std::chrono::milliseconds(pool.options_.dispatchWaitMs);
        RemoteWorkerPool::Host *host = nullptr;
        while ((host = pool.pickHostLocked(affinity_key)) == nullptr) {
            if (interruptRequested()) {
                fillInterrupted(result,
                                "while waiting for a worker host");
                result.attempts = 0;
                return result;
            }
            if (pool.stopping_ ||
                Clock::now() >= dispatch_deadline) {
                result.outcome = JobOutcome::Failed;
                result.error = ErrorCode::HostLost;
                result.attempts = 1;
                result.diagnostic =
                    "every remote host is lost or quarantined; no "
                    "healthy host within the dispatch budget";
                return result;
            }
            pool.stateChanged_.wait_for(
                lock, std::chrono::milliseconds(kTickMs));
        }

        // ---- Deterministic network faults. -----------------------
        // Hit without the lock held (a slow rule sleeps), then
        // re-validate the chosen host.
        const uint64_t chosen_generation = host->generation;
        lock.unlock();
        const NetFault net = hitNetPoints();
        lock.lock();
        if (net.drop || net.partition) {
            pool.connectionLost(*host, chosen_generation,
                                net.partition
                                    ? "injected net.partition"
                                    : "injected net.drop",
                                net.partition);
            ++transport_losses;
            if (transport_losses > pool.options_.dispatchAttempts) {
                result.outcome = JobOutcome::Failed;
                result.error = ErrorCode::HostLost;
                result.attempts = 1;
                result.diagnostic =
                    "every remote host is lost or quarantined; "
                    "dispatch budget exhausted";
                return result;
            }
            continue;
        }
        if (host->generation != chosen_generation ||
            host->state != RemoteWorkerPool::Host::State::Connected)
            continue;  // the host changed under us; pick again

        // ---- Dispatch. -------------------------------------------
        const uint64_t id = pool.nextDispatchId_++;
        const std::string payload = encodeDistJob(
            id, spec, policy, policy.retries,
            lease.memo.empty() ? nullptr : &lease.memo);
        if (!pool.sendOnHostLocked(*host, payload)) {
            ++transport_losses;
            continue;
        }
        pool.counters_->dispatches.fetch_add(1);
        pool.pending_[id] = &lease;
        lease.outstanding.emplace_back(id, host->index);
        lease.dispatchedAt = Clock::now();
        ++host->active;

        // ---- Await the first result. -----------------------------
        while (!lease.done && !lease.lost) {
            if (interruptRequested()) {
                // Deregister so the stack-owned lease cannot dangle.
                for (const auto &[oid, hidx] : lease.outstanding) {
                    pool.pending_.erase(oid);
                    auto &h = *pool.hosts_[static_cast<size_t>(hidx)];
                    h.active = std::max(0, h.active - 1);
                }
                lease.outstanding.clear();
                fillInterrupted(
                    result, "while the job was leased to a remote "
                            "host");
                result.attempts = 0;
                return result;
            }
            lease.cv.wait_for(lock,
                              std::chrono::milliseconds(kTickMs * 2));
        }

        if (lease.done) {
            result = std::move(lease.result);
            // A job interrupted inside the remote worker (an injected
            // runner.interrupt) must drain the local grid, exactly as
            // it would under --isolate.  (A daemon drain never sends
            // results -- its disconnect reassigns the lease instead.)
            if (result.outcome == JobOutcome::Interrupted &&
                !interruptRequested())
                requestInterrupt(SIGINT);
            return result;
        }

        // Lost: the transport failed, not the job.  Reassign with no
        // attempt consumed and no trace in the report.
        lease.lost = false;
        ++transport_losses;
        if (transport_losses > pool.options_.dispatchAttempts) {
            result.outcome = JobOutcome::Failed;
            result.error = ErrorCode::HostLost;
            result.attempts = 1;
            result.diagnostic =
                "every remote host is lost or quarantined; dispatch "
                "budget exhausted";
            return result;
        }
    }
}

} // namespace csched
