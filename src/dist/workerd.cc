#include "dist/workerd.hh"

#include <chrono>
#include <csignal>
#include <cstdio>

#include <sys/socket.h>
#include <unistd.h>

#include "runner/shutdown.hh"
#include "runner/thread_pool.hh"
#include "runner/worker.hh"
#include "support/atomic_file.hh"
#include "support/logging.hh"
#include "support/socket.hh"
#include "support/subprocess.hh"

namespace csched {

namespace {

using Clock = std::chrono::steady_clock;

/** Budget for a new connection's hello frame. */
constexpr int kHandshakeTimeoutMs = 5000;

/** Idle tick for reader loops, so drain flags are polled. */
constexpr int kReadTickMs = 200;

/** How long a drain waits for in-flight jobs after escalation. */
constexpr int kDrainJobGraceMs = 5000;

} // namespace

/** One accepted client connection. */
struct WorkerdServer::Connection
{
    explicit Connection(int fd) : fd(fd) {}
    ~Connection()
    {
        if (fd >= 0)
            ::close(fd);
    }

    Connection(const Connection &) = delete;
    Connection &operator=(const Connection &) = delete;

    /** Serialize frame writes (reader pongs vs job-thread results). */
    Status send(const std::string &payload)
    {
        std::lock_guard<std::mutex> lock(writeMutex);
        return writeFrame(fd, payload);
    }

    /** Wake a blocked reader; subsequent reads see EOF. */
    void shutdownBoth() { ::shutdown(fd, SHUT_RDWR); }

    int fd = -1;
    std::mutex writeMutex;
};

/** The WorkerdStats fields in atomic form. */
struct WorkerdServer::Counters
{
    std::atomic<uint64_t> connections{0};
    std::atomic<uint64_t> handshakeFailures{0};
    std::atomic<uint64_t> malformedFrames{0};
    std::atomic<uint64_t> oversizedFrames{0};
    std::atomic<uint64_t> invalidMessages{0};
    std::atomic<uint64_t> pings{0};
    std::atomic<uint64_t> jobsRun{0};
    std::atomic<uint64_t> resultsSent{0};
    std::atomic<uint64_t> resultsDropped{0};
};

WorkerdServer::WorkerdServer(WorkerdOptions options)
    : options_(std::move(options)),
      counters_(std::make_unique<Counters>())
{
}

WorkerdServer::~WorkerdServer()
{
    if (started_ && !finished_) {
        stop_.store(true);
        (void)drainAndExit();
    }
}

Status
WorkerdServer::start()
{
    capacity_ = options_.workers > 0
                    ? options_.workers
                    : ThreadPool::defaultConcurrency();

    // Fork the pool first: workers must not inherit the listen fd,
    // and WorkerPool wants a single-threaded process.
    pool_ = std::make_unique<WorkerPool>(capacity_,
                                         options_.memLimitMb);
    crashScope_ =
        std::make_unique<FaultScope>(options_.faults, "workerd");

    auto listening = listenTcp(options_.host, options_.port);
    if (!listening.ok()) {
        pool_.reset();
        return listening.status().withContext("csched_workerd");
    }
    listenFd_ = *listening;
    auto bound = boundTcpPort(listenFd_);
    if (!bound.ok()) {
        ::close(listenFd_);
        listenFd_ = -1;
        pool_.reset();
        return bound.status().withContext("csched_workerd");
    }
    boundPort_ = *bound;

    if (!options_.portFile.empty()) {
        const Status wrote = writeFileAtomic(
            options_.portFile, std::to_string(boundPort_) + "\n");
        if (!wrote.ok()) {
            ::close(listenFd_);
            listenFd_ = -1;
            pool_.reset();
            return wrote.withContext("csched_workerd --port-file");
        }
    }

    started_ = true;
    if (options_.verbose)
        std::fprintf(stderr,
                     "[csched_workerd] listening on %s:%u (%d "
                     "workers)\n",
                     options_.host.c_str(), boundPort_, capacity_);
    return Status();
}

int
WorkerdServer::run()
{
    CSCHED_ASSERT(started_, "WorkerdServer::run() before start()");
    while (!drainingNow()) {
        auto client = acceptClient(listenFd_, 50);
        if (!client.ok()) {
            if (client.status().code() == ErrorCode::Timeout)
                continue;  // idle tick; re-check the drain flags
            CSCHED_WARN("accept failed: ",
                        client.status().toString());
            continue;
        }
        // Result frames stream back-to-back on this fd; without
        // NODELAY each one stalls on Nagle + delayed ACK (~40 ms).
        setTcpNoDelay(*client);
        setSendTimeout(*client, options_.sendTimeoutMs);
        counters_->connections.fetch_add(1);
        auto connection = std::make_shared<Connection>(*client);
        std::lock_guard<std::mutex> lock(connectionsMutex_);
        connections_.push_back(connection);
        readerThreads_.emplace_back(&WorkerdServer::readerMain, this,
                                    connection);
    }
    return drainAndExit();
}

void
WorkerdServer::stop()
{
    stop_.store(true);
}

bool
WorkerdServer::drainingNow() const
{
    return stop_.load() || drainRequested();
}

void
WorkerdServer::hitCrashPoint()
{
    // One deterministic hit per dispatched job, counters shared
    // daemon-wide: `workerd.crash=fail:nth=1` kills the daemon on its
    // first job.  SIGKILL, because the failure being modelled is a
    // *crash* -- no drain, no goodbye frames, leases heal it.
    std::lock_guard<std::mutex> lock(crashMutex_);
    try {
        crashScope_->hit("workerd.crash");
    } catch (const StatusError &) {
        if (options_.verbose)
            std::fprintf(stderr, "[csched_workerd] workerd.crash "
                                 "fired; dying by SIGKILL\n");
        ::raise(SIGKILL);
    }
}

bool
WorkerdServer::acquireSlot()
{
    std::unique_lock<std::mutex> lock(slotsMutex_);
    for (;;) {
        if (drainingNow())
            return false;
        if (busySlots_ < capacity_) {
            ++busySlots_;
            return true;
        }
        slotsFreed_.wait_for(lock, std::chrono::milliseconds(100));
    }
}

void
WorkerdServer::releaseSlot()
{
    {
        std::lock_guard<std::mutex> lock(slotsMutex_);
        --busySlots_;
    }
    slotsFreed_.notify_one();
}

void
WorkerdServer::jobMain(std::shared_ptr<Connection> connection,
                       uint64_t id, WorkerJobFrame frame)
{
    hitCrashPoint();

    JobResult result;
    bool ran = false;
    if (acquireSlot()) {
        const BaselineMemo memo = frame.baselineMemo();
        counters_->jobsRun.fetch_add(1);
        // propagate_interrupt=false: an `interrupted` outcome here
        // belongs to the *client's* grid (injected runner.interrupt
        // inside the job); it must not drain this daemon.
        result = runJobIsolated(frame.spec, frame.policy(), *pool_,
                                memo.empty() ? nullptr : &memo,
                                /*propagate_interrupt=*/false);
        releaseSlot();
        ran = true;
    }

    // During a drain nothing is sent: connections are being torn
    // down, and the client's lease layer reassigns the job anyway.
    if (!ran || drainingNow()) {
        counters_->resultsDropped.fetch_add(1);
    } else if (connection->send(encodeDistResult(id, result)).ok()) {
        counters_->resultsSent.fetch_add(1);
    } else {
        counters_->resultsDropped.fetch_add(1);
    }

    if (activeJobs_.fetch_sub(1) == 1) {
        std::lock_guard<std::mutex> lock(jobsDoneMutex_);
        jobsDone_.notify_all();
    }
}

void
WorkerdServer::readerMain(std::shared_ptr<Connection> connection)
{
    // Handshake: the first frame must be a hello; everything else --
    // silence, garbage, a stray HTTP request -- costs the peer its
    // connection and nothing more.
    bool welcomed = false;
    {
        const FrameResult frame = readFrame(
            connection->fd, kHandshakeTimeoutMs, options_.maxFrameBytes);
        if (frame.ok()) {
            auto decoded = decodeDistMessage(frame.payload);
            if (decoded.ok() &&
                decoded->kind == DistMessage::Kind::Hello &&
                connection->send(encodeDistWelcome(capacity_)).ok())
                welcomed = true;
        }
        if (!welcomed)
            counters_->handshakeFailures.fetch_add(1);
    }

    while (welcomed) {
        const FrameResult frame = readFrame(
            connection->fd, kReadTickMs, options_.maxFrameBytes);
        if (frame.kind == FrameResult::Kind::Eof)
            break;
        if (frame.kind == FrameResult::Kind::Timeout) {
            if (drainingNow())
                break;
            continue;  // idle tick
        }
        if (frame.kind == FrameResult::Kind::Oversized) {
            // The stream is no longer framed (the oversized payload
            // was not consumed); the connection is unusable.
            counters_->oversizedFrames.fetch_add(1);
            break;
        }
        if (frame.kind == FrameResult::Kind::Malformed) {
            counters_->malformedFrames.fetch_add(1);
            break;
        }

        auto decoded = decodeDistMessage(frame.payload);
        if (!decoded.ok()) {
            // Framing intact but the peer speaks something else; a
            // broken client would only keep garbling, so drop it.
            counters_->invalidMessages.fetch_add(1);
            break;
        }
        if (decoded->kind == DistMessage::Kind::Ping) {
            counters_->pings.fetch_add(1);
            if (!connection->send(encodeDistPong(decoded->seq)).ok())
                break;
            continue;
        }
        if (decoded->kind == DistMessage::Kind::Job) {
            activeJobs_.fetch_add(1);
            std::lock_guard<std::mutex> lock(jobThreadsMutex_);
            jobThreads_.emplace_back(&WorkerdServer::jobMain, this,
                                     connection, decoded->id,
                                     std::move(*decoded->job));
            continue;
        }
        // A client has no business sending welcome/result/pong.
        counters_->invalidMessages.fetch_add(1);
        break;
    }

    std::lock_guard<std::mutex> lock(connectionsMutex_);
    for (auto it = connections_.begin(); it != connections_.end();
         ++it) {
        if (it->get() == connection.get()) {
            connections_.erase(it);
            break;
        }
    }
}

int
WorkerdServer::drainAndExit()
{
    const int signum = interruptSignal();
    if (options_.verbose)
        std::fprintf(stderr, "[csched_workerd] draining (%s)\n",
                     signum != 0 ? "signal" : "stop");

    // 1. No new connections or admissions.
    stop_.store(true);
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
    }
    slotsFreed_.notify_all();

    // 2. Drop every connection now.  Unlike the serve daemon there is
    //    no backlog to answer: the client's lease layer treats the
    //    disconnect as a host loss and reassigns, which is faster and
    //    simpler than finishing in-flight replies during a shutdown.
    {
        std::lock_guard<std::mutex> lock(connectionsMutex_);
        for (const auto &connection : connections_)
            connection->shutdownBoth();
    }

    // 3. Readers exit promptly on the shutdown (EOF or their next
    //    idle tick).  They must be joined *before* the job threads so
    //    no reader can spawn a job thread after the join below.
    for (std::thread &thread : readerThreads_)
        thread.join();
    readerThreads_.clear();

    // 4. In-flight jobs unwind at their next cooperative checkpoint;
    //    hung workers are killed by the per-dispatch watchdog.  (No
    //    escalation when idle: an in-process server must not poison
    //    its host process's cancellation root for nothing.)
    if (activeJobs_.load() != 0)
        escalateInterrupt();
    {
        std::unique_lock<std::mutex> lock(jobsDoneMutex_);
        jobsDone_.wait_until(
            lock,
            Clock::now() + std::chrono::milliseconds(kDrainJobGraceMs),
            [this] { return activeJobs_.load() == 0; });
    }
    {
        std::lock_guard<std::mutex> lock(jobThreadsMutex_);
        for (std::thread &thread : jobThreads_)
            thread.join();
        jobThreads_.clear();
    }
    {
        std::lock_guard<std::mutex> lock(connectionsMutex_);
        connections_.clear();
    }

    // 5. Reap the worker processes.
    pool_.reset();
    finished_ = true;
    const int code = signum != 0 ? interruptExitCode(signum) : 0;
    if (options_.verbose)
        std::fprintf(stderr, "[csched_workerd] drained; exit %d\n",
                     code);
    return code;
}

WorkerdStats
WorkerdServer::stats() const
{
    WorkerdStats out;
    out.connections = counters_->connections.load();
    out.handshakeFailures = counters_->handshakeFailures.load();
    out.malformedFrames = counters_->malformedFrames.load();
    out.oversizedFrames = counters_->oversizedFrames.load();
    out.invalidMessages = counters_->invalidMessages.load();
    out.pings = counters_->pings.load();
    out.jobsRun = counters_->jobsRun.load();
    out.resultsSent = counters_->resultsSent.load();
    out.resultsDropped = counters_->resultsDropped.load();
    return out;
}

} // namespace csched
