#include "dist/protocol.hh"

#include <sstream>

#include "runner/json_report.hh"
#include "support/json.hh"

namespace csched {

namespace {

/** Shared skeleton: {"schema": ..., "type": ...}. */
void
writeEnvelope(JsonWriter &w, const char *type)
{
    w.key("schema").value(kDistSchema);
    w.key("type").value(type);
}

std::string
finish(std::ostringstream &out)
{
    return compactJson(out.str());
}

/** A non-negative integral counter out of a JSON number. */
bool
parseCounter(const JsonValue &value, uint64_t *out)
{
    if (value.kind != JsonValue::Kind::Number)
        return false;
    if (value.number < 0 ||
        value.number != static_cast<double>(
                            static_cast<uint64_t>(value.number)))
        return false;
    *out = static_cast<uint64_t>(value.number);
    return true;
}

Status
shapeError(const char *what)
{
    return Status::invalidSpec(std::string("dist frame: ") + what);
}

} // namespace

const char *
distMessageKindName(DistMessage::Kind kind)
{
    switch (kind) {
      case DistMessage::Kind::Hello:
        return "hello";
      case DistMessage::Kind::Welcome:
        return "welcome";
      case DistMessage::Kind::Job:
        return "job";
      case DistMessage::Kind::Result:
        return "result";
      case DistMessage::Kind::Ping:
        return "ping";
      case DistMessage::Kind::Pong:
        return "pong";
    }
    CSCHED_PANIC("unreachable dist message kind ",
                 static_cast<int>(kind));
}

std::string
encodeDistHello()
{
    std::ostringstream out;
    {
        JsonWriter w(out);
        w.beginObject();
        writeEnvelope(w, "hello");
        w.endObject();
    }
    return finish(out);
}

std::string
encodeDistWelcome(int capacity)
{
    std::ostringstream out;
    {
        JsonWriter w(out);
        w.beginObject();
        writeEnvelope(w, "welcome");
        w.key("capacity").value(capacity);
        w.endObject();
    }
    return finish(out);
}

std::string
encodeDistJob(uint64_t id, const JobSpec &spec,
              const JobPolicy &policy, int retries,
              const BaselineMemo *baselines)
{
    std::ostringstream out;
    {
        JsonWriter w(out);
        w.beginObject();
        writeEnvelope(w, "job");
        w.key("id").value(id);
        writeWorkerJobFields(w, spec, policy, retries, "", baselines);
        w.endObject();
    }
    return finish(out);
}

std::string
encodeDistResult(uint64_t id, const JobResult &result)
{
    std::ostringstream out;
    {
        JsonWriter w(out);
        w.beginObject();
        writeEnvelope(w, "result");
        w.key("id").value(id);
        w.key("result").beginObject();
        writeJobResultFields(w, result);
        w.endObject();
        w.endObject();
    }
    return finish(out);
}

std::string
encodeDistPing(uint64_t seq)
{
    std::ostringstream out;
    {
        JsonWriter w(out);
        w.beginObject();
        writeEnvelope(w, "ping");
        w.key("seq").value(seq);
        w.endObject();
    }
    return finish(out);
}

std::string
encodeDistPong(uint64_t seq)
{
    std::ostringstream out;
    {
        JsonWriter w(out);
        w.beginObject();
        writeEnvelope(w, "pong");
        w.key("seq").value(seq);
        w.endObject();
    }
    return finish(out);
}

StatusOr<DistMessage>
decodeDistMessage(const std::string &payload)
{
    std::string error;
    const auto parsed = parseJson(payload, &error);
    if (!parsed.has_value())
        return shapeError("not JSON");
    if (parsed->kind != JsonValue::Kind::Object)
        return shapeError("not a JSON object");

    const JsonValue *schema = parsed->find("schema");
    if (schema == nullptr ||
        schema->kind != JsonValue::Kind::String ||
        schema->string != kDistSchema)
        return Status::invalidSpec(
            std::string("dist frame: schema is not ") + kDistSchema);

    const JsonValue *type = parsed->find("type");
    if (type == nullptr || type->kind != JsonValue::Kind::String)
        return shapeError("missing 'type'");

    DistMessage msg;
    if (type->string == "hello") {
        msg.kind = DistMessage::Kind::Hello;
        return msg;
    }
    if (type->string == "welcome") {
        msg.kind = DistMessage::Kind::Welcome;
        const JsonValue *capacity = parsed->find("capacity");
        if (capacity == nullptr ||
            capacity->kind != JsonValue::Kind::Number ||
            capacity->asInt() < 1)
            return shapeError(
                "welcome capacity must be a positive integer");
        msg.capacity = capacity->asInt();
        return msg;
    }
    if (type->string == "ping" || type->string == "pong") {
        msg.kind = type->string == "ping" ? DistMessage::Kind::Ping
                                          : DistMessage::Kind::Pong;
        const JsonValue *seq = parsed->find("seq");
        if (seq == nullptr || !parseCounter(*seq, &msg.seq))
            return shapeError(
                "heartbeat seq must be a non-negative integer");
        return msg;
    }
    if (type->string == "job") {
        msg.kind = DistMessage::Kind::Job;
        const JsonValue *id = parsed->find("id");
        if (id == nullptr || !parseCounter(*id, &msg.id))
            return shapeError(
                "job id must be a non-negative integer");
        auto frame = decodeWorkerJobFields(*parsed);
        if (!frame.ok())
            return Status::invalidSpec("dist job frame: " +
                                       frame.status().message());
        msg.job = std::move(*frame);
        return msg;
    }
    if (type->string == "result") {
        msg.kind = DistMessage::Kind::Result;
        const JsonValue *id = parsed->find("id");
        if (id == nullptr || !parseCounter(*id, &msg.id))
            return shapeError(
                "result id must be a non-negative integer");
        const JsonValue *result = parsed->find("result");
        if (result == nullptr ||
            result->kind != JsonValue::Kind::Object)
            return shapeError("result payload must be an object");
        auto decoded = parseJobResultFields(*result);
        if (!decoded.has_value())
            return shapeError("result is missing job-result fields");
        msg.result = std::move(*decoded);
        return msg;
    }
    return Status::invalidSpec("dist frame: unknown type '" +
                               type->string + "'");
}

} // namespace csched
