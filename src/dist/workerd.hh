/**
 * @file
 * The remote worker daemon: a local pre-forked WorkerPool
 * (runner/worker.hh) behind a TCP listener, executing grid jobs
 * dispatched by a RemoteWorkerPool (dist/remote_pool.hh) over the
 * csched-dist-v1 protocol (dist/protocol.hh).
 *
 * The daemon is a pure executor: it owns no grid state, no journal,
 * and no retry policy beyond what each job frame carries.  Every job
 * runs through runJobIsolated() on the daemon's own WorkerPool, so a
 * job that segfaults, hangs, or OOMs on a remote host is contained as
 * exactly the per-cell outcome --isolate would have produced locally
 * -- which is what keeps dist-mode reports byte-identical to
 * in-process runs.  Job-level `interrupted` results are *not*
 * propagated into a daemon drain (propagate_interrupt=false): the
 * interrupt belongs to the client's grid.
 *
 * Topology: one accept loop, one reader thread per connection, one
 * short-lived job thread per dispatched job, all execution bounded by
 * a capacity semaphore the size of the worker pool (advertised in the
 * welcome message so clients self-limit).  Heartbeat pings are
 * answered inline by the reader.
 *
 * Untrusted peers: a connection that sends garbage, an oversized
 * length prefix, or any frame that fails decodeDistMessage() is
 * dropped -- counted in the stats, never able to crash or wedge the
 * daemon.
 *
 * Shutdown: serve-style.  The first SIGINT/SIGTERM/SIGHUP stops
 * admissions and closes every connection (clients reassign the lost
 * leases -- that is the dist layer's healing path, so the drain does
 * not wait for stragglers), escalates in-flight jobs to cooperative
 * cancellation, reaps the pool, and exits 128+signum.  The
 * deterministic `workerd.crash` fault point (hit once per dispatched
 * job, scope "workerd") instead dies by SIGKILL -- the reproducible
 * stand-in for a daemon crash in tests and CI.
 */

#ifndef CSCHED_DIST_WORKERD_HH
#define CSCHED_DIST_WORKERD_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "dist/protocol.hh"
#include "support/fault_injection.hh"

namespace csched {

class WorkerPool;

/** Everything a workerd needs to start. */
struct WorkerdOptions
{
    /** Numeric address to bind; loopback by default. */
    std::string host = "127.0.0.1";
    /** TCP port; 0 binds an ephemeral port (see port()). */
    uint16_t port = 0;
    /**
     * When set, the bound port number is written here (atomically,
     * as one decimal line) after listen succeeds -- how shell
     * harnesses discover an ephemeral port.
     */
    std::string portFile;
    /** Worker processes to pre-fork; 0 = hardware concurrency. */
    int workers = 0;
    /** RLIMIT_AS per worker, in megabytes; 0 = unlimited. */
    int memLimitMb = 0;
    /** Bound on a blocking reply write to a stalled client. */
    int sendTimeoutMs = 5000;
    /** Per-frame size cap for untrusted peers. */
    uint32_t maxFrameBytes = kDistMaxFrameBytes;
    /** Armed fault plan (workerd.crash); borrowed, may be null. */
    const FaultPlan *faults = nullptr;
    bool verbose = false;
};

/** Observability counters, snapshot via WorkerdServer::stats(). */
struct WorkerdStats
{
    uint64_t connections = 0;
    uint64_t handshakeFailures = 0;
    uint64_t malformedFrames = 0;
    uint64_t oversizedFrames = 0;
    uint64_t invalidMessages = 0;
    uint64_t pings = 0;
    uint64_t jobsRun = 0;
    uint64_t resultsSent = 0;
    uint64_t resultsDropped = 0;  ///< finished during/after the drain
};

/**
 * The daemon itself, usable in-process (tests, the bench harness
 * forks a child that runs one of these) or behind tools/csched_workerd.
 */
class WorkerdServer
{
  public:
    explicit WorkerdServer(WorkerdOptions options);
    ~WorkerdServer();

    WorkerdServer(const WorkerdServer &) = delete;
    WorkerdServer &operator=(const WorkerdServer &) = delete;

    /**
     * Pre-fork the worker pool (call while still single-threaded),
     * bind + listen, and write the port file.  On failure the daemon
     * is unusable and owns no resources.
     */
    Status start();

    /**
     * Serve until a drain (signal via runner/shutdown.hh serve-style
     * handlers, or stop()).  Returns the process exit code:
     * 128+signum after a signal, 0 after stop().
     */
    int run();

    /** Ask run() to drain and return (thread-safe). */
    void stop();

    /** The bound TCP port (after start()); 0 before. */
    uint16_t port() const { return boundPort_; }

    WorkerdStats stats() const;

  private:
    struct Connection;

    bool drainingNow() const;
    void readerMain(std::shared_ptr<Connection> connection);
    void jobMain(std::shared_ptr<Connection> connection, uint64_t id,
                 WorkerJobFrame frame);
    void hitCrashPoint();
    bool acquireSlot();
    void releaseSlot();
    int drainAndExit();

    WorkerdOptions options_;
    std::unique_ptr<WorkerPool> pool_;
    std::unique_ptr<FaultScope> crashScope_;  ///< guarded by crashMutex_
    std::mutex crashMutex_;
    int listenFd_ = -1;
    uint16_t boundPort_ = 0;
    int capacity_ = 0;
    bool started_ = false;
    bool finished_ = false;
    std::atomic<bool> stop_{false};

    std::mutex slotsMutex_;
    std::condition_variable slotsFreed_;
    int busySlots_ = 0;

    std::mutex connectionsMutex_;
    std::vector<std::shared_ptr<Connection>> connections_;
    std::vector<std::thread> readerThreads_;
    std::vector<std::thread> jobThreads_;
    std::mutex jobThreadsMutex_;
    std::atomic<int> activeJobs_{0};
    std::mutex jobsDoneMutex_;
    std::condition_variable jobsDone_;

    struct Counters;
    std::unique_ptr<Counters> counters_;
};

} // namespace csched

#endif // CSCHED_DIST_WORKERD_HH
