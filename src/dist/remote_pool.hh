/**
 * @file
 * The client half of distributed grid execution: a RemoteWorkerPool
 * dispatches grid jobs to a fleet of csched_workerd daemons
 * (dist/workerd.hh) over the csched-dist-v1 protocol
 * (dist/protocol.hh), and survives the transport.
 *
 * The robustness contract, and why reports stay byte-identical:
 *
 *  - Per-job leases.  A dispatched job holds a lease naming its
 *    outstanding dispatches.  A host that disconnects, times out, or
 *    is declared dead returns the lease, and the owning thread
 *    re-dispatches to a healthy host.  Transport-level losses consume
 *    NO job attempts and leave NO trace in the deterministic report
 *    layer -- only the job's own execution (on whichever host finally
 *    runs it) decides its outcome.  That is the whole byte-identity
 *    argument: execution is deterministic per spec, so *where* it
 *    runs is invisible.
 *  - Worker deaths on a host keep --isolate semantics: the daemon
 *    runs each job through runJobIsolated() on its own pool, so a
 *    segfaulting job costs attempts and records WorkerCrashed exactly
 *    as it would locally.
 *  - Heartbeats + liveness deadlines.  A controller thread pings
 *    every connected host; a host silent past the liveness deadline
 *    is declared lost and its leases reassign.
 *  - Seeded jittered exponential reconnect backoff, a pure function
 *    of (endpoint, attempt) -- the same recipe as retryBackoffMs().
 *  - Health scoring with crash-loop quarantine: consecutive
 *    connection losses past a threshold quarantine the host for a
 *    deterministic-jittered cooldown (the serve supervisor's
 *    degraded-window pattern), after which it is re-admitted on
 *    probation.
 *  - Work stealing.  A lease in flight on a slow host past the steal
 *    threshold is speculatively re-dispatched to an idle host; the
 *    first result wins and stragglers are dropped by dispatch id.
 *  - Terminal loss.  Only when every host is lost or quarantined for
 *    longer than the dispatch budget does a job take the structured
 *    ErrorCode::HostLost outcome -- the analogue of WorkerCrashed one
 *    layer up.
 *
 * Placement follows the related-work framing the ROADMAP names:
 * dispatch greedily balances load across heterogeneous capacities
 * (the primal-dual/LP-rounding view of Murray, Khuller & Chao --
 * least-loaded is its greedy dual), with a (workload, machine)
 * affinity tie-break co-locating jobs that share memoized baselines
 * (the packing/placement-constraints view of Shafiee & Ghaderi).
 *
 * Deterministic network faults, hit client-side in the job's own
 * fault scope once per primary dispatch:
 *
 *   net.slow       (slow rule)  stall the dispatch path
 *   net.drop       (fail rule)  drop the chosen host's connection;
 *                               reconnect heals it
 *   net.partition  (fail rule)  drop it AND refuse reconnects for a
 *                               partition window
 *
 * plus `workerd.crash` on the daemon side (dist/workerd.hh).  All are
 * transport faults: with at least one healthy host, the report is
 * byte-identical to an unfaulted run.
 */

#ifndef CSCHED_DIST_REMOTE_POOL_HH
#define CSCHED_DIST_REMOTE_POOL_HH

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "dist/protocol.hh"

namespace csched {

/** Tuning knobs for the dist client; defaults suit a LAN fleet. */
struct DistOptions
{
    /** Worker endpoints, "host:port" each. */
    std::vector<std::string> hosts;
    /** Budget for the initial connect to each host. */
    int connectTimeoutMs = 3000;
    /** Heartbeat ping period per connected host. */
    int heartbeatIntervalMs = 250;
    /** Silence longer than this declares the host lost. */
    int livenessTimeoutMs = 3000;
    /** Reconnect backoff: jittered exponential base and cap. */
    int reconnectBaseMs = 50;
    int reconnectCapMs = 2000;
    /** Consecutive connection losses that trip the quarantine. */
    int crashLoopThreshold = 3;
    /** Quarantine cooldown before a tripped host is re-admitted. */
    int quarantineCooldownMs = 2000;
    /** Simulated partition window for the net.partition point. */
    int partitionMs = 1500;
    /** In-flight longer than this invites a speculative steal. */
    int stealAfterMs = 2000;
    /** Transport re-dispatches per job before HostLost. */
    int dispatchAttempts = 25;
    /** Max wait for a healthy host per dispatch before HostLost. */
    int dispatchWaitMs = 15000;
    /** Bound on a blocking write to a stalled host. */
    int sendTimeoutMs = 2000;
    /** Per-frame size cap for untrusted peers. */
    uint32_t maxFrameBytes = kDistMaxFrameBytes;

    /**
     * Apply "key=value,key=value" overrides (the hidden --dist-opts
     * driver flag tests and CI use to shrink the timing knobs).  Keys
     * are the field names above in kebab-case, e.g.
     * "liveness-timeout-ms=500,steal-after-ms=200".  Unknown keys or
     * non-integer values fail with InvalidSpec.
     */
    static Status applyOverrides(DistOptions *options,
                                 const std::string &text);
};

/** Health/observability counters, snapshot via stats(). */
struct DistStats
{
    uint64_t dispatches = 0;       ///< job frames sent (incl. steals)
    uint64_t steals = 0;           ///< speculative re-dispatches
    uint64_t staleResults = 0;     ///< results that lost the race
    uint64_t hostLosses = 0;       ///< connections declared lost
    uint64_t reconnects = 0;       ///< successful (re)handshakes
    uint64_t quarantines = 0;      ///< crash-loop trips
    uint64_t leaseReassignments = 0;  ///< dispatches redone elsewhere
};

/**
 * The connection manager + lease table.  Construct (validating the
 * endpoint list), start() once before the grid's thread pool exists,
 * then any number of threads may call runJobRemote() concurrently.
 */
class RemoteWorkerPool
{
  public:
    explicit RemoteWorkerPool(DistOptions options);
    ~RemoteWorkerPool();

    RemoteWorkerPool(const RemoteWorkerPool &) = delete;
    RemoteWorkerPool &operator=(const RemoteWorkerPool &) = delete;

    /**
     * Connect the fleet: every endpoint is attempted within the
     * connect budget; hosts that are down keep reconnecting in the
     * background.  Fails only when *no* host answered -- one live
     * host is enough to run (slowly).
     */
    Status start();

    /** Close every connection and stop the controller. */
    void shutdown();

    DistStats stats() const;

    /** Hosts currently connected and accepting leases. */
    int connectedHosts() const;

  private:
    friend JobResult runJobRemote(const JobSpec &, const JobPolicy &,
                                  RemoteWorkerPool &,
                                  const BaselineMemo *);

    struct Host;
    struct Lease;
    struct Counters;

    void controllerMain();
    void readerMain(std::shared_ptr<Host> host, int fd,
                    uint64_t generation);
    void connectionLost(Host &host, uint64_t generation,
                        const char *why, bool partitioned = false);
    void failHostLeasesLocked(Host &host);
    Host *pickHostLocked(const std::string &affinity_key);
    bool sendOnHostLocked(Host &host, const std::string &payload);
    void tryStealLocked();
    uint64_t nextDispatchId_ = 1;

    DistOptions options_;
    mutable std::mutex mutex_;
    std::condition_variable stateChanged_;
    std::vector<std::shared_ptr<Host>> hosts_;
    std::map<uint64_t, Lease *> pending_;  ///< dispatch id -> lease
    std::vector<std::thread> readerThreads_;
    std::thread controller_;
    bool started_ = false;
    bool stopping_ = false;
    std::unique_ptr<Counters> counters_;
};

/**
 * Execute one job on the fleet, under the same fault-scope and drain
 * semantics as runJob()/runJobIsolated().  Transport losses reassign
 * the lease transparently; a remote `interrupted` result (an injected
 * runner.interrupt inside the job) drains the local grid exactly as
 * it would under --isolate.  @p baselines supplies the memoized
 * single-cluster entry, shipped in the job frame.
 */
JobResult runJobRemote(const JobSpec &spec, const JobPolicy &policy,
                       RemoteWorkerPool &pool,
                       const BaselineMemo *baselines = nullptr);

} // namespace csched

#endif // CSCHED_DIST_REMOTE_POOL_HH
