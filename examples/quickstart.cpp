/**
 * @file
 * Quickstart: build a small dependence graph, schedule it on a
 * clustered VLIW with the convergent scheduler, and inspect the
 * resulting space-time schedule.
 *
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <iostream>

#include "convergent/convergent_scheduler.hh"
#include "ir/describe.hh"
#include "ir/graph_algorithms.hh"
#include "ir/graph_builder.hh"
#include "machine/clustered_vliw.hh"
#include "sched/schedule_checker.hh"

using namespace csched;

int
main()
{
    // 1. Describe the machine: four identical clusters, each with an
    //    integer ALU, an integer ALU with memory access, an FPU, and
    //    a transfer unit (the paper's Chorus configuration).
    const ClusteredVliwMachine machine(4);

    // 2. Build a scheduling unit: an unrolled dot-product step.
    //    Loads carry the memory bank they touch; the banks interleave
    //    across clusters, and preplaceMemoryByBank() turns them into
    //    preplaced instructions (the congruence analysis of the
    //    paper's compilers).
    GraphBuilder builder;
    std::vector<InstrId> products;
    for (int i = 0; i < 8; ++i) {
        const InstrId a = builder.load(i, {}, "a[" + std::to_string(i) + "]");
        const InstrId b = builder.load(i, {}, "b[" + std::to_string(i) + "]");
        products.push_back(builder.op(Opcode::FMul, {a, b}));
    }
    // Pairwise reduction of the eight products.
    while (products.size() > 1) {
        std::vector<InstrId> next;
        for (size_t k = 0; k + 1 < products.size(); k += 2)
            next.push_back(builder.op(Opcode::FAdd,
                                      {products[k], products[k + 1]}));
        products = next;
    }
    builder.store(0, products.front(), {}, "dot");
    preplaceMemoryByBank(builder.graph(), machine.numClusters());
    const DependenceGraph graph = builder.build();

    std::cout << "scheduling unit: " << graph.numInstructions()
              << " instructions, critical path "
              << graph.criticalPathLength() << " cycles, "
              << graph.numPreplaced() << " preplaced\n\n";

    // 3. Run the convergent scheduler with the Table-1 sequence and
    //    tuned weights for this machine family.
    const auto scheduler = ConvergentScheduler::forMachine(machine);
    const ConvergentResult result = scheduler.schedule(graph);

    // 4. The result is a complete space-time schedule; re-verify it.
    const auto check = checkSchedule(graph, machine, result.schedule);
    std::cout << "schedule is " << (check.ok() ? "legal" : "BROKEN")
              << "; makespan = " << result.schedule.makespan()
              << " cycles\n\n";

    // 5. Inspect placements.
    std::cout << "instr                cluster  cycle\n";
    std::cout << "------------------------------------\n";
    for (InstrId id = 0; id < graph.numInstructions(); ++id) {
        const auto &placement = result.schedule.at(id);
        std::string text = describe(graph.instr(id));
        text.resize(20, ' ');
        std::cout << text << " " << placement.cluster << "        "
                  << placement.cycle << "\n";
    }

    // 6. The convergence trace shows each pass's effect (the data
    //    behind the paper's Figures 7 and 9).
    std::cout << "\npass convergence (fraction of preferred clusters "
              << "changed):\n";
    for (const auto &step : result.trace)
        std::cout << "  " << step.pass << ": " << step.fractionChanged
                  << (step.temporalOnly ? " (temporal only)" : "")
                  << "\n";
    return 0;
}
