/**
 * @file
 * Schedule a stencil across a Raw mesh and visualise the spatial
 * result: which tile every instruction landed on, how values route
 * through the static network, and how preplacement anchors the
 * assignment.  Pass a mesh size (default 4 => 4x4 tiles):
 *
 *   ./build/examples/raw_mesh 2
 */

#include <iostream>
#include <string>

#include "eval/experiment.hh"
#include "machine/raw_machine.hh"
#include "support/str.hh"
#include "support/table.hh"
#include "workloads/workloads.hh"

using namespace csched;

int
main(int argc, char **argv)
{
    const int side = argc > 1 ? std::stoi(argv[1]) : 4;
    const RawMachine machine(side, side);
    const int tiles = machine.numClusters();

    const auto &spec = findWorkload("jacobi");
    const auto graph = spec.build(tiles, tiles);

    std::cout << "jacobi on " << machine.name() << " ("
              << graph.numInstructions() << " instructions, "
              << graph.numPreplaced() << " preplaced by bank)\n\n";

    const ConvergentAlgorithm conv(machine);
    const auto result = conv.runDetailed(graph);
    const auto &schedule = result.schedule;

    // Tile occupancy map.
    std::cout << "instructions per tile (mesh layout):\n";
    for (int r = 0; r < machine.rows(); ++r) {
        std::cout << "  ";
        for (int c = 0; c < machine.cols(); ++c) {
            std::string cell = std::to_string(
                schedule.clusterLoad(machine.tileAt(r, c)));
            cell.resize(5, ' ');
            std::cout << cell;
        }
        std::cout << "\n";
    }

    // Network traffic summary.
    int messages = 0;
    int hops = 0;
    int max_distance = 0;
    for (const auto &event : schedule.comms()) {
        ++messages;
        hops += static_cast<int>(event.linkSlots.size());
        max_distance = std::max(
            max_distance,
            machine.distance(event.fromCluster, event.toCluster));
    }
    std::cout << "\nstatic-network traffic: " << messages
              << " messages, " << hops << " link-cycles, longest route "
              << max_distance << " hops\n";

    std::cout << "makespan: " << schedule.makespan()
              << " cycles (critical path "
              << graph.criticalPathLength() << ")\n\n";

    std::cout << "convergence of the spatial assignment:\n";
    for (const auto &step : result.trace)
        if (!step.temporalOnly)
            std::cout << "  " << step.pass << ": "
                      << formatDouble(100.0 * step.fractionChanged, 1)
                      << "% of preferred tiles changed\n";
    return 0;
}
