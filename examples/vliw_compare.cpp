/**
 * @file
 * Compare all three clustered-VLIW schedulers -- PCC, UAS, and
 * convergent scheduling -- on one workload, reporting makespans,
 * communication counts, per-cluster loads, and register pressure.
 * Pass a benchmark name (default "tomcatv") and a cluster count
 * (default 4):
 *
 *   ./build/examples/vliw_compare mxm 8
 */

#include <iostream>
#include <string>

#include "eval/experiment.hh"
#include "eval/speedup.hh"
#include "machine/clustered_vliw.hh"
#include "sched/register_pressure.hh"
#include "support/str.hh"
#include "support/table.hh"
#include "workloads/workloads.hh"

using namespace csched;

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "tomcatv";
    const int clusters = argc > 2 ? std::stoi(argv[2]) : 4;

    const ClusteredVliwMachine machine(clusters);
    const auto &spec = findWorkload(name);
    const auto graph =
        spec.build(machine.numClusters(), machine.numClusters());

    std::cout << name << " on " << machine.name() << ": "
              << graph.numInstructions() << " instructions, CPL "
              << graph.criticalPathLength() << ", "
              << graph.numPreplaced() << " preplaced\n"
              << spec.description << "\n\n";

    TablePrinter table({"scheduler", "makespan", "speedup", "comms",
                        "max load", "peak regs", "time (ms)"});
    for (const char *spec_text : {"pcc", "uas", "convergent"}) {
        const auto algorithm =
            makeAlgorithm(*parseAlgorithmSpec(spec_text), machine);
        const auto run = runAndCheck(*algorithm, graph, machine);
        const Schedule &schedule = run.result.schedule;
        const auto pressure = analyzePressure(graph, schedule);
        int max_load = 0;
        for (int c = 0; c < clusters; ++c)
            max_load = std::max(max_load, schedule.clusterLoad(c));
        table.addRow({algorithm->name(),
                      std::to_string(run.makespan),
                      formatDouble(speedupOf(spec, machine, *algorithm),
                                   2),
                      std::to_string(schedule.comms().size()),
                      std::to_string(max_load),
                      std::to_string(pressure.peak()),
                      formatDouble(run.seconds * 1e3, 2)});
    }
    table.print(std::cout);
    return 0;
}
