/**
 * @file
 * Writing a new convergent-scheduling heuristic.
 *
 * Section 2 of the paper argues that the weight-based interface makes
 * it easy to address peculiarities of an architecture: "if an
 * architecture is able to exploit auto-increment on memory accesses,
 * one pass could try to keep together memory accesses and increments,
 * so that the scheduler will find them together".  This example
 * implements exactly that pass in ~30 lines, splices it into the
 * standard VLIW pipeline, and shows that it changes the schedule the
 * intended way: address increments land on the cluster of the memory
 * access they feed.
 */

#include <iostream>
#include <memory>
#include <vector>

#include "convergent/convergent_scheduler.hh"
#include "convergent/pass.hh"
#include "convergent/pass_registry.hh"
#include "convergent/sequences.hh"
#include "ir/graph_algorithms.hh"
#include "ir/graph_builder.hh"
#include "machine/clustered_vliw.hh"
#include "sched/list_scheduler.hh"
#include "sched/priorities.hh"
#include "support/rng.hh"

using namespace csched;

namespace {

/**
 * AUTOINC: pull every integer add that feeds a memory access onto the
 * access's preferred cluster, so a post-increment addressing mode
 * could fuse them.  The pass needs nothing but the shared preference
 * matrix -- no other pass has to know it exists.
 */
class AutoIncrementPass : public Pass
{
  public:
    std::string name() const override { return "AUTOINC"; }

    void
    run(PassContext &ctx) override
    {
        const auto &graph = ctx.graph;
        auto &weights = ctx.weights;
        for (InstrId i = 0; i < graph.numInstructions(); ++i) {
            if (graph.instr(i).op != Opcode::IAdd)
                continue;
            for (InstrId succ : graph.succs(i)) {
                if (!isMemory(graph.instr(succ).op))
                    continue;
                // Pull the increment towards the access's cluster.
                auto row = weights.row(i);
                row.scaleCluster(weights.preferredCluster(succ), 4.0);
                row.normalize();
            }
        }
    }
};

/** A loop body with explicit pointer increments feeding the loads. */
DependenceGraph
pointerChasingKernel(int banks)
{
    GraphBuilder builder;
    // The pointer and the loop index are live-ins on cluster 0.
    const InstrId base = builder.op(Opcode::Const, {}, "p");
    builder.preplace(base, 0);
    const InstrId index = builder.op(Opcode::Const, {}, "i");
    builder.preplace(index, 0);
    InstrId acc = kNoInstr;
    for (int k = 0; k < 2 * banks; ++k) {
        // p_k = p + k*stride; v = *p_k; acc += v.  The increment is
        // torn between the live-ins on cluster 0 and the load's bank.
        const InstrId pointer =
            builder.op(Opcode::IAdd, {base, index}, "p+k*s");
        const InstrId value =
            builder.load(k % banks, {pointer}, "*p");
        acc = acc == kNoInstr
                  ? value
                  : builder.op(Opcode::FAdd, {acc, value}, "acc");
    }
    builder.store(0, acc, {}, "sum");
    preplaceMemoryByBank(builder.graph(), banks);
    return builder.build();
}

/** Count increments co-located with the memory access they feed. */
int
countFusible(const DependenceGraph &graph,
             const std::vector<int> &assignment)
{
    int fusible = 0;
    for (InstrId i = 0; i < graph.numInstructions(); ++i) {
        if (graph.instr(i).op != Opcode::IAdd)
            continue;
        for (InstrId succ : graph.succs(i))
            if (isMemory(graph.instr(succ).op) &&
                assignment[i] == assignment[succ])
                ++fusible;
    }
    return fusible;
}

} // namespace

int
main()
{
    const ClusteredVliwMachine machine(4);
    const auto graph = pointerChasingKernel(4);

    // Pipeline A: the standard Table-1(b) sequence.
    const ConvergentScheduler standard(machine, vliwPassSequence(),
                                       vliwPassParams());

    // How much preference mass the increments put on their access's
    // preferred cluster (1.0 = fully committed).
    auto affinity = [&](const PreferenceMatrix &weights) {
        double total = 0.0;
        int count = 0;
        for (InstrId i = 0; i < graph.numInstructions(); ++i) {
            if (graph.instr(i).op != Opcode::IAdd)
                continue;
            for (InstrId succ : graph.succs(i)) {
                if (!isMemory(graph.instr(succ).op))
                    continue;
                total += weights.spaceMarginal(
                    i, weights.preferredCluster(succ));
                ++count;
            }
        }
        return count > 0 ? total / count : 0.0;
    };

    // Pipeline B: the same sequence with AUTOINC appended.  Passes
    // are independent, so splicing one in requires no changes
    // anywhere else -- we just run the pipeline by hand.
    const PassParams params = vliwPassParams();
    PreferenceMatrix weights(graph.numInstructions(),
                             graph.criticalPathLength(),
                             machine.numClusters());
    Rng rng(params.noiseSeed);
    PassContext ctx{graph, machine, weights, params, rng};
    for (const auto &name : {"INITTIME", "NOISE", "FIRST", "PATH",
                             "COMM", "PLACE", "PLACEPROP", "COMM"})
        makePassByName(name)->run(ctx);
    const double before = affinity(weights);
    AutoIncrementPass autoinc;
    autoinc.run(ctx);
    const double after = affinity(weights);
    makePassByName("EMPHCP")->run(ctx);

    std::vector<int> augmented(graph.numInstructions());
    for (InstrId i = 0; i < graph.numInstructions(); ++i) {
        const auto &instr = graph.instr(i);
        augmented[i] = instr.preplaced()
                           ? instr.homeCluster
                           : weights.preferredCluster(i);
    }

    const auto plain = standard.schedule(graph).assignment;
    const int pairs = 2 * machine.numClusters();

    std::cout << "increment/access affinity mass before AUTOINC: "
              << before << "\n"
              << "increment/access affinity mass after  AUTOINC: "
              << after << "\n\n"
              << "auto-increment co-location (increment on the same "
              << "cluster as its access):\n"
              << "  standard pipeline:  " << countFusible(graph, plain)
              << " / " << pairs << "\n"
              << "  with AUTOINC pass:  "
              << countFusible(graph, augmented) << " / " << pairs
              << "\n\n"
              << "The new heuristic needed only the preference-map "
              << "interface:\nno existing pass was modified.\n";
    return 0;
}
