/**
 * @file
 * Tests for the csched-bench-report-v1 schema: serialization
 * round-trips, parser validation, and the regression-gate comparison
 * semantics (min-based gating, threshold, one-sided cells).
 */

#include <gtest/gtest.h>

#include <sstream>

#include "runner/bench_report.hh"

namespace csched {
namespace {

BenchReport
sampleReport()
{
    BenchReport report;
    report.kind = "end-to-end";
    report.meta.commit = "abc1234";
    report.meta.buildType = "Release";
    report.meta.compiler = "g++ 12";
    report.meta.flags = "-O3";
    report.meta.host = "Linux x86_64";
    report.meta.repeats = 5;
    BenchCell cell;
    cell.workload = "synth-wide-10k";
    cell.machine = "vliw4";
    cell.algorithm = "convergent";
    cell.medianSeconds = 1.25;
    cell.minSeconds = 1.20;
    cell.reps = 5;
    cell.instructions = 10000;
    cell.makespan = 1409;
    cell.preRewriteSeconds = 2.98;
    report.cells.push_back(cell);
    return report;
}

TEST(BenchReport, RoundTripsThroughJson)
{
    const BenchReport report = sampleReport();
    const std::string json = benchReportToJson(report);
    std::string error;
    const auto parsed = parseBenchReport(json, &error);
    ASSERT_TRUE(parsed.has_value()) << error;
    EXPECT_EQ(parsed->kind, "end-to-end");
    EXPECT_EQ(parsed->meta.commit, "abc1234");
    EXPECT_EQ(parsed->meta.repeats, 5);
    ASSERT_EQ(parsed->cells.size(), 1u);
    const BenchCell &cell = parsed->cells[0];
    EXPECT_EQ(cell.key(), "synth-wide-10k/vliw4/convergent");
    EXPECT_DOUBLE_EQ(cell.medianSeconds, 1.25);
    EXPECT_DOUBLE_EQ(cell.minSeconds, 1.20);
    EXPECT_EQ(cell.instructions, 10000);
    EXPECT_EQ(cell.makespan, 1409);
    EXPECT_DOUBLE_EQ(cell.preRewriteSeconds, 2.98);
}

TEST(BenchReport, KernelCellsKeyOnKernelName)
{
    BenchCell cell;
    cell.workload = "mxm";
    cell.machine = "vliw4";
    cell.kernel = "COMM.2";
    EXPECT_EQ(cell.key(), "mxm/vliw4/COMM.2");
}

TEST(BenchReport, ParserRejectsOtherSchemas)
{
    std::string error;
    EXPECT_FALSE(parseBenchReport("{\"schema\": \"nope\"}", &error)
                     .has_value());
    EXPECT_NE(error.find("csched-bench-report-v1"), std::string::npos);
    EXPECT_FALSE(parseBenchReport("not json at all").has_value());
}

TEST(BenchReport, ParserRequiresCellKeyAndMedian)
{
    const std::string json =
        "{\"schema\": \"csched-bench-report-v1\", \"kind\": "
        "\"end-to-end\", \"cells\": [{\"workload\": \"mxm\"}]}";
    std::string error;
    EXPECT_FALSE(parseBenchReport(json, &error).has_value());
    EXPECT_NE(error.find("medianSeconds"), std::string::npos);
}

TEST(BenchReport, MissingMinSecondsStaysAbsent)
{
    BenchReport report = sampleReport();
    report.cells[0].minSeconds = -1.0;
    const auto parsed = parseBenchReport(benchReportToJson(report));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_LT(parsed->cells[0].minSeconds, 0.0);
}

/** Compare two single-cell reports and report the verdict. */
bool
compareTimes(double base_median, double base_min, double cur_median,
             double cur_min, std::string *table = nullptr)
{
    BenchReport baseline = sampleReport();
    baseline.cells[0].medianSeconds = base_median;
    baseline.cells[0].minSeconds = base_min;
    BenchReport current = sampleReport();
    current.cells[0].medianSeconds = cur_median;
    current.cells[0].minSeconds = cur_min;
    std::ostringstream out;
    const bool ok = compareBenchReports(baseline, current,
                                        BenchCompareOptions{}, out);
    if (table != nullptr)
        *table = out.str();
    return ok;
}

TEST(BenchCompare, PassesWithinThreshold)
{
    EXPECT_TRUE(compareTimes(1.0, 1.0, 1.1, 1.1));
}

TEST(BenchCompare, FailsBeyondThreshold)
{
    std::string table;
    EXPECT_FALSE(compareTimes(1.0, 1.0, 1.3, 1.3, &table));
    EXPECT_NE(table.find("REGRESSED"), std::string::npos);
}

TEST(BenchCompare, GatesOnMinWhenBothSidesCarryIt)
{
    // Median regressed 40% (a noisy run) but best-of-N is stable:
    // min-based gating must pass...
    EXPECT_TRUE(compareTimes(1.0, 1.0, 1.4, 1.02));
    // ...and a genuine slowdown visible in the minimum must fail even
    // if the medians happen to agree.
    EXPECT_FALSE(compareTimes(1.0, 1.0, 1.0, 1.3));
}

TEST(BenchCompare, FallsBackToMedianWithoutMin)
{
    EXPECT_FALSE(compareTimes(1.0, -1.0, 1.3, -1.0));
    EXPECT_TRUE(compareTimes(1.0, -1.0, 1.05, -1.0));
}

TEST(BenchCompare, OneSidedCellsNeverFailTheGate)
{
    BenchReport baseline = sampleReport();
    BenchReport current = sampleReport();
    BenchCell extra = current.cells[0];
    extra.workload = "new-workload";
    current.cells.push_back(extra);
    BenchCell gone = baseline.cells[0];
    gone.workload = "retired-workload";
    baseline.cells.push_back(gone);
    std::ostringstream out;
    EXPECT_TRUE(compareBenchReports(baseline, current,
                                    BenchCompareOptions{}, out));
    EXPECT_NE(out.str().find("new"), std::string::npos);
    EXPECT_NE(out.str().find("missing"), std::string::npos);
}

TEST(BenchCompare, SubTimerCellsAreNoise)
{
    // Baselines below minBaselineSeconds can swing by any factor
    // without failing: they measure the timer, not the engine.
    EXPECT_TRUE(compareTimes(5e-5, 5e-5, 5e-4, 5e-4));
}

} // namespace
} // namespace csched
