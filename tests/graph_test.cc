/**
 * @file
 * Unit tests for the dependence graph and its analyses.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "ir/graph.hh"

namespace csched {
namespace {

/** Instruction with just an opcode. */
Instruction
ins(Opcode op)
{
    Instruction instr;
    instr.op = op;
    return instr;
}

/** a -> b -> d, a -> c -> d diamond with integer adds. */
DependenceGraph
makeDiamond()
{
    DependenceGraph graph;
    for (int k = 0; k < 4; ++k) {
        Instruction instr;
        instr.op = Opcode::IAdd;
        graph.addInstruction(instr);
    }
    graph.addEdge(0, 1);
    graph.addEdge(0, 2);
    graph.addEdge(1, 3);
    graph.addEdge(2, 3);
    graph.finalize();
    return graph;
}

TEST(Graph, StructureQueries)
{
    const auto graph = makeDiamond();
    EXPECT_EQ(graph.numInstructions(), 4);
    EXPECT_EQ(graph.edges().size(), 4u);
    EXPECT_EQ(graph.preds(3).size(), 2u);
    EXPECT_EQ(graph.succs(0).size(), 2u);
    EXPECT_TRUE(graph.preds(0).empty());
    EXPECT_TRUE(graph.succs(3).empty());
}

TEST(Graph, RootsAndLeaves)
{
    const auto graph = makeDiamond();
    EXPECT_EQ(graph.roots(), std::vector<InstrId>{0});
    EXPECT_EQ(graph.leaves(), std::vector<InstrId>{3});
}

TEST(Graph, DuplicateEdgesCoalesce)
{
    DependenceGraph graph;
    for (int k = 0; k < 2; ++k)
        graph.addInstruction(ins(Opcode::IAdd));
    graph.addEdge(0, 1, DepKind::Anti);
    graph.addEdge(0, 1, DepKind::Data);  // upgrades the edge
    graph.addEdge(0, 1, DepKind::Output);
    ASSERT_EQ(graph.edges().size(), 1u);
    EXPECT_EQ(graph.edges()[0].kind, DepKind::Data);
    EXPECT_EQ(graph.preds(1).size(), 1u);
}

TEST(Graph, TopologicalOrderRespectsEdges)
{
    const auto graph = makeDiamond();
    const auto &topo = graph.topoOrder();
    ASSERT_EQ(topo.size(), 4u);
    std::vector<int> position(4);
    for (int k = 0; k < 4; ++k)
        position[topo[k]] = k;
    for (const auto &edge : graph.edges())
        EXPECT_LT(position[edge.src], position[edge.dst]);
}

TEST(Graph, EarliestStartIsLatencyWeighted)
{
    const auto graph = makeDiamond();  // IAdd latency 1
    EXPECT_EQ(graph.earliestStart(0), 0);
    EXPECT_EQ(graph.earliestStart(1), 1);
    EXPECT_EQ(graph.earliestStart(2), 1);
    EXPECT_EQ(graph.earliestStart(3), 2);
    EXPECT_EQ(graph.criticalPathLength(), 3);
}

TEST(Graph, MultiCycleLatenciesLengthenPaths)
{
    DependenceGraph graph;
    graph.addInstruction(ins(Opcode::FMul));  // latency 4
    graph.addInstruction(ins(Opcode::IAdd));
    graph.addEdge(0, 1);
    graph.finalize();
    EXPECT_EQ(graph.earliestStart(1), 4);
    EXPECT_EQ(graph.criticalPathLength(), 5);
    EXPECT_EQ(graph.latestFinishSlack(0), 5);
    EXPECT_EQ(graph.latestFinishSlack(1), 1);
}

TEST(Graph, LevelsCountNodesNotLatency)
{
    DependenceGraph graph;
    graph.addInstruction(ins(Opcode::FMul));
    graph.addInstruction(ins(Opcode::IAdd));
    graph.addInstruction(ins(Opcode::IAdd));
    graph.addEdge(0, 1);
    graph.addEdge(1, 2);
    graph.finalize();
    EXPECT_EQ(graph.level(0), 0);
    EXPECT_EQ(graph.level(1), 1);
    EXPECT_EQ(graph.level(2), 2);
    EXPECT_EQ(graph.maxLevel(), 2);
}

TEST(Graph, CriticalPathIsAMaximalLatencyPath)
{
    const auto graph = makeDiamond();
    const auto &path = graph.criticalPath();
    ASSERT_EQ(path.size(), 3u);  // 0 -> {1 or 2} -> 3
    EXPECT_EQ(path.front(), 0);
    EXPECT_EQ(path.back(), 3);
    EXPECT_TRUE(graph.onCriticalPath(0));
    EXPECT_TRUE(graph.onCriticalPath(3));
    // Path members are connected.
    for (size_t k = 0; k + 1 < path.size(); ++k) {
        const auto &succs = graph.succs(path[k]);
        EXPECT_NE(std::find(succs.begin(), succs.end(), path[k + 1]),
                  succs.end());
    }
}

TEST(Graph, SlackOfEveryInstructionBoundedByCpl)
{
    const auto graph = makeDiamond();
    for (InstrId id = 0; id < graph.numInstructions(); ++id) {
        EXPECT_GE(graph.latestFinishSlack(id), graph.latency(id));
        EXPECT_LE(graph.earliestStart(id) + graph.latestFinishSlack(id),
                  graph.criticalPathLength());
    }
}

TEST(Graph, PreplacedDistances)
{
    DependenceGraph graph;
    Instruction load;
    load.op = Opcode::Load;
    load.memBank = 0;
    load.homeCluster = 2;
    graph.addInstruction(load);  // id 0, preplaced on cluster 2
    graph.addInstruction(ins(Opcode::IAdd));  // id 1
    graph.addInstruction(ins(Opcode::IAdd));  // id 2
    graph.addEdge(0, 1);
    graph.addEdge(1, 2);
    graph.finalize();

    EXPECT_EQ(graph.numPreplaced(), 1);
    EXPECT_EQ(graph.distanceToPreplaced(0, 2), 0);
    EXPECT_EQ(graph.distanceToPreplaced(1, 2), 1);
    EXPECT_EQ(graph.distanceToPreplaced(2, 2), 2);
    // No preplaced instruction on cluster 0.
    EXPECT_EQ(graph.distanceToPreplaced(1, 0), -1);
    // Unknown cluster.
    EXPECT_EQ(graph.distanceToPreplaced(1, 7), -1);
}

TEST(Graph, PreplacedDistanceIsUndirected)
{
    DependenceGraph graph;
    graph.addInstruction(ins(Opcode::IAdd));  // id 0
    Instruction store;
    store.op = Opcode::Store;
    store.memBank = 1;
    store.homeCluster = 1;
    graph.addInstruction(store);  // id 1
    graph.addEdge(0, 1);  // 0 feeds the preplaced store
    graph.finalize();
    // Distance travels against the edge direction too.
    EXPECT_EQ(graph.distanceToPreplaced(0, 1), 1);
}

TEST(GraphDeathTest, CycleDetected)
{
    DependenceGraph graph;
    for (int k = 0; k < 3; ++k)
        graph.addInstruction(ins(Opcode::IAdd));
    graph.addEdge(0, 1);
    graph.addEdge(1, 2);
    graph.addEdge(2, 0);
    EXPECT_DEATH(graph.finalize(), "cycle");
}

TEST(GraphDeathTest, SelfEdgeRejected)
{
    DependenceGraph graph;
    graph.addInstruction(ins(Opcode::IAdd));
    EXPECT_DEATH(graph.addEdge(0, 0), "self edge");
}

TEST(GraphDeathTest, AnalysisBeforeFinalize)
{
    DependenceGraph graph;
    graph.addInstruction(ins(Opcode::IAdd));
    EXPECT_DEATH(graph.criticalPathLength(), "finalize");
}

TEST(GraphDeathTest, MutationAfterFinalize)
{
    auto graph = makeDiamond();
    EXPECT_DEATH(graph.addInstruction(ins(Opcode::IAdd)),
                 "finalize");
}

TEST(GraphDeathTest, EmptyGraphCannotFinalize)
{
    DependenceGraph graph;
    EXPECT_DEATH(graph.finalize(), "empty");
}

TEST(Graph, CustomLatencyModel)
{
    LatencyModel model;
    model.setLatency(Opcode::IAdd, 7);
    DependenceGraph graph(model);
    graph.addInstruction(ins(Opcode::IAdd));
    graph.addInstruction(ins(Opcode::IAdd));
    graph.addEdge(0, 1);
    graph.finalize();
    EXPECT_EQ(graph.latency(0), 7);
    EXPECT_EQ(graph.criticalPathLength(), 14);
}

} // namespace
} // namespace csched
