/**
 * @file
 * Tests for the declarative algorithm/machine spec layer: the one
 * place algorithm spellings are parsed (parseAlgorithmSpec) and the
 * validated machine-spec parser that replaced silent defaulting.
 */

#include <gtest/gtest.h>

#include "eval/experiment.hh"
#include "machine/clustered_vliw.hh"
#include "machine/machine_spec.hh"
#include "workloads/workloads.hh"

namespace csched {
namespace {

TEST(AlgorithmSpec, ParsesKnownNames)
{
    for (const auto &name : knownAlgorithmNames()) {
        std::string error;
        const auto spec = parseAlgorithmSpec(name, &error);
        ASSERT_TRUE(spec.has_value()) << name << ": " << error;
        EXPECT_EQ(spec->name, name);
        EXPECT_TRUE(spec->sequence.empty());
        EXPECT_EQ(spec->text(), name);
    }
}

TEST(AlgorithmSpec, IsCaseInsensitiveOnTheName)
{
    const auto spec = parseAlgorithmSpec("Convergent");
    ASSERT_TRUE(spec.has_value());
    EXPECT_EQ(spec->name, "convergent");
}

TEST(AlgorithmSpec, ParsesConvergentSequences)
{
    const auto spec =
        parseAlgorithmSpec("convergent:INITTIME,PLACE,COMM");
    ASSERT_TRUE(spec.has_value());
    EXPECT_EQ(spec->name, "convergent");
    EXPECT_EQ(spec->sequence, "INITTIME,PLACE,COMM");
    EXPECT_EQ(spec->text(), "convergent:INITTIME,PLACE,COMM");
}

TEST(AlgorithmSpec, RejectsUnknownNames)
{
    std::string error;
    EXPECT_FALSE(parseAlgorithmSpec("simulated-annealing", &error)
                     .has_value());
    EXPECT_NE(error.find("simulated-annealing"), std::string::npos);
    EXPECT_FALSE(parseAlgorithmSpec("", &error).has_value());
}

TEST(AlgorithmSpec, RejectsUnknownPasses)
{
    std::string error;
    EXPECT_FALSE(parseAlgorithmSpec("convergent:INITTIME,BOGUS", &error)
                     .has_value());
    EXPECT_NE(error.find("BOGUS"), std::string::npos);
}

TEST(AlgorithmSpec, RejectsSequencesOnBaselines)
{
    std::string error;
    EXPECT_FALSE(parseAlgorithmSpec("uas:INITTIME", &error).has_value());
    EXPECT_FALSE(parseAlgorithmSpec("pcc:PLACE", &error).has_value());
}

TEST(AlgorithmSpec, TextRoundTripsThroughTheParser)
{
    for (const char *text :
         {"uas", "pcc", "rawcc", "bug", "single", "convergent",
          "convergent:INITTIME,NOISE,PLACE,COMM,PLACEPROP"}) {
        const auto spec = parseAlgorithmSpec(text);
        ASSERT_TRUE(spec.has_value()) << text;
        const auto again = parseAlgorithmSpec(spec->text());
        ASSERT_TRUE(again.has_value()) << spec->text();
        EXPECT_EQ(again->name, spec->name);
        EXPECT_EQ(again->sequence, spec->sequence);
    }
}

TEST(AlgorithmSpec, MakeAlgorithmHonoursTheSpec)
{
    const ClusteredVliwMachine vliw(4);
    const auto graph = findWorkload("fir").build(4, 4);
    for (const char *text : {"convergent", "uas", "pcc"}) {
        const auto algorithm =
            makeAlgorithm(*parseAlgorithmSpec(text), vliw);
        ASSERT_NE(algorithm, nullptr) << text;
        EXPECT_FALSE(algorithm->name().empty());
        EXPECT_GE(algorithm->schedule(graph).makespan(),
                  graph.criticalPathLength());
    }
}

TEST(MachineSpec, ParsesValidSpecs)
{
    struct Case
    {
        const char *spec;
        int clusters;
    };
    for (const auto &c : {Case{"vliw4", 4}, Case{"vliw1", 1},
                          Case{"single", 1}, Case{"raw16", 16},
                          Case{"raw4x4", 16}, Case{"raw2x8", 16},
                          Case{"raw2", 2}}) {
        std::string error;
        const auto machine = parseMachineSpec(c.spec, &error);
        ASSERT_NE(machine, nullptr) << c.spec << ": " << error;
        EXPECT_EQ(machine->numClusters(), c.clusters) << c.spec;
        EXPECT_TRUE(isValidMachineSpec(c.spec));
    }
}

TEST(MachineSpec, RejectsMalformedSpecs)
{
    for (const char *spec :
         {"", "vliw", "vliw0", "vliw-2", "vliwabc", "vliw4x4", "raw",
          "raw0", "raw4x", "rawx4", "raw0x4", "raw4x0", "raw4xx4",
          "mesh4", "singular", "raw9999999"}) {
        std::string error;
        EXPECT_EQ(parseMachineSpec(spec, &error), nullptr) << spec;
        EXPECT_FALSE(error.empty()) << spec;
        EXPECT_FALSE(isValidMachineSpec(spec)) << spec;
    }
}

} // namespace
} // namespace csched
