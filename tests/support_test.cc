/**
 * @file
 * Unit tests for the support module: RNG, statistics, strings, tables.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "support/rng.hh"
#include "support/stats.hh"
#include "support/str.hh"
#include "support/table.hh"

namespace csched {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42);
    Rng b(42);
    for (int k = 0; k < 100; ++k)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int k = 0; k < 64; ++k)
        same += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(same, 4);
}

TEST(Rng, UniformWithinUnitInterval)
{
    Rng rng(7);
    for (int k = 0; k < 1000; ++k) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRoughlyCentred)
{
    Rng rng(123);
    double sum = 0.0;
    const int draws = 20000;
    for (int k = 0; k < draws; ++k)
        sum += rng.uniform();
    EXPECT_NEAR(sum / draws, 0.5, 0.02);
}

TEST(Rng, RangeCoversAllValues)
{
    Rng rng(99);
    std::set<int> seen;
    for (int k = 0; k < 200; ++k)
        seen.insert(rng.range(5));
    EXPECT_EQ(seen.size(), 5u);
    EXPECT_EQ(*seen.begin(), 0);
    EXPECT_EQ(*seen.rbegin(), 4);
}

TEST(Rng, BetweenIsInclusive)
{
    Rng rng(5);
    std::set<int> seen;
    for (int k = 0; k < 300; ++k) {
        const int v = rng.between(3, 6);
        EXPECT_GE(v, 3);
        EXPECT_LE(v, 6);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 4u);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(11);
    for (int k = 0; k < 50; ++k) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Stats, MeanBasics)
{
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(mean({4.0}), 4.0);
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
}

TEST(Stats, GeomeanBasics)
{
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
    EXPECT_NEAR(geomean({2.0, 8.0}), 4.0, 1e-12);
    EXPECT_NEAR(geomean({3.0, 3.0, 3.0}), 3.0, 1e-12);
}

TEST(Stats, GeomeanOfSpeedupsBetweenMinAndMax)
{
    const std::vector<double> v{1.5, 2.0, 7.0};
    const double g = geomean(v);
    EXPECT_GT(g, 1.5);
    EXPECT_LT(g, 7.0);
    EXPECT_LT(g, mean(v));  // AM-GM
}

TEST(Stats, Stddev)
{
    EXPECT_DOUBLE_EQ(stddev({5.0}), 0.0);
    EXPECT_NEAR(stddev({2.0, 4.0}), 1.0, 1e-12);
}

TEST(Stats, PercentileNearestRank)
{
    EXPECT_DOUBLE_EQ(percentile({}, 50.0), 0.0);
    EXPECT_DOUBLE_EQ(percentile({7.0}, 1.0), 7.0);
    EXPECT_DOUBLE_EQ(percentile({7.0}, 100.0), 7.0);

    // Unsorted input; nearest rank never interpolates, so every
    // answer is an actual sample.
    const std::vector<double> v{40.0, 10.0, 30.0, 20.0};
    EXPECT_DOUBLE_EQ(percentile(v, 25.0), 10.0);
    EXPECT_DOUBLE_EQ(percentile(v, 50.0), 20.0);
    EXPECT_DOUBLE_EQ(percentile(v, 75.0), 30.0);
    EXPECT_DOUBLE_EQ(percentile(v, 100.0), 40.0);

    // p50 agrees with the lower median on both parities.
    EXPECT_DOUBLE_EQ(percentile(v, 50.0), median(v));
    const std::vector<double> odd{5.0, 1.0, 3.0};
    EXPECT_DOUBLE_EQ(percentile(odd, 50.0), median(odd));
}

TEST(Stats, PercentileTailOfSyntheticLatencyLedger)
{
    // 100 replies: 1ms..100ms.  The load tool's p50/p95/p99 must pick
    // exact ranks out of such a merged ledger.
    std::vector<double> ledger;
    for (int i = 100; i >= 1; --i)
        ledger.push_back(static_cast<double>(i));
    EXPECT_DOUBLE_EQ(percentile(ledger, 50.0), 50.0);
    EXPECT_DOUBLE_EQ(percentile(ledger, 95.0), 95.0);
    EXPECT_DOUBLE_EQ(percentile(ledger, 99.0), 99.0);
    EXPECT_DOUBLE_EQ(percentile(ledger, 100.0), 100.0);
}

TEST(Stats, AccumulatorTracksMinMaxMean)
{
    Accumulator acc;
    EXPECT_EQ(acc.count(), 0u);
    acc.add(3.0);
    acc.add(-1.0);
    acc.add(8.0);
    EXPECT_EQ(acc.count(), 3u);
    EXPECT_DOUBLE_EQ(acc.min(), -1.0);
    EXPECT_DOUBLE_EQ(acc.max(), 8.0);
    EXPECT_NEAR(acc.mean(), 10.0 / 3.0, 1e-12);
    EXPECT_DOUBLE_EQ(acc.sum(), 10.0);
}

TEST(Str, Split)
{
    const auto parts = split("a,b,,c", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[2], "");
    EXPECT_EQ(parts[3], "c");
    EXPECT_EQ(split("", ',').size(), 1u);
}

TEST(Str, Trim)
{
    EXPECT_EQ(trim("  x y  "), "x y");
    EXPECT_EQ(trim("\t\n"), "");
    EXPECT_EQ(trim("abc"), "abc");
}

TEST(Str, ToUpper)
{
    EXPECT_EQ(toUpper("Comm"), "COMM");
    EXPECT_EQ(toUpper("level2"), "LEVEL2");
}

TEST(Str, Join)
{
    EXPECT_EQ(join({"a", "b"}, ", "), "a, b");
    EXPECT_EQ(join({}, ","), "");
    EXPECT_EQ(join({"x"}, ","), "x");
}

TEST(Str, FormatDouble)
{
    EXPECT_EQ(formatDouble(3.14159, 2), "3.14");
    EXPECT_EQ(formatDouble(2.0, 0), "2");
}

TEST(Table, AlignsColumnsAndCountsRows)
{
    TablePrinter table({"name", "value"});
    table.addRow({"x", "1"});
    table.addRow({"longer", "22"});
    EXPECT_EQ(table.numRows(), 2u);
    std::ostringstream os;
    table.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("longer"), std::string::npos);
    // Header separator present.
    EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(TableDeathTest, RejectsMismatchedRow)
{
    TablePrinter table({"a", "b"});
    EXPECT_DEATH(table.addRow({"only one"}), "row width");
}

} // namespace
} // namespace csched
