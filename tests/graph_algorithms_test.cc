/**
 * @file
 * Unit tests for the free-standing graph utilities.
 */

#include <gtest/gtest.h>

#include "ir/graph_algorithms.hh"
#include "ir/graph_builder.hh"

namespace csched {
namespace {

TEST(PreplaceByBank, AssignsHomesModuloClusters)
{
    GraphBuilder builder;
    const InstrId l0 = builder.load(0);
    const InstrId l5 = builder.load(5);
    const InstrId add = builder.op(Opcode::IAdd, {l0, l5});
    const InstrId st = builder.store(2, add);
    preplaceMemoryByBank(builder.graph(), 4);
    const auto graph = builder.build();
    EXPECT_EQ(graph.instr(l0).homeCluster, 0);
    EXPECT_EQ(graph.instr(l5).homeCluster, 1);  // 5 % 4
    EXPECT_EQ(graph.instr(st).homeCluster, 2);
    EXPECT_FALSE(graph.instr(add).preplaced());
}

TEST(PreplaceByBank, SkipsUnanalysableAccesses)
{
    GraphBuilder builder;
    const InstrId ld = builder.load(kNoCluster);
    preplaceMemoryByBank(builder.graph(), 4);
    const auto graph = builder.build();
    EXPECT_FALSE(graph.instr(ld).preplaced());
}

TEST(PreplaceByBank, SingleClusterMapsEverythingHome)
{
    GraphBuilder builder;
    builder.load(7);
    builder.load(13);
    preplaceMemoryByBank(builder.graph(), 1);
    const auto graph = builder.build();
    EXPECT_EQ(graph.instr(0).homeCluster, 0);
    EXPECT_EQ(graph.instr(1).homeCluster, 0);
}

TEST(TotalWork, SumsLatencies)
{
    GraphBuilder builder;
    builder.op(Opcode::IAdd);        // 1
    builder.op(Opcode::FMul);        // 4
    builder.load(0);                 // 2
    const auto graph = builder.build();
    EXPECT_EQ(totalWork(graph), 7);
}

TEST(UndirectedDistance, TraversesBothDirections)
{
    GraphBuilder builder;
    const InstrId a = builder.op(Opcode::Const);
    const InstrId b = builder.op(Opcode::IAdd, {a});
    const InstrId c = builder.op(Opcode::IAdd, {a});
    const InstrId d = builder.op(Opcode::IAdd, {b});
    const auto graph = builder.build();
    EXPECT_EQ(undirectedDistance(graph, a, a), 0);
    EXPECT_EQ(undirectedDistance(graph, b, c), 2);  // via a
    EXPECT_EQ(undirectedDistance(graph, d, c), 3);  // d-b-a-c
}

TEST(UndirectedDistance, DisconnectedReturnsMinusOne)
{
    GraphBuilder builder;
    const InstrId a = builder.op(Opcode::Const);
    const InstrId b = builder.op(Opcode::Const);
    const auto graph = builder.build();
    EXPECT_EQ(undirectedDistance(graph, a, b), -1);
}

TEST(DistanceToSet, NearestTargetWins)
{
    GraphBuilder builder;
    const InstrId a = builder.op(Opcode::Const);
    const InstrId b = builder.op(Opcode::IAdd, {a});
    const InstrId c = builder.op(Opcode::IAdd, {b});
    const InstrId d = builder.op(Opcode::IAdd, {c});
    const auto graph = builder.build();
    std::vector<bool> targets(graph.numInstructions(), false);
    targets[a] = true;
    targets[d] = true;
    EXPECT_EQ(distanceToSet(graph, c, targets), 1);  // d is closer
    EXPECT_EQ(distanceToSet(graph, b, targets), 1);  // a is closer
}

TEST(AnalyzeShape, ReportsBasicQuantities)
{
    GraphBuilder builder;
    const InstrId a = builder.load(0);
    const InstrId b = builder.load(1);
    const InstrId m = builder.op(Opcode::FMul, {a, b});
    builder.store(0, m);
    preplaceMemoryByBank(builder.graph(), 2);
    const auto graph = builder.build();
    const auto shape = analyzeShape(graph);
    EXPECT_EQ(shape.instructions, 4);
    EXPECT_EQ(shape.edges, 3);
    EXPECT_EQ(shape.preplaced, 3);
    EXPECT_EQ(shape.criticalPathLength, 7);  // load2 + fmul4 + store1
    EXPECT_GT(shape.parallelism, 1.0);
}

} // namespace
} // namespace csched
