/**
 * @file
 * Tests for the distributed execution layer (dist/): the
 * csched-dist-v1 wire protocol and its untrusted-peer hardening, the
 * dist-client knob grammar, the workerd daemon's behaviour against
 * hostile frames, and the RemoteWorkerPool's robustness contract
 * end-to-end against real forked daemons -- lease reassignment across
 * an injected network partition, a SIGKILL of one daemon mid-grid,
 * and journal/resume byte-identity across execution modes (in-process
 * vs fleet, at any host count).
 */

#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/prctl.h>
#include <sys/wait.h>
#include <unistd.h>

#include "dist/protocol.hh"
#include "dist/remote_pool.hh"
#include "dist/workerd.hh"
#include "eval/experiment.hh"
#include "runner/grid_runner.hh"
#include "runner/json_report.hh"
#include "runner/shutdown.hh"
#include "support/fault_injection.hh"
#include "support/socket.hh"
#include "support/subprocess.hh"

namespace csched {
namespace {

using Clock = std::chrono::steady_clock;

FaultPlan
mustParse(const std::string &text)
{
    std::string error;
    const auto plan = FaultPlan::parse(text, &error);
    EXPECT_TRUE(plan.has_value()) << error;
    return plan.value_or(FaultPlan());
}

/** Interrupt tests must not leak shutdown state into later tests. */
struct InterruptGuard
{
    InterruptGuard() { clearInterrupt(); }
    ~InterruptGuard() { clearInterrupt(); }
};

std::string
tempPath(const std::string &name)
{
    const auto *info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    return ::testing::TempDir() + info->test_suite_name() + "-" +
           info->name() + "-" + name;
}

/** Poll @p pred every 10 ms for up to @p budget_ms. */
template <typename Predicate>
bool
eventually(Predicate pred, int budget_ms = 3000)
{
    const auto deadline =
        Clock::now() + std::chrono::milliseconds(budget_ms);
    while (!pred()) {
        if (Clock::now() >= deadline)
            return false;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return true;
}

GridSpec
smallGrid(int jobs = 2)
{
    GridSpec grid;
    grid.workloads = {"vvmul", "fir"};
    grid.machines = {"vliw2"};
    grid.algorithms = {*parseAlgorithmSpec("uas"),
                       *parseAlgorithmSpec("convergent")};
    grid.jobs = jobs;
    return grid;
}

std::string
deterministicJson(const GridReport &report)
{
    ReportOptions options;
    options.timings = false;
    return gridReportToJson(report, options);
}

JobSpec
smallJob()
{
    JobSpec spec;
    spec.workload = "fir";
    spec.machine = "vliw2";
    spec.algorithm = *parseAlgorithmSpec("uas");
    spec.computeSpeedup = false;
    return spec;
}

/** One forked workerd, reaped (SIGKILL tolerated) on destruction. */
struct ForkedWorkerd
{
    pid_t pid = -1;
    uint16_t port = 0;

    ~ForkedWorkerd()
    {
        if (pid <= 0)
            return;
        ::kill(pid, SIGKILL);
        ::waitpid(pid, nullptr, 0);
    }
};

/**
 * Fork a daemon on an ephemeral loopback port; the port comes back
 * over a pipe once the daemon is listening.  Fork while the test
 * process is still single-threaded (gtest runs tests serially on the
 * main thread, so call this before spawning any helper threads).
 */
ForkedWorkerd
forkWorkerd(int workers = 2, const std::string &inject = "")
{
    int fds[2];
    EXPECT_EQ(::pipe(fds), 0);
    const pid_t pid = ::fork();
    EXPECT_NE(pid, -1);
    if (pid == 0) {
        ::close(fds[0]);
        ::prctl(PR_SET_PDEATHSIG, SIGKILL);
        installServeSignalHandlers();
        FaultPlan plan;
        WorkerdOptions options;
        options.workers = workers;
        if (!inject.empty()) {
            std::string error;
            auto parsed = FaultPlan::parse(inject, &error);
            if (!parsed.has_value())
                ::_exit(3);
            plan = std::move(*parsed);
            options.faults = &plan;
        }
        WorkerdServer server(std::move(options));
        if (!server.start().ok())
            ::_exit(1);
        const std::string line = std::to_string(server.port());
        (void)!::write(fds[1], line.data(), line.size());
        ::close(fds[1]);
        ::_exit(server.run());
    }
    ::close(fds[1]);
    char buffer[16] = {0};
    const ssize_t got = ::read(fds[0], buffer, sizeof(buffer) - 1);
    ::close(fds[0]);
    ForkedWorkerd daemon;
    daemon.pid = pid;
    EXPECT_GT(got, 0);
    if (got > 0)
        daemon.port = static_cast<uint16_t>(std::atoi(buffer));
    return daemon;
}

std::string
endpoint(const ForkedWorkerd &daemon)
{
    return "127.0.0.1:" + std::to_string(daemon.port);
}

/** Shrunken timing knobs so failure handling fits test time. */
DistOptions
fastDistOptions()
{
    DistOptions options;
    options.heartbeatIntervalMs = 50;
    options.livenessTimeoutMs = 600;
    options.reconnectBaseMs = 20;
    options.reconnectCapMs = 200;
    options.partitionMs = 200;
    options.quarantineCooldownMs = 300;
    return options;
}

// --- Protocol ----------------------------------------------------------

TEST(DistProtocol, ControlFramesRoundTrip)
{
    const auto hello = decodeDistMessage(encodeDistHello());
    ASSERT_TRUE(hello.ok()) << hello.status().toString();
    EXPECT_EQ(hello->kind, DistMessage::Kind::Hello);

    const auto welcome = decodeDistMessage(encodeDistWelcome(6));
    ASSERT_TRUE(welcome.ok());
    EXPECT_EQ(welcome->kind, DistMessage::Kind::Welcome);
    EXPECT_EQ(welcome->capacity, 6);

    const auto ping = decodeDistMessage(encodeDistPing(41));
    ASSERT_TRUE(ping.ok());
    EXPECT_EQ(ping->kind, DistMessage::Kind::Ping);
    EXPECT_EQ(ping->seq, 41u);

    const auto pong = decodeDistMessage(encodeDistPong(41));
    ASSERT_TRUE(pong.ok());
    EXPECT_EQ(pong->kind, DistMessage::Kind::Pong);
    EXPECT_EQ(pong->seq, 41u);
}

TEST(DistProtocol, JobCarriesTheWorkerCrossingVerbatim)
{
    const JobSpec spec = smallJob();
    JobPolicy policy;
    policy.deadlineMs = 1500;
    BaselineMemo memo;
    BaselineEntry entry;
    entry.makespan = 9;
    memo[{spec.workload, spec.machine}] = entry;

    const auto decoded = decodeDistMessage(
        encodeDistJob(7, spec, policy, /*retries=*/2, &memo));
    ASSERT_TRUE(decoded.ok()) << decoded.status().toString();
    EXPECT_EQ(decoded->kind, DistMessage::Kind::Job);
    EXPECT_EQ(decoded->id, 7u);
    ASSERT_TRUE(decoded->job.has_value());
    EXPECT_EQ(decoded->job->spec.workload, "fir");
    EXPECT_EQ(decoded->job->spec.machine, "vliw2");
    EXPECT_EQ(decoded->job->deadlineMs, 1500);
    EXPECT_EQ(decoded->job->retries, 2);
}

TEST(DistProtocol, ResultRoundTrips)
{
    JobResult result;
    result.workload = "fir";
    result.machine = "vliw2";
    result.algorithm = "uas";
    result.makespan = 11;
    result.attempts = 1;

    const auto decoded =
        decodeDistMessage(encodeDistResult(9, result));
    ASSERT_TRUE(decoded.ok()) << decoded.status().toString();
    EXPECT_EQ(decoded->kind, DistMessage::Kind::Result);
    EXPECT_EQ(decoded->id, 9u);
    ASSERT_TRUE(decoded->result.has_value());
    EXPECT_EQ(decoded->result->workload, "fir");
    EXPECT_EQ(decoded->result->makespan, 11);
}

TEST(DistProtocol, HostileBytesComeBackClassifiedNeverThrow)
{
    const std::vector<std::string> hostile = {
        "",                                  // empty
        "not json at all",                   // not JSON
        "{}",                                // no schema
        "{\"schema\": \"wrong\", \"type\": \"hello\"}",
        "{\"schema\": \"csched-dist-v1\"}",  // no type
        "{\"schema\": \"csched-dist-v1\", \"type\": \"nope\"}",
        "{\"schema\": \"csched-dist-v1\", \"type\": \"job\"}",
        "{\"schema\": \"csched-dist-v1\", \"type\": \"result\","
        " \"id\": 1}",                       // result without body
        "{\"schema\": \"csched-dist-v1\", \"type\": \"welcome\","
        " \"capacity\": \"lots\"}",          // mis-typed field
    };
    for (const auto &payload : hostile) {
        const auto decoded = decodeDistMessage(payload);
        EXPECT_FALSE(decoded.ok()) << "accepted: " << payload;
        EXPECT_EQ(decoded.status().code(), ErrorCode::InvalidSpec);
    }
}

// --- Knob grammar ------------------------------------------------------

TEST(DistOptionsGrammar, AppliesKebabCaseOverrides)
{
    DistOptions options;
    const Status applied = DistOptions::applyOverrides(
        &options, "liveness-timeout-ms=500,steal-after-ms=200,"
                  "crash-loop-threshold=5");
    ASSERT_TRUE(applied.ok()) << applied.toString();
    EXPECT_EQ(options.livenessTimeoutMs, 500);
    EXPECT_EQ(options.stealAfterMs, 200);
    EXPECT_EQ(options.crashLoopThreshold, 5);
}

TEST(DistOptionsGrammar, RejectsUnknownKeysAndBadValues)
{
    DistOptions options;
    EXPECT_FALSE(
        DistOptions::applyOverrides(&options, "no-such-knob=1").ok());
    EXPECT_FALSE(DistOptions::applyOverrides(
                     &options, "liveness-timeout-ms=soon")
                     .ok());
    EXPECT_FALSE(
        DistOptions::applyOverrides(&options, "liveness-timeout-ms")
            .ok());
}

// --- Daemon vs hostile peers ------------------------------------------

TEST(WorkerdHardening, SurvivesGarbageAndOversizedFrames)
{
    WorkerdOptions options;
    options.workers = 1;
    WorkerdServer server(std::move(options));
    ASSERT_TRUE(server.start().ok());
    std::thread serving([&] { server.run(); });

    // Complete the hello/welcome handshake like a real client, so
    // the hostile frames below hit the post-handshake classifier.
    auto handshake = [&]() -> int {
        const auto fd = connectTcp("127.0.0.1", server.port(), 2000);
        EXPECT_TRUE(fd.ok()) << fd.status().toString();
        EXPECT_TRUE(writeFrame(*fd, encodeDistHello()).ok());
        const auto welcome = readFrame(*fd, 3000, kDistMaxFrameBytes);
        EXPECT_TRUE(welcome.ok()) << welcome.error;
        return *fd;
    };

    // A peer that refuses to handshake at all costs it the connection
    // and a handshake-failure count, nothing more.
    {
        const auto fd = connectTcp("127.0.0.1", server.port(), 2000);
        ASSERT_TRUE(fd.ok()) << fd.status().toString();
        ASSERT_TRUE(writeFrame(*fd, "definitely not a dist frame").ok());
        const auto reply = readFrame(*fd, 3000, kDistMaxFrameBytes);
        EXPECT_NE(reply.kind, FrameResult::Kind::Payload);
        ::close(*fd);
    }

    // A welcomed peer that degenerates into garbage.
    {
        const int fd = handshake();
        ASSERT_TRUE(writeFrame(fd, "garbage after the welcome").ok());
        const auto reply = readFrame(fd, 3000, kDistMaxFrameBytes);
        EXPECT_NE(reply.kind, FrameResult::Kind::Payload);
        ::close(fd);
    }

    // A welcomed peer probing with a huge length prefix (no body).
    {
        const int fd = handshake();
        const uint32_t huge = kDistMaxFrameBytes + 1;
        const unsigned char header[4] = {
            static_cast<unsigned char>(huge & 0xff),
            static_cast<unsigned char>((huge >> 8) & 0xff),
            static_cast<unsigned char>((huge >> 16) & 0xff),
            static_cast<unsigned char>((huge >> 24) & 0xff)};
        ASSERT_EQ(::write(fd, header, sizeof(header)),
                  static_cast<ssize_t>(sizeof(header)));
        const auto reply = readFrame(fd, 3000, kDistMaxFrameBytes);
        EXPECT_NE(reply.kind, FrameResult::Kind::Payload);
        ::close(fd);
    }

    EXPECT_TRUE(eventually([&] {
        const auto stats = server.stats();
        return stats.handshakeFailures >= 1 &&
               stats.invalidMessages >= 1 &&
               stats.oversizedFrames >= 1;
    })) << "hostile frames were not classified";

    // The daemon still serves a well-behaved client afterwards.
    {
        const auto fd = connectTcp("127.0.0.1", server.port(), 2000);
        ASSERT_TRUE(fd.ok());
        ASSERT_TRUE(writeFrame(*fd, encodeDistHello()).ok());
        const auto welcome = readFrame(*fd, 3000, kDistMaxFrameBytes);
        ASSERT_TRUE(welcome.ok()) << welcome.error;
        const auto decoded = decodeDistMessage(welcome.payload);
        ASSERT_TRUE(decoded.ok());
        EXPECT_EQ(decoded->kind, DistMessage::Kind::Welcome);
        EXPECT_GT(decoded->capacity, 0);

        JobPolicy policy;
        ASSERT_TRUE(writeFrame(*fd, encodeDistJob(1, smallJob(),
                                                  policy, 0, nullptr))
                        .ok());
        const FrameResult frame =
            readFrame(*fd, 10000, kDistMaxFrameBytes);
        ASSERT_TRUE(frame.ok()) << frame.error;
        const auto result = decodeDistMessage(frame.payload);
        ASSERT_TRUE(result.ok()) << result.status().toString();
        EXPECT_EQ(result->kind, DistMessage::Kind::Result);
        EXPECT_EQ(result->id, 1u);
        ASSERT_TRUE(result->result.has_value());
        EXPECT_EQ(result->result->outcome, JobOutcome::Ok);
        ::close(*fd);
    }

    server.stop();
    serving.join();
}

// --- End-to-end fleet --------------------------------------------------

TEST(DistFleet, ReportIsByteIdenticalToInProcessAtAnyHostCount)
{
    InterruptGuard guard;
    const auto baseline = runGrid(smallGrid(/*jobs=*/4));
    ASSERT_TRUE(baseline.allOk());

    auto daemon_a = forkWorkerd();
    auto daemon_b = forkWorkerd();
    ASSERT_GT(daemon_a.port, 0);
    ASSERT_GT(daemon_b.port, 0);

    for (const auto &hosts : std::vector<std::vector<std::string>>{
             {endpoint(daemon_a)},
             {endpoint(daemon_a), endpoint(daemon_b)}}) {
        auto grid = smallGrid(/*jobs=*/4);
        grid.hosts = hosts;
        const auto report = runGrid(grid);
        EXPECT_TRUE(report.allOk());
        EXPECT_EQ(deterministicJson(report),
                  deterministicJson(baseline))
            << "fleet of " << hosts.size() << " diverged";
    }
}

TEST(DistFleet, LeaseReassignsAcrossAnInjectedPartition)
{
    InterruptGuard guard;
    const auto baseline = runGrid(smallGrid(/*jobs=*/4));
    ASSERT_TRUE(baseline.allOk());

    auto daemon_a = forkWorkerd();
    auto daemon_b = forkWorkerd();
    ASSERT_GT(daemon_a.port, 0);
    ASSERT_GT(daemon_b.port, 0);

    // Partition the first dispatch of every fir cell: the chosen
    // host's connection drops and refuses reconnects for the
    // partition window, so the lease must reassign to the other host.
    const auto plan = mustParse("net.partition=fail:nth=1:match=fir/*");
    const DistOptions dist = fastDistOptions();
    auto grid = smallGrid(/*jobs=*/4);
    grid.hosts = {endpoint(daemon_a), endpoint(daemon_b)};
    grid.dist = &dist;
    grid.faults = &plan;
    const auto report = runGrid(grid);
    EXPECT_TRUE(report.allOk());
    EXPECT_EQ(deterministicJson(report), deterministicJson(baseline));
}

TEST(DistFleet, SigkillOfOneDaemonMidGridHeals)
{
    InterruptGuard guard;
    const auto baseline = runGrid(smallGrid(/*jobs=*/4));
    ASSERT_TRUE(baseline.allOk());

    auto daemon_a = forkWorkerd();
    auto daemon_b = forkWorkerd();
    ASSERT_GT(daemon_a.port, 0);
    ASSERT_GT(daemon_b.port, 0);

    // Slow every job so the SIGKILL lands while leases are in flight.
    const auto plan = mustParse("runner.job.start=slow:ms=120");
    const DistOptions dist = fastDistOptions();
    auto grid = smallGrid(/*jobs=*/4);
    grid.hosts = {endpoint(daemon_a), endpoint(daemon_b)};
    grid.dist = &dist;
    grid.faults = &plan;

    GridReport report;
    std::thread running([&] { report = runGrid(grid); });
    std::this_thread::sleep_for(std::chrono::milliseconds(250));
    ::kill(daemon_a.pid, SIGKILL);
    running.join();

    EXPECT_TRUE(report.allOk());
    EXPECT_EQ(deterministicJson(report), deterministicJson(baseline));
}

TEST(DistFleet, WorkerdCrashPointHealsViaTheOtherHost)
{
    InterruptGuard guard;
    const auto baseline = runGrid(smallGrid(/*jobs=*/2));
    ASSERT_TRUE(baseline.allOk());

    // Daemon A kills itself (SIGKILL, via the deterministic
    // workerd.crash point) on its second dispatched job; daemon B
    // absorbs the reassigned leases.
    auto daemon_a = forkWorkerd(2, "workerd.crash=fail:nth=2");
    auto daemon_b = forkWorkerd();
    ASSERT_GT(daemon_a.port, 0);
    ASSERT_GT(daemon_b.port, 0);

    const DistOptions dist = fastDistOptions();
    auto grid = smallGrid(/*jobs=*/2);
    grid.hosts = {endpoint(daemon_a), endpoint(daemon_b)};
    grid.dist = &dist;
    const auto report = runGrid(grid);
    EXPECT_TRUE(report.allOk());
    EXPECT_EQ(deterministicJson(report), deterministicJson(baseline));
}

TEST(DistFleet, TotalFleetLossIsAStructuredHostLostOutcome)
{
    InterruptGuard guard;
    RemoteWorkerPool pool(fastDistOptions());
    // No endpoints at all: start() must fail with a structured
    // status, not hang or crash.
    const Status started = pool.start();
    EXPECT_FALSE(started.ok());
}

// --- Journal + resume across execution modes ---------------------------

TEST(DistJournal, FleetRunInterruptedThenResumedInProcess)
{
    InterruptGuard guard;
    const std::string path = tempPath("journal.jsonl");
    const auto baseline = runGrid(smallGrid(/*jobs=*/4));
    ASSERT_TRUE(baseline.allOk());

    auto daemon = forkWorkerd();
    ASSERT_GT(daemon.port, 0);

    // The injected interrupt travels in the job frame, fires inside
    // the daemon, and comes back as a genuine `interrupted` result
    // that drains the client grid -- exactly the --isolate semantics.
    const auto plan =
        mustParse("runner.interrupt=fail:match=fir/vliw2/convergent");
    auto interrupted = smallGrid(/*jobs=*/2);
    interrupted.hosts = {endpoint(daemon)};
    interrupted.journalPath = path;
    interrupted.faults = &plan;
    const auto partial = runGrid(interrupted);
    EXPECT_TRUE(partial.interrupted);
    EXPECT_GT(partial.summary.interrupted, 0);

    // Resume *in-process*: the journal written by the fleet run must
    // replay under any execution mode (the fingerprint excludes the
    // packaging), completing to a byte-identical report.
    clearInterrupt();
    auto resumed_grid = smallGrid(/*jobs=*/4);
    resumed_grid.journalPath = path;
    resumed_grid.resume = true;
    const auto resumed = runGrid(resumed_grid);
    EXPECT_FALSE(resumed.interrupted);
    EXPECT_EQ(resumed.replayed, partial.summary.ok);
    EXPECT_EQ(deterministicJson(resumed), deterministicJson(baseline));
}

TEST(DistJournal, InProcessJournalResumesOnAFleet)
{
    InterruptGuard guard;
    const std::string path = tempPath("journal.jsonl");
    const auto baseline = runGrid(smallGrid(/*jobs=*/4));
    ASSERT_TRUE(baseline.allOk());

    const auto plan =
        mustParse("runner.interrupt=fail:match=fir/vliw2/convergent");
    auto interrupted = smallGrid(/*jobs=*/2);
    interrupted.journalPath = path;
    interrupted.faults = &plan;
    const auto partial = runGrid(interrupted);
    EXPECT_TRUE(partial.interrupted);

    clearInterrupt();
    auto daemon_a = forkWorkerd();
    auto daemon_b = forkWorkerd();
    ASSERT_GT(daemon_a.port, 0);
    ASSERT_GT(daemon_b.port, 0);
    auto resumed_grid = smallGrid(/*jobs=*/4);
    resumed_grid.hosts = {endpoint(daemon_a), endpoint(daemon_b)};
    resumed_grid.journalPath = path;
    resumed_grid.resume = true;
    const auto resumed = runGrid(resumed_grid);
    EXPECT_FALSE(resumed.interrupted);
    EXPECT_EQ(resumed.replayed, partial.summary.ok);
    EXPECT_EQ(deterministicJson(resumed), deterministicJson(baseline));
}

} // namespace
} // namespace csched
