/**
 * @file
 * Tests for the Rawcc baseline: clustering, merging, placement, and
 * the composed partitioner.
 */

#include <gtest/gtest.h>

#include <set>

#include "baseline/rawcc_clusterer.hh"
#include "baseline/rawcc_merger.hh"
#include "baseline/rawcc_partitioner.hh"
#include "baseline/rawcc_placer.hh"
#include "ir/graph_algorithms.hh"
#include "ir/graph_builder.hh"
#include "machine/raw_machine.hh"
#include "sched/schedule_checker.hh"
#include "workloads/workloads.hh"

namespace csched {
namespace {

TEST(RawccClusterer, ChainCollapsesToOneCluster)
{
    GraphBuilder builder;
    InstrId prev = builder.op(Opcode::IAdd);
    for (int k = 0; k < 5; ++k)
        prev = builder.op(Opcode::IAdd, {prev});
    const auto graph = builder.build();
    const auto clustering = rawccCluster(graph, 3);
    EXPECT_EQ(clustering.count, 1);
}

TEST(RawccClusterer, IndependentChainsStaySeparate)
{
    GraphBuilder builder;
    for (int chain = 0; chain < 4; ++chain) {
        InstrId prev = builder.op(Opcode::IAdd);
        for (int k = 0; k < 3; ++k)
            prev = builder.op(Opcode::IAdd, {prev});
    }
    const auto graph = builder.build();
    const auto clustering = rawccCluster(graph, 3);
    EXPECT_EQ(clustering.count, 4);
}

TEST(RawccClusterer, HomesNeverMix)
{
    const auto graph = findWorkload("jacobi").build(4, 4);
    const auto clustering = rawccCluster(graph, 3);
    // Every cluster has at most one home, tracked in the result.
    std::vector<std::set<int>> homes(clustering.count);
    for (InstrId id = 0; id < graph.numInstructions(); ++id) {
        const int home = graph.instr(id).homeCluster;
        if (home != kNoCluster)
            homes[clustering.clusterOf[id]].insert(home);
    }
    for (int c = 0; c < clustering.count; ++c) {
        EXPECT_LE(homes[c].size(), 1u);
        if (!homes[c].empty()) {
            EXPECT_EQ(clustering.home[c], *homes[c].begin());
        }
    }
}

TEST(RawccClusterer, EstimatorSerialisesWithinCluster)
{
    GraphBuilder builder;
    builder.op(Opcode::IAdd);
    builder.op(Opcode::IAdd);
    const auto graph = builder.build();
    // Same cluster: serialised on the single FU.
    EXPECT_EQ(estimateClusteredMakespan(graph, {0, 0}, 3), 2);
    // Separate clusters: fully parallel.
    EXPECT_EQ(estimateClusteredMakespan(graph, {0, 1}, 3), 1);
}

TEST(RawccClusterer, EstimatorChargesCommunication)
{
    GraphBuilder builder;
    const InstrId a = builder.op(Opcode::IAdd);
    builder.op(Opcode::IAdd, {a});
    const auto graph = builder.build();
    EXPECT_EQ(estimateClusteredMakespan(graph, {0, 0}, 3), 2);
    EXPECT_EQ(estimateClusteredMakespan(graph, {0, 1}, 3), 5);
}

TEST(RawccMerger, ReducesToBudget)
{
    const auto graph = findWorkload("life").build(8, 8);
    const auto clustering = rawccCluster(graph, 3);
    const auto merged = mergeClusters(graph, clustering, 8);
    EXPECT_LE(merged.count, 8);
    // Ids stay dense and homes stay unique.
    std::set<int> used_homes;
    for (int c = 0; c < merged.count; ++c) {
        if (merged.home[c] != kNoCluster) {
            EXPECT_TRUE(used_homes.insert(merged.home[c]).second);
        }
    }
}

TEST(RawccMerger, PreservesMembership)
{
    const auto graph = findWorkload("vvmul").build(4, 4);
    const auto clustering = rawccCluster(graph, 3);
    const auto merged = mergeClusters(graph, clustering, 4);
    // Instructions that shared a cluster before still share one.
    for (InstrId a = 0; a < graph.numInstructions(); ++a) {
        for (InstrId b = a + 1; b < graph.numInstructions(); ++b) {
            if (clustering.clusterOf[a] == clustering.clusterOf[b]) {
                EXPECT_EQ(merged.clusterOf[a], merged.clusterOf[b]);
            }
        }
    }
}

TEST(RawccPlacer, PinnedClustersGoHome)
{
    const auto raw = RawMachine::withTiles(4);
    const auto graph = findWorkload("jacobi").build(4, 4);
    const auto clustering = rawccCluster(graph, 3);
    const auto merged = mergeClusters(graph, clustering, 4);
    const auto assignment = placeClusters(graph, raw, merged);
    for (InstrId id = 0; id < graph.numInstructions(); ++id) {
        const auto &instr = graph.instr(id);
        if (instr.preplaced()) {
            EXPECT_EQ(assignment[id], instr.homeCluster);
        }
    }
}

TEST(RawccPartitioner, LegalSchedulesAcrossTileCounts)
{
    for (int tiles : {2, 4, 8}) {
        const auto raw = RawMachine::withTiles(tiles);
        const RawccPartitioner rawcc(raw);
        const auto graph = findWorkload("mxm").build(tiles, tiles);
        const auto schedule = rawcc.schedule(graph);
        const auto check = checkSchedule(graph, raw, schedule);
        EXPECT_TRUE(check.ok()) << tiles << " tiles: "
                                << check.message();
    }
}

TEST(RawccPartitioner, SpeedsUpParallelKernel)
{
    const auto raw = RawMachine::withTiles(4);
    const RawccPartitioner rawcc(raw);
    const auto graph = findWorkload("vvmul").build(4, 4);
    const auto schedule = rawcc.schedule(graph);
    // All four tiles carry work.
    for (int tile = 0; tile < 4; ++tile)
        EXPECT_GT(schedule.clusterLoad(tile), 0);
}

} // namespace
} // namespace csched
