/**
 * @file
 * End-to-end tests for the convergent scheduler driver: sequences,
 * extraction, correctness clamping, convergence tracing, determinism.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "convergent/convergent_scheduler.hh"
#include "convergent/preference_matrix.hh"
#include "convergent/sequences.hh"
#include "ir/graph_algorithms.hh"
#include "ir/graph_builder.hh"
#include "machine/clustered_vliw.hh"
#include "machine/raw_machine.hh"
#include "machine/single_cluster.hh"
#include "sched/schedule_checker.hh"
#include "support/fault_injection.hh"
#include "support/status.hh"
#include "workloads/workloads.hh"

namespace csched {
namespace {

DependenceGraph
smallKernel(int banks)
{
    return makeJacobi(banks, banks);
}

TEST(Sequences, MatchTableOne)
{
    EXPECT_EQ(rawPassSequence(),
              "INITTIME,PLACEPROP,LOAD,PLACE,PATH,PATHPROP,LEVEL,"
              "PATHPROP,COMM,PATHPROP,EMPHCP");
    EXPECT_EQ(vliwPassSequence(),
              "INITTIME,NOISE,FIRST,PATH,COMM,PLACE,PLACEPROP,COMM,"
              "EMPHCP");
}

TEST(ConvergentScheduler, PassNamesFollowSequence)
{
    const ClusteredVliwMachine vliw(4);
    const ConvergentScheduler scheduler(vliw, "INITTIME,PLACE,COMM");
    const auto names = scheduler.passNames();
    ASSERT_EQ(names.size(), 3u);
    EXPECT_EQ(names[0], "INITTIME");
    EXPECT_EQ(names[2], "COMM");
}

TEST(ConvergentScheduler, ProducesLegalScheduleOnVliw)
{
    const ClusteredVliwMachine vliw(4);
    const auto graph = smallKernel(4);
    const auto scheduler = ConvergentScheduler::forMachine(vliw);
    const auto result = scheduler.schedule(graph);
    const auto check = checkSchedule(graph, vliw, result.schedule);
    EXPECT_TRUE(check.ok()) << check.message();
}

TEST(ConvergentScheduler, ProducesLegalScheduleOnRaw)
{
    const auto raw = RawMachine::withTiles(4);
    const auto graph = smallKernel(4);
    const auto scheduler = ConvergentScheduler::forMachine(raw);
    const auto result = scheduler.schedule(graph);
    const auto check = checkSchedule(graph, raw, result.schedule);
    EXPECT_TRUE(check.ok()) << check.message();
}

TEST(ConvergentScheduler, PreplacedInstructionsClampedToHomes)
{
    const ClusteredVliwMachine vliw(4);
    const auto graph = smallKernel(4);
    const auto scheduler = ConvergentScheduler::forMachine(vliw);
    const auto result = scheduler.schedule(graph);
    for (InstrId id = 0; id < graph.numInstructions(); ++id) {
        const auto &instr = graph.instr(id);
        if (instr.preplaced()) {
            EXPECT_EQ(result.assignment[id], instr.homeCluster);
        }
    }
}

TEST(ConvergentScheduler, TraceCoversEveryPass)
{
    const ClusteredVliwMachine vliw(4);
    const auto graph = smallKernel(4);
    const auto scheduler = ConvergentScheduler::forMachine(vliw);
    const auto result = scheduler.schedule(graph);
    ASSERT_EQ(result.trace.size(), 9u);  // Table 1(b) length
    for (const auto &step : result.trace) {
        EXPECT_GE(step.fractionChanged, 0.0);
        EXPECT_LE(step.fractionChanged, 1.0);
    }
    EXPECT_EQ(result.trace.front().pass, "INITTIME");
    EXPECT_TRUE(result.trace.front().temporalOnly);
    EXPECT_EQ(result.trace.back().pass, "EMPHCP");
}

TEST(ConvergentScheduler, TemporalOnlyPassesChangeNoClusters)
{
    const ClusteredVliwMachine vliw(4);
    const auto graph = smallKernel(4);
    const auto scheduler = ConvergentScheduler::forMachine(vliw);
    const auto result = scheduler.schedule(graph);
    for (const auto &step : result.trace) {
        if (step.temporalOnly) {
            EXPECT_DOUBLE_EQ(step.fractionChanged, 0.0);
        }
    }
}

TEST(ConvergentScheduler, DeterministicAcrossRuns)
{
    const ClusteredVliwMachine vliw(4);
    const auto graph = smallKernel(4);
    const auto scheduler = ConvergentScheduler::forMachine(vliw);
    const auto first = scheduler.schedule(graph);
    const auto second = scheduler.schedule(graph);
    EXPECT_EQ(first.assignment, second.assignment);
    EXPECT_EQ(first.schedule.makespan(), second.schedule.makespan());
}

TEST(ConvergentScheduler, NoiseSeedChangesVliwOutcome)
{
    const ClusteredVliwMachine vliw(4);
    const auto graph = smallKernel(4);
    PassParams a = vliwPassParams();
    PassParams b = vliwPassParams();
    b.noiseSeed = a.noiseSeed + 1;
    const ConvergentScheduler first(vliw, vliwPassSequence(), a);
    const ConvergentScheduler second(vliw, vliwPassSequence(), b);
    // Different noise, (almost surely) different assignment somewhere.
    EXPECT_NE(first.schedule(graph).assignment,
              second.schedule(graph).assignment);
}

TEST(ConvergentScheduler, SingleClusterMachineTrivialAssignment)
{
    const ClusteredVliwMachine vliw(1);
    GraphBuilder builder;
    const InstrId a = builder.op(Opcode::IAdd);
    builder.op(Opcode::IAdd, {a});
    const auto graph = builder.build();
    const auto scheduler = ConvergentScheduler::forMachine(vliw);
    const auto result = scheduler.schedule(graph);
    EXPECT_EQ(result.assignment, (std::vector<int>{0, 0}));
}

TEST(ConvergentScheduler, WorksOnReceiveOpMachines)
{
    // The Figure-1 style abstract machine: receives occupy consumer
    // FUs.  forMachine() selects the VLIW sequence for it.
    const UniformMachine machine(3, 1, 1);
    const auto graph = smallKernel(3);
    const auto scheduler = ConvergentScheduler::forMachine(machine);
    const auto result = scheduler.schedule(graph);
    const auto check = checkSchedule(graph, machine, result.schedule);
    EXPECT_TRUE(check.ok()) << check.message();
    EXPECT_GE(result.schedule.makespan(),
              graph.criticalPathLength());
}

TEST(ConvergentScheduler, CustomSequenceRuns)
{
    const ClusteredVliwMachine vliw(2);
    const auto graph = smallKernel(2);
    const ConvergentScheduler scheduler(vliw, "INITTIME,PLACE,PLACEPROP");
    const auto result = scheduler.schedule(graph);
    const auto check = checkSchedule(graph, vliw, result.schedule);
    EXPECT_TRUE(check.ok()) << check.message();
}

TEST(ConvergentScheduler, ThrowingPassIsSkippedAndRolledBack)
{
    const ClusteredVliwMachine vliw(4);
    const auto graph = smallKernel(4);
    const auto scheduler = ConvergentScheduler::forMachine(vliw);

    // The third pass of the VLIW sequence (FIRST) throws mid-run; the
    // scheduler must roll the preference matrix back to the pre-pass
    // snapshot, mark the step skipped, and finish with the remaining
    // passes.
    std::string error;
    const auto plan = FaultPlan::parse("pass.body=fail:nth=3", &error);
    ASSERT_TRUE(plan.has_value()) << error;
    FaultScope faults(&*plan, "degradation-test");
    ScopedFaultScope fault_guard(&faults);

    const auto result = scheduler.schedule(graph);
    const auto check = checkSchedule(graph, vliw, result.schedule);
    EXPECT_TRUE(check.ok()) << check.message();

    ASSERT_EQ(result.trace.size(), 9u);
    for (size_t k = 0; k < result.trace.size(); ++k)
        EXPECT_EQ(result.trace[k].skipped, k == 2) << "pass " << k;
    EXPECT_EQ(result.trace[2].pass, "FIRST");
    // Rolled back means *no* preference movement is attributed to the
    // skipped pass.
    EXPECT_DOUBLE_EQ(result.trace[2].fractionChanged, 0.0);
}

TEST(ConvergentScheduler, SkippedPassLeavesNoTraceByDefault)
{
    // Without a fault, no step is marked skipped (the report layer
    // relies on this: the "skipped" key is emitted only when true, so
    // default report bytes are unchanged).
    const ClusteredVliwMachine vliw(4);
    const auto graph = smallKernel(4);
    const auto scheduler = ConvergentScheduler::forMachine(vliw);
    const auto result = scheduler.schedule(graph);
    for (const auto &step : result.trace)
        EXPECT_FALSE(step.skipped) << step.pass;
}

TEST(ConvergentScheduler, CancellationIsNotSwallowedByDegradation)
{
    // Pass-level degradation absorbs pass *bugs*, never cooperative
    // cancellation: a deadline expiry inside a pass must still unwind
    // the whole schedule() call so the job can time out.
    const ClusteredVliwMachine vliw(4);
    const auto graph = smallKernel(4);
    const auto scheduler = ConvergentScheduler::forMachine(vliw);

    std::string error;
    const auto plan =
        FaultPlan::parse("pass.body=timeout:nth=2", &error);
    ASSERT_TRUE(plan.has_value()) << error;
    FaultScope faults(&*plan, "degradation-test");
    ScopedFaultScope fault_guard(&faults);

    try {
        scheduler.schedule(graph);
        FAIL() << "an injected timeout must escape the pass guard";
    } catch (const StatusError &caught) {
        EXPECT_EQ(caught.status.code(), ErrorCode::Timeout);
    }
}

TEST(WeightInvariants, AcceptAFreshAndANormalizedMatrix)
{
    PreferenceMatrix weights(3, 4, 2);
    EXPECT_TRUE(checkWeightInvariants(weights, "INITTIME").ok());

    auto row = weights.row(1);
    row.scaleCluster(0, 0.25);
    row.normalize();
    EXPECT_TRUE(checkWeightInvariants(weights, "PLACE").ok());
}

TEST(WeightInvariants, ScalingWithoutNormalizingIsCaughtAndHealable)
{
    // A buggy pass that scales a row without restoring the sum-to-one
    // invariant: the guard flags it, and one renormalization -- the
    // scheduler's healing step -- restores the invariants.
    PreferenceMatrix weights(2, 3, 2);
    weights.row(0).scaleCluster(1, 3.0);
    const Status broken = checkWeightInvariants(weights, "PLACE");
    ASSERT_FALSE(broken.ok());
    EXPECT_EQ(broken.code(), ErrorCode::CheckFailed);
    EXPECT_NE(broken.message().find("PLACE"), std::string::npos);

    weights.normalizeAll();
    EXPECT_TRUE(checkWeightInvariants(weights, "PLACE").ok());
}

TEST(WeightInvariants, NonFiniteWeightsCannotBeHealed)
{
    PreferenceMatrix weights(2, 2, 2);
    weights.row(1).set(0, 1, INFINITY);
    const Status broken = checkWeightInvariants(weights, "COMM");
    ASSERT_FALSE(broken.ok());
    EXPECT_EQ(broken.code(), ErrorCode::CheckFailed);
    EXPECT_NE(broken.message().find("COMM"), std::string::npos);

    // Renormalizing an infinite row leaves non-finite weights behind
    // (inf/inf), so the scheduler's one healing attempt still fails
    // and the job is failed with the pass named.
    weights.normalizeAll();
    EXPECT_FALSE(checkWeightInvariants(weights, "COMM").ok());
}

} // namespace
} // namespace csched
