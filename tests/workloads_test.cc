/**
 * @file
 * Tests for the synthetic benchmark generators: validity, determinism,
 * scaling with banks, preplacement structure, and the Figure-2 shape
 * contrast between dense and irregular kernels.
 */

#include <gtest/gtest.h>

#include "ir/graph_algorithms.hh"
#include "workloads/random_dag.hh"
#include "workloads/workloads.hh"

namespace csched {
namespace {

class EveryWorkload : public ::testing::TestWithParam<std::string>
{
};

TEST_P(EveryWorkload, BuildsAValidGraph)
{
    const auto &spec = findWorkload(GetParam());
    const auto graph = spec.build(4, 4);
    EXPECT_TRUE(graph.finalized());
    EXPECT_GT(graph.numInstructions(), 10);
    EXPECT_GT(graph.criticalPathLength(), 0);
}

TEST_P(EveryWorkload, DeterministicAcrossCalls)
{
    const auto &spec = findWorkload(GetParam());
    const auto first = spec.build(4, 4);
    const auto second = spec.build(4, 4);
    ASSERT_EQ(first.numInstructions(), second.numInstructions());
    ASSERT_EQ(first.edges().size(), second.edges().size());
    for (InstrId id = 0; id < first.numInstructions(); ++id) {
        EXPECT_EQ(first.instr(id).op, second.instr(id).op);
        EXPECT_EQ(first.instr(id).memBank, second.instr(id).memBank);
    }
}

TEST_P(EveryWorkload, PreplacementHomesAreValid)
{
    const auto &spec = findWorkload(GetParam());
    const auto graph = spec.build(4, 4);
    for (const auto &instr : graph.instructions()) {
        if (instr.preplaced()) {
            EXPECT_GE(instr.homeCluster, 0);
            EXPECT_LT(instr.homeCluster, 4);
        }
        if (isMemory(instr.op) && instr.memBank != kNoCluster) {
            EXPECT_EQ(instr.homeCluster, instr.memBank % 4);
        }
    }
}

TEST_P(EveryWorkload, SingleClusterPreplacementMapsHome)
{
    const auto &spec = findWorkload(GetParam());
    const auto graph = spec.build(4, 1);
    for (const auto &instr : graph.instructions()) {
        if (instr.preplaced()) {
            EXPECT_EQ(instr.homeCluster, 0);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllGenerators, EveryWorkload,
    ::testing::Values("cholesky", "tomcatv", "vpenta", "mxm",
                      "fpppp-kernel", "sha", "swim", "jacobi", "life",
                      "vvmul", "rbsorf", "yuv", "fir"),
    [](const auto &info) {
        std::string name = info.param;
        for (char &ch : name)
            if (ch == '-')
                ch = '_';
        return name;
    });

TEST(Workloads, DenseKernelsScaleWithBanks)
{
    for (const char *name : {"mxm", "jacobi", "vvmul", "tomcatv"}) {
        const auto &spec = findWorkload(name);
        const int small = spec.build(2, 2).numInstructions();
        const int large = spec.build(16, 16).numInstructions();
        EXPECT_GT(large, 3 * small) << name;
    }
}

TEST(Workloads, FppppDoesNotScaleWithBanks)
{
    const auto &spec = findWorkload("fpppp-kernel");
    EXPECT_EQ(spec.build(2, 2).numInstructions(),
              spec.build(16, 16).numInstructions());
}

TEST(Workloads, Figure2ShapeContrast)
{
    // Dense kernels are "fat" (high parallelism); fpppp-kernel and sha
    // are "long and narrow" (Figure 2 of the paper).
    const auto fat = analyzeShape(findWorkload("jacobi").build(16, 16));
    const auto thin = analyzeShape(findWorkload("sha").build(16, 16));
    EXPECT_GT(fat.parallelism, 20.0);
    EXPECT_LT(thin.parallelism, 6.0);
    EXPECT_GT(thin.criticalPathLength, 4 * fat.criticalPathLength);
}

TEST(Workloads, IrregularKernelsHaveLittleUsefulPreplacement)
{
    const auto fpppp =
        analyzeShape(findWorkload("fpppp-kernel").build(16, 16));
    EXPECT_EQ(fpppp.preplaced, 0);
    const auto sha = analyzeShape(findWorkload("sha").build(16, 16));
    const auto dense = analyzeShape(findWorkload("mxm").build(16, 16));
    EXPECT_LT(static_cast<double>(sha.preplaced) / sha.instructions,
              0.3 * dense.preplaced / dense.instructions);
}

TEST(Workloads, RegistryAndSuites)
{
    EXPECT_EQ(allWorkloads().size(), 13u);
    EXPECT_EQ(rawSuiteNames().size(), 9u);   // Table 2
    EXPECT_EQ(vliwSuiteNames().size(), 7u);  // Figure 8
    for (const auto &name : rawSuiteNames())
        EXPECT_NO_FATAL_FAILURE(findWorkload(name));
    for (const auto &name : vliwSuiteNames())
        EXPECT_NO_FATAL_FAILURE(findWorkload(name));
}

TEST(Workloads, PerfRegistryIsSeparateAndDeterministic)
{
    // The large synthetic units live in their own registry so the
    // interactive suites stay fast; tryFindWorkload searches both.
    EXPECT_EQ(perfWorkloads().size(), 4u);
    for (const auto &spec : perfWorkloads()) {
        EXPECT_EQ(tryFindWorkload(spec.name), &spec);
        for (const auto &interactive : allWorkloads())
            EXPECT_NE(spec.name, interactive.name);
    }
    ASSERT_NE(tryFindWorkload("synth-wide-10k"), nullptr);
    ASSERT_NE(tryFindWorkload("mxm"), nullptr);
    EXPECT_EQ(tryFindWorkload("nonesuch"), nullptr);

    // Seeded generators: the same spec builds the same graph, which
    // is what makes perf cells comparable across runs and commits.
    const WorkloadSpec *wide = tryFindWorkload("synth-wide-10k");
    const auto a = wide->build(4, 4);
    const auto b = wide->build(4, 4);
    EXPECT_EQ(a.numInstructions(), 10000);
    EXPECT_EQ(a.numInstructions(), b.numInstructions());
    EXPECT_EQ(a.criticalPathLength(), b.criticalPathLength());
}

TEST(WorkloadsDeathTest, UnknownNameIsFatal)
{
    EXPECT_DEATH(findWorkload("quicksort"), "unknown workload");
}

TEST(RandomDag, RespectsSizeAndSeeds)
{
    RandomDagOptions options;
    options.numInstructions = 150;
    options.seed = 5;
    const auto graph = makeRandomDag(options);
    EXPECT_EQ(graph.numInstructions(), 150);

    const auto same = makeRandomDag(options);
    EXPECT_EQ(same.edges().size(), graph.edges().size());

    options.seed = 6;
    const auto other = makeRandomDag(options);
    // Almost surely a different structure.
    EXPECT_NE(other.edges().size(), graph.edges().size());
}

TEST(RandomDag, MemFractionControlsPreplacement)
{
    RandomDagOptions none;
    none.memFraction = 0.0;
    EXPECT_EQ(makeRandomDag(none).numPreplaced(), 0);

    RandomDagOptions heavy;
    heavy.memFraction = 0.8;
    heavy.numInstructions = 300;
    const auto graph = makeRandomDag(heavy);
    EXPECT_GT(graph.numPreplaced(), 100);
}

TEST(RandomDag, WidthShapesParallelism)
{
    RandomDagOptions narrow;
    narrow.width = 2;
    narrow.numInstructions = 300;
    RandomDagOptions wide = narrow;
    wide.width = 24;
    const auto thin = analyzeShape(makeRandomDag(narrow));
    const auto fat = analyzeShape(makeRandomDag(wide));
    EXPECT_GT(fat.avgWidth, thin.avgWidth);
}

} // namespace
} // namespace csched
