/**
 * @file
 * Unit tests for GraphBuilder and the ArrayRef kernel helper.
 */

#include <gtest/gtest.h>

#include "ir/describe.hh"
#include "ir/graph_builder.hh"
#include "workloads/loop_kernel.hh"

namespace csched {
namespace {

TEST(GraphBuilder, EmitsInstructionsWithDataEdges)
{
    GraphBuilder builder;
    const InstrId a = builder.op(Opcode::Const, {}, "a");
    const InstrId b = builder.op(Opcode::Const, {}, "b");
    const InstrId sum = builder.op(Opcode::IAdd, {a, b});
    const auto graph = builder.build();
    EXPECT_EQ(graph.numInstructions(), 3);
    EXPECT_EQ(graph.preds(sum).size(), 2u);
    EXPECT_EQ(graph.instr(a).name, "a");
}

TEST(GraphBuilder, LoadStoreCarryBanks)
{
    GraphBuilder builder;
    const InstrId ld = builder.load(3);
    const InstrId st = builder.store(5, ld);
    const auto graph = builder.build();
    EXPECT_EQ(graph.instr(ld).op, Opcode::Load);
    EXPECT_EQ(graph.instr(ld).memBank, 3);
    EXPECT_EQ(graph.instr(st).op, Opcode::Store);
    EXPECT_EQ(graph.instr(st).memBank, 5);
    // Store depends on the stored value.
    EXPECT_EQ(graph.preds(st), std::vector<InstrId>{ld});
}

TEST(GraphBuilder, ManualPreplacement)
{
    GraphBuilder builder;
    const InstrId c = builder.op(Opcode::Const);
    builder.preplace(c, 2);
    const auto graph = builder.build();
    EXPECT_TRUE(graph.instr(c).preplaced());
    EXPECT_EQ(graph.instr(c).homeCluster, 2);
}

TEST(GraphBuilder, ExtraEdges)
{
    GraphBuilder builder;
    const InstrId a = builder.op(Opcode::Store);
    const InstrId b = builder.op(Opcode::Store);
    builder.edge(a, b, DepKind::Output);
    const auto graph = builder.build();
    ASSERT_EQ(graph.edges().size(), 1u);
    EXPECT_EQ(graph.edges()[0].kind, DepKind::Output);
}

TEST(GraphBuilderDeathTest, ReuseAfterBuild)
{
    GraphBuilder builder;
    builder.op(Opcode::IAdd);
    (void)builder.build();
    EXPECT_DEATH(builder.op(Opcode::IAdd), "reused");
}

TEST(Describe, MentionsKeyFields)
{
    Instruction instr;
    instr.id = 7;
    instr.op = Opcode::Load;
    instr.name = "x";
    instr.memBank = 2;
    instr.homeCluster = 1;
    const std::string text = describe(instr);
    EXPECT_NE(text.find("i7"), std::string::npos);
    EXPECT_NE(text.find("load"), std::string::npos);
    EXPECT_NE(text.find("bank=2"), std::string::npos);
    EXPECT_NE(text.find("home=1"), std::string::npos);
}

TEST(ArrayRef, BaseIsLiveInOnClusterZero)
{
    GraphBuilder builder;
    ArrayRef array(builder, "a");
    const InstrId ld = array.load(3);
    auto graph = builder.build();
    EXPECT_EQ(graph.instr(array.base()).op, Opcode::Const);
    EXPECT_EQ(graph.instr(array.base()).homeCluster, 0);
    // The load consumes the live-in base.
    EXPECT_EQ(graph.preds(ld), std::vector<InstrId>{array.base()});
}

TEST(ArrayRef, StoreConsumesValueAndBase)
{
    GraphBuilder builder;
    ArrayRef array(builder, "a");
    const InstrId v = builder.op(Opcode::Const);
    const InstrId st = array.store(1, v);
    auto graph = builder.build();
    EXPECT_EQ(graph.preds(st).size(), 2u);
}

TEST(ReduceBalanced, BuildsLogDepthTree)
{
    GraphBuilder builder;
    std::vector<InstrId> leaves;
    for (int k = 0; k < 8; ++k)
        leaves.push_back(builder.op(Opcode::Const));
    const InstrId root =
        reduceBalanced(builder, Opcode::FAdd, leaves);
    auto graph = builder.build();
    // 8 leaves -> 7 adds; root at node-level 3.
    EXPECT_EQ(graph.numInstructions(), 15);
    EXPECT_EQ(graph.level(root), 3);
}

TEST(ReduceChain, BuildsLinearDepth)
{
    GraphBuilder builder;
    std::vector<InstrId> leaves;
    for (int k = 0; k < 6; ++k)
        leaves.push_back(builder.op(Opcode::Const));
    const InstrId root = reduceChain(builder, Opcode::FAdd, leaves);
    auto graph = builder.build();
    EXPECT_EQ(graph.numInstructions(), 11);
    EXPECT_EQ(graph.level(root), 5);
}

TEST(ReduceBalanced, SingleValueIsIdentity)
{
    GraphBuilder builder;
    const InstrId only = builder.op(Opcode::Const);
    EXPECT_EQ(reduceBalanced(builder, Opcode::FAdd, {only}), only);
}

} // namespace
} // namespace csched
