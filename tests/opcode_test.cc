/**
 * @file
 * Unit tests for opcodes, FU capabilities, and the latency model.
 */

#include <gtest/gtest.h>

#include "ir/latency_model.hh"
#include "ir/opcode.hh"

namespace csched {
namespace {

TEST(Opcode, NamesRoundTrip)
{
    for (int k = 0; k < kNumOpcodes; ++k) {
        const auto op = static_cast<Opcode>(k);
        EXPECT_EQ(opcodeFromName(opcodeName(op)), op);
    }
}

TEST(Opcode, MemoryPredicate)
{
    EXPECT_TRUE(isMemory(Opcode::Load));
    EXPECT_TRUE(isMemory(Opcode::Store));
    EXPECT_FALSE(isMemory(Opcode::IAdd));
    EXPECT_FALSE(isMemory(Opcode::FMul));
}

TEST(Opcode, FloatPredicate)
{
    EXPECT_TRUE(isFloat(Opcode::FAdd));
    EXPECT_TRUE(isFloat(Opcode::FSqrt));
    EXPECT_FALSE(isFloat(Opcode::IAdd));
    EXPECT_FALSE(isFloat(Opcode::Load));
}

TEST(Opcode, CommPredicate)
{
    EXPECT_TRUE(isComm(Opcode::Copy));
    EXPECT_TRUE(isComm(Opcode::Send));
    EXPECT_TRUE(isComm(Opcode::Recv));
    EXPECT_FALSE(isComm(Opcode::Move));
}

TEST(Opcode, ControlPredicate)
{
    EXPECT_TRUE(isControl(Opcode::Branch));
    EXPECT_TRUE(isControl(Opcode::Jump));
    EXPECT_FALSE(isControl(Opcode::Cmp));
}

TEST(FuKind, IntAluCapabilities)
{
    EXPECT_TRUE(fuCanExecute(FuKind::IntAlu, Opcode::IAdd));
    EXPECT_TRUE(fuCanExecute(FuKind::IntAlu, Opcode::Rot));
    EXPECT_FALSE(fuCanExecute(FuKind::IntAlu, Opcode::Load));
    EXPECT_FALSE(fuCanExecute(FuKind::IntAlu, Opcode::FAdd));
    EXPECT_FALSE(fuCanExecute(FuKind::IntAlu, Opcode::Copy));
}

TEST(FuKind, IntAluMemCapabilities)
{
    EXPECT_TRUE(fuCanExecute(FuKind::IntAluMem, Opcode::IAdd));
    EXPECT_TRUE(fuCanExecute(FuKind::IntAluMem, Opcode::Load));
    EXPECT_TRUE(fuCanExecute(FuKind::IntAluMem, Opcode::Store));
    EXPECT_FALSE(fuCanExecute(FuKind::IntAluMem, Opcode::FMul));
}

TEST(FuKind, FpuCapabilities)
{
    EXPECT_TRUE(fuCanExecute(FuKind::Fpu, Opcode::FDiv));
    EXPECT_FALSE(fuCanExecute(FuKind::Fpu, Opcode::IAdd));
    EXPECT_FALSE(fuCanExecute(FuKind::Fpu, Opcode::Load));
}

TEST(FuKind, TransferOnlyCopies)
{
    EXPECT_TRUE(fuCanExecute(FuKind::Transfer, Opcode::Copy));
    EXPECT_FALSE(fuCanExecute(FuKind::Transfer, Opcode::IAdd));
    EXPECT_FALSE(fuCanExecute(FuKind::Transfer, Opcode::Recv));
}

TEST(FuKind, UniversalRunsEverythingExceptCopy)
{
    EXPECT_TRUE(fuCanExecute(FuKind::Universal, Opcode::Load));
    EXPECT_TRUE(fuCanExecute(FuKind::Universal, Opcode::FSqrt));
    EXPECT_TRUE(fuCanExecute(FuKind::Universal, Opcode::Recv));
    EXPECT_FALSE(fuCanExecute(FuKind::Universal, Opcode::Copy));
}

TEST(LatencyModel, DefaultsAreSane)
{
    const LatencyModel model;
    EXPECT_EQ(model.latency(Opcode::IAdd), 1);
    EXPECT_EQ(model.latency(Opcode::IMul), 2);
    EXPECT_EQ(model.latency(Opcode::Load), 2);
    EXPECT_EQ(model.latency(Opcode::Store), 1);
    EXPECT_EQ(model.latency(Opcode::FAdd), 4);
    EXPECT_EQ(model.latency(Opcode::FDiv), 12);
    EXPECT_EQ(model.latency(Opcode::FSqrt), 14);
}

TEST(LatencyModel, EveryOpcodeHasPositiveLatency)
{
    const LatencyModel model;
    for (int k = 0; k < kNumOpcodes; ++k)
        EXPECT_GE(model.latency(static_cast<Opcode>(k)), 1);
}

TEST(LatencyModel, Overridable)
{
    LatencyModel model;
    model.setLatency(Opcode::Load, 5);
    EXPECT_EQ(model.latency(Opcode::Load), 5);
    EXPECT_EQ(model.latency(Opcode::Store), 1);  // untouched
}

TEST(LatencyModelDeathTest, RejectsZeroLatency)
{
    LatencyModel model;
    EXPECT_DEATH(model.setLatency(Opcode::IAdd, 0), "latency");
}

} // namespace
} // namespace csched
