/**
 * @file
 * Cross-module integration and property tests: every scheduling
 * algorithm, on every workload, on several machines, must produce a
 * checker-clean schedule whose makespan respects the fundamental
 * bounds.  Parameterised over (workload x machine family x algorithm).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "eval/convergence_trace.hh"
#include "eval/experiment.hh"
#include "eval/speedup.hh"
#include "ir/graph_algorithms.hh"
#include "machine/clustered_vliw.hh"
#include "machine/raw_machine.hh"
#include "sched/schedule_checker.hh"
#include "workloads/random_dag.hh"
#include "workloads/workloads.hh"

namespace csched {
namespace {

struct Combo
{
    std::string workload;
    bool raw = false;  // false = clustered VLIW
    std::string algorithm = "convergent";
};

std::string
comboName(const ::testing::TestParamInfo<Combo> &info)
{
    std::string name = info.param.workload;
    for (char &ch : name)
        if (ch == '-')
            ch = '_';
    name += info.param.raw ? "_raw" : "_vliw";
    name += "_" + info.param.algorithm;
    return name;
}

class ScheduleEverything : public ::testing::TestWithParam<Combo>
{
  protected:
    std::unique_ptr<MachineModel>
    makeMachine() const
    {
        if (GetParam().raw) {
            return std::make_unique<RawMachine>(2, 2);
        }
        return std::make_unique<ClusteredVliwMachine>(4);
    }
};

TEST_P(ScheduleEverything, LegalScheduleWithSaneMakespan)
{
    const auto machine = makeMachine();
    const auto &spec = findWorkload(GetParam().workload);
    const auto graph = spec.build(machine->numClusters(),
                                  machine->numClusters());
    const auto algorithm =
        makeAlgorithm(*parseAlgorithmSpec(GetParam().algorithm),
                      *machine);

    // runAndCheck is fatal on checker violations.
    const auto result = runAndCheck(*algorithm, graph, *machine);

    // Lower bound: the critical path.
    EXPECT_GE(result.makespan, graph.criticalPathLength());
    // Upper bound: fully serial execution plus a generous comm term.
    EXPECT_LE(result.makespan,
              totalWork(graph) + 8 * graph.numInstructions());
}

std::vector<Combo>
allCombos()
{
    std::vector<Combo> out;
    for (const auto &name : vliwSuiteNames())
        for (const char *algorithm : {"convergent", "uas", "pcc"})
            out.push_back({name, false, algorithm});
    for (const auto &name : rawSuiteNames())
        for (const char *algorithm : {"convergent", "rawcc"})
            out.push_back({name, true, algorithm});
    return out;
}

INSTANTIATE_TEST_SUITE_P(Suites, ScheduleEverything,
                         ::testing::ValuesIn(allCombos()), comboName);

class RandomDagProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(RandomDagProperty, AllSchedulersLegalOnRandomGraphs)
{
    RandomDagOptions options;
    options.seed = static_cast<uint64_t>(GetParam());
    options.numInstructions = 60 + 20 * GetParam();
    options.width = 3 + GetParam();
    options.banks = 4;
    options.preplaceClusters = 4;
    const auto graph = makeRandomDag(options);

    const ClusteredVliwMachine vliw(4);
    for (const char *name : {"convergent", "uas", "pcc", "rawcc"}) {
        const auto algorithm =
            makeAlgorithm(*parseAlgorithmSpec(name), vliw);
        const auto result = runAndCheck(*algorithm, graph, vliw);
        EXPECT_GE(result.makespan, graph.criticalPathLength());
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDagProperty,
                         ::testing::Range(1, 7));

TEST(Speedup, SingleClusterBaselineMatchesDirectRun)
{
    const ClusteredVliwMachine vliw(4);
    const auto &spec = findWorkload("vvmul");
    const int baseline = singleClusterMakespan(spec, vliw);
    EXPECT_GT(baseline, 0);
    // Speedup of the single-cluster algorithm on the one-cluster
    // machine is exactly 1 by construction.
    const auto single = vliw.makeSingleCluster();
    const auto algorithm =
        makeAlgorithm(*parseAlgorithmSpec("single"), *single);
    const auto graph = spec.build(4, 1);
    const auto result = runAndCheck(*algorithm, graph, *single);
    EXPECT_EQ(result.makespan, baseline);
}

TEST(Speedup, MultiClusterBeatsOneClusterOnParallelKernel)
{
    const ClusteredVliwMachine vliw(4);
    const auto &spec = findWorkload("vvmul");
    const auto algorithm =
        makeAlgorithm(*parseAlgorithmSpec("convergent"), vliw);
    EXPECT_GT(speedupOf(spec, vliw, *algorithm), 1.5);
}

TEST(Speedup, SerialKernelGainsLittle)
{
    const auto raw = RawMachine::withTiles(16);
    const auto &spec = findWorkload("sha");
    const auto algorithm =
        makeAlgorithm(*parseAlgorithmSpec("convergent"), raw);
    const double speedup = speedupOf(spec, raw, *algorithm);
    EXPECT_GT(speedup, 0.5);
    EXPECT_LT(speedup, 4.0);
}

TEST(ConvergenceTrace, SpatialStepsExcludeTemporalPasses)
{
    const ClusteredVliwMachine vliw(4);
    const ConvergentAlgorithm conv(vliw);
    const auto graph = findWorkload("mxm").build(4, 4);
    const auto result = conv.run(graph);
    const auto steps = spatialSteps(result.trace);
    EXPECT_LT(steps.size(), result.trace.size());
    for (const auto &step : steps)
        EXPECT_FALSE(step.temporalOnly);
    const auto labels = stepLabels(steps);
    EXPECT_EQ(labels.size(), steps.size());
    EXPECT_EQ(std::count(labels.begin(), labels.end(), "INITTIME"), 0);
    EXPECT_EQ(std::count(labels.begin(), labels.end(), "EMPHCP"), 0);
}

TEST(ConvergenceTrace, LatePassesQuiesce)
{
    // The headline convergence property (Figures 7/9): by the end of
    // the pipeline, passes change few preferred clusters.
    const auto raw = RawMachine::withTiles(16);
    const ConvergentAlgorithm conv(raw);
    const auto graph = findWorkload("mxm").build(16, 16);
    const auto steps = spatialSteps(conv.run(graph).trace);
    ASSERT_GE(steps.size(), 3u);
    const double first_half = std::max(steps[0].fractionChanged,
                                       steps[1].fractionChanged);
    EXPECT_LT(steps.back().fractionChanged, first_half);
    EXPECT_LT(steps.back().fractionChanged, 0.2);
}

TEST(Experiment, RunAndCheckReportsTimings)
{
    const ClusteredVliwMachine vliw(4);
    const auto algorithm = makeAlgorithm(*parseAlgorithmSpec("uas"), vliw);
    const auto graph = findWorkload("fir").build(4, 4);
    const auto result = runAndCheck(*algorithm, graph, vliw);
    EXPECT_EQ(result.algorithm, "UAS");
    EXPECT_EQ(result.instructions, graph.numInstructions());
    EXPECT_GE(result.seconds, 0.0);
    EXPECT_LT(result.seconds, 60.0);
}

TEST(Experiment, ConvergentBeatsUasOnVliwSuite)
{
    // The paper's headline VLIW claim (Figure 8), in relaxed form:
    // convergent's geomean speedup exceeds UAS's.
    const ClusteredVliwMachine vliw(4);
    double conv_product = 1.0;
    double uas_product = 1.0;
    for (const auto &name : vliwSuiteNames()) {
        const auto &spec = findWorkload(name);
        const auto conv =
            makeAlgorithm(*parseAlgorithmSpec("convergent"), vliw);
        const auto uas = makeAlgorithm(*parseAlgorithmSpec("uas"), vliw);
        conv_product *= speedupOf(spec, vliw, *conv);
        uas_product *= speedupOf(spec, vliw, *uas);
    }
    EXPECT_GT(conv_product, uas_product);
}

} // namespace
} // namespace csched
