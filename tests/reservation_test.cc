/**
 * @file
 * Unit tests for the FU and link reservation tables.
 */

#include <gtest/gtest.h>

#include "machine/clustered_vliw.hh"
#include "sched/reservation.hh"

namespace csched {
namespace {

TEST(FuReservation, TakeAndFree)
{
    const ClusteredVliwMachine vliw(2);
    FuReservation fus(vliw);
    EXPECT_TRUE(fus.free(0, 0, 5));
    fus.take(0, 0, 5);
    EXPECT_FALSE(fus.free(0, 0, 5));
    EXPECT_TRUE(fus.free(0, 0, 4));
    EXPECT_TRUE(fus.free(0, 1, 5));
    EXPECT_TRUE(fus.free(1, 0, 5));
}

TEST(FuReservation, Release)
{
    const ClusteredVliwMachine vliw(1);
    FuReservation fus(vliw);
    fus.take(0, 2, 3);
    fus.release(0, 2, 3);
    EXPECT_TRUE(fus.free(0, 2, 3));
}

TEST(FuReservation, FreeFuForRespectsCapability)
{
    const ClusteredVliwMachine vliw(1);
    FuReservation fus(vliw);
    // Loads only run on the IntAluMem unit (index 1).
    EXPECT_EQ(fus.freeFuFor(0, Opcode::Load, 0), 1);
    fus.take(0, 1, 0);
    EXPECT_EQ(fus.freeFuFor(0, Opcode::Load, 0), -1);
    // Plain integer ops can still use the IntAlu (index 0).
    EXPECT_EQ(fus.freeFuFor(0, Opcode::IAdd, 0), 0);
}

TEST(FuReservation, EarliestForSkipsBusySlots)
{
    const ClusteredVliwMachine vliw(1);
    FuReservation fus(vliw);
    fus.take(0, 2, 4);  // FPU busy at cycle 4
    const auto [cycle, fu] = fus.earliestFor(0, Opcode::FMul, 4);
    EXPECT_EQ(cycle, 5);
    EXPECT_EQ(fu, 2);
}

TEST(FuReservationDeathTest, IncapableClusterPanics)
{
    // A machine whose cluster cannot execute Copy... the VLIW can,
    // so query an op no FU supports: none, actually -- instead check
    // double-take.
    const ClusteredVliwMachine vliw(1);
    FuReservation fus(vliw);
    fus.take(0, 0, 0);
    EXPECT_DEATH(fus.take(0, 0, 0), "already taken");
}

TEST(LinkReservation, RouteSlotSearch)
{
    LinkReservation links(4);
    const std::vector<int> route{0, 1, 2};
    EXPECT_EQ(links.earliestRouteSlot(route, 3), 3);
    links.takeRoute(route, 3);
    // Slots 0@3, 1@4, 2@5 now busy; send at 3 impossible.
    EXPECT_FALSE(links.free(0, 3));
    EXPECT_FALSE(links.free(1, 4));
    EXPECT_FALSE(links.free(2, 5));
    EXPECT_EQ(links.earliestRouteSlot(route, 3), 4);
}

TEST(LinkReservation, StaggeredRoutesInterleave)
{
    LinkReservation links(2);
    const std::vector<int> route{0, 1};
    links.takeRoute(route, 0);  // 0@0, 1@1
    // A second message can enter link 0 at cycle 1 (pipelining).
    EXPECT_EQ(links.earliestRouteSlot(route, 0), 1);
    links.takeRoute(route, 1);
    EXPECT_EQ(links.earliestRouteSlot(route, 0), 2);
}

TEST(LinkReservation, Release)
{
    LinkReservation links(1);
    links.take(0, 7);
    links.release(0, 7);
    EXPECT_TRUE(links.free(0, 7));
}

} // namespace
} // namespace csched
