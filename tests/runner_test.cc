/**
 * @file
 * Tests for the parallel experiment runner: grid expansion order,
 * validation, the determinism guarantee (same results for any thread
 * count, down to the serialized bytes), and the JSON report schema.
 */

#include <gtest/gtest.h>

#include "runner/grid_runner.hh"
#include "runner/json_report.hh"
#include "runner/thread_pool.hh"
#include "support/json.hh"
#include "workloads/workloads.hh"

namespace csched {
namespace {

GridSpec
smallGrid()
{
    GridSpec grid;
    grid.workloads = {"vvmul", "fir", "jacobi"};
    grid.machines = {"vliw4", "raw2x2"};
    grid.algorithms = {*parseAlgorithmSpec("convergent"),
                       *parseAlgorithmSpec("uas")};
    return grid;
}

TEST(ThreadPool, RunsEverySubmittedTask)
{
    ThreadPool pool(4);
    std::vector<int> done(64, 0);
    for (size_t k = 0; k < done.size(); ++k)
        pool.submit([&done, k] { done[k] = 1; });
    pool.wait();
    for (size_t k = 0; k < done.size(); ++k)
        EXPECT_EQ(done[k], 1) << k;
}

TEST(GridRunner, ExpandsWorkloadMajorAlgorithmMinor)
{
    const auto jobs = expandGrid(smallGrid());
    ASSERT_EQ(jobs.size(), 3u * 2u * 2u);
    EXPECT_EQ(jobs[0].workload, "vvmul");
    EXPECT_EQ(jobs[0].machine, "vliw4");
    EXPECT_EQ(jobs[0].algorithm.name, "convergent");
    EXPECT_EQ(jobs[1].algorithm.name, "uas");
    EXPECT_EQ(jobs[2].machine, "raw2x2");
    EXPECT_EQ(jobs[4].workload, "fir");
    EXPECT_EQ(jobs.back().workload, "jacobi");
    EXPECT_EQ(jobs.back().machine, "raw2x2");
    EXPECT_EQ(jobs.back().algorithm.name, "uas");
}

TEST(GridRunner, ValidatesEveryAxis)
{
    std::string error;
    EXPECT_TRUE(validateGrid(smallGrid(), &error)) << error;

    auto bad_workload = smallGrid();
    bad_workload.workloads.push_back("nonesuch");
    EXPECT_FALSE(validateGrid(bad_workload, &error));
    EXPECT_NE(error.find("nonesuch"), std::string::npos);

    auto bad_machine = smallGrid();
    bad_machine.machines.push_back("vliw0");
    EXPECT_FALSE(validateGrid(bad_machine, &error));
    EXPECT_NE(error.find("vliw0"), std::string::npos);

    auto bad_algorithm = smallGrid();
    bad_algorithm.algorithms.push_back(
        AlgorithmSpec{"convergent", "BOGUS", std::nullopt});
    EXPECT_FALSE(validateGrid(bad_algorithm, &error));
}

TEST(GridRunner, JobResultsAreSelfDescribing)
{
    auto grid = smallGrid();
    grid.jobs = 1;
    const auto report = runGrid(grid);
    ASSERT_EQ(report.results.size(), expandGrid(grid).size());
    for (const auto &job : report.results) {
        EXPECT_FALSE(job.workload.empty());
        EXPECT_FALSE(job.machine.empty());
        EXPECT_FALSE(job.algorithmName.empty());
        EXPECT_GT(job.instructions, 0);
        EXPECT_GE(job.makespan, job.criticalPathLength);
        EXPECT_GT(job.singleClusterMakespan, 0);
        EXPECT_GT(job.speedup, 0.0);
        EXPECT_EQ(static_cast<int>(job.assignment.size()),
                  job.instructions);
    }
}

/**
 * The ISSUE's core acceptance criterion: the same grid run serially
 * and on many threads produces identical makespans and assignments --
 * and, with timings stripped, byte-identical JSON.  The container may
 * have a single core, so jobs=8 exercises queueing/interleaving rather
 * than true parallelism, but the determinism argument (self-contained
 * jobs writing to pre-assigned slots) is what is under test.
 */
TEST(GridRunner, ThreadCountDoesNotChangeResults)
{
    auto serial = smallGrid();
    serial.jobs = 1;
    auto parallel = smallGrid();
    parallel.jobs = 8;

    const auto a = runGrid(serial);
    const auto b = runGrid(parallel);
    ASSERT_EQ(a.results.size(), b.results.size());
    EXPECT_EQ(a.threads, 1);
    EXPECT_EQ(b.threads, 8);
    for (size_t k = 0; k < a.results.size(); ++k) {
        const auto &ra = a.results[k];
        const auto &rb = b.results[k];
        EXPECT_EQ(ra.workload, rb.workload);
        EXPECT_EQ(ra.machine, rb.machine);
        EXPECT_EQ(ra.algorithm, rb.algorithm);
        EXPECT_EQ(ra.makespan, rb.makespan) << ra.workload;
        EXPECT_EQ(ra.assignment, rb.assignment) << ra.workload;
        EXPECT_EQ(ra.speedup, rb.speedup) << ra.workload;
        EXPECT_EQ(ra.trace.size(), rb.trace.size());
    }

    ReportOptions options;
    options.timings = false;
    EXPECT_EQ(gridReportToJson(a, options), gridReportToJson(b, options));
}

TEST(JsonReport, RoundTripsThroughTheParser)
{
    auto grid = smallGrid();
    grid.jobs = 2;
    const auto report = runGrid(grid);

    const auto json = gridReportToJson(report);
    std::string error;
    const auto parsed = parseJson(json, &error);
    ASSERT_TRUE(parsed.has_value()) << error;
    EXPECT_EQ(parsed->at("schema").string, kGridReportSchema);
    EXPECT_EQ(parsed->at("threads").asInt(), 2);

    const auto &results = parsed->at("results");
    ASSERT_EQ(results.array.size(), report.results.size());
    for (size_t k = 0; k < results.array.size(); ++k) {
        const auto &json_job = results.array[k];
        const auto &job = report.results[k];
        EXPECT_EQ(json_job.at("workload").string, job.workload);
        EXPECT_EQ(json_job.at("machine").string, job.machine);
        EXPECT_EQ(json_job.at("algorithm").string, job.algorithm);
        EXPECT_EQ(json_job.at("makespan").asInt(), job.makespan);
        EXPECT_EQ(json_job.at("speedup").asDouble(), job.speedup);
        const auto &assignment = json_job.at("assignment").array;
        ASSERT_EQ(assignment.size(), job.assignment.size());
        for (size_t i = 0; i < assignment.size(); ++i)
            EXPECT_EQ(assignment[i].asInt(), job.assignment[i]);
    }
}

TEST(JsonReport, OptionsStripSections)
{
    GridSpec grid;
    grid.workloads = {"vvmul"};
    grid.machines = {"vliw4"};
    grid.algorithms = {*parseAlgorithmSpec("convergent")};
    const auto report = runGrid(grid);

    ReportOptions stripped;
    stripped.timings = false;
    stripped.assignments = false;
    stripped.trace = false;
    const auto json = gridReportToJson(report, stripped);
    EXPECT_EQ(json.find("seconds"), std::string::npos);
    EXPECT_EQ(json.find("threads"), std::string::npos);
    EXPECT_EQ(json.find("assignment"), std::string::npos);
    EXPECT_EQ(json.find("trace"), std::string::npos);

    const auto full = gridReportToJson(report);
    EXPECT_NE(full.find("seconds"), std::string::npos);
    EXPECT_NE(full.find("assignment"), std::string::npos);
    EXPECT_NE(full.find("trace"), std::string::npos);
}

TEST(JsonReport, SpeedupFieldsFollowTheSpec)
{
    GridSpec grid;
    grid.workloads = {"vvmul"};
    grid.machines = {"vliw2"};
    grid.algorithms = {*parseAlgorithmSpec("uas")};
    grid.computeSpeedup = false;
    const auto report = runGrid(grid);
    ASSERT_EQ(report.results.size(), 1u);
    EXPECT_EQ(report.results[0].singleClusterMakespan, 0);
    const auto json = gridReportToJson(report);
    EXPECT_EQ(json.find("speedup"), std::string::npos);
    EXPECT_EQ(json.find("singleClusterMakespan"), std::string::npos);
}

} // namespace
} // namespace csched
