/**
 * @file
 * Tests for the UAS baseline: legality, preplacement handling, and
 * its strictly forward-in-time copy behaviour.
 */

#include <gtest/gtest.h>

#include "baseline/uas.hh"
#include "ir/graph_algorithms.hh"
#include "ir/graph_builder.hh"
#include "machine/clustered_vliw.hh"
#include "machine/raw_machine.hh"
#include "sched/schedule_checker.hh"
#include "workloads/workloads.hh"

namespace csched {
namespace {

TEST(Uas, LegalOnVliwKernels)
{
    const ClusteredVliwMachine vliw(4);
    const UasScheduler uas(vliw);
    for (const char *name : {"vvmul", "fir", "yuv"}) {
        const auto graph = findWorkload(name).build(4, 4);
        const auto schedule = uas.schedule(graph);
        const auto check = checkSchedule(graph, vliw, schedule);
        EXPECT_TRUE(check.ok()) << name << ": " << check.message();
    }
}

TEST(Uas, LegalOnRawKernels)
{
    const auto raw = RawMachine::withTiles(4);
    const UasScheduler uas(raw);
    const auto graph = findWorkload("jacobi").build(4, 4);
    const auto schedule = uas.schedule(graph);
    const auto check = checkSchedule(graph, raw, schedule);
    EXPECT_TRUE(check.ok()) << check.message();
}

TEST(Uas, RespectsPreplacement)
{
    const ClusteredVliwMachine vliw(4);
    const UasScheduler uas(vliw);
    const auto graph = findWorkload("mxm").build(4, 4);
    const auto schedule = uas.schedule(graph);
    for (InstrId id = 0; id < graph.numInstructions(); ++id) {
        const auto &instr = graph.instr(id);
        if (instr.preplaced()) {
            EXPECT_EQ(schedule.clusterOf(id), instr.homeCluster);
        }
    }
}

TEST(Uas, SerialChainStaysLocal)
{
    GraphBuilder builder;
    InstrId prev = builder.op(Opcode::IAdd);
    for (int k = 0; k < 5; ++k)
        prev = builder.op(Opcode::IAdd, {prev});
    const auto graph = builder.build();
    const ClusteredVliwMachine vliw(4);
    const UasScheduler uas(vliw);
    const auto schedule = uas.schedule(graph);
    // A pure chain gains nothing from spreading: no communication.
    EXPECT_TRUE(schedule.comms().empty());
    EXPECT_EQ(schedule.makespan(), 6);
}

TEST(Uas, CopiesAreForwardInTime)
{
    const ClusteredVliwMachine vliw(4);
    const UasScheduler uas(vliw);
    const auto graph = findWorkload("fir").build(4, 4);
    const auto schedule = uas.schedule(graph);
    for (const auto &event : schedule.comms()) {
        // A UAS copy departs no earlier than its producer's finish and
        // arrives before (or when) some consumer needs it; the checker
        // verifies the details -- here we assert the UAS-specific
        // property that copies never start before cycle 0 and always
        // take the machine latency.
        EXPECT_GE(event.start,
                  schedule.at(event.producer).finish);
        EXPECT_EQ(event.arrive - event.start,
                  vliw.commLatency(event.fromCluster, event.toCluster));
    }
}

TEST(Uas, ExploitsParallelismAcrossClusters)
{
    GraphBuilder builder;
    // Eight independent FMuls: one FPU per cluster, so spreading
    // across 4 clusters must beat a single cluster.
    for (int k = 0; k < 8; ++k)
        builder.op(Opcode::FMul);
    const auto graph = builder.build();
    const ClusteredVliwMachine vliw(4);
    const UasScheduler uas(vliw);
    const auto schedule = uas.schedule(graph);
    EXPECT_LE(schedule.makespan(), 6);  // 2 rounds of 4, latency 4
    int used = 0;
    for (int c = 0; c < 4; ++c)
        used += schedule.clusterLoad(c) > 0 ? 1 : 0;
    EXPECT_EQ(used, 4);
}

} // namespace
} // namespace csched
