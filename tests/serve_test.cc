/**
 * @file
 * Tests for the scheduler-as-a-service layer (serve/): the wire
 * protocol and its untrusted-peer hardening, the bounded admission
 * queue, the LRU + single-flight result cache, the serve-style soft
 * drain (SIGHUP as a drain trigger, double-signal escalation), and
 * end-to-end daemon behaviour on a real UNIX-domain socket -- healing
 * worker crashes with the deterministic backoff in the reply
 * diagnostic, tripping the crash-loop breaker into `overloaded`
 * rejections, and answering the queued backlog with `interrupted`
 * through a signal-driven drain that exits 128+signum.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <map>
#include <string>
#include <thread>

#include <sys/wait.h>
#include <unistd.h>

#include "runner/job.hh"
#include "runner/shutdown.hh"
#include "serve/protocol.hh"
#include "serve/request_queue.hh"
#include "serve/result_cache.hh"
#include "serve/server.hh"
#include "support/fault_injection.hh"
#include "support/socket.hh"
#include "support/status.hh"
#include "support/subprocess.hh"

namespace csched {
namespace {

using Clock = std::chrono::steady_clock;

FaultPlan
mustParse(const std::string &text)
{
    std::string error;
    const auto plan = FaultPlan::parse(text, &error);
    EXPECT_TRUE(plan.has_value()) << error;
    return plan.value_or(FaultPlan());
}

/** Interrupt tests must not leak shutdown state into later tests. */
struct InterruptGuard
{
    InterruptGuard() { clearInterrupt(); }
    ~InterruptGuard() { clearInterrupt(); }
};

/**
 * Serve-style handlers for the duration of one test; the destructor
 * restores the grid style every other test in this binary assumes.
 */
struct ServeSignalGuard
{
    ServeSignalGuard()
    {
        clearInterrupt();
        installServeSignalHandlers();
    }
    ~ServeSignalGuard()
    {
        clearInterrupt();
        installGridSignalHandlers();
    }
};

std::string
tempPath(const std::string &name)
{
    const auto *info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    return ::testing::TempDir() + info->test_suite_name() + "-" +
           info->name() + "-" + name;
}

/** Poll @p pred every 10 ms for up to @p budget_ms. */
template <typename Predicate>
bool
eventually(Predicate pred, int budget_ms = 2000)
{
    const auto deadline =
        Clock::now() + std::chrono::milliseconds(budget_ms);
    while (!pred()) {
        if (Clock::now() >= deadline)
            return false;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return true;
}

ServeRequest
makeRequest(uint64_t id, const std::string &workload,
            const std::string &algorithm = "uas")
{
    ServeRequest request;
    request.id = id;
    request.workload = workload;
    request.machine = "vliw2";
    request.algorithm = algorithm;
    return request;
}

JobResult
okResult(const std::string &workload, int makespan = 7)
{
    JobResult result;
    result.workload = workload;
    result.machine = "vliw2";
    result.algorithm = "uas";
    result.algorithmName = "UAS";
    result.makespan = makespan;
    result.instructions = 12;
    result.criticalPathLength = 5;
    return result;
}

// --- Protocol ----------------------------------------------------------

TEST(ServeProtocol, RequestRoundTrips)
{
    ServeRequest request = makeRequest(42, "vvmul", "convergent");
    request.deadlineMs = 1500;
    request.computeSpeedup = true;

    const auto decoded =
        decodeServeRequest(encodeServeRequest(request));
    ASSERT_TRUE(decoded.ok()) << decoded.status().toString();
    EXPECT_EQ(decoded->id, 42u);
    EXPECT_EQ(decoded->workload, "vvmul");
    EXPECT_EQ(decoded->machine, "vliw2");
    EXPECT_EQ(decoded->algorithm, "convergent");
    EXPECT_EQ(decoded->deadlineMs, 1500);
    EXPECT_TRUE(decoded->computeSpeedup);
}

TEST(ServeProtocol, DecodeNamesTheDefectAndSalvagesTheId)
{
    uint64_t salvaged = 0;

    auto bad = decodeServeRequest("this is not json", &salvaged);
    EXPECT_FALSE(bad.ok());
    EXPECT_NE(bad.status().message().find("not JSON"),
              std::string::npos)
        << bad.status().toString();

    // A wrong schema still yields an addressable error reply.
    salvaged = 0;
    bad = decodeServeRequest("{\"schema\":\"bogus\",\"id\":9}",
                             &salvaged);
    EXPECT_FALSE(bad.ok());
    EXPECT_EQ(salvaged, 9u);
    EXPECT_NE(bad.status().message().find("schema"),
              std::string::npos);

    salvaged = 0;
    bad = decodeServeRequest(
        "{\"schema\":\"csched-serve-request-v1\",\"id\":7}",
        &salvaged);
    EXPECT_FALSE(bad.ok());
    EXPECT_EQ(salvaged, 7u);
    EXPECT_NE(bad.status().message().find("workload"),
              std::string::npos);

    bad = decodeServeRequest(
        "{\"schema\":\"csched-serve-request-v1\",\"id\":-1,"
        "\"workload\":\"vvmul\",\"machine\":\"vliw2\","
        "\"algorithm\":\"uas\"}");
    EXPECT_FALSE(bad.ok());
    EXPECT_NE(bad.status().message().find("non-negative"),
              std::string::npos);
}

TEST(ServeProtocol, ResponseRoundTripsTheEmbeddedResult)
{
    ServeResponse response;
    response.id = 7;
    response.status = "ok";
    response.cached = true;
    response.queueMs = 12.5;
    response.serverDiagnostic = "note";
    response.result = okResult("vvmul");
    response.result.assignment = {0, 1, 0};

    const auto decoded =
        decodeServeResponse(encodeServeResponse(response));
    ASSERT_TRUE(decoded.ok()) << decoded.status().toString();
    EXPECT_EQ(decoded->id, 7u);
    EXPECT_EQ(decoded->status, "ok");
    EXPECT_TRUE(decoded->cached);
    EXPECT_FALSE(decoded->coalesced);
    EXPECT_DOUBLE_EQ(decoded->queueMs, 12.5);
    EXPECT_EQ(decoded->serverDiagnostic, "note");
    EXPECT_EQ(decoded->result.workload, "vvmul");
    EXPECT_EQ(decoded->result.makespan, 7);
    EXPECT_EQ(decoded->result.assignment,
              (std::vector<int>{0, 1, 0}));

    // --no-timings drops the envelope's wall-clock field.
    const auto bare = decodeServeResponse(
        encodeServeResponse(response, /*timings=*/false));
    ASSERT_TRUE(bare.ok()) << bare.status().toString();
    EXPECT_DOUBLE_EQ(bare->queueMs, 0.0);
}

TEST(ServeProtocol, RejectionMapsTheStatusToAnOutcome)
{
    const ServeRequest request = makeRequest(3, "vvmul");

    ServeResponse rejected =
        makeRejection(request, Status::overloaded("queue full"));
    EXPECT_EQ(rejected.id, 3u);
    EXPECT_EQ(rejected.status, "overloaded");
    EXPECT_EQ(rejected.result.outcome, JobOutcome::Failed);
    EXPECT_EQ(rejected.result.error, ErrorCode::Overloaded);
    EXPECT_EQ(rejected.result.diagnostic, "queue full");
    EXPECT_EQ(rejected.result.attempts, 0);

    rejected = makeRejection(request, Status::interrupted("drain"));
    EXPECT_EQ(rejected.status, "interrupted");
    EXPECT_EQ(rejected.result.outcome, JobOutcome::Interrupted);

    rejected = makeRejection(request, Status::timedOut("aged out"));
    EXPECT_EQ(rejected.status, "timeout");
    EXPECT_EQ(rejected.result.outcome, JobOutcome::Timeout);
}

TEST(ServeProtocol, ServeStatusCollapsesOutcomeAndError)
{
    EXPECT_EQ(serveStatusOf(okResult("vvmul")), "ok");
    JobResult crashed;
    crashed.outcome = JobOutcome::Failed;
    crashed.error = ErrorCode::WorkerCrashed;
    EXPECT_EQ(serveStatusOf(crashed), "worker-crashed");
}

// --- Admission queue ---------------------------------------------------

QueuedRequest
queued(uint64_t id)
{
    QueuedRequest item;
    item.request = makeRequest(id, "vvmul");
    item.admitted = Clock::now();
    item.deadline = Clock::time_point::max();
    return item;
}

TEST(ServeQueue, BoundedPushRefusesWhenFull)
{
    RequestQueue queue(2);
    EXPECT_TRUE(queue.push(queued(1)).ok());
    EXPECT_TRUE(queue.push(queued(2)).ok());

    const Status refused = queue.push(queued(3));
    EXPECT_EQ(refused.code(), ErrorCode::Overloaded);

    QueuedRequest out;
    ASSERT_TRUE(queue.pop(&out, 100));
    EXPECT_EQ(out.request.id, 1u);  // FIFO
    EXPECT_TRUE(queue.push(queued(4)).ok());
    EXPECT_EQ(queue.size(), 2u);
}

TEST(ServeQueue, CloseHandsOutTheBacklogThenStops)
{
    RequestQueue queue(4);
    EXPECT_TRUE(queue.push(queued(1)).ok());
    EXPECT_TRUE(queue.push(queued(2)).ok());
    queue.close();

    const Status late = queue.push(queued(3));
    EXPECT_EQ(late.code(), ErrorCode::Interrupted);

    // A closed queue still drains: the backlog feeds the
    // `interrupted` replies of the drain path.
    QueuedRequest out;
    EXPECT_TRUE(queue.pop(&out, 100));
    EXPECT_TRUE(queue.pop(&out, 100));
    EXPECT_FALSE(queue.pop(&out, 100));  // closed and empty: exit
}

// --- Result cache ------------------------------------------------------

TEST(ServeCache, LruKeepsOkResultsAndEvictsTheColdest)
{
    ResultCache cache(2);
    const std::string a = cacheKey(makeRequest(1, "vvmul"));
    const std::string b = cacheKey(makeRequest(2, "fir"));
    const std::string c =
        cacheKey(makeRequest(3, "vvmul", "convergent"));

    auto ticket = cache.begin(a);
    ASSERT_TRUE(ticket.leader());
    cache.finish(a, ticket.flight, okResult("vvmul"));

    ticket = cache.begin(a);
    EXPECT_TRUE(ticket.cached);
    EXPECT_EQ(ticket.result.makespan, 7);
    EXPECT_EQ(cache.hits(), 1u);

    ticket = cache.begin(b);
    ASSERT_TRUE(ticket.leader());
    cache.finish(b, ticket.flight, okResult("fir", 9));
    ticket = cache.begin(c);
    ASSERT_TRUE(ticket.leader());
    cache.finish(c, ticket.flight, okResult("vvmul", 11));
    EXPECT_EQ(cache.evictions(), 1u);

    // `a` was the least recently used entry; it is gone.
    EXPECT_TRUE(cache.begin(a).leader());
}

TEST(ServeCache, SingleFlightReplaysTheLeaderToFollowers)
{
    ResultCache cache(4);
    const std::string key = cacheKey(makeRequest(1, "vvmul"));

    auto leader = cache.begin(key);
    ASSERT_TRUE(leader.leader());

    JobResult replayed;
    bool follower_ok = false;
    std::thread follower([&] {
        auto ticket = cache.begin(key);
        EXPECT_TRUE(ticket.coalesced);
        follower_ok = ResultCache::waitFollower(
            ticket.flight,
            Clock::now() + std::chrono::seconds(5), &replayed);
    });

    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    cache.finish(key, leader.flight, okResult("vvmul", 13));
    follower.join();

    EXPECT_TRUE(follower_ok);
    EXPECT_EQ(replayed.makespan, 13);
    EXPECT_TRUE(cache.begin(key).cached);
}

TEST(ServeCache, FailuresAreNotCached)
{
    ResultCache cache(4);
    const std::string key = cacheKey(makeRequest(1, "vvmul"));

    auto ticket = cache.begin(key);
    ASSERT_TRUE(ticket.leader());
    JobResult failed;
    failed.outcome = JobOutcome::Failed;
    failed.error = ErrorCode::WorkerCrashed;
    cache.finish(key, ticket.flight, failed);

    // The next identical request retries for real.
    EXPECT_TRUE(cache.begin(key).leader());
    EXPECT_EQ(cache.size(), 0u);
}

// --- Serve-style shutdown (satellite: SIGHUP + double signal) ----------

TEST(ServeShutdown, SoftDrainRecordsWithoutCancelling)
{
    ServeSignalGuard guard;
    EXPECT_FALSE(drainRequested());

    requestInterrupt(SIGHUP);
    EXPECT_TRUE(drainRequested());
    EXPECT_FALSE(interruptRequested());  // in-flight work keeps going
    EXPECT_EQ(interruptSignal(), SIGHUP);

    escalateInterrupt();  // the drain deadline passed
    EXPECT_TRUE(interruptRequested());
    EXPECT_EQ(interruptExitCode(SIGHUP), 129);
    EXPECT_EQ(interruptExitCode(SIGTERM), 143);
}

TEST(ServeShutdown, SighupIsADrainTriggerLikeAnyOther)
{
    InterruptGuard guard;
    const pid_t pid = ::fork();
    ASSERT_NE(pid, -1);
    if (pid == 0) {
        installServeSignalHandlers();
        ::raise(SIGHUP);
        const bool good = drainRequested() &&
                          !interruptRequested() &&
                          interruptSignal() == SIGHUP;
        ::_exit(good ? 0 : 3);
    }
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0);
}

TEST(ServeShutdown, SecondSignalEscalatesToImmediateDeath)
{
    InterruptGuard guard;

    // Same signal twice: the second delivery restores SIG_DFL and
    // re-raises, so the process dies by the real signal.
    pid_t pid = ::fork();
    ASSERT_NE(pid, -1);
    if (pid == 0) {
        installServeSignalHandlers();
        ::raise(SIGTERM);
        if (!drainRequested())
            ::_exit(3);
        ::raise(SIGTERM);
        ::_exit(4);  // unreachable: the re-raise killed us
    }
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(status));
    EXPECT_EQ(WTERMSIG(status), SIGTERM);

    // A *different* second drain signal escalates just the same.
    pid = ::fork();
    ASSERT_NE(pid, -1);
    if (pid == 0) {
        installServeSignalHandlers();
        ::raise(SIGTERM);
        ::raise(SIGINT);
        ::_exit(4);
    }
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(status));
    EXPECT_EQ(WTERMSIG(status), SIGINT);
}

// --- End-to-end daemon -------------------------------------------------

ServeOptions
baseOptions(const std::string &socket_path)
{
    ServeOptions options;
    options.socketPath = socket_path;
    options.workers = 1;
    options.dispatchers = 2;
    options.queueCapacity = 16;
    options.cacheCapacity = 8;
    options.defaultDeadlineMs = 30000;
    options.retries = 0;
    options.drainDeadlineMs = 3000;
    return options;
}

/** A daemon running on its own thread for the duration of a test. */
struct RunningServer
{
    Server server;
    std::thread thread;
    int exitCode = -1;
    bool startOk = false;

    explicit RunningServer(ServeOptions options)
        : server(std::move(options))
    {
        const Status started = server.start();
        EXPECT_TRUE(started.ok()) << started.toString();
        if (!started.ok())
            return;
        startOk = true;
        thread = std::thread([this] { exitCode = server.run(); });
    }
    /** Programmatic drain; returns run()'s exit code. */
    int finish()
    {
        server.stop();
        if (thread.joinable())
            thread.join();
        return exitCode;
    }
    ~RunningServer()
    {
        server.stop();
        if (thread.joinable())
            thread.join();
    }
};

int
connectTo(const std::string &socket_path)
{
    const auto fd = connectUnix(socket_path, 2000);
    EXPECT_TRUE(fd.ok()) << fd.status().toString();
    return fd.ok() ? *fd : -1;
}

StatusOr<ServeResponse>
readReply(int fd, int timeout_ms = 15000)
{
    const FrameResult frame =
        readFrame(fd, timeout_ms, kServeMaxFrameBytes);
    if (frame.kind != FrameResult::Kind::Payload)
        return Status::internal("no reply frame: " + frame.error);
    return decodeServeResponse(frame.payload);
}

ServeResponse
roundTrip(int fd, const ServeRequest &request)
{
    const Status sent = writeFrame(fd, encodeServeRequest(request));
    EXPECT_TRUE(sent.ok()) << sent.toString();
    const auto reply = readReply(fd);
    EXPECT_TRUE(reply.ok()) << reply.status().toString();
    return reply.ok() ? *reply : ServeResponse();
}

TEST(ServeDaemon, ServesScheduleRequestsAndCachesRepeats)
{
    InterruptGuard guard;
    RunningServer running(baseOptions(tempPath("sock")));
    ASSERT_TRUE(running.startOk);

    const int fd = connectTo(running.server.socketPath());
    ASSERT_GE(fd, 0);

    const ServeResponse first = roundTrip(fd, makeRequest(1, "vvmul"));
    EXPECT_EQ(first.id, 1u);
    EXPECT_EQ(first.status, "ok");
    EXPECT_FALSE(first.cached);
    EXPECT_GT(first.result.makespan, 0);
    EXPECT_EQ(first.result.workload, "vvmul");

    const ServeResponse again = roundTrip(fd, makeRequest(2, "vvmul"));
    EXPECT_EQ(again.id, 2u);
    EXPECT_EQ(again.status, "ok");
    EXPECT_TRUE(again.cached);  // no second job ran
    EXPECT_EQ(again.result.makespan, first.result.makespan);
    ::close(fd);

    const ServeStats stats = running.server.stats();
    EXPECT_EQ(stats.jobsRun, 1u);
    EXPECT_EQ(stats.cacheHits, 1u);
    // repliesSent is counted *after* the write, so the client can race
    // ahead of the counter; wait for it instead of snapshotting.
    EXPECT_TRUE(eventually([&] {
        return running.server.stats().repliesSent == 2;
    }));
    EXPECT_EQ(running.finish(), 0);  // programmatic stop, not a signal
}

TEST(ServeDaemon, BadFramesGetStructuredRepliesAndTheConnectionLives)
{
    InterruptGuard guard;
    RunningServer running(baseOptions(tempPath("sock")));
    ASSERT_TRUE(running.startOk);

    const int fd = connectTo(running.server.socketPath());
    ASSERT_GE(fd, 0);

    // Garbage payload in a well-formed frame: a structured
    // invalid-spec reply, and the stream keeps serving.
    ASSERT_TRUE(writeFrame(fd, "this is not json").ok());
    auto reply = readReply(fd);
    ASSERT_TRUE(reply.ok()) << reply.status().toString();
    EXPECT_EQ(reply->status, "invalid-spec");
    EXPECT_EQ(reply->id, 0u);

    // A wrong-schema object still gets addressed by its salvaged id.
    ASSERT_TRUE(writeFrame(fd, "{\"schema\":\"bogus\",\"id\":9}").ok());
    reply = readReply(fd);
    ASSERT_TRUE(reply.ok()) << reply.status().toString();
    EXPECT_EQ(reply->id, 9u);
    EXPECT_EQ(reply->status, "invalid-spec");

    // An unparseable algorithm fails the job, not the daemon.
    const ServeResponse bad_algorithm =
        roundTrip(fd, makeRequest(3, "vvmul", "nope"));
    EXPECT_EQ(bad_algorithm.status, "invalid-spec");
    EXPECT_NE(bad_algorithm.result.diagnostic.find("algorithm"),
              std::string::npos)
        << bad_algorithm.result.diagnostic;

    // ...and the same connection still schedules real work.
    EXPECT_EQ(roundTrip(fd, makeRequest(4, "vvmul")).status, "ok");
    ::close(fd);

    EXPECT_EQ(running.server.stats().invalidRequests, 2u);
    EXPECT_EQ(running.finish(), 0);
}

TEST(ServeDaemon, OversizedFrameIsRefusedThenDropped)
{
    InterruptGuard guard;
    ServeOptions options = baseOptions(tempPath("sock"));
    options.maxFrameBytes = 4096;
    RunningServer running(std::move(options));
    ASSERT_TRUE(running.startOk);

    const int fd = connectTo(running.server.socketPath());
    ASSERT_GE(fd, 0);

    // A hostile length prefix: 100000 bytes against a 4096 cap.  The
    // refusal arrives before any payload is read.
    const uint32_t length = 100000;
    const unsigned char prefix[4] = {
        static_cast<unsigned char>(length & 0xff),
        static_cast<unsigned char>((length >> 8) & 0xff),
        static_cast<unsigned char>((length >> 16) & 0xff),
        static_cast<unsigned char>((length >> 24) & 0xff)};
    ASSERT_EQ(::write(fd, prefix, sizeof prefix),
              static_cast<ssize_t>(sizeof prefix));

    const auto reply = readReply(fd);
    ASSERT_TRUE(reply.ok()) << reply.status().toString();
    EXPECT_EQ(reply->status, "invalid-spec");
    EXPECT_NE(reply->result.diagnostic.find("refused request frame"),
              std::string::npos)
        << reply->result.diagnostic;

    // The stream is no longer framed, so the server hangs up on us...
    EXPECT_EQ(readFrame(fd, 2000).kind, FrameResult::Kind::Eof);
    ::close(fd);

    // ...but stays healthy for the next client.
    const int fresh = connectTo(running.server.socketPath());
    ASSERT_GE(fresh, 0);
    EXPECT_EQ(roundTrip(fresh, makeRequest(1, "vvmul")).status, "ok");
    ::close(fresh);

    EXPECT_EQ(running.server.stats().oversizedFrames, 1u);
    EXPECT_EQ(running.finish(), 0);
}

TEST(ServeDaemon, TruncatedFrameDropsOnlyThatConnection)
{
    InterruptGuard guard;
    RunningServer running(baseOptions(tempPath("sock")));
    ASSERT_TRUE(running.startOk);

    const int fd = connectTo(running.server.socketPath());
    ASSERT_GE(fd, 0);

    // Promise 64 bytes, deliver 8, die: the classic half-written
    // frame of a crashed peer.
    const unsigned char prefix[4] = {64, 0, 0, 0};
    ASSERT_EQ(::write(fd, prefix, sizeof prefix),
              static_cast<ssize_t>(sizeof prefix));
    ASSERT_EQ(::write(fd, "partial!", 8), 8);
    ::close(fd);

    EXPECT_TRUE(eventually([&] {
        return running.server.stats().malformedFrames >= 1;
    })) << "truncated frame was never classified";

    const int fresh = connectTo(running.server.socketPath());
    ASSERT_GE(fresh, 0);
    EXPECT_EQ(roundTrip(fresh, makeRequest(1, "vvmul")).status, "ok");
    ::close(fresh);
    EXPECT_EQ(running.finish(), 0);
}

TEST(ServeDaemon, WorkerCrashHealsWithBackoffInTheDiagnostic)
{
    InterruptGuard guard;
    // The worker dies on the first dispatch only; the supervisor
    // respawns it, the retry re-dispatches, and the reply arrives
    // healed -- with the deterministic backoff it slept recorded in
    // the serve envelope.
    const auto plan =
        mustParse("worker.crash=fail:match=vvmul/vliw2/uas:nth=1");
    ServeOptions options = baseOptions(tempPath("sock"));
    options.retries = 1;
    options.faults = &plan;
    RunningServer running(std::move(options));
    ASSERT_TRUE(running.startOk);

    const int fd = connectTo(running.server.socketPath());
    ASSERT_GE(fd, 0);
    const ServeResponse healed =
        roundTrip(fd, makeRequest(1, "vvmul"));
    ::close(fd);

    EXPECT_EQ(healed.status, "ok");
    EXPECT_EQ(healed.result.attempts, 2);
    EXPECT_TRUE(healed.result.retriedThenOk());
    const std::string expected_note =
        "healed after 2 attempts; retry backoff ms: [" +
        std::to_string(retryBackoffMs("vvmul/vliw2/uas", 2)) + "]";
    EXPECT_EQ(healed.serverDiagnostic, expected_note);

    const ServeStats stats = running.server.stats();
    // workerDeaths counts *terminal* worker-death results; a healed
    // crash shows up as a healed retry instead.
    EXPECT_EQ(stats.workerDeaths, 0u);
    EXPECT_EQ(stats.healedRetries, 1u);
    EXPECT_EQ(running.finish(), 0);
}

TEST(ServeDaemon, CrashLoopTripsTheBreakerIntoOverloaded)
{
    InterruptGuard guard;
    // Every dispatch kills its worker: a poisoned request stream.
    const auto plan = mustParse("worker.crash=fail");
    ServeOptions options = baseOptions(tempPath("sock"));
    options.faults = &plan;
    options.crashLoopThreshold = 2;
    options.degradeCooldownMs = 60000;  // hold the window for the test
    RunningServer running(std::move(options));
    ASSERT_TRUE(running.startOk);

    const int fd = connectTo(running.server.socketPath());
    ASSERT_GE(fd, 0);

    // Two consecutive worker deaths trip the breaker...
    EXPECT_EQ(roundTrip(fd, makeRequest(1, "vvmul")).status,
              "worker-crashed");
    EXPECT_EQ(roundTrip(fd, makeRequest(2, "fir")).status,
              "worker-crashed");

    // ...and the degraded window refuses admission outright: no
    // worker is spent on a stream that is killing the pool.
    const ServeResponse refused =
        roundTrip(fd, makeRequest(3, "vvmul", "convergent"));
    EXPECT_EQ(refused.status, "overloaded");
    EXPECT_NE(refused.result.diagnostic.find("crash-looping"),
              std::string::npos)
        << refused.result.diagnostic;
    ::close(fd);

    const ServeStats stats = running.server.stats();
    EXPECT_EQ(stats.workerDeaths, 2u);
    EXPECT_EQ(stats.degradeTrips, 1u);
    EXPECT_EQ(stats.rejectedOverloaded, 1u);
    EXPECT_EQ(running.finish(), 0);
}

TEST(ServeDaemon, SignalDrainAnswersTheBacklogAndExits143)
{
    ServeSignalGuard guard;
    // One dispatcher, and the first job (convergent: the pass.apply
    // point lives in its pass loop) stalls 600 ms at its first pass
    // application -- so requests 2 and 3 are still queued when the
    // drain starts.
    const auto plan = mustParse(
        "pass.apply=slow:ms=600:match=vvmul/vliw2/convergent:nth=1");
    ServeOptions options = baseOptions(tempPath("sock"));
    options.dispatchers = 1;
    options.faults = &plan;
    options.drainDeadlineMs = 5000;
    RunningServer running(std::move(options));
    ASSERT_TRUE(running.startOk);

    const int fd = connectTo(running.server.socketPath());
    ASSERT_GE(fd, 0);
    for (const ServeRequest &request :
         {makeRequest(1, "vvmul", "convergent"), makeRequest(2, "fir"),
          makeRequest(3, "fir", "convergent")})
        ASSERT_TRUE(
            writeFrame(fd, encodeServeRequest(request)).ok());

    // Let the reader admit all three, then deliver the drain signal
    // while request 1 is mid-schedule.
    ASSERT_TRUE(eventually(
        [&] { return running.server.stats().admitted == 3; }));
    requestInterrupt(SIGTERM);

    // Exactly one reply per request: the in-flight job finishes, the
    // queued backlog is answered with `interrupted`.
    std::map<uint64_t, std::string> statuses;
    for (int k = 0; k < 3; ++k) {
        const auto reply = readReply(fd);
        ASSERT_TRUE(reply.ok()) << reply.status().toString();
        statuses[reply->id] = reply->status;
    }
    ::close(fd);  // a well-behaved client closes on seeing the drain

    if (running.thread.joinable())
        running.thread.join();
    EXPECT_EQ(running.exitCode, 143);  // 128 + SIGTERM

    EXPECT_EQ(statuses[1], "ok");
    EXPECT_EQ(statuses[2], "interrupted");
    EXPECT_EQ(statuses[3], "interrupted");
    EXPECT_EQ(running.server.stats().interruptedReplies, 2u);
}

} // namespace
} // namespace csched
