/**
 * @file
 * Tests for the fault-tolerance stack: the structured error model, the
 * deterministic fault-injection harness, per-job deadlines/retries,
 * checker rejections surfacing as CheckFailed (not aborts), partial
 * -report salvage, and the thread pool's exception barrier.
 *
 * The determinism tests here are the robustness half of the runner's
 * core guarantee: an *injected* grid must still produce byte-identical
 * reports -- outcomes, attempt counts, and diagnostics included -- at
 * any --jobs value.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "eval/experiment.hh"
#include "machine/machine_spec.hh"
#include "runner/failure_summary.hh"
#include "runner/grid_runner.hh"
#include "runner/json_report.hh"
#include "runner/thread_pool.hh"
#include "sched/schedule_checker.hh"
#include "support/cancel.hh"
#include "support/fault_injection.hh"
#include "workloads/workloads.hh"

namespace csched {
namespace {

FaultPlan
mustParse(const std::string &text)
{
    std::string error;
    const auto plan = FaultPlan::parse(text, &error);
    EXPECT_TRUE(plan.has_value()) << error;
    return plan.value_or(FaultPlan());
}

JobSpec
vvmulJob(const std::string &algorithm = "convergent",
         const std::string &machine = "vliw4")
{
    return JobSpec{"vvmul", machine, *parseAlgorithmSpec(algorithm),
                   true};
}

TEST(FaultPlan, ParsesRulesAndOptions)
{
    const auto plan = mustParse(
        "runner.job.start=fail:match=uas:nth=2; pass.apply=slow:ms=5;"
        "checker.verify=timeout:prob=0.5:seed=9;"
        "uas.cycle=fail:code=check-failed");
    ASSERT_EQ(plan.rules().size(), 4u);

    const auto &start = plan.rules()[0];
    EXPECT_EQ(start.point, "runner.job.start");
    EXPECT_EQ(start.action, FaultAction::Fail);
    EXPECT_EQ(start.code, ErrorCode::Injected);
    EXPECT_EQ(start.match, "uas");
    EXPECT_EQ(start.nth, 2);

    const auto &slow = plan.rules()[1];
    EXPECT_EQ(slow.action, FaultAction::Slow);
    EXPECT_EQ(slow.slowMs, 5);

    const auto &timeout = plan.rules()[2];
    EXPECT_EQ(timeout.action, FaultAction::Timeout);
    EXPECT_DOUBLE_EQ(timeout.probability, 0.5);
    EXPECT_EQ(timeout.seed, 9u);

    EXPECT_EQ(plan.rules()[3].code, ErrorCode::CheckFailed);
}

TEST(FaultPlan, RejectsMalformedSpecs)
{
    for (const char *bad :
         {"no-equals", "=fail", "p=explode", "p=fail:nth=0",
          "p=fail:prob=1.5", "p=fail:code=nonesuch", "p=fail:bogus=1",
          "p=fail:ms"}) {
        std::string error;
        EXPECT_FALSE(FaultPlan::parse(bad, &error).has_value()) << bad;
        EXPECT_FALSE(error.empty()) << bad;
    }
}

/** Which of the first @p hits of @p point throw under @p plan/@p key. */
std::vector<int>
firingHits(const FaultPlan &plan, const std::string &key,
           const char *point, int hits)
{
    FaultScope scope(&plan, key);
    std::vector<int> fired;
    for (int k = 1; k <= hits; ++k) {
        try {
            scope.hit(point);
        } catch (const StatusError &) {
            fired.push_back(k);
        }
    }
    return fired;
}

TEST(FaultScope, ProbabilisticRulesAreDeterministic)
{
    const auto plan = mustParse("pass.apply=fail:prob=0.4:seed=11");
    const auto a = firingHits(plan, "fir/vliw4/uas", "pass.apply", 64);
    const auto b = firingHits(plan, "fir/vliw4/uas", "pass.apply", 64);
    EXPECT_EQ(a, b);
    EXPECT_FALSE(a.empty());
    EXPECT_LT(a.size(), 64u);

    // A different scope key draws a different (but equally
    // deterministic) firing pattern.
    const auto c = firingHits(plan, "fir/vliw4/pcc", "pass.apply", 64);
    EXPECT_EQ(c, firingHits(plan, "fir/vliw4/pcc", "pass.apply", 64));
    EXPECT_NE(a, c);
}

TEST(FaultScope, MatchFiltersByScopeKey)
{
    const auto plan = mustParse("pass.apply=fail:match=uas");
    EXPECT_EQ(firingHits(plan, "fir/vliw4/uas", "pass.apply", 3).size(),
              3u);
    EXPECT_TRUE(firingHits(plan, "fir/vliw4/pcc", "pass.apply", 3)
                    .empty());
}

TEST(FaultScope, NthTargetsOneHitOnly)
{
    const auto plan = mustParse("pass.apply=fail:nth=2");
    const auto fired =
        firingHits(plan, "fir/vliw4/uas", "pass.apply", 5);
    EXPECT_EQ(fired, std::vector<int>{2});
}

TEST(CancelToken, DeadlineSurfacesAsTimeoutStatus)
{
    CancelToken token;
    token.armDeadline(1);
    while (!token.expired()) {
    }
    ScopedCancelToken guard(&token);
    try {
        pollCancellation("uas.cycle");
        FAIL() << "expected a StatusError";
    } catch (const StatusError &error) {
        EXPECT_EQ(error.status.code(), ErrorCode::Timeout);
        EXPECT_NE(error.status.message().find("uas.cycle"),
                  std::string::npos);
    }
}

TEST(RunJob, InjectedFaultBecomesFailedOutcome)
{
    const auto plan = mustParse("pass.apply=fail");
    JobPolicy policy;
    policy.faults = &plan;
    const auto result = runJob(vvmulJob(), policy);
    EXPECT_EQ(result.outcome, JobOutcome::Failed);
    EXPECT_EQ(result.error, ErrorCode::Injected);
    EXPECT_EQ(result.attempts, 1);
    EXPECT_NE(result.diagnostic.find("pass.apply"), std::string::npos);
    EXPECT_FALSE(result.ok());
}

TEST(RunJob, TransientFaultIsHealedByRetry)
{
    const auto plan = mustParse("pass.apply=fail:nth=1");
    JobPolicy policy;
    policy.faults = &plan;
    policy.retries = 2;
    const auto result = runJob(vvmulJob(), policy);
    EXPECT_EQ(result.outcome, JobOutcome::Ok);
    EXPECT_EQ(result.attempts, 2);
    EXPECT_TRUE(result.retriedThenOk());
    EXPECT_TRUE(result.diagnostic.empty());
    EXPECT_GT(result.makespan, 0);
}

TEST(RunJob, InjectedTimeoutBecomesTimeoutOutcome)
{
    const auto plan = mustParse("runner.job.start=timeout");
    JobPolicy policy;
    policy.faults = &plan;
    const auto result = runJob(vvmulJob(), policy);
    EXPECT_EQ(result.outcome, JobOutcome::Timeout);
    EXPECT_EQ(result.error, ErrorCode::Timeout);
}

TEST(RunJob, InvalidSpecIsNeverRetried)
{
    JobPolicy policy;
    policy.retries = 3;

    JobSpec bad_machine = vvmulJob();
    bad_machine.machine = "vliw0";
    auto result = runJob(bad_machine, policy);
    EXPECT_EQ(result.outcome, JobOutcome::Failed);
    EXPECT_EQ(result.error, ErrorCode::InvalidSpec);
    EXPECT_EQ(result.attempts, 1);

    JobSpec bad_workload = vvmulJob();
    bad_workload.workload = "nonesuch";
    result = runJob(bad_workload, policy);
    EXPECT_EQ(result.error, ErrorCode::InvalidSpec);
    EXPECT_EQ(result.attempts, 1);
    EXPECT_NE(result.diagnostic.find("nonesuch"), std::string::npos);
}

TEST(RunJob, CheckerVerdictSurfacesAsCheckFailedOutcome)
{
    const auto plan =
        mustParse("checker.verify=fail:code=check-failed");
    JobPolicy policy;
    policy.faults = &plan;
    const auto result = runJob(vvmulJob(), policy);
    EXPECT_EQ(result.outcome, JobOutcome::Failed);
    EXPECT_EQ(result.error, ErrorCode::CheckFailed);
}

TEST(RunJob, FailedBaselineFailsDependentsWithDiagnosis)
{
    const auto plan =
        mustParse("runner.job.start=fail:match=single-cluster");
    GridSpec grid;
    grid.workloads = {"vvmul"};
    grid.machines = {"vliw4"};
    grid.algorithms = {*parseAlgorithmSpec("convergent")};
    grid.faults = &plan;
    const auto report = runGrid(grid);
    ASSERT_EQ(report.results.size(), 1u);
    EXPECT_EQ(report.results[0].outcome, JobOutcome::Failed);
    EXPECT_NE(report.results[0].diagnostic.find("single-cluster"),
              std::string::npos);
}

/**
 * Test-local algorithm that replays a canned (corrupted) schedule, so
 * checker negative paths can be driven through the exact code path
 * jobs use -- and must come back as CheckFailed values, not aborts.
 */
class FixedScheduleAlgorithm : public SchedulingAlgorithm
{
  public:
    explicit FixedScheduleAlgorithm(Schedule schedule)
        : schedule_(std::move(schedule))
    {
    }

    std::string name() const override { return "Fixed"; }

    ScheduleResult run(const DependenceGraph &) const override
    {
        return ScheduleResult{schedule_, {}};
    }

  private:
    Schedule schedule_;
};

/** A legal schedule of @p workload to corrupt, plus its context. */
struct Scheduled
{
    const MachineModel *machine;
    DependenceGraph graph;
    Schedule schedule;
};

Scheduled
scheduleFixture(const MachineModel &machine)
{
    const WorkloadSpec *spec = tryFindWorkload("vvmul");
    EXPECT_NE(spec, nullptr);
    DependenceGraph graph = spec->build(machine.numClusters(),
                                        machine.numClusters());
    const auto algorithm =
        makeAlgorithm(*parseAlgorithmSpec("uas"), machine);
    Schedule schedule = algorithm->schedule(graph);
    EXPECT_TRUE(checkSchedule(graph, machine, schedule).ok());
    return Scheduled{&machine, std::move(graph), std::move(schedule)};
}

/** Copy @p base, letting @p mutate rewrite each placement. */
template <typename Mutate>
Schedule
rebuilt(const Schedule &base, Mutate mutate, bool keep_comms = true)
{
    Schedule copy(base.numInstructions(), base.numClusters());
    for (InstrId id = 0; id < base.numInstructions(); ++id) {
        Placement p = base.at(id);
        mutate(id, p);
        copy.place(id, p);
    }
    if (keep_comms)
        for (const auto &event : base.comms())
            copy.addComm(event);
    return copy;
}

TEST(CheckerNegativePaths, DependenceViolationIsCheckFailed)
{
    const auto machine = parseMachineSpec("vliw4", nullptr);
    auto fixture = scheduleFixture(*machine);

    // Pull one data consumer to cycle 0, before its producer's finish.
    InstrId victim = kNoInstr;
    for (const auto &edge : fixture.graph.edges()) {
        if (edge.kind == DepKind::Data &&
            fixture.schedule.at(edge.dst).cycle > 0) {
            victim = edge.dst;
            break;
        }
    }
    ASSERT_NE(victim, kNoInstr);
    const auto corrupt =
        rebuilt(fixture.schedule, [&](InstrId id, Placement &p) {
            if (id == victim) {
                p.finish -= p.cycle;
                p.cycle = 0;
            }
        });

    const auto run = tryRunAndCheck(FixedScheduleAlgorithm(corrupt),
                                    fixture.graph, *machine);
    ASSERT_FALSE(run.ok());
    EXPECT_EQ(run.status().code(), ErrorCode::CheckFailed);
    EXPECT_NE(run.status().message().find("edge"), std::string::npos);
}

TEST(CheckerNegativePaths, FuOversubscriptionIsCheckFailed)
{
    const auto machine = parseMachineSpec("vliw4", nullptr);
    auto fixture = scheduleFixture(*machine);
    ASSERT_GE(fixture.schedule.numInstructions(), 2);

    // Give instruction 1 the same (cluster, fu, cycle) as instruction 0.
    const Placement first = fixture.schedule.at(0);
    const auto corrupt =
        rebuilt(fixture.schedule, [&](InstrId id, Placement &p) {
            if (id == 1) {
                const int latency = p.finish - p.cycle;
                p = first;
                p.finish = first.cycle + latency;
            }
        });

    const auto run = tryRunAndCheck(FixedScheduleAlgorithm(corrupt),
                                    fixture.graph, *machine);
    ASSERT_FALSE(run.ok());
    EXPECT_EQ(run.status().code(), ErrorCode::CheckFailed);
    EXPECT_NE(run.status().message().find("conflict"),
              std::string::npos);
}

TEST(CheckerNegativePaths, MissingCommunicationIsCheckFailed)
{
    const auto machine = parseMachineSpec("raw2x2", nullptr);
    auto fixture = scheduleFixture(*machine);
    // The legal schedule must actually cross clusters for the dropped
    // comm events to matter.
    ASSERT_FALSE(fixture.schedule.comms().empty());

    const auto corrupt = rebuilt(
        fixture.schedule, [](InstrId, Placement &) {},
        /*keep_comms=*/false);

    const auto run = tryRunAndCheck(FixedScheduleAlgorithm(corrupt),
                                    fixture.graph, *machine);
    ASSERT_FALSE(run.ok());
    EXPECT_EQ(run.status().code(), ErrorCode::CheckFailed);
    EXPECT_NE(run.status().message().find("communication"),
              std::string::npos);
}

GridSpec
injectedGrid()
{
    GridSpec grid;
    grid.workloads = {"vvmul", "fir", "jacobi"};
    grid.machines = {"vliw4", "raw2x2"};
    grid.algorithms = {*parseAlgorithmSpec("convergent"),
                       *parseAlgorithmSpec("uas")};
    grid.retries = 1;
    return grid;
}

TEST(InjectedGrid, SalvagesHealthyCellsAndMarksFailedOnes)
{
    const auto plan = mustParse(
        "runner.job.start=fail:match=fir/vliw4/uas;"
        "pass.apply=timeout:match=jacobi/raw2x2/convergent:nth=2");
    auto grid = injectedGrid();
    grid.retries = 0;
    grid.faults = &plan;
    const auto report = runGrid(grid);
    const auto clean = runGrid(injectedGrid());

    ASSERT_EQ(report.results.size(), clean.results.size());
    EXPECT_EQ(report.summary.total, 12);
    EXPECT_EQ(report.summary.ok, 10);
    EXPECT_EQ(report.summary.failed, 1);
    EXPECT_EQ(report.summary.timeout, 1);
    EXPECT_FALSE(report.allOk());
    EXPECT_EQ(gridExitCode(report, false), 1);
    EXPECT_EQ(gridExitCode(report, true), 0);

    for (size_t k = 0; k < report.results.size(); ++k) {
        const auto &job = report.results[k];
        const std::string key =
            job.workload + "/" + job.machine + "/" + job.algorithm;
        if (key == "fir/vliw4/uas") {
            EXPECT_EQ(job.outcome, JobOutcome::Failed);
        } else if (key == "jacobi/raw2x2/convergent") {
            EXPECT_EQ(job.outcome, JobOutcome::Timeout);
        } else {
            // Salvaged cells are exactly what an uninjected run gives.
            EXPECT_TRUE(job.ok()) << key << ": " << job.diagnostic;
            EXPECT_EQ(job.makespan, clean.results[k].makespan) << key;
            EXPECT_EQ(job.assignment, clean.results[k].assignment);
            EXPECT_EQ(job.speedup, clean.results[k].speedup);
        }
    }
}

TEST(InjectedGrid, ReportIsByteIdenticalAcrossThreadCounts)
{
    // The uas.cycle rule spares vliw4, so jacobi/vliw4/uas (killed on
    // its first attempt only) deterministically recovers by retry.
    const auto plan = mustParse(
        "pass.apply=fail:prob=0.3:seed=7;"
        "runner.job.start=fail:match=jacobi/vliw4/uas:nth=1;"
        "uas.cycle=timeout:prob=0.2:seed=3:match=raw2x2");
    auto serial = injectedGrid();
    serial.faults = &plan;
    serial.jobs = 1;
    auto parallel = injectedGrid();
    parallel.faults = &plan;
    parallel.jobs = 8;

    const auto a = runGrid(serial);
    const auto b = runGrid(parallel);
    EXPECT_FALSE(a.allOk());  // the injection must actually bite
    EXPECT_GT(a.summary.retried, 0);

    ASSERT_EQ(a.results.size(), b.results.size());
    for (size_t k = 0; k < a.results.size(); ++k) {
        EXPECT_EQ(a.results[k].outcome, b.results[k].outcome) << k;
        EXPECT_EQ(a.results[k].attempts, b.results[k].attempts) << k;
        EXPECT_EQ(a.results[k].diagnostic, b.results[k].diagnostic);
    }

    ReportOptions options;
    options.timings = false;
    EXPECT_EQ(gridReportToJson(a, options),
              gridReportToJson(b, options));
}

TEST(JsonReportV2, FailedCellsCarryDiagnosisOnly)
{
    const auto plan = mustParse("pass.apply=fail:match=convergent");
    GridSpec grid;
    grid.workloads = {"vvmul"};
    grid.machines = {"vliw4"};
    grid.algorithms = {*parseAlgorithmSpec("convergent"),
                       *parseAlgorithmSpec("uas")};
    grid.faults = &plan;
    const auto report = runGrid(grid);

    const auto json = gridReportToJson(report);
    EXPECT_NE(json.find("\"schema\": \"csched-grid-report-v2\""),
              std::string::npos);
    EXPECT_NE(json.find("\"summary\""), std::string::npos);
    EXPECT_NE(json.find("\"outcome\": \"failed\""), std::string::npos);
    EXPECT_NE(json.find("\"error\": \"injected\""), std::string::npos);

    // The failed convergent cell must not pretend to have results.
    const auto failed_pos = json.find("\"outcome\": \"failed\"");
    const auto ok_pos = json.find("\"outcome\": \"ok\"");
    ASSERT_NE(failed_pos, std::string::npos);
    ASSERT_NE(ok_pos, std::string::npos);
    const auto failed_cell = json.substr(failed_pos, ok_pos - failed_pos);
    EXPECT_EQ(failed_cell.find("makespan"), std::string::npos);
    EXPECT_EQ(failed_cell.find("speedup"), std::string::npos);
}

TEST(FailureSummary, ListsFailuresAndRecoveries)
{
    const auto plan = mustParse(
        "runner.job.start=fail:match=uas;"
        "pass.apply=fail:match=convergent:nth=1");
    GridSpec grid;
    grid.workloads = {"vvmul"};
    grid.machines = {"vliw4"};
    grid.algorithms = {*parseAlgorithmSpec("convergent"),
                       *parseAlgorithmSpec("uas")};
    grid.retries = 1;
    grid.faults = &plan;
    const auto report = runGrid(grid);

    std::ostringstream out;
    printFailureSummary(out, report);
    const auto text = out.str();
    EXPECT_NE(text.find("failed  vvmul/vliw4/uas"), std::string::npos)
        << text;
    EXPECT_NE(text.find("2 attempts"), std::string::npos) << text;
    EXPECT_NE(text.find("1/2 jobs ok, 1 failed"), std::string::npos)
        << text;
    EXPECT_NE(text.find("1 recovered by retry"), std::string::npos)
        << text;

    // A fully clean report prints nothing.
    std::ostringstream quiet;
    GridSpec clean_grid = grid;
    clean_grid.retries = 0;
    clean_grid.faults = nullptr;
    printFailureSummary(quiet, runGrid(clean_grid));
    EXPECT_TRUE(quiet.str().empty());
}

/**
 * Regression for the workerLoop exception barrier: before it, a
 * throwing task called std::terminate (or, had the call survived,
 * leaked active_ and deadlocked wait() forever).
 */
TEST(ThreadPool, SurvivesThrowingTasks)
{
    ThreadPool pool(4);
    std::atomic<int> completed{0};
    for (int k = 0; k < 32; ++k)
        pool.submit([&completed, k] {
            if (k % 2 == 0)
                throw std::runtime_error("synthetic task failure");
            ++completed;
        });
    pool.wait();  // deadlocks here without the RAII active-count guard
    EXPECT_EQ(completed.load(), 16);

    // The pool must remain fully usable afterwards.
    pool.submit([&completed] { ++completed; });
    pool.wait();
    EXPECT_EQ(completed.load(), 17);
}

} // namespace
} // namespace csched
